"""Shared helpers for the evaluation benchmarks (§VII of the paper).

Every benchmark regenerates one table or figure of the paper's evaluation
and asserts its qualitative claims (who wins, by roughly what factor).
Absolute numbers come from our simulated substrate, not the authors'
testbed, so only the *shape* is checked.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

#: Application list in the paper's Table III order.
PAPER_APPS = ["agg", "cache", "paxos_acceptor", "paxos_learner", "paxos_leader", "calc"]

#: NetCL app -> (netcl source name, handwritten p4 names, device ids)
APP_MAP = {
    "agg": ("agg", ["agg"], [1]),
    "cache": ("cache", ["cache"], [1]),
    "paxos": ("paxos", ["paxos_acceptor", "paxos_learner", "paxos_leader"], [2, 5, 1]),
    "calc": ("calc", ["calc"], [1]),
}


#: metric group -> {metric name: value}, flushed to BENCH_<group>.json at
#: session end so the perf trajectory is machine-readable across PRs.
_bench_metrics: dict[str, dict[str, float]] = {}


@pytest.fixture
def bench_metrics(request):
    """Recorder for machine-readable benchmark results.

    ``bench_metrics("metric_name", value)`` files the value under the
    calling module's group (``test_fig14_agg_throughput`` ->
    ``BENCH_fig14_agg_throughput.json``).
    """
    group = request.module.__name__.rsplit(".", 1)[-1]
    if group.startswith("test_"):
        group = group[len("test_"):]
    store = _bench_metrics.setdefault(group, {})

    def record(name: str, value) -> None:
        store[name] = value

    return record


def pytest_sessionfinish(session, exitstatus) -> None:
    root = Path(str(session.config.rootpath))
    for group, metrics in _bench_metrics.items():
        if metrics:
            path = root / f"BENCH_{group}.json"
            path.write_text(json.dumps(metrics, indent=2, sort_keys=True) + "\n")


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    print(f"\n== {title} " + "=" * max(0, 60 - len(title)))
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    print("  " + "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for r in rows:
        print("  " + "  ".join(str(c).ljust(w) for c, w in zip(r, widths)))
