"""Ablations over the compiler flags §VI-B calls out.

The paper motivates several toggleable transformations: aggressive
speculation ("what allowed one of the major programs to fit"), lookup
duplication ("could lead to excessive resource consumption and thus can
be turned off"), and intrinsic/peephole conversions.  These benches
measure the effect of each on stage counts and fitting.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.apps import compile_app, netcl_source
from repro.core import compile_netcl
from repro.passes.manager import PassOptions
from repro.tofino.allocator import FitError


def fit_with(app: str, dev: int, **flags):
    opts = PassOptions(target="tna", **flags)
    try:
        cp = compile_app(app, dev, options=opts)
        return cp.report
    except FitError:
        return None


def test_ablation_speculation(benchmark):
    """Speculation shortens dependency chains at the cost of PHV."""
    on = benchmark(lambda: fit_with("cache", 1, speculation=True))
    off = fit_with("cache", 1, speculation=False)
    rows = [
        ["speculation on", on.stages_used, f"{on.phv_occupancy_pct:.1f}%"],
        ["speculation off",
         off.stages_used if off else "DOES NOT FIT",
         f"{off.phv_occupancy_pct:.1f}%" if off else "-"],
    ]
    print_table("Ablation: speculation (CACHE)", ["config", "stages", "phv"], rows)
    assert on is not None
    if off is not None:
        assert on.stages_used <= off.stages_used


def test_ablation_if_conversion():
    """If-conversion collapses the CMS min chain (the paper's +3-stage
    culprit in generated CACHE)."""
    on = fit_with("cache", 1, if_conversion=True)
    off = fit_with("cache", 1, if_conversion=False)
    rows = [
        ["if-conversion on", on.stages_used],
        ["if-conversion off", off.stages_used if off else "DOES NOT FIT"],
    ]
    print_table("Ablation: if-conversion (CACHE)", ["config", "stages"], rows)
    assert on is not None
    if off is not None:
        assert on.stages_used <= off.stages_used


def test_ablation_lookup_duplication():
    """Duplication trades SRAM for stage freedom on static lookup memory."""
    src = (
        "_net_ _lookup_ ncl::kv<unsigned,unsigned> t[64] = {{1,10},{2,20}};\n"
        "_kernel(1) void k(unsigned a, unsigned b, unsigned &x, unsigned &y) {\n"
        "  if (a > b) { ncl::lookup(t, a, x); }\n"
        "  else       { ncl::lookup(t, b, y); } }"
    )
    on = compile_netcl(src, 1, options=PassOptions(lookup_duplication=True))
    off = compile_netcl(src, 1, options=PassOptions(lookup_duplication=False))
    dup_tables = [g for g in on.module.globals if ".dup" in g]
    rows = [
        ["duplication on", on.report.stages_used, f"{on.report.sram_pct:.2f}%", len(dup_tables)],
        ["duplication off", off.report.stages_used, f"{off.report.sram_pct:.2f}%", 0],
    ]
    print_table(
        "Ablation: lookup duplication", ["config", "stages", "sram", "copies"], rows
    )
    assert len(dup_tables) == 2
    assert on.report.sram_pct >= off.report.sram_pct


def test_ablation_intrinsic_conversion():
    """icmp -> sub+MSB conversion changes instruction mix, not behavior."""
    from repro.ir import GlobalState, IRInterpreter, KernelMessage

    src = "_kernel(1) void k(unsigned a, unsigned b, unsigned &r) { r = a < b ? a : b; }"
    results = {}
    for flag in (True, False):
        cp = compile_netcl(src, 1, options=PassOptions(intrinsic_conversion=flag))
        fn = cp.kernels()[0]
        msg = KernelMessage({"a": 7, "b": 3, "r": 0})
        IRInterpreter(cp.module, GlobalState()).run_kernel(fn, msg)
        results[flag] = (msg.fields["r"], cp.report.stages_used)
    rows = [[f"conversion {k}", v[0], v[1]] for k, v in results.items()]
    print_table("Ablation: intrinsic conversion", ["config", "min(7,3)", "stages"], rows)
    assert results[True][0] == results[False][0] == 3


def test_ablation_distance_threshold():
    """The §VI-B distance check rejects spread-out exclusive accesses."""
    from repro.lang.errors import CompileError
    from repro.passes.memcheck import MemoryCheckError

    src = (
        "_net_ int m[4];\n"
        "_kernel(1) void k(int a, int b, int c, int &r) {\n"
        "  if (a > 0) { r = m[0]; }\n"
        "  else if (ncl::crc16(b) > ncl::crc16(c)) {\n"
        "    if (ncl::crc32<16>(b) > ncl::crc16(c)) { r = m[1]; } } }"
    )
    strict = PassOptions(distance_threshold=0)
    with pytest.raises((MemoryCheckError, CompileError)):
        compile_netcl(src, 1, options=strict)
    relaxed = compile_netcl(src, 1, options=PassOptions(distance_threshold=8))
    assert relaxed.report is not None
    # the paper's apps all pass at the default threshold
    assert compile_netcl(netcl_source("cache"), 1, program_name="cache").report
