"""Collective goodput — in-network tree vs host ring (ISSUE 9 tentpole).

Goodput = reduced tensor elements per second per worker, measured from
the slowest rank's finish time on a lossless fabric (loss sweeps live in
the chaos scenario; this series isolates protocol efficiency).  Three
sweeps land in ``BENCH_collective.json``:

* workers per rack at 2 racks (4 and 8 workers total),
* rack count at 2 workers each (flat vs deeper trees),
* window size (slot parallelism vs per-slot serialization).

``speedup_time`` / ``speedup_bytes`` compare the 2-rack 8-worker
in-network allreduce against the host ring running over its reliable
transport on the same fabric shape: wall-clock (simulated) and total
link bytes, both higher-is-better for the tree.
"""

from __future__ import annotations

import random

from benchmarks.conftest import print_table
from repro.collective import build_collective_cluster, run_host_ring

ELEMENTS = 2048


def _tensors(num_workers: int, seed: int = 3) -> list[list[float]]:
    rng = random.Random(seed)
    return [
        [rng.uniform(-50.0, 50.0) for _ in range(ELEMENTS)]
        for _ in range(num_workers)
    ]


def run_tree(num_racks: int, workers_per_rack: int, window: int = 8):
    """Returns (goodput Melem/s/worker, finished_at_ns, link_bytes)."""
    cluster = build_collective_cluster(num_racks, workers_per_rack, window=window)
    n = num_racks * workers_per_rack
    cluster.submit("allreduce", _tensors(n))
    cluster.run(until_ms=2000, require_done=True)
    finish = max(w.finished_at_ns for w in cluster.workers)
    goodput = ELEMENTS / (finish / 1e9) / 1e6
    return goodput, finish, cluster.link_bytes()


def test_goodput_vs_workers(bench_metrics):
    rows = []
    for wpr in (2, 3, 4):
        goodput, _, _ = run_tree(2, wpr)
        bench_metrics(f"goodput_melems_2r_{2 * wpr}w", round(goodput, 3))
        rows.append([2 * wpr, f"{goodput:.2f}"])
    print_table(
        "Collective goodput vs workers (2 racks, M elements/s/worker)",
        ["workers", "goodput"], rows,
    )
    # The switch aggregates at line rate: per-worker goodput must not
    # collapse as workers are added (same claim as Fig. 14 for AGG).
    base = float(rows[0][1])
    assert float(rows[-1][1]) > 0.7 * base, rows


def test_goodput_vs_racks(bench_metrics):
    rows = []
    for racks in (2, 3, 4):
        goodput, _, _ = run_tree(racks, 2)
        bench_metrics(f"goodput_melems_{racks}r_2wpr", round(goodput, 3))
        rows.append([racks, f"{goodput:.2f}"])
    print_table(
        "Collective goodput vs racks (2 workers/rack, M elements/s/worker)",
        ["racks", "goodput"], rows,
    )
    # One extra tree level (leaf -> root) costs latency per chunk but the
    # window pipelines it: deeper trees must stay within 2x of the flat one.
    assert float(rows[-1][1]) > 0.5 * float(rows[0][1]), rows


def test_goodput_vs_window(bench_metrics):
    rows = []
    series = {}
    for window in (2, 8, 32):
        goodput, _, _ = run_tree(2, 2, window=window)
        series[window] = goodput
        bench_metrics(f"goodput_melems_window{window}", round(goodput, 3))
        rows.append([window, f"{goodput:.2f}"])
    print_table(
        "Collective goodput vs window (2x2, M elements/s/worker)",
        ["window", "goodput"], rows,
    )
    # More in-flight slots must help: the wide window beats the narrow one.
    assert series[32] > series[2], series


def test_innetwork_vs_host_ring_speedup(bench_metrics):
    """The flagship comparison: 2 racks x 4 workers, in-network tree vs
    host ring over its reliable transport, identical tensors."""
    tensors = _tensors(8)
    # Wide window: the tree is latency-bound below ~32 in-flight slots
    # (see the window sweep), the ring pipelines its whole shard anyway.
    _, tree_ns, tree_bytes = run_tree(2, 4, window=32)
    ring = run_host_ring(2, 4, tensors)
    speedup_time = ring.finished_at_ns / tree_ns
    speedup_bytes = ring.link_bytes / tree_bytes
    bench_metrics("speedup_time", round(speedup_time, 2))
    bench_metrics("speedup_bytes", round(speedup_bytes, 2))
    bench_metrics("tree_link_bytes", tree_bytes)
    bench_metrics("ring_link_bytes", ring.link_bytes)
    print_table(
        "In-network tree vs host ring (2 racks x 4 workers)",
        ["metric", "tree", "ring", "speedup"],
        [
            ["finish (us)", f"{tree_ns / 1e3:.0f}", f"{ring.finished_at_ns / 1e3:.0f}",
             f"{speedup_time:.2f}x"],
            ["link bytes", f"{tree_bytes:,}", f"{ring.link_bytes:,}",
             f"{speedup_bytes:.2f}x"],
        ],
    )
    # The point of in-network reduction: strictly less traffic than the
    # ring, and no slower end to end.
    assert speedup_bytes > 1.0, (tree_bytes, ring.link_bytes)
    assert speedup_time > 1.0, (tree_ns, ring.finished_at_ns)
