"""Fig. 12 — breakdown of P4 code across constructs.

Paper: on average over 65% of P4 code is packet-processing constructs
(headers, parsers, MATs) with ~30% on header definitions + parsing alone;
RegisterActions ~13% of stateful apps; only ~10% is imperative control
logic; roughly half the code is non-compute plumbing.
"""

from __future__ import annotations

from collections import Counter

from benchmarks.conftest import PAPER_APPS, print_table
from repro.apps import p4_source
from repro.p4.loc import LineCategory, breakdown_fractions, classify_lines


def breakdown():
    per_app = {}
    total = Counter()
    for name in PAPER_APPS:
        counts = classify_lines(p4_source(name))
        per_app[name] = counts
        total += counts
    return per_app, total


def test_fig12_breakdown(benchmark):
    per_app, total = benchmark(breakdown)
    cats = [c for c in LineCategory]
    rows = []
    for name, counts in per_app.items():
        n = sum(counts.values())
        rows.append([name] + [f"{100*counts.get(c,0)/n:.0f}%" for c in cats])
    print_table("Fig. 12: P4 construct breakdown", ["app"] + [c.value for c in cats], rows)

    frac = breakdown_fractions(total)
    print(
        f"  aggregate: packet-processing {100*frac['packet_processing']:.1f}% "
        f"(paper >65% incl. plumbing), headers+parser "
        f"{100*(frac['headers']+frac['parser']):.1f}% (paper ~30%), "
        f"register externs {100*frac['register']:.1f}% (paper ~13%), "
        f"apply control logic {100*frac['control']:.1f}% (paper ~10%)"
    )

    # Headers + parsing form a major share (paper: ~30%).
    assert frac["headers"] + frac["parser"] > 0.18
    # Non-compute plumbing (packet processing + other) is about half or more.
    assert frac["packet_processing"] + frac["other"] > 0.40
    # Imperative apply logic is a small minority (paper ~10%).
    assert frac["control"] < 0.30
    # Register/extern code is substantial in the stateful apps.
    stateful = ["agg", "cache", "paxos_acceptor", "paxos_learner"]
    reg_share = sum(per_app[a].get(LineCategory.REGISTER, 0) for a in stateful) / sum(
        sum(per_app[a].values()) for a in stateful
    )
    assert reg_share > 0.08
