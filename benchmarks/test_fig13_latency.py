"""Fig. 13 — worst-case per-packet device latency.

Paper: NetCL-generated programs are within ~9% of handwritten P4 on
average; all differences are tens of cycles; every program stays well
below 1 microsecond; CACHE shows no meaningful difference.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.apps import compile_app, p4_source
from repro.p4 import parse_p4, p4_to_pipeline_spec
from repro.p4.resources import p4_local_bits
from repro.tofino.report import build_report

PAIRS = [("agg", 1, "agg", "AGG"), ("cache", 1, "cache", "CACHE"),
         ("paxos", 2, "paxos_acceptor", "PACC"),
         ("paxos", 5, "paxos_learner", "PLRN"),
         ("paxos", 1, "paxos_leader", "PLDR"), ("calc", 1, "calc", "CALC")]


@pytest.fixture(scope="module")
def latencies():
    out = []
    for app, dev, p4name, label in PAIRS:
        gen_ns = compile_app(app, dev).report.latency.total_ns
        prog = parse_p4(p4_source(p4name))
        hand_ns = build_report(
            p4_to_pipeline_spec(prog, name=p4name),
            local_fields=[p4_local_bits(prog)],
        ).latency.total_ns
        out.append((label, gen_ns, hand_ns))
    return out


def test_fig13_device_latency(benchmark, latencies):
    benchmark(lambda: latencies)
    print_table(
        "Fig. 13: worst-case per-packet latency (ns, no egress bypass)",
        ["program", "NetCL", "handwritten P4", "ratio"],
        [[l, f"{g:.0f}", f"{h:.0f}", f"{g/h:.3f}"] for l, g, h in latencies],
    )
    ratios = []
    for label, gen_ns, hand_ns in latencies:
        # Everything stays well below 1 us.
        assert gen_ns < 1000 and hand_ns < 1000, label
        ratios.append(gen_ns / hand_ns)
    avg_overhead = sum(ratios) / len(ratios) - 1.0
    print(f"  average NetCL latency overhead: {100*avg_overhead:+.1f}% (paper: within 9%)")
    # Paper: within ~9% on average; give the simulated substrate 2x slack.
    assert abs(avg_overhead) < 0.20
    # Per-program differences stay bounded (tens of cycles at 1 GHz).
    for label, gen_ns, hand_ns in latencies:
        assert abs(gen_ns - hand_ns) < 150, (label, gen_ns, hand_ns)
