"""Fig. 14 (left) — end-to-end AGG throughput.

Paper: aggregated tensor elements per second *per worker* for 2, 4, and 6
workers; no difference between NetCL and handwritten P4, and adding
workers does not degrade per-worker throughput (the switch aggregates at
line rate).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.apps.agg import build_agg_cluster, expected_sum

TENSOR = 2048  # elements per worker per run
WORKER_COUNTS = (2, 4, 6)


def run_one(num_workers: int, backend: str) -> float:
    """Returns aggregated tensor elements / second / worker (millions)."""
    cluster = build_agg_cluster(
        num_workers=num_workers,
        tensor_elements=TENSOR,
        backend=backend,
        window=32,
    )
    cluster.run(until_ms=2000, require_done=True)
    exp = expected_sum(cluster)
    for w in cluster.workers:
        assert w.result == exp, "aggregation result mismatch"
    finish = max(w.stats.finished_at_ns for w in cluster.workers)
    ate_per_worker = TENSOR / (finish / 1e9)
    return ate_per_worker / 1e6  # MATE/s/worker


@pytest.fixture(scope="module")
def sweep():
    return {
        backend: {n: run_one(n, backend) for n in WORKER_COUNTS}
        for backend in ("netcl", "p4")
    }


def test_fig14_agg_throughput(benchmark, sweep, bench_metrics):
    benchmark.pedantic(run_one, args=(2, "netcl"), rounds=1, iterations=1)
    for backend in ("netcl", "p4"):
        for n in WORKER_COUNTS:
            bench_metrics(f"mate_per_worker_{backend}_{n}w", sweep[backend][n])
    rows = [
        [n, f"{sweep['netcl'][n]:.2f}", f"{sweep['p4'][n]:.2f}"]
        for n in WORKER_COUNTS
    ]
    print_table(
        "Fig. 14 (left): AGG throughput (M aggregated tensor elements/s/worker)",
        ["workers", "NetCL", "handwritten P4"],
        rows,
    )
    for n in WORKER_COUNTS:
        ncl, p4 = sweep["netcl"][n], sweep["p4"][n]
        # NetCL == handwritten P4 (identical host program and device
        # behavior; only the device implementation differs).
        assert abs(ncl - p4) / p4 < 0.05, (n, ncl, p4)
    # Per-worker throughput must not degrade with more workers (paper:
    # "adding more workers does not degrade per-worker throughput").
    base = sweep["netcl"][2]
    for n in WORKER_COUNTS[1:]:
        assert sweep["netcl"][n] > 0.85 * base, (n, sweep["netcl"][n], base)


def test_agg_throughput_survives_loss(bench_metrics):
    """Reliability does not collapse throughput (slots retransmit).

    Loss and recovery accounting comes from the telemetry layer: the
    network's loss counters say how many packets the links ate, and the
    device's kernel counters say how much extra work retransmission cost.
    """
    lossy_cluster = build_agg_cluster(
        num_workers=2, tensor_elements=512, backend="netcl",
        window=16, loss_probability=0.05,
    )
    lossy_cluster.run(until_ms=3000, require_done=True)
    exp = expected_sum(lossy_cluster)
    for w in lossy_cluster.workers:
        assert w.result == exp
    net = lossy_cluster.network
    lost = net.metrics.value("net.lost")
    assert lost > 0, "loss injection produced no losses"
    # per-link loss counters decompose the total
    assert net.metrics.total("link.lost.") == lost
    # the switch saw more dispatches than the loss-free packet count:
    # retransmissions made up for the losses
    dispatches = lossy_cluster.device.metrics.value("kernel.dispatches")
    chunks = (512 + 31) // 32
    assert dispatches > 2 * chunks  # 2 workers x 16 chunks minimum
    # kernel drops are the protocol (first packet of each pair is absorbed
    # into the aggregation), one per completed chunk at minimum
    assert net.metrics.value("net.drop.kernel") >= chunks
    bench_metrics("lossy_packets_lost", lost)
    bench_metrics("lossy_kernel_dispatches", dispatches)
