"""Fig. 14 (right) — mean CACHE response time vs number of cached keys.

Paper: with a fixed query workload, response time falls as more of the
queried keys live in the switch cache; all-miss sits around 26-27 us and
all-hit around 9.1-9.4 us; NetCL and handwritten P4 are equivalent (the
small residual difference is host-side packet processing).
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import print_table
from repro.apps.cache import GET_REQ, VALUE_WORDS, build_cache_cluster

TOTAL_KEYS = 64
QUERIES = 256
CACHED_SWEEP = (0, 16, 32, 48, 64)


def run_one(cached_keys: int, backend: str) -> float:
    """Mean GET response time (us) with ``cached_keys`` of 64 keys cached."""
    cluster = build_cache_cluster(backend=backend)
    rng = random.Random(3)
    for key in range(1, TOTAL_KEYS + 1):
        value = [key * 10 + i for i in range(VALUE_WORDS)]
        cluster.server.store[key] = value
        if key <= cached_keys:
            cluster.controller.install(key, value)
    for _ in range(QUERIES):
        key = rng.randrange(1, TOTAL_KEYS + 1)
        cluster.client.query(GET_REQ, key)
        cluster.network.sim.run()  # closed loop: one query at a time
    done = cluster.client.completed
    assert len(done) == QUERIES
    # correctness: cached answers match the store
    for rec in done:
        assert rec.value is not None
        assert rec.value == cluster.server.store[rec.key], rec.key
    return cluster.client.mean_latency_us()


@pytest.fixture(scope="module")
def sweep():
    return {
        backend: {c: run_one(c, backend) for c in CACHED_SWEEP}
        for backend in ("netcl", "p4")
    }


def test_fig14_cache_response_time(benchmark, sweep, bench_metrics):
    benchmark.pedantic(run_one, args=(0, "netcl"), rounds=1, iterations=1)
    for backend in ("netcl", "p4"):
        for c in CACHED_SWEEP:
            bench_metrics(f"mean_latency_us_{backend}_{c}cached", sweep[backend][c])
    rows = [
        [c, f"{sweep['netcl'][c]:.2f}", f"{sweep['p4'][c]:.2f}"]
        for c in CACHED_SWEEP
    ]
    print_table(
        "Fig. 14 (right): mean CACHE response time (us) vs cached keys",
        ["cached keys", "NetCL", "handwritten P4"],
        rows,
    )
    ncl = sweep["netcl"]
    # Monotonic: more cached keys -> lower mean response time.
    values = [ncl[c] for c in CACHED_SWEEP]
    assert all(a >= b - 0.2 for a, b in zip(values, values[1:])), values
    # All-miss ~26-27 us, all-hit ~9 us in the paper: check the regime and
    # the ~3x hit/miss ratio.
    assert 18.0 <= ncl[0] <= 36.0, ncl[0]
    assert 6.0 <= ncl[TOTAL_KEYS] <= 14.0, ncl[TOTAL_KEYS]
    assert ncl[0] / ncl[TOTAL_KEYS] > 2.0
    # NetCL ~= handwritten P4 at every point.
    for c in CACHED_SWEEP:
        a, b = sweep["netcl"][c], sweep["p4"][c]
        assert abs(a - b) / b < 0.08, (c, a, b)


def test_cache_hit_counters_match_client_tally(bench_metrics):
    """The device's telemetry counters agree with the client-side hit tally.

    Hits exit the kernel via ``ncl::reflect()``; misses pass through to
    the server — so ``kernel.action.reflect`` *is* the cache hit counter,
    straight from the telemetry layer rather than a hand-rolled count.
    """
    cached = 32
    cluster = build_cache_cluster(backend="netcl")
    rng = random.Random(3)
    for key in range(1, TOTAL_KEYS + 1):
        value = [key * 10 + i for i in range(VALUE_WORDS)]
        cluster.server.store[key] = value
        if key <= cached:
            cluster.controller.install(key, value)
    for _ in range(QUERIES):
        key = rng.randrange(1, TOTAL_KEYS + 1)
        cluster.client.query(GET_REQ, key)
        cluster.network.sim.run()
    client_hits = sum(1 for r in cluster.client.completed if r.served_by_cache)
    m = cluster.device.metrics
    assert m.value("kernel.action.reflect") == client_hits
    assert m.value("kernel.dispatches") >= QUERIES
    assert 0 < client_hits < QUERIES
    # managed-memory telemetry saw the controller's installs
    assert m.value("managed.writes") > 0
    bench_metrics("hit_rate_32cached", client_hits / QUERIES)


def test_hot_key_reporting_end_to_end():
    """Misses of a popular key eventually carry the hot mark to the server."""
    cluster = build_cache_cluster(hot_thresh=16)
    cluster.server.store[7] = [1] * VALUE_WORDS
    for _ in range(40):
        cluster.client.query(GET_REQ, 7)
        cluster.network.sim.run()
    assert 7 in cluster.server.hot_reports
    # the Bloom filter suppresses repeated reports
    assert cluster.server.hot_reports.count(7) <= 3
