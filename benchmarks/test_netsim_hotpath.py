"""Simulator hot-path throughput (ISSUE 7 tentpole tracking).

Measures what every end-to-end number in the bench trajectory is gated
on: the pure `repro.netsim` forwarding path.  Three series land in
``BENCH_netsim.json`` (written directly, so the CI regression gate can
compare against the committed baseline within the same job):

* ``packets_per_sec`` / ``events_per_sec`` — a no-op transit storm on
  the Fig. 14 AGG topology (worker -> ToR switch -> worker) with tracing
  disabled and no application handler on the sink: nothing but the
  scheduler, links, and the device's no-op dispatch.
* ``route_rebuilds`` under crash/restart/flap churn — the incremental
  route cache must recompute a handful of sources, not all pairs.
* ``agg_e2e_wall_s`` — the full AGG run (kernel interpreter included)
  as a secondary, end-to-end sanity series.

``pre_overhaul_packets_per_sec`` is the same storm measured on the
pre-overhaul simulator (commit b881573, same host) — the denominator of
``speedup_vs_pre_overhaul``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.apps.agg import build_agg_cluster
from repro.netsim import DEVICE, HOST, Link, Network
from repro.runtime.message import NO_DEVICE, NetCLPacket

#: no-op storm packets/sec on the pre-overhaul simulator (see docstring).
PRE_OVERHAUL_PPS = 34_093

STORM_PACKETS = 20_000
REPEATS = 3


def _storm_once() -> tuple[float, float, int]:
    cluster = build_agg_cluster(num_workers=2, tensor_elements=2048)
    net = cluster.network
    assert not net.tracer.enabled
    h1 = net.hosts[1]
    net.hosts[2].on_receive = None  # pure forwarding path, no app decode
    payload = bytes(64)
    t = 0
    for _ in range(STORM_PACKETS):
        pkt = NetCLPacket(1, 2, NO_DEVICE, NO_DEVICE, 0, 0, payload)
        h1.send_packet(pkt, delay_ns=t)
        t += 100
    t0 = time.perf_counter()
    net.sim.run()
    wall = time.perf_counter() - t0
    assert len(net.hosts[2].received) == STORM_PACKETS
    return STORM_PACKETS / wall, net.sim.events_processed / wall, net.route_rebuilds


def test_noop_forwarding_storm():
    best_pps, best_eps = 0.0, 0.0
    for _ in range(REPEATS):
        pps, eps, rebuilds = _storm_once()
        best_pps, best_eps = max(best_pps, pps), max(best_eps, eps)
        # steady traffic on a static topology: 3 forwarding sources, each
        # computed exactly once
        assert rebuilds <= 4
    _record(
        packets_per_sec=round(best_pps),
        events_per_sec=round(best_eps),
        pre_overhaul_packets_per_sec=PRE_OVERHAUL_PPS,
        speedup_vs_pre_overhaul=round(best_pps / PRE_OVERHAUL_PPS, 2),
    )
    print(
        f"\nno-op storm: {best_pps:,.0f} pkts/s, {best_eps:,.0f} events/s "
        f"({best_pps / PRE_OVERHAUL_PPS:.2f}x pre-overhaul)"
    )


def test_route_churn_rebuild_count():
    """Crash/restart/flap churn with live traffic: the per-source cache
    recomputes only what the churn actually touched."""
    from repro.core import compile_netcl
    from repro.runtime import KernelSpec, Message, NetCLDevice

    cp = compile_netcl("_kernel(1) void k(unsigned x) { }", 1)
    cp2 = compile_netcl("_kernel(1) _at(2) void k(unsigned x) { }", 2)
    net = Network(seed=7)
    net.add_switch(NetCLDevice(1, cp.module, cp.kernels()))
    net.add_switch(NetCLDevice(2, cp2.module, cp2.kernels()))
    spec = KernelSpec.from_kernel(cp.kernels()[0])
    hosts = []
    for h in range(1, 9):
        hosts.append(net.add_host(h))
        net.link(HOST(h), DEVICE(1), Link(latency_ns=500))
        net.link(HOST(h), DEVICE(2), Link(latency_ns=500))
    net.link(DEVICE(1), DEVICE(2))

    t = 0
    for round_ in range(40):
        for i, h in enumerate(hosts):
            dst = (i + 1) % len(hosts) + 1
            h.send_message(
                Message(src=h.host_id, dst=dst, comp=1, to=1), spec, [round_],
                delay_ns=t,
            )
        t += 50_000
    # churn: flap one link, crash + restart the standby, every ~400 us
    for k in range(5):
        base = 200_000 + k * 400_000
        net.sim.at(base, net.set_link_up, HOST(1), DEVICE(2), False)
        net.sim.at(base + 100_000, net.set_link_up, HOST(1), DEVICE(2), True)
        net.sim.at(base + 200_000, net.crash_switch, 2)
        net.sim.at(base + 300_000, net.restart_switch, 2)
    net.sim.run()

    n_sources = len(net.graph)
    _record(
        churn_route_rebuilds=net.route_rebuilds,
        churn_route_invalidations=net.route_invalidations,
        churn_nodes=n_sources,
    )
    # The old simulator recomputed every source on every one of the 20
    # churn events (plus the initial build): >= 21 * nodes rebuilds.
    assert net.route_rebuilds < 21 * n_sources
    print(
        f"\nchurn: {net.route_rebuilds} single-source rebuilds, "
        f"{net.route_invalidations} invalidations "
        f"(all-pairs would be {21 * n_sources}+)"
    )


def test_agg_end_to_end():
    cluster = build_agg_cluster(num_workers=2, tensor_elements=2048, window=32)
    t0 = time.perf_counter()
    cluster.run(until_ms=2000)
    wall = time.perf_counter() - t0
    cluster.require_done()
    net = cluster.network
    _record(
        agg_e2e_wall_s=round(wall, 3),
        agg_e2e_events=net.sim.events_processed,
    )


def _record(**metrics) -> None:
    """Merge metrics into BENCH_netsim.json at the repo root."""
    path = Path(__file__).resolve().parent.parent / "BENCH_netsim.json"
    data = {}
    if path.exists():
        data = json.loads(path.read_text())
    data.update(metrics)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
