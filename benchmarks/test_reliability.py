"""Reliability under loss — goodput and recovery cost vs loss rate.

The paper's testbed is lossless, so this benchmark characterizes our
reliability extension rather than a paper figure: a pipelined
request/response workload over a reliable channel, swept across link
loss rates.  Claims checked:

* every request eventually completes at every swept loss rate
  (at-most-once, ACK/retransmit recovery);
* goodput degrades as loss grows — lost packets cost backoff time —
  and the retransmission overhead grows with the loss rate;
* the lossless run retransmits (essentially) nothing.

Results land in ``BENCH_reliability.json``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.chaos import LinkFaults, apply_faults
from repro.core import compile_netcl
from repro.netsim import DEVICE, HOST, Link, Network
from repro.reliability import BackoffPolicy, ReliableChannel, ReliableNetCLDevice
from repro.runtime import KernelSpec

ECHO = "_kernel(1) void k(unsigned x, unsigned &y) { y = x + 1; return ncl::reflect(); }"

REQUESTS = 200
WINDOW = 8
LOSS_SWEEP = (0.0, 0.01, 0.05, 0.10, 0.20)


def run_one(loss: float, *, seed: int = 7) -> dict:
    """Run REQUESTS echo exchanges with WINDOW outstanding; returns stats."""
    cp = compile_netcl(ECHO, 1)
    dev = ReliableNetCLDevice(1, cp.module, cp.kernels())
    net = Network(seed=seed, metrics=dev.metrics)
    net.add_switch(dev, processing_ns=400)
    host = net.add_host(1)
    net.link(HOST(1), DEVICE(1), Link(latency_ns=1000))
    if loss > 0:
        apply_faults(LinkFaults(loss=loss), net)

    spec = KernelSpec.from_kernel(cp.kernels()[0])
    state = {"sent": 0, "done": 0, "last_done_ns": 0}
    ch = ReliableChannel(
        net, host, spec, target_device=1,
        policy=BackoffPolicy(base_timeout_ns=100_000, max_retries=20),
    )

    def pump(_seq: int = 0) -> None:
        if _seq != 0:
            state["done"] += 1
            state["last_done_ns"] = net.sim.now_ns
        while state["sent"] < REQUESTS and ch.outstanding < WINDOW:
            state["sent"] += 1
            ch.request([state["sent"], 0], dst=1, on_complete=pump)

    pump()
    net.sim.run(until_ns=2_000_000_000)
    m = net.metrics
    elapsed_us = state["last_done_ns"] / 1e3
    return {
        "completed": state["done"],
        "goodput_rps_per_us": state["done"] / elapsed_us,
        "retransmits": m.total("reliability.ch.retransmits.h1"),
        "dup_drops": m.total("reliability.dup_drops"),
        "elapsed_us": elapsed_us,
    }


@pytest.fixture(scope="module")
def sweep():
    return {loss: run_one(loss) for loss in LOSS_SWEEP}


def test_reliability_goodput_vs_loss(benchmark, sweep, bench_metrics):
    benchmark.pedantic(run_one, args=(0.05,), rounds=1, iterations=1)
    for loss, r in sweep.items():
        tag = f"loss{int(loss * 100):02d}"
        bench_metrics(f"goodput_rps_per_us_{tag}", round(r["goodput_rps_per_us"], 5))
        bench_metrics(f"retransmits_{tag}", r["retransmits"])
        bench_metrics(f"elapsed_us_{tag}", round(r["elapsed_us"], 1))
    rows = [
        [f"{loss:.0%}", r["completed"], r["retransmits"],
         f"{r['elapsed_us']:.0f}", f"{r['goodput_rps_per_us']:.4f}"]
        for loss, r in sweep.items()
    ]
    print_table(
        "Reliable echo: goodput vs loss rate",
        ["loss", "completed", "retransmits", "elapsed_us", "goodput/us"],
        rows,
    )
    # every request completes at every loss rate
    for loss, r in sweep.items():
        assert r["completed"] == REQUESTS, f"incomplete at loss={loss}"
    # lossless run needs no recovery; recovery cost grows with loss
    assert sweep[0.0]["retransmits"] == 0
    assert sweep[0.20]["retransmits"] > sweep[0.01]["retransmits"]
    # loss costs goodput: lossless beats the heaviest loss clearly
    assert sweep[0.0]["goodput_rps_per_us"] > 1.5 * sweep[0.20]["goodput_rps_per_us"]
