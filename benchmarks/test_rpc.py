"""RPC scatter-gather — in-network merge vs host fan-out (ISSUE 10).

The claim under test: once a reply must be gathered from N replicas, an
on-path merge beats the host doing its own fan-out — the client sends
ONE request and receives ONE merged reply regardless of N, while the
host baseline pays N requests and N replies through its single-core
packet path.  Both sides run the same reliable transport, the same
serialized per-packet host overhead, and compute bit-identical results
(``compare_gather`` raises if they ever diverge).

Three sweeps land in ``BENCH_rpc.json``:

* replica count (N = 2, 4, 8, 16) on a clean fabric — ``speedup_time`` /
  ``speedup_bytes`` must both exceed 1.0 from N >= 4;
* the same comparison under 2% loss (retransmissions included);
* unary memoization: the ToR-served (hit) latency vs the full
  client -> server round trip (miss).
"""

from __future__ import annotations

from benchmarks.conftest import print_table
from repro.chaos.plan import LinkFaults
from repro.rpc import build_rpc_cluster, compare_gather
from repro.rpc.scenarios import GetReq, scenario_handlers, scenario_schema

SEED = 7


def test_gather_speedup_vs_replicas(bench_metrics):
    rows = []
    for n in (2, 4, 8, 16):
        cmp = compare_gather(
            SEED, num_racks=2, servers_per_rack=n // 2, num_calls=32
        )
        assert cmp.match, f"N={n}: merged replies diverged from host fan-out"
        bench_metrics(f"speedup_time_n{n}", round(cmp.speedup_time, 3))
        bench_metrics(f"speedup_bytes_n{n}", round(cmp.speedup_bytes, 3))
        rows.append(
            [n, f"{cmp.speedup_time:.2f}x", f"{cmp.speedup_bytes:.2f}x",
             cmp.innetwork_bytes, cmp.host_bytes]
        )
        if n >= 4:
            # The acceptance claim: fewer bytes AND faster from N >= 4.
            assert cmp.speedup_time > 1.0, rows
            assert cmp.speedup_bytes > 1.0, rows
    print_table(
        "Scatter-gather: in-network merge vs host fan-out (32 calls)",
        ["replicas", "time", "bytes", "net B", "host B"], rows,
    )
    # The win must grow with the fan-out: the in-network client cost is
    # O(1) per call while the host baseline's is O(N).
    times = [float(r[1][:-1]) for r in rows]
    assert times[-1] > times[1], rows


def test_gather_speedup_survives_loss(bench_metrics):
    cmp = compare_gather(
        SEED,
        num_racks=2,
        servers_per_rack=4,
        num_calls=32,
        faults=LinkFaults(loss=0.02),
    )
    assert cmp.match
    bench_metrics("lossy_speedup_time_n8", round(cmp.speedup_time, 3))
    bench_metrics("lossy_speedup_bytes_n8", round(cmp.speedup_bytes, 3))
    # Loss costs the in-network path re-scatters (partially suppressed
    # by the spine's bitmap piggyback); it must still move fewer bytes
    # and finish no slower than the host fan-out under the same faults.
    assert cmp.speedup_bytes > 1.0
    assert cmp.speedup_time > 1.0


def test_memo_hit_beats_server_roundtrip(bench_metrics):
    cluster = build_rpc_cluster(
        scenario_schema(),
        scenario_handlers({}),
        num_racks=2,
        servers_per_rack=2,
        seed=SEED,
    )
    client = cluster.clients[0]
    miss = client.call("get", GetReq(key=6))
    cluster.run(until_ms=5)
    hit = client.call("get", GetReq(key=6))
    cluster.run(until_ms=5)
    assert miss.done and not miss.hit and hit.done and hit.hit
    miss_ns = miss.finished_ns - miss.sent_ns
    hit_ns = hit.finished_ns - hit.sent_ns
    bench_metrics("unary_miss_ns", miss_ns)
    bench_metrics("unary_memo_hit_ns", hit_ns)
    bench_metrics("memo_latency_ratio", round(miss_ns / hit_ns, 3))
    print_table(
        "Unary latency: ToR memo hit vs server round trip",
        ["path", "ns"], [["server miss", miss_ns], ["memo hit", hit_ns]],
    )
    # The memoized reply turns around at the ToR: it must strictly beat
    # the full trip through the ToR to the server host and back.
    assert hit_ns < miss_ns
