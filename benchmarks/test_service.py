"""Multi-tenant service overhead — shared fabric vs dedicated deployments.

The paper deploys one NetCL program at a time (§VIII); the service
extension multiplexes a fabric between tenants.  This benchmark replays
the built-in service workload (AGG + CACHE sharing a 4-switch fabric, an
oversized third tenant rejected, one mid-run switch crash) and records
the control-plane numbers that make the "as-a-Service" claim concrete:

* both admitted tenants finish their full workload on the shared fabric
  even though one of them is live-migrated mid-run;
* admission rejects the oversized tenant instead of degrading the
  admitted ones;
* the fabric runs consolidated: reserved stages land on 2 of 4 switches.

Results land in ``BENCH_service.json``.
"""

from __future__ import annotations

from benchmarks.conftest import print_table
from repro.service import default_service_plan, run_service_plan

SEED = 7


def test_shared_fabric_service_workload(bench_metrics):
    result = run_service_plan(default_service_plan(SEED))
    assert result.ok, result.errors

    svc = result.report["service"]
    rows = []
    for tid, rep in sorted(result.report["tenants"].items()):
        outcome = result.tenants.get(tid, {})
        rows.append(
            [
                tid,
                rep["state"],
                f"{outcome.get('completed', 0)}/{outcome.get('expected', 0)}",
                rep["migrations"],
                rep["counters"]["packets"],
            ]
        )
    print_table(
        "multi-tenant service (seed %d)" % SEED,
        ["tenant", "state", "completed", "migrations", "packets"],
        rows,
    )

    # Both admitted tenants finished everything; the third was rejected.
    agg, cache = result.tenants["agg"], result.tenants["cache"]
    assert agg["completed"] == agg["expected"]
    assert cache["completed"] == cache["expected"]
    assert svc["admission_rejects"] == 1
    # The crash forced at least one live migration and the SLO still held.
    assert svc["migrations"] >= 1
    assert result.report["tenants"]["cache"]["slo"]["met"] is True

    used = [
        u["used"]["stages"] for u in result.report["fabric"].values()
    ]
    occupied = sum(1 for s in used if s > 0)
    assert occupied == 2  # consolidated, not smeared over all 4 switches

    bench_metrics("seed", SEED)
    bench_metrics("sim_ms", round(result.sim_ns / 1e6, 3))
    bench_metrics("tenants_active", svc["tenants_active"])
    bench_metrics("admission_rejects", svc["admission_rejects"])
    bench_metrics("migrations", svc["migrations"])
    bench_metrics("ops_replayed", svc["ops_replayed"])
    bench_metrics("agg_completed", agg["completed"])
    bench_metrics("cache_completed", cache["completed"])
    bench_metrics("cache_p99_us", result.report["tenants"]["cache"]["slo"]["observed_p99_us"])
    bench_metrics("occupied_switches", occupied)
    bench_metrics("stages_reserved", sum(used))
