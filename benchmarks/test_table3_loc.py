"""Table III — lines of code: NetCL vs handwritten P4.

Paper: NetCL needs O(10) LoC where P4 needs O(100); average reduction
~12x against the authors' own P4-16 implementations (geomean).
"""

from __future__ import annotations

import math

from benchmarks.conftest import print_table
from repro.apps import NETCL_SOURCES, P4_SOURCES, netcl_source, p4_source
from repro.p4.loc import count_loc

#: NetCL program -> handwritten P4 counterpart(s).  P4xos compares each
#: kernel against its own P4 program; the NetCL side counts the kernel's
#: share of the shared paxos.ncl file.
PAIRS = [
    ("agg", "agg", ["agg"]),
    ("cache", "cache", ["cache"]),
    ("paxos", "paxos", ["paxos_acceptor", "paxos_learner", "paxos_leader"]),
    ("calc", "calc", ["calc"]),
]


def loc_table() -> list[tuple[str, int, int, float]]:
    rows = []
    for label, ncl_name, p4_names in PAIRS:
        ncl = count_loc(netcl_source(ncl_name))
        p4 = sum(count_loc(p4_source(n)) for n in p4_names)
        rows.append((label, ncl, p4, p4 / ncl))
    return rows


def test_table3_loc_reduction(benchmark):
    rows = benchmark(loc_table)
    print_table(
        "Table III: lines of code (NetCL vs handwritten P4)",
        ["app", "NetCL", "P4", "reduction"],
        [[a, n, p, f"{r:.2f}x"] for a, n, p, r in rows],
    )
    reductions = [r for *_ , r in rows]
    geomean = math.exp(sum(math.log(r) for r in reductions) / len(reductions))
    print(f"  GEOMEAN reduction: {geomean:.2f}x (paper: 11.93x vs own P4-16)")

    # Shape assertions (paper: O(10) vs O(100), >= ~5x per app).
    for label, ncl, p4, r in rows:
        assert ncl < 120, f"{label}: NetCL should be O(10) lines, got {ncl}"
        assert p4 > 150, f"{label}: P4 should be O(100) lines, got {p4}"
        assert r >= 3.5, f"{label}: reduction {r:.1f}x below the paper's range"
    assert geomean >= 5.0


def test_table3_per_paxos_role():
    rows = []
    ncl_total = count_loc(netcl_source("paxos"))
    for role in ("paxos_acceptor", "paxos_learner", "paxos_leader"):
        p4 = count_loc(p4_source(role))
        rows.append([role, p4])
        assert p4 > 100
    print_table("Table III (P4xos roles, handwritten P4)", ["role", "P4 LoC"], rows)
    assert ncl_total < 120
