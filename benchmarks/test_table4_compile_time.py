"""Table IV — compilation times.

Paper: ncc always finishes in under one second; over 98% of total NetCL
compile time is spent in the (stand-in for the) P4 compiler; the EMPTY
program compiles fastest.
"""

from __future__ import annotations

import time

from benchmarks.conftest import print_table
from repro.apps import compile_app
from repro.backends.base import empty_program_spec
from repro.tofino.report import build_report

APPS = [("agg", 1), ("cache", 1), ("paxos", 2), ("paxos", 5), ("paxos", 1), ("calc", 1)]
LABELS = ["AGG", "CACHE", "PACC", "PLRN", "PLDR", "CALC"]


def compile_all():
    rows = []
    for (app, dev), label in zip(APPS, LABELS):
        cp = compile_app(app, dev)
        t = cp.timings
        rows.append((label, t.ncc_seconds, t.fitter_seconds, t.total_seconds))
    t0 = time.perf_counter()
    build_report(empty_program_spec())
    rows.append(("EMPTY", 0.0, time.perf_counter() - t0, time.perf_counter() - t0))
    return rows


def test_table4_compile_times(benchmark, bench_metrics):
    rows = benchmark.pedantic(compile_all, rounds=3, iterations=1)
    for label, ncc, fitter, total in rows:
        bench_metrics(f"ncc_seconds_{label}", ncc)
        bench_metrics(f"total_seconds_{label}", total)
    print_table(
        "Table IV: compilation times (seconds)",
        ["program", "ncc", "fitter (bf-p4c stand-in)", "total"],
        [[l, f"{n:.4f}", f"{f:.4f}", f"{t:.4f}"] for l, n, f, t in rows],
    )
    for label, ncc, fitter, total in rows:
        # Paper: "our compiler introduces insignificant overhead, always
        # finishing in less than one second".
        assert ncc < 1.0, f"{label}: ncc took {ncc:.2f}s"
    # AGG (the largest program) must be the slowest app compile.
    by_label = {l: t for l, _, _, t in rows}
    assert by_label["AGG"] >= max(by_label[l] for l in ("PLDR", "CALC"))
    assert by_label["EMPTY"] <= by_label["AGG"]


def test_ncc_single_compile_benchmark(benchmark):
    """Microbenchmark: one full ncc run of the CALC program."""
    result = benchmark(lambda: compile_app("calc", 1))
    assert result.report is not None


def test_ncc_scales_with_unrolled_size():
    """Compile time grows roughly linearly with unrolled kernel size and
    stays far under a second even at 8x the AGG slot width."""
    from repro.core import compile_netcl

    times = {}
    for n in (8, 32, 64):
        body = "\n".join(
            f"  v[{i}] = ncl::atomic_add_new(&m[{i}][idx & 255], v[{i}]);"
            for i in range(n)
        )
        src = (
            f"_net_ unsigned m[{n}][256];\n"
            f"_kernel(1) void k(unsigned idx, unsigned _spec({n}) *v) {{\n"
            f"{body}\n}}"
        )
        cp = compile_netcl(src, 1, fit=False)
        times[n] = cp.timings.ncc_seconds
    print("\nncc seconds by unrolled width:", {k: round(v, 4) for k, v in times.items()})
    assert times[64] < 1.0
    assert times[64] < 60 * times[8] + 0.05  # no pathological blowup
