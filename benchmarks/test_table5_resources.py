"""Table V — Tofino resource utilization: generated vs handwritten P4.

Paper: every program fits a 12-stage Tofino pipe; generated CACHE needs a
few extra stages (the CMS min chain); generated AGG uses *no* TCAM while
the handwritten AGG (following SwitchML) matches worker bits with ternary
MATs; overall the generated code's usage is modest and in line with
handwritten P4.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.apps import compile_app, p4_source
from repro.backends.base import empty_program_spec
from repro.p4 import parse_p4, p4_to_pipeline_spec
from repro.p4.resources import p4_local_bits
from repro.tofino.report import build_report

GENERATED = [("agg", 1, "AGG"), ("cache", 1, "CACHE"), ("paxos", 2, "PACC"),
             ("paxos", 5, "PLRN"), ("paxos", 1, "PLDR"), ("calc", 1, "CALC")]
HANDWRITTEN = [("agg", "AGG"), ("cache", "CACHE"), ("paxos_acceptor", "PACC"),
               ("paxos_learner", "PLRN"), ("paxos_leader", "PLDR"), ("calc", "CALC")]


def collect():
    gen, hand = {}, {}
    for app, dev, label in GENERATED:
        gen[label] = compile_app(app, dev).report
    for name, label in HANDWRITTEN:
        prog = parse_p4(p4_source(name))
        spec = p4_to_pipeline_spec(prog, name=name)
        hand[label] = build_report(spec, local_fields=[p4_local_bits(prog)])
    empty = build_report(empty_program_spec())
    return gen, hand, empty


@pytest.fixture(scope="module")
def reports():
    return collect()


def _rows(reports):
    gen, hand, empty = reports
    rows = []
    for label in ("AGG", "CACHE", "PACC", "PLRN", "PLDR", "CALC"):
        for kind, rep in (("gen", gen[label]), ("hand", hand[label])):
            r = rep.row()
            rows.append(
                [f"{label}/{kind}", r["stages"], r["sram_pct"], r["tcam_pct"],
                 r["salus_pct"], r["vliw_pct"], r["worst_sram_pct"],
                 r["worst_salus_pct"]]
            )
    e = empty.row()
    rows.append(["EMPTY", e["stages"], e["sram_pct"], e["tcam_pct"],
                 e["salus_pct"], e["vliw_pct"], e["worst_sram_pct"], e["worst_salus_pct"]])
    return rows


def test_table5_resources(benchmark, reports):
    benchmark(lambda: build_report(empty_program_spec()))
    print_table(
        "Table V: Tofino resource utilization (pipe totals, % of chip)",
        ["program", "stages", "sram%", "tcam%", "salu%", "vliw%", "worst-sram%", "worst-salu%"],
        _rows(reports),
    )
    gen, hand, empty = reports

    # Everything fits a 12-stage pipe.
    for label, rep in {**{f"g/{k}": v for k, v in gen.items()},
                       **{f"h/{k}": v for k, v in hand.items()}}.items():
        assert rep.stages_used <= 12, label

    # Generated AGG's kernel adds no TCAM beyond the base program, while
    # the handwritten AGG spends TCAM on ternary worker-seen MATs.
    assert gen["AGG"].tcam_pct <= empty.tcam_pct + 0.01
    assert hand["AGG"].tcam_pct > 0

    # Generated CACHE needs a few extra stages vs handwritten (the CMS min
    # chain of subtract+MSB checks, §VII "Resources").
    extra = gen["CACHE"].stages_used - hand["CACHE"].stages_used
    assert 0 <= extra <= 4, f"generated CACHE stage delta {extra}"

    # Overall usage is "modest and in line with handwritten P4": same
    # order of magnitude on pipe totals.
    for label in ("AGG", "CACHE", "PACC", "PLRN", "PLDR", "CALC"):
        g, h = gen[label], hand[label]
        assert g.salus_pct <= max(2 * h.salus_pct, h.salus_pct + 10), label
        assert abs(g.stages_used - h.stages_used) <= 4, label

    # The EMPTY program is the floor every deployment pays.
    assert empty.stages_used <= min(r.stages_used for r in gen.values())
