"""Table VI — local memory and worst-case PHV occupancy.

Paper: NetCL adds PHV pressure through compiler-generated locals and the
shim NetCL header; worst-case occupancy of generated code stays within a
few percent of handwritten code for the large apps, with the biggest
relative increase on the tiny CALC program (whose PHV usage is dominated
by the base program).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.apps import compile_app, p4_source
from repro.p4 import parse_p4, p4_to_pipeline_spec
from repro.p4.resources import p4_local_bits
from repro.tofino.report import build_report

PAIRS = [("agg", 1, "agg", "AGG"), ("cache", 1, "cache", "CACHE"),
         ("paxos", 2, "paxos_acceptor", "PACC"),
         ("paxos", 5, "paxos_learner", "PLRN"),
         ("paxos", 1, "paxos_leader", "PLDR"), ("calc", 1, "calc", "CALC")]


@pytest.fixture(scope="module")
def phv_data():
    out = []
    for app, dev, p4name, label in PAIRS:
        cp = compile_app(app, dev)
        stats = list(cp.codegen.kernel_stats.values())
        kernel_stats = next(
            (s for s in stats if getattr(s, "header_bits", 0) > 0), stats[0]
        )
        prog = parse_p4(p4_source(p4name))
        hand = build_report(
            p4_to_pipeline_spec(prog, name=p4name),
            local_fields=[p4_local_bits(prog)],
        )
        out.append(
            {
                "label": label,
                "gen_ir_allocas": kernel_stats.ir_alloca_bits,
                "gen_locals": kernel_stats.p4_local_bits,
                "gen_headers": kernel_stats.header_bits,
                "gen_phv": cp.report.phv_occupancy_pct,
                "hand_locals": p4_local_bits(prog),
                "hand_phv": hand.phv_occupancy_pct,
            }
        )
    return out


def test_table6_phv(benchmark, phv_data):
    benchmark(lambda: phv_data)
    rows = [
        [d["label"], d["gen_ir_allocas"], d["gen_locals"], d["gen_headers"],
         f"{d['gen_phv']:.1f}%", d["hand_locals"], f"{d['hand_phv']:.1f}%",
         f"{d['gen_phv'] - d['hand_phv']:+.1f}%"]
        for d in phv_data
    ]
    print_table(
        "Table VI: local memory (bits) and worst-case PHV occupancy",
        ["app", "IR allocas", "P4 locals", "arg header", "NetCL PHV",
         "hand locals", "hand PHV", "delta"],
        rows,
    )
    for d in phv_data:
        # NetCL carries the shim header: occupancy should not be lower by
        # much, and the increase stays bounded (paper: within a few percent
        # for the big apps, ~12 points for CALC).
        delta = d["gen_phv"] - d["hand_phv"]
        assert delta > -6.0, d["label"]
        assert delta < 30.0, d["label"]
        assert d["gen_phv"] < 75.0, d["label"]
    # CALC shows one of the largest *relative* increases (base-dominated).
    calc = next(d for d in phv_data if d["label"] == "CALC")
    others = [d for d in phv_data if d["label"] in ("PACC", "PLRN", "PLDR")]
    calc_rel = calc["gen_phv"] / max(calc["hand_phv"], 1)
    assert all(calc_rel >= 0.8 * (d["gen_phv"] / max(d["hand_phv"], 1)) for d in others)
