#!/usr/bin/env python3
"""Hierarchical in-network AllReduce for data-parallel training.

Simulates two racks of workers running synchronous float32 gradient
aggregation through a NetCL-programmed switch tree (``repro.collective``):
each ToR leaf sums its rack's quantized mantissas, the spine root sums
the rack partials and multicasts the total back down.  Gradients are
block-quantized against a negotiated per-chunk max exponent, so every
worker gets a bit-identical result within the published error bound of
the exact float sum.  The run repeats over several "training steps" and
injects packet loss to show slot retransmission recovering.

Run:  python examples/allreduce_training.py
"""

import math
import random

from repro.collective import build_collective_cluster, compile_role, leaf_device
from repro.collective.tree import ROOT_DEVICE

RACKS = 2
WORKERS_PER_RACK = 2
WORKERS = RACKS * WORKERS_PER_RACK


def fake_gradients(step: int, elements: int) -> list[list[float]]:
    rng = random.Random(1000 + step)
    return [
        [rng.gauss(0.0, 0.5) for _ in range(elements)]
        for _ in range(WORKERS)
    ]


def run_step(step: int, elements: int, loss: float) -> None:
    cluster = build_collective_cluster(
        RACKS, WORKERS_PER_RACK, window=32, loss=loss, seed=100 + step
    )
    grads = fake_gradients(step, elements)
    job = cluster.submit("allreduce", grads)
    cluster.run(until_ms=2000, require_done=True)

    exact = [math.fsum(g[i] for g in grads) for i in range(elements)]
    bound = job.max_error_bound()
    worst = 0.0
    for rank in range(WORKERS):
        assert job.results[rank] == job.results[0], "ranks diverged bit-wise!"
        worst = max(
            worst, max(abs(a - b) for a, b in zip(job.results[rank], exact))
        )
    assert worst <= bound, "quantization error bound violated!"

    finish_ms = max(w.finished_at_ns for w in cluster.workers) / 1e6
    retx = sum(w.retransmissions for w in cluster.workers)
    rate = elements / (finish_ms / 1e3) / 1e6
    print(
        f"step {step}: {WORKERS} workers x {elements} grads "
        f"-> {finish_ms:6.2f} ms  ({rate:6.1f} M elements/s/worker, "
        f"{retx} retransmissions, max err {worst:.2e} <= bound {bound:.2e})"
    )


def main() -> None:
    print(f"== {RACKS} racks x {WORKERS_PER_RACK} workers, lossless ==")
    for step in range(3):
        run_step(step, elements=4096, loss=0.0)

    print("\n== 'training' with 1% packet loss (slot retransmission) ==")
    for step in range(3, 6):
        run_step(step, elements=2048, loss=0.01)

    leaf = compile_role(leaf_device(0), rack=0).report
    root = compile_role(ROOT_DEVICE).report
    print(
        f"\nToR leaf program: {leaf.stages_used}/12 stages, "
        f"spine root program: {root.stages_used}/12 stages"
    )


if __name__ == "__main__":
    main()
