#!/usr/bin/env python3
"""In-network AllReduce for data-parallel training (the paper's AGG app).

Simulates a rack of workers running synchronous gradient aggregation
through a NetCL-programmed ToR switch (the SwitchML protocol of Fig. 7):
slots, alternating-bit versioning, retransmission-based reliability, and
max-exponent tracking for quantization.  The run repeats over several
"training steps" and injects packet loss to show the protocol recovering.

Run:  python examples/allreduce_training.py
"""

from repro.apps.agg import build_agg_cluster, expected_sum


def run_step(step: int, workers: int, elements: int, loss: float) -> None:
    cluster = build_agg_cluster(
        num_workers=workers,
        tensor_elements=elements,
        loss_probability=loss,
        window=32,
        seed=100 + step,
    )
    cluster.run(until_ms=2000)
    assert cluster.all_done, "aggregation stalled"
    truth = expected_sum(cluster)
    for w in cluster.workers:
        assert w.result == truth, "worker received a wrong aggregate!"
    finish_ms = max(w.stats.finished_at_ns for w in cluster.workers) / 1e6
    retx = sum(w.stats.retransmissions for w in cluster.workers)
    rate = elements / (finish_ms / 1e3) / 1e6
    print(
        f"step {step}: {workers} workers x {elements} elements  "
        f"-> {finish_ms:7.2f} ms  ({rate:6.1f} M elements/s/worker, "
        f"{retx} retransmissions)"
    )


def main() -> None:
    print("== lossless scaling (per-worker throughput stays flat) ==")
    for workers in (2, 4, 6):
        run_step(0, workers, elements=4096, loss=0.0)

    print("\n== 'training' with 1% packet loss (reliability kicks in) ==")
    for step in range(1, 4):
        run_step(step, workers=4, elements=2048, loss=0.01)

    cluster = build_agg_cluster(num_workers=2, tensor_elements=64)
    report = cluster.compiled.report
    print(
        f"\nswitch program: {report.stages_used}/12 stages, "
        f"{report.salus_pct:.0f}% of the chip's stateful ALUs, "
        f"{report.latency.total_ns:.0f} ns per packet"
    )


if __name__ == "__main__":
    main()
