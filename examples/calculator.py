#!/usr/bin/env python3
"""The P4-tutorial calculator as a NetCL one-pager (the paper's CALC).

A stateless in-network service: the client sends an opcode and two
operands; the switch computes and reflects the answer straight back with
``ncl::reflect_long()`` — the message never reaches another host.

Run:  python examples/calculator.py
"""

from repro.apps.calc import build_calc_cluster


def main() -> None:
    cluster = build_calc_cluster()
    problems = [("+", 40, 2), ("-", 100, 58), ("&", 0b1111, 0b1010),
                ("|", 0b0011, 0b1100), ("^", 0xAA, 0xFF)]
    for op, a, b in problems:
        cluster.client.compute(op, a, b)
    cluster.network.sim.run()
    for (op, a, b), answer in zip(problems, cluster.client.answers):
        print(f"  {a} {op} {b} = {answer}")
    report = cluster.compiled.report  # type: ignore[attr-defined]
    print(
        f"\nswitch program: {report.stages_used} stages, "
        f"{report.latency.total_ns:.0f} ns per packet "
        f"(round trip at switch RTT — the server is never involved)"
    )


if __name__ == "__main__":
    main()
