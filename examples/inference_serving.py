#!/usr/bin/env python3
"""Inference serving on an RPC fabric with switch-side acceleration.

A model serving tier, simulated end to end through ``repro.rpc``: four
shard servers each hold a quarter of a document index, and the switches
do three jobs the application never sees:

* ``embed`` — an idempotent unary method (query -> embedding).  The
  first call runs on a server; the reply is memoized at the ToR, so the
  repeat traffic of popular queries turns around at the switch.
* ``retrieve`` — exact global top-k over all shards in ONE round trip:
  the request is multicast to every shard, each shard packs its local
  top-k candidates as ``(score << 16) | doc_id`` into its own payload
  lane, and the spine max-merges the lanes (zero is the identity, lanes
  are disjoint, so max is union).  The client unpacks the merged lanes
  and keeps the best k overall — bit-identical to sorting the union.
* ``classify`` — majority vote across shard replicas riding the sum
  merge over one-hot class counts.

Run:  python examples/inference_serving.py
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rpc import (
    RpcMethod,
    RpcSchema,
    build_rpc_cluster,
    finish_topk,
    finish_vote,
    one_hot,
    pack_topk,
    u32,
    vec,
)

NUM_SHARDS = 4
TOP_K = 2
EMBED_WORDS = 4
NUM_CLASSES = 4


# -- schema -----------------------------------------------------------------------
@dataclass
class Query:
    qid: u32 = 0


@dataclass
class Embedding:
    v: vec(EMBED_WORDS) = None


@dataclass
class Merged:
    v: vec(8) = None


SCHEMA = RpcSchema(
    [
        RpcMethod("embed", 0, Query, Embedding, kind="unary", idempotent=True),
        RpcMethod("retrieve", 2, Query, Merged, kind="gather", policy="topk"),
        RpcMethod("classify", 3, Query, Merged, kind="gather", policy="vote"),
    ]
)


# -- the "model" ------------------------------------------------------------------
def embedding(qid: int) -> list[int]:
    return [(qid * 2654435761 + i * 97) & 0xFFFFFFFF for i in range(EMBED_WORDS)]


def shard_scores(qid: int, shard: int) -> list[tuple[int, int]]:
    """(score, doc_id) for this shard's slice of the index."""
    return [
        (((qid * 31 + doc * 17 + shard * 7) % 0xFFFE) + 1, shard * 100 + doc)
        for doc in range(8)
    ]


def shard_class(qid: int, shard: int) -> int:
    return (qid + (shard & 1)) % NUM_CLASSES


HANDLERS = {
    "embed": lambda req: Embedding(v=embedding(req.qid)),
    "retrieve": lambda req, shard: pack_topk(
        shard_scores(req.qid, shard), shard, TOP_K, NUM_SHARDS
    ),
    "classify": lambda req, shard: one_hot(shard_class(req.qid, shard), NUM_CLASSES),
}


def exact_topk(qid: int) -> list[tuple[int, int]]:
    every = [s for shard in range(NUM_SHARDS) for s in shard_scores(qid, shard)]
    return sorted(every, reverse=True)[:TOP_K]


def main() -> None:
    cluster = build_rpc_cluster(
        SCHEMA, HANDLERS, num_racks=2, servers_per_rack=2, seed=42
    )
    client = cluster.clients[0]
    m = cluster.network.metrics

    print(f"serving tier: {NUM_SHARDS} shards behind 2 ToRs, one client")

    # Popular queries repeat; the ToR absorbs the repeats.
    workload = [3, 7, 3, 9, 3, 7]
    for qid in workload:
        client.call("embed", Query(qid=qid))
        cluster.run(until_ms=2)
    hits = int(m.total("rpc.client.memo_hits."))
    execs = int(m.total("rpc.server.executions."))
    print(
        f"embed: {len(workload)} calls -> {execs} server executions, "
        f"{hits} answered by the ToR memo"
    )
    assert hits == 3 and execs == 3, (hits, execs)
    for call in client.completed_unary:
        assert list(call.response.v) == embedding(call.request.qid)

    # Exact top-k retrieval in one scatter-gather round trip per query.
    retrievals = [client.gather("retrieve", Query(qid=q)) for q in (11, 12, 13)]
    votes = [client.gather("classify", Query(qid=q)) for q in (11, 12, 13)]
    cluster.run(until_ms=20)
    assert cluster.all_done, cluster.stall_report()
    for call in retrievals:
        top = finish_topk(call.merged, TOP_K)
        assert top == exact_topk(call.request.qid), call.request.qid
        docs = ", ".join(f"doc{d} (score {s})" for s, d in top)
        print(f"retrieve(q={call.request.qid}): top-{TOP_K} = {docs}")
    for call in votes:
        winner, count = finish_vote(call.merged[:NUM_CLASSES])
        print(
            f"classify(q={call.request.qid}): class {winner} "
            f"({count}/{NUM_SHARDS} shards agree)"
        )
        assert count >= NUM_SHARDS // 2

    saved = int(m.total("net.multicast.hops_saved"))
    print(
        f"fabric: {len(retrievals) + len(votes)} gather round trips, "
        f"{saved} unicast hops saved by on-path multicast+merge"
    )
    print("OK")


if __name__ == "__main__":
    main()
