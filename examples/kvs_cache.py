#!/usr/bin/env python3
"""A key-value store accelerated by an in-network cache (NetCache-style).

Shows the full CACHE control loop of §VII:

* clients query the KVS; the switch serves cached GETs at switch RTT;
* misses pass through, run count-min-sketch + Bloom hot-key detection,
  and carry a "hot" mark to the server when a key crosses the threshold;
* a controller reacts to hot reports by installing the key into switch
  cache lines through managed memory (the control plane);
* PUTs invalidate cached lines (write-back policy).

Run:  python examples/kvs_cache.py
"""

import random

from repro.apps.cache import GET_REQ, PUT_REQ, VALUE_WORDS, build_cache_cluster


def main() -> None:
    cluster = build_cache_cluster(hot_thresh=24)
    rng = random.Random(1)

    # Populate the KVS with 128 keys; the switch cache starts empty.
    for key in range(1, 129):
        cluster.server.store[key] = [key * 1000 + i for i in range(VALUE_WORDS)]

    # The controller's reaction to hot-key reports: pull the value from the
    # server and install it into the switch (index MAT + data registers).
    promoted = []

    def on_hot(key: int) -> None:
        cluster.controller.install_from_server(key)
        promoted.append(key)

    cluster.server.on_hot = on_hot

    # A zipf-ish workload: key 7 is wildly popular.
    def next_key() -> int:
        return 7 if rng.random() < 0.5 else rng.randrange(1, 129)

    phases = [("cold", 200), ("after promotion", 200)]
    for label, queries in phases:
        done_before = len(cluster.client.completed)
        for _ in range(queries):
            cluster.client.query(GET_REQ, next_key())
            cluster.network.sim.run()
        window = cluster.client.completed[done_before:]
        hits = sum(1 for r in window if r.served_by_cache)
        mean_us = sum(r.latency_ns for r in window) / len(window) / 1000
        print(
            f"{label:16s}: {queries} GETs, cache hit rate "
            f"{100 * hits / len(window):5.1f}%, mean latency {mean_us:5.1f} us"
        )

    print(f"hot keys promoted by the controller: {promoted}")

    # Writes invalidate: the next read of key 7 goes to the server again.
    cluster.client.query(PUT_REQ, 7, [7] * VALUE_WORDS)
    cluster.network.sim.run()
    cluster.client.query(GET_REQ, 7)
    cluster.network.sim.run()
    last = cluster.client.completed[-1]
    print(
        f"after PUT(7): GET served by "
        f"{'cache' if last.served_by_cache else 'server'} "
        f"with the fresh value {last.value[:2]}..."
    )
    assert not last.served_by_cache and last.value == [7] * VALUE_WORDS


if __name__ == "__main__":
    main()
