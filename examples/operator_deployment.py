#!/usr/bin/env python3
"""The operator's side of NetCL: deploying an application onto a fabric.

The programmer wrote kernels against an *abstract* topology (Fig. 3/§IV);
the network operator owns a real fabric with partially-occupied switches.
`repro.deploy` maps one onto the other: it finds switches with enough
resource headroom for each compiled program, places devices near the
hosts that talk to them, and brings up the live network — unused switches
forward NetCL traffic as no-ops.

Run:  python examples/operator_deployment.py
"""

from repro.core import compile_netcl
from repro.deploy import AbstractTopology, DeploymentPlanner, PhysicalFabric
from repro.netsim import DEVICE, HOST
from repro.runtime import KernelSpec, Message
from repro.runtime.message import unpack

COUNTER_SERVICE = r"""
// a tiny in-network counter service: each request gets a unique ticket
_net_ unsigned next_ticket;

_kernel(1) void take_ticket(unsigned &ticket) {
  ticket = ncl::atomic_inc_new(&next_ticket);
  return ncl::reflect_long();
}
"""


def main() -> None:
    # -- the programmer's artifact: one compiled program, one device -------
    compiled = compile_netcl(COUNTER_SERVICE, device_id=1, program_name="tickets")
    print(
        f"program needs {compiled.report.stages_used} stages, "
        f"{compiled.report.sram_pct:.2f}% SRAM"
    )

    # -- the operator's fabric: a 5-switch ring, two busy switches ---------
    fabric = PhysicalFabric()
    for sid in range(1, 6):
        # switches 1 and 2 already run a large tenant program
        fabric.add_switch(sid, free_stages=2 if sid <= 2 else 10)
    for a, b in [(1, 2), (2, 3), (3, 4), (4, 5), (5, 1)]:
        fabric.link(DEVICE(a), DEVICE(b))
    for host_id, switch in ((1, 1), (2, 4)):
        fabric.add_host(host_id)
        fabric.link(HOST(host_id), DEVICE(switch))

    # -- deployment ---------------------------------------------------------
    topology = AbstractTopology()
    topology.add_device(1, compiled)
    topology.attach_host(2, 1)  # host 2 is the service's main client
    plan = DeploymentPlanner(fabric).deploy(topology)
    print(f"abstract device 1 -> physical switch {plan.physical_for(1)} "
          f"(switches 1-2 were too full)")

    # -- the service works from both hosts ----------------------------------
    net = plan.network
    spec = KernelSpec.from_kernel(compiled.kernels()[0])
    tickets = []
    for host_id in (2, 1, 2, 1):
        host = net.hosts[host_id]
        host.on_receive = lambda p, t: tickets.append(unpack(p.to_wire(), spec)[1][0])
        host.send_message(Message(src=host_id, dst=host_id, comp=1, to=1), spec, [None])
        net.sim.run()
    print("tickets issued in order:", tickets)
    assert tickets == [1, 2, 3, 4]


if __name__ == "__main__":
    main()
