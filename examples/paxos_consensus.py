#!/usr/bin/env python3
"""Consensus as a network service: in-network Paxos (the paper's P4XOS).

One NetCL program, three kernels at three locations (Fig. 11): a leader
switch sequences client proposals, three acceptor switches vote (each
compiled with its own ACCEPTOR_ID), and a learner switch detects majority
and delivers to the application host.  The example drives a replicated
log and then knocks out an acceptor to show majority still carrying.

Run:  python examples/paxos_consensus.py
"""

from repro.apps.paxos import ACCEPTOR_DEVS, build_paxos_cluster
from repro.netsim import DEVICE


def main() -> None:
    cluster = build_paxos_cluster()
    print("devices:", sorted(cluster.devices))
    for dev_id, cp in sorted(cluster.compiled.items()):
        kernels = ", ".join(k.name for k in cp.kernels())  # type: ignore[attr-defined]
        print(f"  device {dev_id}: kernel(s) [{kernels}]")

    commands = [f"SET x{i} {i * i}" for i in range(6)]
    for cmd in commands:
        words = [ord(c) for c in cmd[:8]]
        cluster.client.propose(words + [0] * (8 - len(words)))
    cluster.network.sim.run()

    print("\nreplicated log (chosen order):")
    for d in sorted(cluster.app.deliveries, key=lambda d: d.instance):
        text = "".join(chr(v) for v in d.value if 32 <= v < 127)
        print(f"  instance {d.instance}: {text!r}  (+{d.time_ns / 1000:.1f} us)")
    assert len(cluster.app.deliveries) == len(commands)

    # Fail one acceptor entirely: 2-of-3 is still a majority.
    link = cluster.network.links[frozenset((DEVICE(1), DEVICE(ACCEPTOR_DEVS[0])))]
    link.loss_probability = 1.0
    before = len(cluster.app.deliveries)
    cluster.client.propose([ord("!")] * 8)
    cluster.network.sim.run()
    print(
        f"\nwith acceptor {ACCEPTOR_DEVS[0]} down: "
        f"{len(cluster.app.deliveries) - before} proposal(s) still chosen "
        "(2-of-3 majority)"
    )
    assert len(cluster.app.deliveries) == before + 1


if __name__ == "__main__":
    main()
