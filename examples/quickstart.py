#!/usr/bin/env python3
"""Quickstart: write a NetCL kernel, compile it, and talk to it over UDP.

This is the paper's Fig. 4/Fig. 6 workflow end to end:

1. define device code (a kernel + net function) in NetCL's C/C++ dialect;
2. compile it with ncc for a Tofino-class device (the compiler emits P4,
   fits the pipeline, and reports resources);
3. run the device runtime behind a real UDP socket on loopback;
4. use the host runtime (message/pack/unpack) to query it.

Run:  python examples/quickstart.py
"""

from repro.core import compile_netcl
from repro.runtime import KernelSpec, Message, NetCLDevice
from repro.runtime.udp import UdpHost, UdpSwitch

KERNEL = r"""
// An in-network read-only cache (Fig. 4 of the paper).
#define CMS_HASHES 3
#define THRESH 128
#define GET_REQ 1

_managed_ unsigned cms[CMS_HASHES][65536];

_net_ void sketch(unsigned k, unsigned &hot) {
  unsigned c[CMS_HASHES];
  c[0] = ncl::atomic_sadd_new(&cms[0][ncl::xor16(k)], 1);
  c[1] = ncl::atomic_sadd_new(&cms[1][ncl::crc32<16>(k)], 1);
  c[2] = ncl::atomic_sadd_new(&cms[2][ncl::crc16(k)], 1);
  for (auto i = 1; i < CMS_HASHES; ++i)
    if (c[i] < c[0]) c[0] = c[i];
  hot = c[0] > THRESH ? c[0] : 0;
}

_net_ _lookup_ ncl::kv<unsigned, unsigned> cache[] = {{1,42}, {2,42},
                                                      {3,42}, {4,42}};

_kernel(1) _at(1) void query(char op, unsigned k, unsigned &v,
                             char &hit, unsigned &hot) {
  if (op == GET_REQ) {
    hit = ncl::lookup(cache, k, v);
    return hit ? ncl::reflect() : sketch(k, hot);
  }
}
"""


def main() -> None:
    # -- 1+2: compile for device 1, TNA target -----------------------------
    compiled = compile_netcl(KERNEL, device_id=1, target="tna")
    report = compiled.report
    print("compiled kernel(s):", [k.name for k in compiled.kernels()])
    print(
        f"fits Tofino: {report.stages_used} stages, "
        f"{report.phv_occupancy_pct:.1f}% PHV, "
        f"{report.latency.total_ns:.0f} ns worst-case latency"
    )
    print(f"ncc time: {compiled.timings.ncc_seconds * 1000:.1f} ms "
          f"(+{compiled.timings.fitter_seconds * 1000:.1f} ms fitting)")

    # -- 3: boot the device behind a UDP socket ----------------------------
    device = NetCLDevice(1, compiled.module, compiled.kernels())
    spec = KernelSpec.from_kernel(compiled.kernels()[0])

    with UdpSwitch(device) as switch:
        with UdpHost(1) as client, UdpHost(2) as server:
            client.connect(switch)
            server.connect(switch)

            # -- 4: query through the host runtime (Fig. 6) ----------------
            # "send message from host 1 to host 2 through device 1, and
            # perform computation 1" — the cached key reflects at the switch.
            msg = Message(src=1, dst=2, comp=1, to=1)
            client.send(msg, spec, [1, 2, None, None, None])
            _, values = client.recv(spec)
            op, k, v, hit, hot = values
            print(f"GET k=2  ->  hit={hit} value={v}  (served by the switch)")

            # A miss travels on to the KVS server, hot-counting on the way.
            client.send(msg, spec, [1, 99, None, None, None])
            _, values = server.recv(spec)
            print(f"GET k=99 ->  forwarded to the server (hit={values[3]})")

    # The generated P4 is a first-class artifact:
    head = "\n".join(compiled.p4_source.splitlines()[:12])
    print("\ngenerated P4 (first lines):\n" + head)


if __name__ == "__main__":
    main()
