"""repro — a from-scratch Python reproduction of NetCL (SC 2024).

NetCL is a unified programming framework for in-network computing: C/C++
extensions expressing computation as kernels over in-flight messages, a
compiler translating kernels to P4, and thin host/device runtimes.

Public API highlights:

* :func:`repro.core.compile_netcl` — compile NetCL source for a device.
* :mod:`repro.runtime` — host runtime (messages, managed memory) and the
  device runtime.
* :mod:`repro.netsim` — the discrete-event network the evaluation runs on.
* :mod:`repro.apps` — the paper's applications (AGG, CACHE, P4xos, CALC).
"""

__version__ = "1.0.0"


def compile_netcl(*args, **kwargs):
    """Convenience re-export of :func:`repro.core.compile_netcl`."""
    from repro.core import compile_netcl as _compile

    return _compile(*args, **kwargs)
