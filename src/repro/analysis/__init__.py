"""Static analysis for NetCL programs (``ncc lint``).

The package layers three facilities on top of the IR:

* :mod:`repro.analysis.dataflow` — a reusable forward/backward worklist
  dataflow framework (gen/kill lattices over basic blocks).
* :mod:`repro.analysis.lints` and :mod:`repro.analysis.estimate` — the
  lint suite: uninitialized reads, cross-kernel shared-state hazards,
  dead stores, width truncation, unreachable code, and a pre-fitter
  resource estimator that predicts stage/SALU/SRAM overflow from IR
  shape alone.
* :mod:`repro.analysis.absint` — value-range/known-bits abstract
  interpretation over the IR (interval domain with wrap-around widths
  and branch-condition refinement); powers NCL005/NCL008-NCL010 and the
  boundary-value miner of the translation validator.
* :mod:`repro.analysis.tvalid` — translation validation: differential
  concrete execution of every kernel against its pre-pipeline behavior
  after each middle-end pass (``ncc verify`` / ``ncc --verify-passes``).
* :mod:`repro.analysis.diagnostics` — the :class:`DiagnosticEngine`
  that collects ``NCLxxx``-coded warnings instead of raising, with
  ``--Werror`` / ``-Wno-<code>`` handling and text/JSON renderers.

:func:`repro.analysis.lint.lint_source` is the one-call entry point used
by ``ncc lint`` and the driver's opt-in analysis phase.
"""

from repro.analysis.absint import Interval, RangeAnalysis
from repro.analysis.diagnostics import (
    CODES,
    SCHEMA_VERSION,
    DiagnosticEngine,
    Severity,
)
from repro.analysis.dataflow import (
    DataflowAnalysis,
    Direction,
    GenKillAnalysis,
    iter_postorder,
    iter_reverse_postorder,
)
from repro.analysis.lint import lint_module, lint_source, run_lints
from repro.analysis.tvalid import (
    PassValidator,
    TranslationValidationError,
    generate_vectors,
)

__all__ = [
    "CODES",
    "SCHEMA_VERSION",
    "DiagnosticEngine",
    "Severity",
    "DataflowAnalysis",
    "Direction",
    "GenKillAnalysis",
    "Interval",
    "PassValidator",
    "RangeAnalysis",
    "TranslationValidationError",
    "generate_vectors",
    "iter_postorder",
    "iter_reverse_postorder",
    "lint_module",
    "lint_source",
    "run_lints",
]
