"""Static analysis for NetCL programs (``ncc lint``).

The package layers three facilities on top of the IR:

* :mod:`repro.analysis.dataflow` — a reusable forward/backward worklist
  dataflow framework (gen/kill lattices over basic blocks).
* :mod:`repro.analysis.lints` and :mod:`repro.analysis.estimate` — the
  lint suite: uninitialized reads, cross-kernel shared-state hazards,
  dead stores, width truncation, unreachable code, and a pre-fitter
  resource estimator that predicts stage/SALU/SRAM overflow from IR
  shape alone.
* :mod:`repro.analysis.diagnostics` — the :class:`DiagnosticEngine`
  that collects ``NCLxxx``-coded warnings instead of raising, with
  ``--Werror`` / ``-Wno-<code>`` handling and text/JSON renderers.

:func:`repro.analysis.lint.lint_source` is the one-call entry point used
by ``ncc lint`` and the driver's opt-in analysis phase.
"""

from repro.analysis.diagnostics import (
    CODES,
    DiagnosticEngine,
    Severity,
)
from repro.analysis.dataflow import (
    DataflowAnalysis,
    Direction,
    GenKillAnalysis,
    iter_postorder,
    iter_reverse_postorder,
)
from repro.analysis.lint import lint_module, lint_source, run_lints

__all__ = [
    "CODES",
    "DiagnosticEngine",
    "Severity",
    "DataflowAnalysis",
    "Direction",
    "GenKillAnalysis",
    "iter_postorder",
    "iter_reverse_postorder",
    "lint_module",
    "lint_source",
    "run_lints",
]
