"""Value-range abstract interpretation over the NetCL IR.

A path-insensitive forward analysis on the product domain of

* **unsigned intervals** ``[lo, hi]`` over the value's bit pattern
  (``0 <= lo <= hi <= 2^w - 1``), with *wrap-around widths*: when
  interval arithmetic leaves the representable range the result goes to
  ``top`` rather than tracking wrapped sub-ranges, and
* **possibly-set bits**: a mask that is a superset of every bit the
  value can carry (the known-bits complement), which keeps masking
  idioms (``x & 0xff``) precise where intervals cannot.

The two components refine each other on construction: the interval's
``hi`` can never exceed the possibly-set mask read as an integer, and
the mask never contains bits above ``hi``'s highest.

:class:`RangeAnalysis` runs the domain over a function using the
generic worklist driver of :mod:`repro.analysis.dataflow`, with
**branch-condition refinement** implemented as an edge transfer: the
fact flowing along the taken (not-taken) edge of a ``Br`` is sharpened
by the branch's ``ICmp`` condition.  After the fixed point, a single
collect sweep records, per instruction, the result range plus the side
facts the range-backed lints consume: definite arithmetic wraps
(NCL008), decidable branch conditions (NCL009), and possibly-zero
divisors (NCL010).

Everything here is read-only over the IR — the fuzz suite asserts that
linting (which runs this analysis) leaves modules bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

from repro.analysis.dataflow import DataflowAnalysis, Direction
from repro.ir.blocks import BasicBlock
from repro.ir.instructions import (
    Alloca,
    AtomicRMW,
    BinOp,
    BinOpKind,
    Br,
    Call,
    Cast,
    CastKind,
    Constant,
    ICmp,
    ICmpPred,
    Instruction,
    Intrinsic,
    Load,
    LoadGlobal,
    LoadMsg,
    Lookup,
    LookupVal,
    Phi,
    Select,
    Store,
    StoreGlobal,
    StoreMsg,
    Undef,
    Value,
)
from repro.ir.module import Function
from repro.ir.types import IntType


def _mask_up_to(v: int) -> int:
    """Smallest all-ones mask covering ``v`` (0 -> 0)."""
    return (1 << v.bit_length()) - 1


@dataclass(frozen=True)
class Interval:
    """One abstract value: width, unsigned bounds, possibly-set bits."""

    width: int
    lo: int
    hi: int
    #: superset of the bits the value may carry; ``value & ~bits == 0``.
    bits: int

    # -- constructors ----------------------------------------------------------
    @staticmethod
    def make(width: int, lo: int, hi: int, bits: Optional[int] = None) -> "Interval":
        """Normalized constructor: clamps to the width and cross-refines
        the interval against the possibly-set mask."""
        mask = (1 << width) - 1
        lo = max(0, lo)
        hi = min(hi, mask)
        if bits is None:
            bits = _mask_up_to(hi)
        bits &= mask
        hi = min(hi, bits)
        bits &= _mask_up_to(hi)
        if lo > hi:  # contradictory refinement: collapse rather than lie
            lo = hi
        return Interval(width, lo, hi, bits)

    @staticmethod
    def top(width: int) -> "Interval":
        mask = (1 << width) - 1
        return Interval(width, 0, mask, mask)

    @staticmethod
    def const(ty: IntType, value: int) -> "Interval":
        u = ty.to_unsigned(value)
        return Interval(ty.width, u, u, u)

    # -- queries ---------------------------------------------------------------
    @property
    def mask(self) -> int:
        return (1 << self.width) - 1

    @property
    def is_top(self) -> bool:
        return self.lo == 0 and self.hi == self.mask and self.bits == self.mask

    @property
    def is_const(self) -> bool:
        return self.lo == self.hi

    def contains(self, v: int) -> bool:
        return self.lo <= v <= self.hi and (v & ~self.bits) == 0

    def signed_bounds(self) -> Tuple[int, int]:
        """Hull of the signed reinterpretation; the full signed range when
        the unsigned interval straddles the sign boundary."""
        half = 1 << (self.width - 1)
        if self.width == 1:
            return (self.lo, self.hi)  # 1-bit: treat as unsigned 0/1
        if self.hi < half:
            return (self.lo, self.hi)
        if self.lo >= half:
            return (self.lo - 2 * half, self.hi - 2 * half)
        return (-half, half - 1)

    def fits(self, width: int) -> bool:
        """The value provably fits in ``width`` bits unchanged."""
        return self.hi <= (1 << width) - 1

    # -- lattice ---------------------------------------------------------------
    def join(self, other: "Interval") -> "Interval":
        assert self.width == other.width
        return Interval.make(
            self.width,
            min(self.lo, other.lo),
            max(self.hi, other.hi),
            self.bits | other.bits,
        )

    def meet(self, other: "Interval") -> Optional["Interval"]:
        """Intersection; None when provably empty (dead edge)."""
        assert self.width == other.width
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None
        return Interval.make(self.width, lo, hi, self.bits & other.bits)

    def __str__(self) -> str:
        if self.is_const:
            return f"u{self.width}[{self.lo}]"
        return f"u{self.width}[{self.lo},{self.hi}]"


#: raw-arithmetic result classification for wrap detection
_EXACT, _MAY_WRAP, _MUST_WRAP = 0, 1, 2


def _classify(raw_lo: int, raw_hi: int, mask: int) -> int:
    if 0 <= raw_lo and raw_hi <= mask:
        return _EXACT
    if raw_hi < 0 or raw_lo > mask:
        return _MUST_WRAP
    return _MAY_WRAP


def binop_range(
    kind: BinOpKind, a: Interval, b: Interval, ty: IntType
) -> Tuple[Interval, int]:
    """Abstract transfer of one BinOp: (result interval, wrap class).

    The wrap class reports whether the *modular* result differed from
    the mathematical one: ``_MUST_WRAP`` means every concrete execution
    wraps (the NCL008 trigger), ``_MAY_WRAP`` that some may.
    Division/modulo report ``_EXACT``; possibly-zero divisors are the
    caller's concern (NCL010).
    """
    w, mask = ty.width, ty.mask
    top = Interval.top(w)

    if kind in (BinOpKind.ADD, BinOpKind.SUB, BinOpKind.MUL):
        if kind == BinOpKind.ADD:
            raw_lo, raw_hi = a.lo + b.lo, a.hi + b.hi
        elif kind == BinOpKind.SUB:
            raw_lo, raw_hi = a.lo - b.hi, a.hi - b.lo
        else:
            raw_lo, raw_hi = a.lo * b.lo, a.hi * b.hi
        cls = _classify(raw_lo, raw_hi, mask)
        if cls == _EXACT:
            return Interval.make(w, raw_lo, raw_hi), _EXACT
        return top, cls

    if kind == BinOpKind.AND:
        return Interval.make(w, 0, min(a.hi, b.hi), a.bits & b.bits), _EXACT
    if kind == BinOpKind.OR:
        bits = a.bits | b.bits
        return Interval.make(w, max(a.lo, b.lo), bits, bits), _EXACT
    if kind == BinOpKind.XOR:
        bits = a.bits | b.bits
        return Interval.make(w, 0, bits, bits), _EXACT

    if kind == BinOpKind.SHL:
        # Interpreter semantics: b < width shifts, b >= width yields 0.
        if b.is_const:
            k = b.lo
            if k >= w:
                return Interval.const(ty, 0), _EXACT
            raw_lo, raw_hi = a.lo << k, a.hi << k
            cls = _classify(raw_lo, raw_hi, mask)
            if cls == _EXACT:
                return Interval.make(w, raw_lo, raw_hi, (a.bits << k) & mask), _EXACT
            return top, cls
        return top, _MAY_WRAP if a.hi else _EXACT
    if kind == BinOpKind.LSHR:
        if b.is_const:
            k = b.lo
            if k >= w:
                return Interval.const(ty, 0), _EXACT
            return Interval.make(w, a.lo >> k, a.hi >> k, a.bits >> k), _EXACT
        # Unknown shift amount: set bits migrate to any lower position, so
        # only the hull [0, hi] survives (make() re-derives a sound mask).
        return Interval.make(w, 0, a.hi), _EXACT
    if kind == BinOpKind.ASHR:
        slo, shi = a.signed_bounds()
        if slo >= 0:  # behaves like lshr
            if b.is_const:
                k = min(b.lo, w - 1)
                return Interval.make(w, a.lo >> k, a.hi >> k, a.bits >> k), _EXACT
            return Interval.make(w, 0, a.hi), _EXACT
        return top, _EXACT

    if kind == BinOpKind.UDIV:
        if b.lo >= 1:
            return Interval.make(w, a.lo // b.hi, a.hi // b.lo), _EXACT
        return top, _EXACT
    if kind == BinOpKind.UREM:
        if b.lo >= 1:
            return Interval.make(w, 0, min(a.hi, b.hi - 1)), _EXACT
        return top, _EXACT
    if kind in (BinOpKind.SDIV, BinOpKind.SREM):
        sa_lo, sa_hi = a.signed_bounds()
        sb_lo, _ = b.signed_bounds()
        if sa_lo >= 0 and sb_lo >= 1:
            # entirely non-negative: same as the unsigned forms
            if kind == BinOpKind.SDIV:
                return Interval.make(w, a.lo // b.hi, a.hi // b.lo), _EXACT
            return Interval.make(w, 0, min(a.hi, b.hi - 1)), _EXACT
        return top, _EXACT

    if kind == BinOpKind.SADDU:
        return (
            Interval.make(w, min(a.lo + b.lo, mask), min(a.hi + b.hi, mask)),
            _EXACT,
        )
    if kind == BinOpKind.SSUBU:
        return (
            Interval.make(w, max(a.lo - b.hi, 0), max(a.hi - b.lo, 0)),
            _EXACT,
        )

    return top, _MAY_WRAP  # pragma: no cover - kinds exhaustive


def icmp_range(pred: ICmpPred, a: Interval, b: Interval) -> Interval:
    """Abstract compare: [1,1] / [0,0] when decidable, else [0,1]."""
    verdict = _decide_icmp(pred, a, b)
    if verdict is None:
        return Interval.make(1, 0, 1)
    return Interval.make(1, int(verdict), int(verdict))


def _decide_icmp(pred: ICmpPred, a: Interval, b: Interval) -> Optional[bool]:
    if pred in (ICmpPred.EQ, ICmpPred.NE):
        if a.is_const and b.is_const:
            eq = a.lo == b.lo
            return eq if pred == ICmpPred.EQ else not eq
        if a.meet(b) is None:
            return pred == ICmpPred.NE
        return None
    signed = pred in (ICmpPred.SLT, ICmpPred.SLE, ICmpPred.SGT, ICmpPred.SGE)
    if signed:
        a_lo, a_hi = a.signed_bounds()
        b_lo, b_hi = b.signed_bounds()
    else:
        a_lo, a_hi, b_lo, b_hi = a.lo, a.hi, b.lo, b.hi
    if pred in (ICmpPred.ULT, ICmpPred.SLT):
        if a_hi < b_lo:
            return True
        if a_lo >= b_hi:
            return False
    elif pred in (ICmpPred.ULE, ICmpPred.SLE):
        if a_hi <= b_lo:
            return True
        if a_lo > b_hi:
            return False
    elif pred in (ICmpPred.UGT, ICmpPred.SGT):
        if a_lo > b_hi:
            return True
        if a_hi <= b_lo:
            return False
    elif pred in (ICmpPred.UGE, ICmpPred.SGE):
        if a_lo >= b_hi:
            return True
        if a_hi < b_lo:
            return False
    return None


def cast_range(kind: CastKind, v: Interval, to: IntType) -> Interval:
    if kind == CastKind.ZEXT:
        return Interval.make(to.width, v.lo, v.hi, v.bits)
    if kind == CastKind.TRUNC:
        if v.fits(to.width):
            return Interval.make(to.width, v.lo, v.hi, v.bits)
        return Interval.top(to.width)
    if kind == CastKind.SEXT:
        slo, shi = v.signed_bounds()
        if slo >= 0:
            return Interval.make(to.width, v.lo, v.hi, v.bits)
        if shi < 0:
            full = 1 << to.width
            return Interval.make(to.width, full + slo, full + shi)
        return Interval.top(to.width)
    # bitcast: same width, same bit pattern
    return Interval.make(to.width, v.lo, v.hi, v.bits)


def _intrinsic_range(inst: Intrinsic, args: list) -> Interval:
    ty = inst.type
    assert isinstance(ty, IntType)
    name = inst.callee
    if name in ("ncl.clz", "ncl.ctz", "ncl.popcount"):
        in_w = inst.args[0].type.width if inst.args else 64
        return Interval.make(ty.width, 0, in_w)
    if name == "ncl.bit_chk":
        return Interval.make(ty.width, 0, 1)
    if name == "ncl.min" and len(args) == 2:
        return Interval.make(ty.width, min(args[0].lo, args[1].lo), min(args[0].hi, args[1].hi))
    if name == "ncl.max" and len(args) == 2:
        return Interval.make(ty.width, max(args[0].lo, args[1].lo), max(args[0].hi, args[1].hi))
    if name == "ncl.sadd" and len(args) == 2:
        return Interval.make(
            ty.width, min(args[0].lo + args[1].lo, ty.mask), min(args[0].hi + args[1].hi, ty.mask)
        )
    if name == "ncl.ssub" and len(args) == 2:
        return Interval.make(
            ty.width, max(args[0].lo - args[1].hi, 0), max(args[0].hi - args[1].lo, 0)
        )
    if name == "ncl.csum16r":
        return Interval.make(ty.width, 0, 0xFFFF)
    # hashes, rand, device ids, bswap: anything
    return Interval.top(ty.width)


# -- the environment lattice -----------------------------------------------------

#: Sentinel for "block not reached yet" (strict bottom: join identity).
_BOTTOM = None

Key = Hashable


class _Env:
    """Immutable-by-convention mapping of value keys to intervals.

    Keys are ``id(instruction)`` for SSA temporaries, ``("slot", id)``
    for scalar local slots, and ``("msg", field)`` for scalar message
    fields.  A missing key means *unknown* (top of its type), so
    dropping entries is always sound.
    """

    __slots__ = ("d",)

    def __init__(self, d: Optional[Dict[Key, Interval]] = None) -> None:
        self.d = d or {}

    def get(self, key: Key) -> Optional[Interval]:
        return self.d.get(key)

    def set(self, key: Key, rng: Interval) -> "_Env":
        nd = dict(self.d)
        nd[key] = rng
        return _Env(nd)

    def set_many(self, items: Dict[Key, Interval]) -> "_Env":
        nd = dict(self.d)
        nd.update(items)
        return _Env(nd)

    def drop(self, key: Key) -> "_Env":
        if key not in self.d:
            return self
        nd = dict(self.d)
        del nd[key]
        return _Env(nd)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Env) and self.d == other.d

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __repr__(self) -> str:
        return f"_Env({self.d!r})"


class RangeAnalysis(DataflowAnalysis):
    """Forward value-range analysis with branch refinement.

    After :meth:`run`, per-instruction results live in:

    * ``result_range[id(inst)]`` — interval of each value-producing
      instruction *at its definition* (refinements included);
    * ``must_wrap[id(inst)]`` — BinOps whose modular result provably
      differs from the mathematical result on every execution;
    * ``zero_divisors[id(inst)]`` — div/rem BinOps whose divisor range
      includes zero (with the divisor interval, for the message);
    * ``branch_verdicts[id(br)]`` — ``True``/``False`` for ``Br``
      conditions the domain decides.
    """

    direction = Direction.FORWARD
    #: block updates tolerated before widening kicks in (cyclic CFGs only;
    #: post-frontend kernels are DAGs and converge in one sweep).
    WIDEN_AFTER = 3

    def __init__(self, fn: Function) -> None:
        super().__init__(fn)
        self.result_range: Dict[int, Interval] = {}
        self.must_wrap: Dict[int, BinOpKind] = {}
        self.zero_divisors: Dict[int, Interval] = {}
        self.branch_verdicts: Dict[int, bool] = {}
        self._collecting = False

    # -- lattice hooks ---------------------------------------------------------
    def initial(self, fn: Function):
        return _BOTTOM

    def boundary(self, fn: Function):
        return _Env()

    def join(self, a, b):
        if a is _BOTTOM:
            return b
        if b is _BOTTOM:
            return a
        out: Dict[Key, Interval] = {}
        for key, ra in a.d.items():
            rb = b.d.get(key)
            # A key missing on one path means unknown there: drop it.
            if rb is not None and ra.width == rb.width:
                out[key] = ra.join(rb)
        return _Env(out)

    def widen(self, old, new, updates: int):
        if updates < self.WIDEN_AFTER or old is _BOTTOM or new is _BOTTOM:
            return new
        out: Dict[Key, Interval] = {}
        for key, rng in new.d.items():
            prev = old.d.get(key)
            if prev is not None and prev == rng:
                out[key] = rng  # stable: keep
            # grew or appeared: widen away entirely (missing = top)
        return _Env(out)

    # -- value lookup ------------------------------------------------------------
    def _range_of(self, v: Value, env: _Env) -> Interval:
        ty = v.type
        width = ty.width if isinstance(ty, IntType) else 64
        if isinstance(v, Constant):
            assert isinstance(ty, IntType)
            return Interval.const(ty, v.value)
        if isinstance(v, Undef):
            return Interval.const(IntType(width), 0)  # interp: undef reads as 0
        rng = env.get(id(v))
        if rng is not None and rng.width == width:
            return rng
        return Interval.top(width)

    @staticmethod
    def _alias_key(v: Value) -> Optional[Key]:
        """Storage location ``v`` is a direct read of, if any — lets a
        branch refinement on one Load sharpen later reads of the same
        slot/field."""
        if isinstance(v, Load) and v.slot.is_scalar and not v.indices:
            return ("slot", id(v.slot))
        if isinstance(v, LoadMsg) and v.index is None:
            return ("msg", v.field)
        return None

    # -- branch refinement --------------------------------------------------------
    def transfer_edge(self, pred: BasicBlock, succ: BasicBlock, fact):
        if fact is _BOTTOM:
            return fact
        term = pred.terminator
        if not isinstance(term, Br) or term.then_ is term.else_:
            return fact
        taken = succ is term.then_
        env: _Env = fact
        cond = term.cond

        updates: Dict[Key, Interval] = {}

        def refine(value: Value, rng: Interval) -> None:
            cur = self._range_of(value, env)
            if cur.width != rng.width:
                return
            met = cur.meet(rng)
            if met is None or met == cur:
                return
            if isinstance(value, Instruction):
                updates[id(value)] = met
            alias = self._alias_key(value)
            if alias is not None:
                # Only sharpen the backing storage if nothing was stored
                # to it since the load (conservative: the alias range must
                # still agree with the loaded value's).
                stored = env.get(alias)
                if stored is None or stored.meet(rng) is not None:
                    updates[alias] = met if stored is None else (stored.meet(rng) or met)

        # The condition itself: nonzero on the taken edge, zero otherwise.
        cond_rng = self._range_of(cond, env)
        if taken:
            refine(cond, Interval.make(cond_rng.width, 1, cond_rng.mask))
        else:
            refine(cond, Interval.const(IntType(cond_rng.width), 0))

        if isinstance(cond, ICmp):
            pred_kind = cond.pred if taken else cond.pred.negated
            self._refine_icmp(cond, pred_kind, env, refine)

        if not updates:
            return env
        return env.set_many(updates)

    def _refine_icmp(self, cond: ICmp, pred: ICmpPred, env: _Env, refine) -> None:
        a_rng = self._range_of(cond.a, env)
        b_rng = self._range_of(cond.b, env)
        if a_rng.width != b_rng.width:
            return
        w = a_rng.width
        mask = (1 << w) - 1

        signed = pred in (ICmpPred.SLT, ICmpPred.SLE, ICmpPred.SGT, ICmpPred.SGE)
        if signed:
            # Only refine when neither side straddles the sign boundary —
            # then signed order agrees with unsigned order within each side.
            half = 1 << (w - 1)
            same_side = (
                (a_rng.hi < half and b_rng.hi < half)
                or (a_rng.lo >= half and b_rng.lo >= half)
            )
            if not same_side:
                return
            pred = {
                ICmpPred.SLT: ICmpPred.ULT,
                ICmpPred.SLE: ICmpPred.ULE,
                ICmpPred.SGT: ICmpPred.UGT,
                ICmpPred.SGE: ICmpPred.UGE,
            }[pred]

        if pred == ICmpPred.EQ:
            met = a_rng.meet(b_rng)
            if met is not None:
                refine(cond.a, met)
                refine(cond.b, met)
            return
        if pred == ICmpPred.NE:
            for this, this_rng, other_rng in (
                (cond.a, a_rng, b_rng),
                (cond.b, b_rng, a_rng),
            ):
                if other_rng.is_const:
                    c = other_rng.lo
                    if this_rng.lo == c:
                        refine(this, Interval.make(w, c + 1, mask))
                    elif this_rng.hi == c:
                        refine(this, Interval.make(w, 0, c - 1))
            return
        if pred == ICmpPred.ULT:
            if b_rng.hi >= 1:
                refine(cond.a, Interval.make(w, 0, b_rng.hi - 1))
            refine(cond.b, Interval.make(w, min(a_rng.lo + 1, mask), mask))
        elif pred == ICmpPred.ULE:
            refine(cond.a, Interval.make(w, 0, b_rng.hi))
            refine(cond.b, Interval.make(w, a_rng.lo, mask))
        elif pred == ICmpPred.UGT:
            refine(cond.a, Interval.make(w, min(b_rng.lo + 1, mask), mask))
            if a_rng.hi >= 1:
                refine(cond.b, Interval.make(w, 0, a_rng.hi - 1))
        elif pred == ICmpPred.UGE:
            refine(cond.a, Interval.make(w, b_rng.lo, mask))
            refine(cond.b, Interval.make(w, 0, a_rng.hi))

    # -- instruction transfer --------------------------------------------------------
    def transfer_block(self, bb: BasicBlock, fact):
        if fact is _BOTTOM:
            fact = _Env()
        return super().transfer_block(bb, fact)

    def transfer_inst(self, inst: Instruction, fact):
        if fact is _BOTTOM or isinstance(fact, frozenset):
            fact = _Env()
        env: _Env = fact

        if isinstance(inst, BinOp):
            assert isinstance(inst.type, IntType)
            a = self._range_of(inst.a, env)
            b = self._range_of(inst.b, env)
            rng, wrap = binop_range(inst.kind, a, b, inst.type)
            if self._collecting:
                self.result_range[id(inst)] = rng
                if wrap == _MUST_WRAP:
                    self.must_wrap[id(inst)] = inst.kind
                if (
                    inst.kind
                    in (BinOpKind.UDIV, BinOpKind.SDIV, BinOpKind.UREM, BinOpKind.SREM)
                    and b.contains(0)
                ):
                    self.zero_divisors[id(inst)] = b
            return env.set(id(inst), rng)

        if isinstance(inst, ICmp):
            rng = icmp_range(
                inst.pred, self._range_of(inst.a, env), self._range_of(inst.b, env)
            )
            if self._collecting:
                self.result_range[id(inst)] = rng
            return env.set(id(inst), rng)

        if isinstance(inst, Select):
            c = self._range_of(inst.cond, env)
            t = self._range_of(inst.t, env)
            f = self._range_of(inst.f, env)
            if c.lo >= 1:
                rng = t
            elif c.hi == 0:
                rng = f
            else:
                rng = t.join(f) if t.width == f.width else Interval.top(t.width)
            if self._collecting:
                self.result_range[id(inst)] = rng
            return env.set(id(inst), rng)

        if isinstance(inst, Cast):
            assert isinstance(inst.type, IntType)
            rng = cast_range(inst.kind, self._range_of(inst.value, env), inst.type)
            if self._collecting:
                self.result_range[id(inst)] = rng
            return env.set(id(inst), rng)

        if isinstance(inst, Phi):
            parts = [self._range_of(v, env) for v, _ in inst.incoming]
            assert isinstance(inst.type, IntType)
            rng = Interval.top(inst.type.width)
            parts = [p for p in parts if p.width == rng.width]
            if parts:
                acc = parts[0]
                for p in parts[1:]:
                    acc = acc.join(p)
                rng = acc
            if self._collecting:
                self.result_range[id(inst)] = rng
            return env.set(id(inst), rng)

        if isinstance(inst, Alloca):
            # Register memory and locals are zero-initialized in the device
            # model; the slot key tracks the stored value from here on.
            if inst.is_scalar:
                return env.set(("slot", id(inst)), Interval.const(inst.elem, 0))
            return env

        if isinstance(inst, Load):
            if inst.slot.is_scalar and not inst.indices:
                rng = env.get(("slot", id(inst.slot))) or Interval.top(inst.slot.elem.width)
            else:
                rng = Interval.top(inst.slot.elem.width)
            if self._collecting:
                self.result_range[id(inst)] = rng
            return env.set(id(inst), rng)

        if isinstance(inst, Store):
            if inst.slot.is_scalar and not inst.indices:
                val = self._range_of(inst.value, env)
                # stores mask to the slot's element width
                rng = (
                    Interval.make(inst.slot.elem.width, val.lo, val.hi, val.bits)
                    if val.fits(inst.slot.elem.width)
                    else Interval.top(inst.slot.elem.width)
                )
                return env.set(("slot", id(inst.slot)), rng)
            return env

        if isinstance(inst, LoadMsg):
            assert isinstance(inst.type, IntType)
            if inst.index is None:
                rng = env.get(("msg", inst.field)) or Interval.top(inst.type.width)
            else:
                rng = Interval.top(inst.type.width)
            if self._collecting:
                self.result_range[id(inst)] = rng
            return env.set(id(inst), rng)

        if isinstance(inst, StoreMsg):
            key = ("msg", inst.field)
            if inst.index is None and isinstance(inst.value.type, IntType):
                val = self._range_of(inst.value, env)
                return env.set(key, val)
            return env.drop(key)

        if isinstance(inst, (LoadGlobal, AtomicRMW)):
            # Global register memory is shared mutable state: other kernel
            # invocations may have written anything representable.
            assert isinstance(inst.type, IntType)
            rng = Interval.top(inst.type.width)
            if self._collecting:
                self.result_range[id(inst)] = rng
            return env.set(id(inst), rng)

        if isinstance(inst, Lookup):
            rng = Interval.make(1, 0, 1)
            if self._collecting:
                self.result_range[id(inst)] = rng
            return env.set(id(inst), rng)

        if isinstance(inst, LookupVal):
            assert isinstance(inst.type, IntType)
            default = self._range_of(inst.default, env)
            values = [e.value for e in inst.gv.entries if e.value is not None]
            if values and default.width == inst.type.width:
                mask = inst.type.mask
                rng = Interval.make(
                    inst.type.width,
                    min(min(v & mask for v in values), default.lo),
                    max(max(v & mask for v in values), default.hi),
                )
            else:
                rng = Interval.top(inst.type.width)
            if self._collecting:
                self.result_range[id(inst)] = rng
            return env.set(id(inst), rng)

        if isinstance(inst, Intrinsic):
            args = [self._range_of(a, env) for a in inst.args]
            rng = _intrinsic_range(inst, args)
            if self._collecting:
                self.result_range[id(inst)] = rng
            return env.set(id(inst), rng)

        if isinstance(inst, Call):
            if isinstance(inst.type, IntType):
                return env.set(id(inst), Interval.top(inst.type.width))
            return env

        if isinstance(inst, Br) and self._collecting:
            rng = self._range_of(inst.cond, env)
            if rng.lo >= 1:
                self.branch_verdicts[id(inst)] = True
            elif rng.hi == 0:
                self.branch_verdicts[id(inst)] = False
            return env

        return env

    # -- driver ------------------------------------------------------------------
    def run(self) -> "RangeAnalysis":
        super().run()
        # Collect sweep: per-instruction facts from the (refined) fixed
        # point, recorded exactly once so transient iterates never leak
        # into the lint results.
        self._collecting = True
        try:
            for bb in self.fn.blocks:
                fact = self.block_in.get(id(bb), _BOTTOM)
                if fact is _BOTTOM:
                    fact = _Env()
                for inst in bb.instructions:
                    fact = self.transfer_inst(inst, fact)
        finally:
            self._collecting = False
        return self

    def range_of_value(self, v: Value) -> Interval:
        """Best-known interval for an operand after the collect sweep."""
        ty = v.type
        width = ty.width if isinstance(ty, IntType) else 64
        if isinstance(v, Constant):
            assert isinstance(ty, IntType)
            return Interval.const(ty, v.value)
        rng = self.result_range.get(id(v))
        if rng is not None and rng.width == width:
            return rng
        return Interval.top(width)
