"""Worklist dataflow framework over the NetCL IR.

Set-based analyses model facts as frozensets of hashable items (slot
ids, instruction ids, ...).  A concrete analysis picks a
:class:`Direction`, a meet (``may``: union over paths; must:
intersection), and per-instruction ``gen``/``kill`` sets; the framework
iterates block transfer functions over a worklist until the in/out sets
reach a fixed point.

The driver itself is lattice-agnostic: an analysis may use any fact
type (e.g. the interval environments of :mod:`repro.analysis.absint`)
by overriding :meth:`DataflowAnalysis.initial`,
:meth:`DataflowAnalysis.join`, and optionally
:meth:`DataflowAnalysis.transfer_edge` (per-CFG-edge refinement, how
branch conditions sharpen value ranges) and
:meth:`DataflowAnalysis.widen` (forced convergence on lattices with
long ascending chains).

Kernel CFGs are acyclic (dagcheck enforces this) so the worklist
terminates in one or two sweeps, but the framework is written for
general graphs — it is also exercised on pre-dagcheck IR where cycles
may still exist.

All traversals are iterative (explicit stacks): fully-unrolled NetCL
loops can produce CFGs thousands of blocks deep, far beyond Python's
recursion limit.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, FrozenSet, Hashable, List

from repro.ir.blocks import BasicBlock
from repro.ir.instructions import Instruction
from repro.ir.module import Function

Fact = FrozenSet[Hashable]
EMPTY: Fact = frozenset()


def iter_postorder(fn: Function) -> List[BasicBlock]:
    """Postorder over blocks reachable from the entry, without recursion."""
    order: List[BasicBlock] = []
    visited: set[int] = set()
    # (block, next successor index) pairs emulate the recursive DFS frame.
    stack: List[List] = [[fn.entry, 0]]
    visited.add(id(fn.entry))
    while stack:
        frame = stack[-1]
        bb, idx = frame
        succs = bb.successors()
        if idx < len(succs):
            frame[1] += 1
            nxt = succs[idx]
            if id(nxt) not in visited:
                visited.add(id(nxt))
                stack.append([nxt, 0])
        else:
            order.append(bb)
            stack.pop()
    return order


def iter_reverse_postorder(fn: Function) -> List[BasicBlock]:
    order = iter_postorder(fn)
    order.reverse()
    return order


class Direction(str, Enum):
    FORWARD = "forward"
    BACKWARD = "backward"


class DataflowAnalysis:
    """Base class: subclass and override the transfer/meet hooks.

    After :meth:`run`, ``block_in[id(bb)]`` / ``block_out[id(bb)]`` hold
    the fixed-point facts at block entry and exit (in CFG direction,
    regardless of analysis direction).
    """

    direction: Direction = Direction.FORWARD
    #: union meet (may-analysis) when True; intersection (must) when False.
    may: bool = True

    def __init__(self, fn: Function) -> None:
        self.fn = fn
        self.block_in: Dict[int, Fact] = {}
        self.block_out: Dict[int, Fact] = {}

    # -- hooks ---------------------------------------------------------------
    def boundary(self, fn: Function) -> Fact:
        """Fact at the entry (forward) or at every exit (backward)."""
        return EMPTY

    def universe(self, fn: Function) -> Fact:
        """Top element for must-analyses (ignored when ``may``)."""
        return EMPTY

    def initial(self, fn: Function):
        """Fact every block starts from before the first update.

        For set lattices this is the conventional optimistic start
        (empty for may, universe for must).  Non-set analyses override
        this with their bottom ("unreached") element.
        """
        return EMPTY if self.may else self.universe(fn)

    def join(self, a, b):
        """Pairwise meet of two facts (union for may, intersection for
        must).  Non-set lattices override this."""
        return (a | b) if self.may else (a & b)

    def transfer_edge(self, pred: BasicBlock, succ: BasicBlock, fact):
        """Refine ``fact`` as it flows along the CFG edge pred->succ
        (forward) or succ->pred (backward).  The default is the identity;
        path-refining analyses (branch-condition refinement) override it."""
        return fact

    def widen(self, old, new, updates: int):
        """Accelerate convergence after ``updates`` changes to one block's
        fact.  The default trusts the lattice to have finite height."""
        return new

    def transfer_inst(self, inst: Instruction, fact: Fact) -> Fact:
        raise NotImplementedError

    # -- driver ---------------------------------------------------------------
    def transfer_block(self, bb: BasicBlock, fact: Fact) -> Fact:
        insts = bb.instructions
        if self.direction == Direction.BACKWARD:
            insts = reversed(insts)
        for inst in insts:
            fact = self.transfer_inst(inst, fact)
        return fact

    def _meet(self, facts: List) -> Fact:
        if not facts:
            return EMPTY if self.may else self.universe(self.fn)
        result = facts[0]
        for f in facts[1:]:
            result = self.join(result, f)
        return result

    def run(self) -> "DataflowAnalysis":
        forward = self.direction == Direction.FORWARD
        blocks = iter_reverse_postorder(self.fn) if forward else iter_postorder(self.fn)
        start = self.initial(self.fn)
        for bb in blocks:
            self.block_in[id(bb)] = start
            self.block_out[id(bb)] = start

        boundary = self.boundary(self.fn)
        entry = self.fn.entry
        updates: Dict[int, int] = {}

        worklist = list(blocks)
        on_list = {id(bb) for bb in worklist}
        while worklist:
            bb = worklist.pop(0)
            on_list.discard(id(bb))
            if forward:
                if bb is entry:
                    in_fact = boundary
                else:
                    in_fact = self._meet(
                        [
                            self.transfer_edge(p, bb, self.block_out[id(p)])
                            for p in bb.predecessors()
                            if id(p) in self.block_out
                        ]
                    )
                self.block_in[id(bb)] = in_fact
                out_fact = self.transfer_block(bb, in_fact)
                if out_fact != self.block_out[id(bb)]:
                    n = updates[id(bb)] = updates.get(id(bb), 0) + 1
                    out_fact = self.widen(self.block_out[id(bb)], out_fact, n)
                    self.block_out[id(bb)] = out_fact
                    for s in bb.successors():
                        if id(s) not in on_list and id(s) in self.block_in:
                            worklist.append(s)
                            on_list.add(id(s))
            else:
                if not bb.successors():
                    out_fact = boundary
                else:
                    out_fact = self._meet(
                        [
                            self.transfer_edge(s, bb, self.block_in[id(s)])
                            for s in bb.successors()
                            if id(s) in self.block_in
                        ]
                    )
                self.block_out[id(bb)] = out_fact
                in_fact = self.transfer_block(bb, out_fact)
                if in_fact != self.block_in[id(bb)]:
                    n = updates[id(bb)] = updates.get(id(bb), 0) + 1
                    in_fact = self.widen(self.block_in[id(bb)], in_fact, n)
                    self.block_in[id(bb)] = in_fact
                    for p in bb.predecessors():
                        if id(p) not in on_list and id(p) in self.block_out:
                            worklist.append(p)
                            on_list.add(id(p))
        return self

    # -- per-instruction walk-through ------------------------------------------
    def facts_before(self, bb: BasicBlock) -> List[Fact]:
        """The fact holding immediately *before* each instruction of ``bb``
        in analysis direction (forward: before in program order; backward:
        the fact flowing into the instruction from below)."""
        facts: List[Fact] = []
        if self.direction == Direction.FORWARD:
            fact = self.block_in.get(id(bb), EMPTY)
            for inst in bb.instructions:
                facts.append(fact)
                fact = self.transfer_inst(inst, fact)
        else:
            fact = self.block_out.get(id(bb), EMPTY)
            rev: List[Fact] = []
            for inst in reversed(bb.instructions):
                rev.append(fact)
                fact = self.transfer_inst(inst, fact)
            facts = list(reversed(rev))
        return facts


class GenKillAnalysis(DataflowAnalysis):
    """Dataflow specialization where each instruction's transfer is
    ``(fact - kill) | gen`` — the classic bit-vector form."""

    def inst_gen(self, inst: Instruction) -> Fact:
        return EMPTY

    def inst_kill(self, inst: Instruction) -> Fact:
        return EMPTY

    def transfer_inst(self, inst: Instruction, fact: Fact) -> Fact:
        gen = self.inst_gen(inst)
        kill = self.inst_kill(inst)
        if not gen and not kill:
            return fact
        return (fact - kill) | gen
