"""Coded diagnostics and the collecting engine behind ``ncc lint``.

Every analysis finding carries a stable ``NCLxxx`` code.  Codes in the
0xx range are lint warnings, 1xx are errors surfaced by existing checks
(frontend, dagcheck, memcheck, IR verifier) when they run in collecting
mode instead of raising.
"""

from __future__ import annotations

import json
from enum import Enum
from typing import Iterable, Optional

from repro.ir.instructions import SourceLoc
from repro.lang.errors import Diagnostic


class Severity(str, Enum):
    WARNING = "warning"
    ERROR = "error"


#: Version of the ``--json`` diagnostic payload; bump on breaking shape
#: changes so downstream tooling can dispatch.
SCHEMA_VERSION = 1


#: code -> (default severity, one-line description)
CODES: dict[str, tuple[Severity, str]] = {
    "NCL001": (Severity.WARNING, "read of a possibly-uninitialized local variable"),
    "NCL002": (Severity.WARNING, "cross-kernel shared-state hazard (conflicting access modes)"),
    "NCL003": (Severity.WARNING, "global memory is written but never read"),
    "NCL004": (Severity.WARNING, "dead store: value is overwritten before any read"),
    "NCL005": (Severity.WARNING, "implicit width truncation on assignment"),
    "NCL006": (Severity.WARNING, "unreachable code"),
    "NCL007": (Severity.WARNING, "kernel is predicted to exceed chip resources"),
    "NCL008": (Severity.WARNING, "arithmetic operation provably wraps at its width"),
    "NCL009": (Severity.WARNING, "branch condition is always true or always false"),
    "NCL010": (Severity.WARNING, "division or modulo by a possibly-zero value"),
    "NCL100": (Severity.ERROR, "compile error"),
    "NCL101": (Severity.ERROR, "kernel control flow contains a cycle"),
    "NCL102": (Severity.ERROR, "global object accessed more than once on a path"),
    "NCL103": (Severity.ERROR, "accesses to a global object are too far apart"),
    "NCL104": (Severity.ERROR, "inconsistent cross-object access order"),
    "NCL110": (Severity.ERROR, "internal IR verification failure"),
}


class DiagnosticEngine:
    """Collects :class:`Diagnostic` records instead of raising.

    One engine spans a whole ``ncc lint`` invocation; checks call
    :meth:`emit` and the CLI renders the sorted result.  ``-Wno-<code>``
    suppressions drop matching warnings entirely; ``--Werror`` promotes
    surviving warnings to errors for exit-code purposes (severity labels
    are preserved so the text output still says "warning").
    """

    def __init__(
        self,
        *,
        werror: bool = False,
        suppressed: Iterable[str] = (),
        source_name: str = "<input>",
    ) -> None:
        self.werror = werror
        self.suppressed = {s.upper() for s in suppressed}
        self.source_name = source_name
        self.diagnostics: list[Diagnostic] = []

    # -- emission -------------------------------------------------------------
    def emit(
        self,
        code: str,
        message: str,
        loc: Optional[SourceLoc] = None,
        severity: Optional[str] = None,
    ) -> Optional[Diagnostic]:
        """Record one finding; returns None when the code is suppressed."""
        if code in self.suppressed:
            return None
        if severity is None:
            severity = CODES[code][0].value if code in CODES else Severity.WARNING.value
        diag = Diagnostic(
            message,
            line=loc.line if loc is not None else 0,
            col=loc.col if loc is not None else 0,
            severity=severity,
            code=code,
        )
        self.diagnostics.append(diag)
        return diag

    def extend(self, diags: Iterable[Diagnostic]) -> None:
        for d in diags:
            if d.code and d.code in self.suppressed:
                continue
            self.diagnostics.append(d)

    # -- queries --------------------------------------------------------------
    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.WARNING.value]

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.ERROR.value]

    def codes(self) -> list[str]:
        return [d.code for d in self.diagnostics]

    @property
    def exit_code(self) -> int:
        if self.errors:
            return 1
        if self.werror and self.warnings:
            return 1
        return 0

    # -- rendering ------------------------------------------------------------
    def sorted(self) -> list[Diagnostic]:
        """Deterministic render order: file, line, col, code, message.

        Location-less diagnostics (line 0) sort last.  Emission order
        never leaks into output, so two lint runs over the same input
        byte-match.
        """
        return sorted(
            self.diagnostics,
            key=lambda d: (
                self.source_name,
                d.line or 1 << 30,
                d.col,
                d.code or "",
                d.message,
            ),
        )

    def render_text(self) -> str:
        lines = []
        for d in self.sorted():
            pos = f"{d.line}:{d.col}" if d.col else (f"{d.line}" if d.line else "")
            prefix = f"{self.source_name}:{pos}: " if pos else f"{self.source_name}: "
            tag = f" [{d.code}]" if d.code else ""
            lines.append(f"{prefix}{d.severity}: {d.message}{tag}")
        nw, ne = len(self.warnings), len(self.errors)
        if nw or ne:
            parts = []
            if ne:
                parts.append(f"{ne} error{'s' if ne != 1 else ''}")
            if nw:
                parts.append(f"{nw} warning{'s' if nw != 1 else ''}")
            lines.append(f"{' and '.join(parts)} generated.")
        return "\n".join(lines)

    def to_json(self) -> str:
        payload = {
            "schema_version": SCHEMA_VERSION,
            "source": self.source_name,
            "diagnostics": [
                {
                    "code": d.code,
                    "severity": d.severity,
                    "line": d.line,
                    "col": d.col,
                    "message": d.message,
                }
                for d in self.sorted()
            ],
            "counts": {"errors": len(self.errors), "warnings": len(self.warnings)},
            "exit_code": self.exit_code,
        }
        return json.dumps(payload, indent=2)
