"""Pre-fitter resource estimation (NCL007).

Predicts, from IR shape alone, whether a program will blow the chip's
stage / SALU / SRAM budgets — *before* the expensive Tofino fitter runs.
The model is intentionally coarse and errs on the permissive side: it
only warns for overflows the fitter is essentially guaranteed to hit
(a data-dependency chain of register accesses longer than the pipeline,
more distinct register objects than SALUs, more state than SRAM).

Two signals drive the stage estimate:

* **SALU site count** — each distinct register object a kernel touches
  needs its own stateful ALU, and a stage has ``salus_per_stage`` of
  them (§VI-C).
* **Dependency-chain depth** — register accesses whose inputs depend on
  an earlier access's result must land in strictly later stages
  (stage-local state, §II); the longest such chain lower-bounds the
  stage count no matter how cleverly the fitter packs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.dataflow import iter_reverse_postorder
from repro.analysis.diagnostics import DiagnosticEngine
from repro.ir.instructions import Constant, GlobalAccess
from repro.ir.module import Function, Module
from repro.tofino.chip import ChipSpec, TOFINO_1


def _site_key(inst: GlobalAccess) -> Tuple[int, Optional[int]]:
    """Register-object key of an access: the global plus the leading
    constant index (the memory-partitioning pass splits arrays indexed by
    a constant leading subscript into that many independent objects)."""
    first = None
    if inst.indices and isinstance(inst.indices[0], Constant):
        first = inst.indices[0].value
    return (id(inst.gv), first)


def kernel_salu_sites(fn: Function) -> Set[Tuple[int, Optional[int]]]:
    """Distinct register objects (post-partitioning estimate) the kernel
    touches with SALU-implemented accesses."""
    sites: Set[Tuple[int, Optional[int]]] = set()
    for inst in fn.instructions():
        if isinstance(inst, GlobalAccess) and not inst.gv.space.is_lookup:
            sites.add(_site_key(inst))
    return sites


def kernel_chain_depth(fn: Function) -> int:
    """Longest data-dependency chain of distinct register objects.

    Depth counts register *accesses* along a def-use chain: an access
    whose operands (transitively) depend on another access's result must
    be placed in a strictly later stage.  Dependencies are also tracked
    through local slots and message fields (the estimate runs on raw,
    pre-mem2reg IR where values round-trip through memory).
    """
    from repro.ir.instructions import Load, LoadMsg, Store, StoreMsg

    depth: Dict[int, int] = {}
    # Memory cells keyed per base object, then per constant element index
    # (None = any/dynamic index).  Distinct elements of an unrolled array
    # are independent; merging them would fabricate chains.
    slot_cells: Dict[int, Dict[Optional[tuple], int]] = {}
    field_cells: Dict[str, Dict[Optional[tuple], int]] = {}

    def elem_key(indices) -> Optional[tuple]:
        vals = []
        for idx in indices:
            if not isinstance(idx, Constant):
                return None
            vals.append(idx.value)
        return tuple(vals)

    def cell_load(cells: Dict[Optional[tuple], int], key: Optional[tuple]) -> int:
        if key is None:
            return max(cells.values(), default=0)
        return max(cells.get(key, 0), cells.get(None, 0))

    def value_depth(v) -> int:
        return depth.get(id(v), 0)

    best = 0
    for bb in iter_reverse_postorder(fn):
        for inst in bb.instructions:
            d = 0
            for op in inst.operands:
                d = max(d, value_depth(op))
            if isinstance(inst, Load):
                cells = slot_cells.get(id(inst.slot), {})
                d = max(d, cell_load(cells, elem_key(inst.indices)))
            elif isinstance(inst, LoadMsg):
                cells = field_cells.get(inst.field, {})
                idx = () if inst.index is None else (inst.index,)
                d = max(d, cell_load(cells, elem_key(idx)))
            if isinstance(inst, GlobalAccess) and not inst.gv.space.is_lookup:
                d += 1
            if isinstance(inst, Store):
                cells = slot_cells.setdefault(id(inst.slot), {})
                key = elem_key(inst.indices)
                cells[key] = max(cells.get(key, 0), d)
            elif isinstance(inst, StoreMsg):
                cells = field_cells.setdefault(inst.field, {})
                idx = () if inst.index is None else (inst.index,)
                key = elem_key(idx)
                cells[key] = max(cells.get(key, 0), d)
            depth[id(inst)] = d
            best = max(best, d)
    return best


def estimate_devices(module: Module) -> List[Optional[int]]:
    """Device ids the module places anything on (None = location-less)."""
    devices: Set[int] = set()
    for fn in module.functions.values():
        devices.update(fn.locations)
    for gv in module.globals.values():
        devices.update(gv.locations)
    return sorted(devices) if devices else [None]


def lint_resources(
    module: Module,
    engine: DiagnosticEngine,
    chip: ChipSpec = TOFINO_1,
) -> None:
    """NCL007: per-device stage/SALU/SRAM overflow prediction."""
    for device in estimate_devices(module):
        kernels = [
            fn
            for fn in module.kernels()
            if device is None or fn.placed_at(device)
        ]
        device_tag = f" on device {device}" if device is not None else ""

        total_sites = 0
        for fn in kernels:
            sites = kernel_salu_sites(fn)
            total_sites += len(sites)
            chain = kernel_chain_depth(fn)
            # SALU packing lower bound: sites spread across the pipeline.
            stage_floor = max(
                -(-len(sites) // chip.salus_per_stage) if sites else 0,
                chain,
            )
            if stage_floor > chip.stages:
                engine.emit(
                    "NCL007",
                    f"kernel '{fn.name}' needs at least {stage_floor} "
                    f"pipeline stages{device_tag} ({len(sites)} register "
                    f"objects, dependency chain of {chain}); "
                    f"{chip.name} has {chip.stages}",
                    fn.loc,
                )

        if total_sites > chip.total_salus:
            names = ", ".join(f"'{fn.name}'" for fn in kernels)
            engine.emit(
                "NCL007",
                f"kernels {names} together use an estimated {total_sites} "
                f"stateful ALUs{device_tag}; {chip.name} has "
                f"{chip.total_salus}",
                kernels[0].loc if kernels else None,
            )

        sram_blocks = 0
        worst_gv = None
        for gv in module.globals.values():
            if device is not None and not gv.placed_at(device):
                continue
            if gv.space.is_lookup:
                continue
            blocks = chip.sram_blocks_for(gv.bits)
            sram_blocks += blocks
            if worst_gv is None or blocks > chip.sram_blocks_for(worst_gv.bits):
                worst_gv = gv
        if sram_blocks > chip.total_sram_blocks:
            engine.emit(
                "NCL007",
                f"register memory needs an estimated {sram_blocks} SRAM "
                f"blocks{device_tag}; {chip.name} has "
                f"{chip.total_sram_blocks}",
                worst_gv.loc if worst_gv is not None else None,
            )
