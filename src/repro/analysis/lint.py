"""Lint entry points: raw-IR lints plus deep (pipeline-backed) checks.

Two tiers:

* :func:`run_lints` — *pure* analyses over a freshly-lowered module
  (never mutates it).  This is what the driver's opt-in analysis phase
  and the fuzz harness use.
* :func:`lint_source` — the full ``ncc lint`` behaviour: frontend the
  source, run the pure lints, then push a *separate* lowering of the
  same source through the real optimization pipeline per placed device
  so post-partitioning checks (Tofino memory constraints, NCL102-104)
  report with their proper locations.  Memory checking cannot run on
  raw IR: the partitioning pass first splits constant-indexed arrays
  into independent register objects, and pre-partition IR would
  false-positive on every count-min-sketch-style kernel.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.diagnostics import DiagnosticEngine
from repro.analysis.estimate import estimate_devices, lint_resources
from repro.analysis.lints import run_module_lints
from repro.ir.module import Module
from repro.lang.errors import CompileError
from repro.lang.lower import lower_to_ir
from repro.lang.parser import parse_source
from repro.lang.sema import analyze
from repro.tofino.chip import ChipSpec, TOFINO_1


def run_lints(
    module: Module,
    engine: DiagnosticEngine,
    chip: ChipSpec = TOFINO_1,
) -> DiagnosticEngine:
    """Run every read-only lint over ``module``.  Never mutates the IR."""
    from repro.passes.dagcheck import check_dag

    run_module_lints(module, engine)
    for fn in module.functions.values():
        if fn.blocks:
            check_dag(fn, engine=engine)
    lint_resources(module, engine, chip)
    return engine


#: Back-compat alias; the module-level API mirrors ``verify_module``.
lint_module = run_lints


def lint_source(
    source: str,
    *,
    engine: Optional[DiagnosticEngine] = None,
    device_id: Optional[int] = None,
    target: str = "tna",
    chip: Optional[ChipSpec] = None,
    defines: Optional[dict[str, int]] = None,
    program_name: str = "netcl",
    deep: bool = True,
) -> DiagnosticEngine:
    """Lint NetCL source text; returns the (possibly caller-provided)
    engine holding every diagnostic found."""
    from repro.passes.manager import PassOptions, run_default_pipeline
    from repro.passes.memcheck import MemoryCheckError

    engine = engine or DiagnosticEngine()
    chip = chip or TOFINO_1

    try:
        program = parse_source(source, defines)
        sema = analyze(program)
        module = lower_to_ir(sema, name=program_name)
    except CompileError as e:
        for d in e.diagnostics:
            if not d.code:
                d.code = "NCL100"
        engine.extend(e.diagnostics)
        return engine

    run_lints(module, engine, chip)
    if engine.errors or not deep:
        # A broken CFG would make the pipeline itself raise; stop here.
        return engine

    devices = (
        [device_id] if device_id is not None else estimate_devices(module)
    )
    # Location-less kernels compile for every device; report each of their
    # violations once, not once per device.
    seen = {(d.code, d.line, d.col, d.message) for d in engine.diagnostics}

    def extend_unique(diags) -> None:
        for d in diags:
            key = (d.code, d.line, d.col, d.message)
            if key in seen:
                continue
            seen.add(key)
            engine.extend([d])

    for dev in devices:
        # A fresh lowering per device: the pipeline mutates its module.
        module2 = lower_to_ir(analyze(parse_source(source, defines)), name=program_name)
        try:
            run_default_pipeline(module2, PassOptions(target=target), dev)
        except MemoryCheckError as e:
            extend_unique(getattr(e, "diagnostics", []) or [])
        except CompileError as e:
            for d in e.diagnostics:
                if not d.code:
                    d.code = "NCL100"
            extend_unique(e.diagnostics)
    return engine
