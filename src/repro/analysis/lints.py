"""The lint suite: per-function and cross-kernel IR checks (NCL001-NCL010).

Every lint here is *read-only*: it never mutates the module it inspects,
so linting can run on the same IR that continues through the compile
pipeline (and the fuzz harness asserts exactly that).

NCL005 and the NCL008-NCL010 family are backed by the value-range
abstract interpreter (:mod:`repro.analysis.absint`): one
:class:`RangeAnalysis` fixed point per function feeds all of them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.absint import RangeAnalysis
from repro.analysis.dataflow import (
    EMPTY,
    Direction,
    Fact,
    GenKillAnalysis,
    iter_reverse_postorder,
)
from repro.analysis.diagnostics import DiagnosticEngine
from repro.ir.instructions import (
    Alloca,
    AtomicOp,
    AtomicRMW,
    BinOp,
    BinOpKind,
    Br,
    Cast,
    CastKind,
    Constant,
    ICmp,
    Instruction,
    Load,
    LoadGlobal,
    LoadMsg,
    Lookup,
    LookupVal,
    Phi,
    Select,
    Store,
    StoreGlobal,
    StoreMsg,
)
from repro.ir.module import Function, Module
from repro.ir.types import IntType


def _display(name: str) -> str:
    """Human name of an alloca slot (drop the ``.addr`` ABI suffix)."""
    return name[:-5] if name.endswith(".addr") else name


# -- NCL001: use before write --------------------------------------------------


class AssignedSlots(GenKillAnalysis):
    """Forward must-analysis: slots definitely written on every path."""

    direction = Direction.FORWARD
    may = False  # intersection meet

    def universe(self, fn: Function) -> Fact:
        return frozenset(
            id(i) for i in fn.instructions() if isinstance(i, Alloca)
        )

    def inst_gen(self, inst: Instruction) -> Fact:
        if isinstance(inst, Store):
            return frozenset((id(inst.slot),))
        return EMPTY


def lint_uninitialized(fn: Function, engine: DiagnosticEngine) -> None:
    """NCL001: a Load may execute before any Store to its slot."""
    analysis = AssignedSlots(fn).run()
    reported: Set[int] = set()
    for bb in iter_reverse_postorder(fn):
        facts = analysis.facts_before(bb)
        for inst, fact in zip(bb.instructions, facts):
            if not isinstance(inst, Load):
                continue
            slot = inst.slot
            if id(slot) in fact or id(slot) in reported:
                continue
            reported.add(id(slot))
            engine.emit(
                "NCL001",
                f"'{_display(slot.name)}' may be read before it is written "
                f"in kernel '{fn.name}'",
                inst.loc,
            )


# -- NCL004: dead stores -------------------------------------------------------


class LiveSlots(GenKillAnalysis):
    """Backward may-analysis: scalar slots whose current value may be read."""

    direction = Direction.BACKWARD
    may = True

    def inst_gen(self, inst: Instruction) -> Fact:
        if isinstance(inst, Load):
            return frozenset((id(inst.slot),))
        return EMPTY

    def inst_kill(self, inst: Instruction) -> Fact:
        if isinstance(inst, Store) and inst.slot.is_scalar and not inst.indices:
            return frozenset((id(inst.slot),))
        return EMPTY


def _is_abi_param_copy(fn: Function, inst: Store) -> bool:
    """Entry-block copy of a by-value parameter into its ``.addr`` slot.

    These are emitted for every by-value argument regardless of use, so
    an unused parameter must not surface as a dead store.
    """
    if inst.parent is not fn.entry:
        return False
    value = inst.value
    return (
        isinstance(value, LoadMsg)
        and inst.slot.name == f"{value.field}.addr"
    )


def lint_dead_stores(fn: Function, engine: DiagnosticEngine) -> None:
    """NCL004: a Store to a scalar local whose value is never read."""
    analysis = LiveSlots(fn).run()
    for bb in fn.blocks:
        facts = analysis.facts_before(bb)
        for inst, fact in zip(bb.instructions, facts):
            if not isinstance(inst, Store):
                continue
            if not inst.slot.is_scalar or inst.indices:
                continue
            if id(inst.slot) in fact:
                continue
            if _is_abi_param_copy(fn, inst):
                continue
            engine.emit(
                "NCL004",
                f"value stored to '{_display(inst.slot.name)}' is never read",
                inst.loc,
            )


# -- NCL005: implicit truncation -----------------------------------------------


class _BitsEstimator:
    """Upper bound on the number of significant bits a value can carry.

    Deliberately optimistic for common narrowing idioms (masking, modulo,
    comparisons, constant folding) so that provably-lossless implicit
    truncations are not flagged; anything unknown falls back to the full
    type width.
    """

    _DEPTH_LIMIT = 32

    def __init__(self, fn: Function) -> None:
        self.fn = fn
        self._memo: Dict[int, int] = {}
        self._in_progress: Set[int] = set()
        self._stores: Optional[Dict[int, List[Store]]] = None

    def _stores_to(self, slot: Alloca) -> List[Store]:
        if self._stores is None:
            self._stores = {}
            for inst in self.fn.instructions():
                if isinstance(inst, Store):
                    self._stores.setdefault(id(inst.slot), []).append(inst)
        return self._stores.get(id(slot), [])

    def bits(self, value, depth: int = 0) -> int:
        width = value.type.width if isinstance(value.type, IntType) else 64
        if depth > self._DEPTH_LIMIT:
            return width
        key = id(value)
        if key in self._memo:
            return self._memo[key]
        if key in self._in_progress:  # phi/load cycle: give up
            return width
        self._in_progress.add(key)
        try:
            result = min(width, self._bits(value, width, depth))
        finally:
            self._in_progress.discard(key)
        self._memo[key] = result
        return result

    @staticmethod
    def _fold_const(inst: BinOp) -> Optional[int]:
        """Evaluate a constant-operand BinOp; None when not foldable."""
        if not (isinstance(inst.a, Constant) and isinstance(inst.b, Constant)):
            return None
        a, b = inst.a.value, inst.b.value
        k = inst.kind
        try:
            if k in (BinOpKind.ADD, BinOpKind.SADDU):
                out = a + b
            elif k in (BinOpKind.SUB, BinOpKind.SSUBU):
                out = a - b
            elif k == BinOpKind.MUL:
                out = a * b
            elif k == BinOpKind.AND:
                out = a & b
            elif k == BinOpKind.OR:
                out = a | b
            elif k == BinOpKind.XOR:
                out = a ^ b
            elif k == BinOpKind.SHL:
                out = a << b
            elif k == BinOpKind.LSHR:
                out = a >> b
            elif k in (BinOpKind.UDIV, BinOpKind.SDIV):
                out = a // b
            elif k in (BinOpKind.UREM, BinOpKind.SREM):
                out = a % b
            else:
                return None
        except (ZeroDivisionError, ValueError):
            return None
        if isinstance(inst.type, IntType):
            out = inst.type.wrap(out)
        return out

    def _bits(self, value, width: int, depth: int) -> int:
        if isinstance(value, Constant):
            return max(value.value.bit_length(), 0) if value.value >= 0 else width
        if isinstance(value, ICmp):
            return 1
        if isinstance(value, Cast):
            inner = self.bits(value.value, depth + 1)
            if value.kind in (CastKind.ZEXT, CastKind.TRUNC, CastKind.BITCAST):
                return min(inner, width)
            return width  # sext may smear the sign bit
        if isinstance(value, Select):
            return max(self.bits(value.t, depth + 1), self.bits(value.f, depth + 1))
        if isinstance(value, Phi):
            if not value.incoming:
                return width
            return max(self.bits(v, depth + 1) for v, _ in value.incoming)
        if isinstance(value, Load) and value.slot.is_scalar and not value.indices:
            stores = self._stores_to(value.slot)
            if not stores:
                return width
            return max(self.bits(s.value, depth + 1) for s in stores)
        if isinstance(value, BinOp):
            folded = self._fold_const(value)
            if folded is not None:
                return folded.bit_length() if folded >= 0 else width
            a = self.bits(value.a, depth + 1)
            b = self.bits(value.b, depth + 1)
            k = value.kind
            if k == BinOpKind.AND:
                return min(a, b)
            if k in (BinOpKind.OR, BinOpKind.XOR):
                return max(a, b)
            if k in (BinOpKind.ADD, BinOpKind.SADDU):
                return max(a, b) + 1
            if k == BinOpKind.MUL:
                return a + b
            if k == BinOpKind.SHL and isinstance(value.b, Constant):
                return a + value.b.value
            if k == BinOpKind.LSHR and isinstance(value.b, Constant):
                return max(a - value.b.value, 0)
            if k in (BinOpKind.UREM,) and isinstance(value.b, Constant) and value.b.value > 0:
                return (value.b.value - 1).bit_length()
            if k in (BinOpKind.UDIV,) and isinstance(value.b, Constant) and value.b.value > 0:
                return max(a - (value.b.value.bit_length() - 1), 0)
            if k == BinOpKind.SSUBU:
                return max(a, b)  # saturates at zero
            return width
        return width


def lint_truncation(
    fn: Function, engine: DiagnosticEngine, ranges: Optional[RangeAnalysis] = None
) -> None:
    """NCL005: an assignment implicitly drops significant bits.

    Two independent provers may clear a truncation: the syntactic bits
    estimator (masking/shift idioms) and the value-range analysis
    (branch-guarded assignments — ``if (x < 10) y8 = x;`` is safe even
    though ``x`` is 32 bits wide).
    """
    est = _BitsEstimator(fn)
    for inst in fn.instructions():
        if isinstance(inst, Store):
            value, target = inst.value, f"'{_display(inst.slot.name)}'"
        elif isinstance(inst, StoreMsg):
            value, target = inst.value, f"message field '{inst.field}'"
        elif isinstance(inst, StoreGlobal):
            value, target = inst.value, f"'@{inst.gv.name}'"
        else:
            continue
        if not isinstance(value, Cast) or value.kind != CastKind.TRUNC:
            continue
        if value.explicit:
            continue
        src_ty = value.value.type
        dst_ty = value.type
        if not isinstance(src_ty, IntType) or not isinstance(dst_ty, IntType):
            continue
        if est.bits(value.value) <= dst_ty.width:
            continue
        if ranges is not None and ranges.range_of_value(value.value).fits(dst_ty.width):
            continue
        engine.emit(
            "NCL005",
            f"implicit truncation from {src_ty} to {dst_ty} in assignment "
            f"to {target} may lose significant bits",
            inst.loc or value.loc,
        )


# -- NCL006: unreachable code --------------------------------------------------


def lint_unreachable(fn: Function, engine: DiagnosticEngine) -> None:
    """NCL006: blocks no path from the entry reaches.

    Only blocks containing real (non-terminator) instructions are
    reported — lowering legitimately leaves empty merge blocks behind
    ``if``/``else`` arms that both return.
    """
    reachable: Set[int] = set()
    stack = [fn.entry]
    while stack:
        bb = stack.pop()
        if id(bb) in reachable:
            continue
        reachable.add(id(bb))
        stack.extend(bb.successors())
    for bb in fn.blocks:
        if id(bb) in reachable:
            continue
        body = [i for i in bb.instructions if not i.is_terminator]
        if not body:
            continue
        loc = next((i.loc for i in body if i.loc is not None), None)
        engine.emit(
            "NCL006",
            f"statement in kernel '{fn.name}' is unreachable",
            loc,
        )


# -- NCL002 / NCL003: module-wide global-memory lints --------------------------


_WRITE_ACCESSES = (StoreGlobal,)
_READ_ACCESSES = (LoadGlobal, Lookup, LookupVal)


def _result_is_used(fn: Function, inst: Instruction) -> bool:
    for other in fn.instructions():
        if inst in other.operands:
            return True
    return False


def _access_modes(fn: Function) -> Dict[int, Tuple[bool, bool, Optional[Instruction]]]:
    """Per accessed global (by id): (reads, writes, first write or access)."""
    modes: Dict[int, List] = {}
    for inst in fn.instructions():
        gv = getattr(inst, "gv", None)
        if gv is None:
            continue
        entry = modes.setdefault(id(gv), [False, False, None])
        if isinstance(inst, _WRITE_ACCESSES):
            entry[1] = True
        elif isinstance(inst, _READ_ACCESSES):
            entry[0] = True
        elif isinstance(inst, AtomicRMW):
            if inst.op == AtomicOp.WRITE:
                entry[1] = True
                if _result_is_used(fn, inst):
                    entry[0] = True
            elif inst.op == AtomicOp.READ:
                entry[0] = True
            else:
                # read-modify-write: both a read and a write of the cell
                entry[0] = True
                entry[1] = True
        else:
            continue
        if entry[2] is None:
            entry[2] = inst
    return {k: (r, w, site) for k, (r, w, site) in modes.items()}


def _placements_overlap(a: frozenset, b: frozenset) -> bool:
    """Location sets overlap; an empty set means "everywhere" (§V-C)."""
    if not a or not b:
        return True
    return bool(a & b)


def lint_shared_state(module: Module, engine: DiagnosticEngine) -> None:
    """NCL002: two kernels co-located on a device share a register-space
    global and at least one of them writes it."""
    per_kernel = [(fn, _access_modes(fn)) for fn in module.kernels()]
    reported: Set[Tuple[int, str, str]] = set()
    for gv in module.globals.values():
        if gv.space.is_lookup:
            continue
        users = []
        for fn, modes in per_kernel:
            if id(gv) not in modes:
                continue
            if not _placements_overlap(fn.locations, gv.locations):
                continue
            users.append((fn, modes[id(gv)]))
        for i, (fn_a, (r_a, w_a, site_a)) in enumerate(users):
            for fn_b, (r_b, w_b, site_b) in users[i + 1 :]:
                if not _placements_overlap(fn_a.locations, fn_b.locations):
                    continue
                if not (w_a or w_b):
                    continue  # two readers never conflict
                key = (id(gv), fn_a.name, fn_b.name)
                if key in reported:
                    continue
                reported.add(key)
                writer, other = (fn_a, fn_b) if w_a else (fn_b, fn_a)
                site = site_b or site_a
                engine.emit(
                    "NCL002",
                    f"global '@{gv.name}' is written by kernel "
                    f"'{writer.name}' and also accessed by kernel "
                    f"'{other.name}' on the same device; cross-kernel "
                    f"state updates are not synchronized",
                    site.loc if site is not None else gv.loc,
                )


def lint_dead_globals(module: Module, engine: DiagnosticEngine) -> None:
    """NCL003: register-space globals the data plane only ever writes.

    ``_managed_`` memory is exempt — the host reads it through the
    control plane, so device-side write-only traffic is the normal
    telemetry pattern.  Globals placed on several devices are also
    exempt from the written-never-read rule: replicated state (e.g.
    Paxos acceptor logs) is written for durability and consumed out of
    band.
    """
    for gv in module.globals.values():
        if gv.space.is_lookup or gv.space.is_managed:
            continue
        replicated = len(gv.locations) > 1
        reads = False
        writes = False
        accessed = False
        for fn in module.functions.values():
            for inst in fn.instructions():
                if getattr(inst, "gv", None) is not gv:
                    continue
                accessed = True
                if isinstance(inst, _READ_ACCESSES):
                    reads = True
                elif isinstance(inst, AtomicRMW):
                    if inst.op != AtomicOp.WRITE or _result_is_used(fn, inst):
                        reads = True
                    if inst.op != AtomicOp.READ:
                        writes = True
                elif isinstance(inst, _WRITE_ACCESSES):
                    writes = True
        if not accessed:
            engine.emit(
                "NCL003",
                f"global '@{gv.name}' is declared but never accessed",
                gv.loc,
            )
        elif writes and not reads and not replicated:
            engine.emit(
                "NCL003",
                f"global '@{gv.name}' is written but never read",
                gv.loc,
            )


# -- NCL008 / NCL009 / NCL010: range-backed lints -------------------------------


def lint_overflow(
    fn: Function, engine: DiagnosticEngine, ranges: RangeAnalysis
) -> None:
    """NCL008: an arithmetic operation provably wraps at its width.

    Only *definite* wraps are reported (the mathematical result lies
    entirely outside the representable range on every execution);
    may-wrap results are the normal state of affairs for full-range
    inputs and would drown the signal.
    """
    for bb in fn.blocks:
        for inst in bb.instructions:
            kind = ranges.must_wrap.get(id(inst))
            if kind is None:
                continue
            assert isinstance(inst, BinOp) and isinstance(inst.type, IntType)
            a = ranges.range_of_value(inst.a)
            b = ranges.range_of_value(inst.b)
            engine.emit(
                "NCL008",
                f"'{kind.value}' of {a} and {b} always wraps past "
                f"{inst.type} in kernel '{fn.name}'",
                inst.loc,
            )


def lint_const_branches(
    fn: Function, engine: DiagnosticEngine, ranges: RangeAnalysis
) -> None:
    """NCL009: a branch condition is decidable from value ranges alone.

    Conditions built purely from constants are exempt: loop unrolling
    and compile-time feature selection legitimately produce those, and
    flagging them would fire on every ``if (i < 2)`` inside an unrolled
    loop body.  The lint targets conditions that are *accidentally*
    constant — ``if (x >= 0)`` on unsigned ``x``, range-contradicted
    comparisons after a guard, and the like.
    """
    for bb in fn.blocks:
        term = bb.terminator
        if not isinstance(term, Br):
            continue
        verdict = ranges.branch_verdicts.get(id(term))
        if verdict is None:
            continue
        cond = term.cond
        if isinstance(cond, Constant):
            continue
        if isinstance(cond, ICmp) and all(
            isinstance(op, Constant) for op in (cond.a, cond.b)
        ):
            continue
        engine.emit(
            "NCL009",
            f"branch condition in kernel '{fn.name}' is always "
            f"{'true' if verdict else 'false'}",
            term.loc or (cond.loc if isinstance(cond, Instruction) else None),
        )


def lint_div_by_zero(
    fn: Function, engine: DiagnosticEngine, ranges: RangeAnalysis
) -> None:
    """NCL010: a division/modulo divisor may be zero.

    The interpreter (and real targets) trap on a zero divisor, so any
    divisor whose range includes zero is a latent packet-drop.  Guarding
    the division (``if (d != 0)``) or forcing a bit (``d | 1``) clears
    the warning through branch refinement / known-bits.
    """
    for bb in fn.blocks:
        for inst in bb.instructions:
            divisor = ranges.zero_divisors.get(id(inst))
            if divisor is None:
                continue
            assert isinstance(inst, BinOp)
            op = "division" if inst.kind in (BinOpKind.UDIV, BinOpKind.SDIV) else "modulo"
            detail = (
                "is zero" if divisor.is_const else f"may be zero (range {divisor})"
            )
            engine.emit(
                "NCL010",
                f"{op} divisor {detail} in kernel '{fn.name}'",
                inst.loc,
            )


# -- entry point ---------------------------------------------------------------


def run_function_lints(fn: Function, engine: DiagnosticEngine) -> None:
    ranges = RangeAnalysis(fn).run()
    lint_uninitialized(fn, engine)
    lint_dead_stores(fn, engine)
    lint_truncation(fn, engine, ranges)
    lint_unreachable(fn, engine)
    lint_overflow(fn, engine, ranges)
    lint_const_branches(fn, engine, ranges)
    lint_div_by_zero(fn, engine, ranges)


def lint_dropped_statements(module: Module, engine: DiagnosticEngine) -> None:
    """NCL006 (frontend variant): statements the lowerer dropped because
    every path had already returned."""
    from repro.ir.instructions import SourceLoc

    for fn_name, line, col in module.dropped_statements:
        engine.emit(
            "NCL006",
            f"statement in kernel '{fn_name}' is unreachable",
            SourceLoc(line, col) if line else None,
        )


def run_module_lints(module: Module, engine: DiagnosticEngine) -> None:
    for fn in module.functions.values():
        if fn.blocks:
            run_function_lints(fn, engine)
    lint_shared_state(module, engine)
    lint_dead_globals(module, engine)
    lint_dropped_statements(module, engine)
