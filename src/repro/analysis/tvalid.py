"""Translation validation: prove each middle-end pass behavior-preserving.

The NetCL pipeline has no formal semantics to diff symbolically, but it
has something almost as good: :class:`repro.ir.interp.IRInterpreter` is
the executable reference semantics, and kernels are finite, loop-free
message processors.  So the harness validates *behavior*, not syntax:

1. Before the pipeline touches a kernel, capture its behavior — run the
   interpreter over a deterministic set of input vectors (boundary
   values mined from the value-range abstract domain, plus seeded
   random vectors) against one shared :class:`GlobalState`, recording
   per vector the forwarding outcome, every message field, and a full
   memory snapshot.
2. After every pass, capture again and compare to the pre-pipeline
   reference.  The first differing vector is a concrete counterexample,
   and the pass that produced it is named in the raised
   :class:`TranslationValidationError`.

Trap semantics are *refinement*, not equality: the optimizer is allowed
to delete a division whose result is unused, so a run that traps in the
reference constrains only the vectors before it (the optimized kernel
may trap later or never).  Introducing an *earlier* trap is a bug and
is reported.

Kernels containing ``ncl.rand`` are skipped: if-conversion legitimately
changes how many draws execute, so their behavior is not a function of
the input vector alone.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.absint import RangeAnalysis
from repro.ir.instructions import Constant, ICmp, Intrinsic
from repro.ir.interp import GlobalState, InterpError, IRInterpreter, KernelMessage
from repro.ir.module import Function, Module
from repro.ir.types import IntType

#: vectors beyond the mined boundary set
DEFAULT_RANDOM_VECTORS = 12
#: hard cap so pathological functions don't explode the suite
MAX_VECTORS = 48


class TranslationValidationError(Exception):
    """A pass changed observable kernel behavior.

    Carries everything needed to reproduce: the offending pass, the
    kernel, the concrete counterexample input vector, and a description
    of the first observed difference.
    """

    def __init__(
        self,
        pass_name: str,
        function: str,
        vector_index: int,
        vector: Dict[str, object],
        detail: str,
    ) -> None:
        self.pass_name = pass_name
        self.function = function
        self.vector_index = vector_index
        self.vector = vector
        self.detail = detail
        super().__init__(
            f"pass '{pass_name}' miscompiles kernel '{function}': "
            f"{detail} (counterexample vector #{vector_index}: {vector})"
        )

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "pass": self.pass_name,
            "function": self.function,
            "vector_index": self.vector_index,
            "vector": self.vector,
            "detail": self.detail,
        }


# -- input vector generation -----------------------------------------------------


def _mined_values(fn: Function) -> List[int]:
    """Interesting concrete values: abstract-domain boundaries of every
    computed range, comparison constants, and their off-by-ones.

    These target exactly the points where branch behavior flips, which
    random vectors alone would miss with high probability on 32-bit
    fields.
    """
    ra = RangeAnalysis(fn).run()
    vals = {0, 1}
    for rng in ra.result_range.values():
        vals.update((rng.lo, rng.hi, rng.lo - 1, rng.hi + 1, rng.bits))
    for inst in fn.instructions():
        if isinstance(inst, ICmp):
            for op in (inst.a, inst.b):
                if isinstance(op, Constant) and isinstance(op.type, IntType):
                    u = op.type.to_unsigned(op.value)
                    vals.update((u, u - 1, u + 1))
    return sorted(v for v in vals if v >= 0)


def generate_vectors(
    fn: Function,
    *,
    n_random: int = DEFAULT_RANDOM_VECTORS,
    seed: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Deterministic input vectors for ``fn``: one per mined boundary
    value (each field cycled through nearby boundaries) plus ``n_random``
    seeded-random vectors.  The seed derives from the kernel *name* (not
    ``hash()``, which is salted per process) so reruns reproduce."""
    import random

    if seed is None:
        seed = zlib.crc32(fn.name.encode())
    rng = random.Random(seed)
    mined = _mined_values(fn)

    scalar_args = [a for a in fn.args if not a.is_array]
    array_args = [a for a in fn.args if a.is_array]

    def clip(value: int, ty: IntType) -> int:
        return value & ty.mask

    vectors: List[Dict[str, object]] = []

    # Boundary sweep: vector i assigns field j the (i+j)-th mined value,
    # staggering so co-varying fields still hit asymmetric combinations.
    n_boundary = min(len(mined), MAX_VECTORS - n_random)
    for i in range(n_boundary):
        vec: Dict[str, object] = {}
        for j, arg in enumerate(scalar_args):
            assert isinstance(arg.type, IntType)
            vec[arg.name] = clip(mined[(i + j) % len(mined)], arg.type)
        for arg in array_args:
            assert isinstance(arg.type, IntType)
            vec[arg.name] = [
                clip(mined[(i + k) % len(mined)], arg.type) for k in range(arg.spec)
            ]
        vectors.append(vec)

    for _ in range(n_random):
        vec = {}
        for arg in scalar_args:
            assert isinstance(arg.type, IntType)
            vec[arg.name] = rng.randrange(0, arg.type.mask + 1)
        for arg in array_args:
            assert isinstance(arg.type, IntType)
            vec[arg.name] = [
                rng.randrange(0, arg.type.mask + 1) for _ in range(arg.spec)
            ]
        vectors.append(vec)
    return vectors


# -- behavior capture --------------------------------------------------------------


@dataclass
class BehaviorCapture:
    """Observable behavior of one kernel over a vector sequence.

    ``runs[i]`` is ``(outcome kind, outcome target, message fields,
    memory snapshot)`` after processing vector ``i``; ``trap_index`` is
    the vector on which the interpreter raised (runs stop there).
    """

    runs: List[Tuple[str, Optional[int], Dict[str, object], dict]] = field(
        default_factory=list
    )
    trap_index: Optional[int] = None


def _uses_rand(fn: Function) -> bool:
    return any(
        isinstance(i, Intrinsic) and i.callee == "ncl.rand" for i in fn.instructions()
    )


def capture_behavior(
    module: Module,
    fn: Function,
    vectors: List[Dict[str, object]],
    *,
    device_id: int = 1,
) -> BehaviorCapture:
    """Run ``fn`` over ``vectors`` against one fresh shared state."""
    state = GlobalState()
    interp = IRInterpreter(module, state, device_id=device_id)
    cap = BehaviorCapture()
    for i, vec in enumerate(vectors):
        msg = KernelMessage(
            {k: (list(v) if isinstance(v, list) else v) for k, v in vec.items()}
        )
        try:
            outcome = interp.run_kernel(fn, msg)
        except InterpError:
            cap.trap_index = i
            break
        cap.runs.append(
            (
                outcome.kind.value,
                outcome.target,
                {
                    k: (list(v) if isinstance(v, list) else v)
                    for k, v in msg.fields.items()
                },
                state.snapshot(),
            )
        )
    return cap


def _diff_captures(ref: BehaviorCapture, cur: BehaviorCapture) -> Optional[Tuple[int, str]]:
    """First observable divergence, or None when ``cur`` refines ``ref``."""
    n = min(len(ref.runs), len(cur.runs))
    for i in range(n):
        r, c = ref.runs[i], cur.runs[i]
        if r[0] != c[0] or r[1] != c[1]:
            return i, (
                f"forwarding action diverged: reference "
                f"{r[0]}({r[1]}) vs optimized {c[0]}({c[1]})"
            )
        if r[2] != c[2]:
            fields = sorted(k for k in r[2] if r[2][k] != c[2].get(k))
            return i, (
                f"message fields diverged: {', '.join(fields)} "
                f"(reference {[r[2][k] for k in fields]} vs "
                f"optimized {[c[2].get(k) for k in fields]})"
            )
        if r[3] != c[3]:
            return i, "global memory diverged"
    # Trap refinement: the optimized kernel may drop a reference trap
    # (DCE of an unused trapping op) but must never introduce an earlier one.
    if cur.trap_index is not None and (
        ref.trap_index is None or cur.trap_index < ref.trap_index
    ):
        return cur.trap_index, "optimized kernel traps where the reference did not"
    return None


# -- the validator ------------------------------------------------------------------


class PassValidator:
    """Differential-execution oracle the :class:`PassManager` consults.

    One validator spans a pipeline run.  :meth:`prepare` fixes the input
    vectors and reference behavior from the *pre-pipeline* IR; every
    :meth:`check` re-executes the (possibly rewritten) kernel and
    compares against that reference, so blame lands on the first pass
    whose output diverges.  Equivalence is transitive: comparing every
    pass against the original is both cheaper and sharper than
    neighbor-to-neighbor comparison.
    """

    def __init__(
        self,
        module: Module,
        *,
        device_id: Optional[int] = None,
        n_random: int = DEFAULT_RANDOM_VECTORS,
    ) -> None:
        self.module = module
        self.device_id = device_id if device_id is not None else 1
        self.n_random = n_random
        self._vectors: Dict[str, List[Dict[str, object]]] = {}
        self._reference: Dict[str, BehaviorCapture] = {}
        self._skipped: Dict[str, str] = {}
        #: (pass name, function, vectors compared) per successful check
        self.checks: List[Tuple[str, str, int]] = []

    # -- reference -------------------------------------------------------------
    def prepare(self, fn: Function) -> None:
        """Record the reference behavior of ``fn`` (pre-pipeline IR)."""
        if fn.name in self._reference or fn.name in self._skipped:
            return
        if _uses_rand(fn):
            self._skipped[fn.name] = (
                "uses ncl.rand (draw count is not input-deterministic)"
            )
            return
        vectors = generate_vectors(fn, n_random=self.n_random)
        self._vectors[fn.name] = vectors
        self._reference[fn.name] = capture_behavior(
            self.module, fn, vectors, device_id=self.device_id
        )

    # -- per-pass check ----------------------------------------------------------
    def check(self, pass_name: str, fn: Function) -> None:
        """Compare ``fn``'s current behavior to its reference; raise
        :class:`TranslationValidationError` on the first divergence."""
        if fn.name in self._skipped:
            return
        ref = self._reference.get(fn.name)
        if ref is None:
            return
        vectors = self._vectors[fn.name]
        cur = capture_behavior(self.module, fn, vectors, device_id=self.device_id)
        diff = _diff_captures(ref, cur)
        if diff is not None:
            index, detail = diff
            raise TranslationValidationError(
                pass_name, fn.name, index, vectors[index], detail
            )
        self.checks.append((pass_name, fn.name, min(len(ref.runs), len(cur.runs))))

    def check_all(self, pass_name: str, functions: List[Function]) -> None:
        """Validate every prepared kernel (after module-wide passes)."""
        for fn in functions:
            self.check(pass_name, fn)

    # -- reporting ---------------------------------------------------------------
    def report(self) -> Dict[str, object]:
        return {
            "device_id": self.device_id,
            "kernels": sorted(self._reference),
            "skipped": dict(sorted(self._skipped.items())),
            "vectors": {k: len(v) for k, v in sorted(self._vectors.items())},
            "checks": [
                {"pass": p, "function": f, "vectors_compared": n}
                for p, f, n in self.checks
            ],
        }
