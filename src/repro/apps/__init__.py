"""The paper's evaluation applications (§VII, Table III).

NetCL sources live in ``netcl/*.ncl``; our handwritten P4-16 baselines
(the paper's "P4" column — the authors also re-wrote all baselines
themselves) live in ``p4/*.p4``.  Each application also has a host-side
driver module building the simulated cluster:

* :mod:`repro.apps.agg`   — SwitchML streaming aggregation (AGG)
* :mod:`repro.apps.cache` — NetCache-style KV cache (CACHE)
* :mod:`repro.apps.paxos` — in-network Paxos (P4XOS)
* :mod:`repro.apps.calc`  — the P4-tutorial calculator (CALC)
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

APPS_DIR = Path(__file__).parent
NETCL_DIR = APPS_DIR / "netcl"
P4_DIR = APPS_DIR / "p4"

#: application name -> NetCL source file
NETCL_SOURCES = {
    "agg": NETCL_DIR / "agg.ncl",
    "cache": NETCL_DIR / "cache.ncl",
    "collective": NETCL_DIR / "collective.ncl",
    "paxos": NETCL_DIR / "paxos.ncl",
    "rpc": NETCL_DIR / "rpc.ncl",
    "calc": NETCL_DIR / "calc.ncl",
}

#: application name -> handwritten P4 baseline
P4_SOURCES = {
    "agg": P4_DIR / "agg.p4",
    "cache": P4_DIR / "cache.p4",
    "paxos_acceptor": P4_DIR / "paxos_acceptor.p4",
    "paxos_learner": P4_DIR / "paxos_learner.p4",
    "paxos_leader": P4_DIR / "paxos_leader.p4",
    "calc": P4_DIR / "calc.p4",
}


def netcl_source(name: str) -> str:
    """Read one application's NetCL source text."""
    return NETCL_SOURCES[name].read_text()


def p4_source(name: str) -> str:
    """Read one handwritten P4 baseline's source text."""
    return P4_SOURCES[name].read_text()


def compile_app(
    name: str,
    device_id: Optional[int] = None,
    *,
    target: str = "tna",
    defines: Optional[dict[str, int]] = None,
    **kwargs,
):
    """Compile one of the paper's applications for a device."""
    from repro.core import compile_netcl

    return compile_netcl(
        netcl_source(name),
        device_id,
        target=target,
        defines=defines,
        program_name=name,
        **kwargs,
    )
