"""AGG host side: SwitchML-style workers streaming tensors (§VII, Fig. 14).

Each worker splits its tensor into chunks of ``SLOT_SIZE`` values, keeps a
window of outstanding slots, and advances a slot to its next chunk when
the aggregated result arrives (via the switch's multicast).  Reliability
follows [13]: slots are double-buffered with an alternating version bit
and lost results are recovered by retransmitting the request — the switch
reflects the completed aggregation back (the ``cnt == 0`` path in the
kernel).

The slot/window/version machinery itself lives in
:class:`repro.collective.protocol.SlotStream` — it is shared with the
hierarchical collectives of :mod:`repro.collective`; this module keeps
only what is AGG-specific (integer chunks, the bit-length exponent, the
single-switch cluster builder).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.apps import compile_app
from repro.collective.protocol import (
    NUM_SLOTS,
    SlotStream,
    StallError,
    StreamStats,
    require_all_done,
)
from repro.core.driver import CompiledProgram
from repro.netsim import DEVICE, HOST, Link, Network
from repro.runtime import KernelSpec, NetCLDevice

SLOT_SIZE = 32
AGG_MCAST_GROUP = 42
AGG_DEVICE = 1

#: kept under their historical names for existing callers
AggStats = StreamStats
AggStallError = StallError

__all__ = [
    "AGG_DEVICE",
    "AGG_MCAST_GROUP",
    "AggCluster",
    "AggStallError",
    "AggStats",
    "AggWorker",
    "NUM_SLOTS",
    "SLOT_SIZE",
    "build_agg_cluster",
    "expected_sum",
]


class AggWorker(SlotStream):
    """One training worker's host logic."""

    def __init__(
        self,
        network: Network,
        host_id: int,
        worker_index: int,
        spec: KernelSpec,
        tensor: list[int],
        *,
        window: int = 16,
        timeout_ns: int = 400_000,
        device_id: int = AGG_DEVICE,
    ) -> None:
        num_chunks = (len(tensor) + SLOT_SIZE - 1) // SLOT_SIZE
        super().__init__(
            network,
            host_id,
            worker_index,
            spec,
            num_chunks,
            window=window,
            timeout_ns=timeout_ns,
            device_id=device_id,
            comp=1,
        )
        self.tensor = tensor
        self.result: list[int] = [0] * len(tensor)
        self.exponents: list[int] = [0] * num_chunks

    def _chunk_values(self, chunk: int) -> list[int]:
        lo = chunk * SLOT_SIZE
        vals = self.tensor[lo : lo + SLOT_SIZE]
        return vals + [0] * (SLOT_SIZE - len(vals))

    def _chunk_payload(self, chunk: int) -> list:
        values = self._chunk_values(chunk)
        exponent = max((v.bit_length() for v in values), default=0)
        return [exponent, values]

    def _accept_result(self, chunk: int, values: list) -> None:
        exponent, v = values[4], values[5]
        lo = chunk * SLOT_SIZE
        n = min(SLOT_SIZE, len(self.tensor) - lo)
        self.result[lo : lo + n] = v[:n]
        self.exponents[chunk] = exponent
        self.stats.elements_aggregated += n


@dataclass
class AggCluster:
    network: Network
    device: NetCLDevice
    workers: list[AggWorker]
    compiled: CompiledProgram

    def run(self, until_ms: float = 1000.0, *, require_done: bool = False) -> None:
        """Run the cluster; with ``require_done`` a stalled run raises
        :class:`~repro.collective.protocol.StallError` naming which
        workers and chunks are incomplete."""
        for w in self.workers:
            w.start()
        self.network.sim.run(until_ns=int(until_ms * 1e6))
        if require_done:
            self.require_done()

    def require_done(self) -> None:
        require_all_done(self.workers, what="worker", label="chunk")

    def stall_report(self) -> list[str]:
        """One diagnostic line per incomplete worker (empty when done)."""
        out = []
        for w in self.workers:
            r = w.stall_report()
            if r is not None:
                out.append(f"worker {w.worker_index}: {r}")
        return out

    @property
    def all_done(self) -> bool:
        return all(w.done for w in self.workers)


def build_agg_cluster(
    num_workers: int = 2,
    tensor_elements: int = 4096,
    *,
    target: str = "tna",
    backend: str = "netcl",
    window: int = 16,
    loss_probability: float = 0.0,
    link_latency_ns: int = 1000,
    bandwidth_gbps: float = 100.0,
    seed: int = 7,
) -> AggCluster:
    """Compile AGG and wire up the rack: workers around one ToR switch.

    ``backend="netcl"`` runs the compiled NetCL kernel; ``backend="p4"``
    runs our handwritten P4 baseline through the P4 interpreter (the
    paper's "P4" series in Fig. 14 — the host program stays identical).
    """
    compiled = compile_app(
        "agg", AGG_DEVICE, target=target, defines={"NUM_WORKERS": num_workers}
    )
    net = Network(seed=seed)
    if backend == "p4":
        from repro.apps import p4_source
        from repro.p4 import parse_p4, p4_to_pipeline_spec, P4NetCLSwitchDevice
        from repro.tofino.report import build_report

        # handwritten P4 takes the worker count as a compile-time constant
        src = p4_source("agg").replace(
            "const bit<8>  NUM_WORKERS = 2;",
            f"const bit<8>  NUM_WORKERS = {num_workers};",
        )
        prog = parse_p4(src)
        device = P4NetCLSwitchDevice(prog, AGG_DEVICE)
        processing = int(
            build_report(p4_to_pipeline_spec(prog, name="agg")).latency.total_ns
        )
    else:
        device = NetCLDevice(AGG_DEVICE, compiled.module, compiled.kernels())
        processing = int(compiled.report.latency.total_ns) if compiled.report else 500
    net.add_switch(device, processing_ns=processing)

    rng = random.Random(seed)
    spec = KernelSpec.from_kernel(compiled.kernels()[0])
    workers: list[AggWorker] = []
    for w in range(num_workers):
        host_id = w + 1
        net.add_host(host_id)
        net.link(
            HOST(host_id),
            DEVICE(AGG_DEVICE),
            Link(
                latency_ns=link_latency_ns,
                bandwidth_gbps=bandwidth_gbps,
                loss_probability=loss_probability,
            ),
        )
        tensor = [rng.randrange(0, 1 << 16) for _ in range(tensor_elements)]
        workers.append(
            AggWorker(net, host_id, w, spec, tensor, window=window)
        )
    net.add_multicast_group(AGG_MCAST_GROUP, [HOST(w.host_id) for w in workers])
    return AggCluster(net, device, workers, compiled)


def expected_sum(cluster: AggCluster) -> list[int]:
    """Ground truth: element-wise (wrapping u32) sum over workers."""
    n = len(cluster.workers[0].tensor)
    out = [0] * n
    for w in cluster.workers:
        for i, v in enumerate(w.tensor):
            out[i] = (out[i] + v) & 0xFFFFFFFF
    return out
