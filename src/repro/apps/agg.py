"""AGG host side: SwitchML-style workers streaming tensors (§VII, Fig. 14).

Each worker splits its tensor into chunks of ``SLOT_SIZE`` values, keeps a
window of outstanding slots, and advances a slot to its next chunk when
the aggregated result arrives (via the switch's multicast).  Reliability
follows [13]: slots are double-buffered with an alternating version bit
and lost results are recovered by retransmitting the request — the switch
reflects the completed aggregation back (the ``cnt == 0`` path in the
kernel).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.apps import compile_app
from repro.core.driver import CompiledProgram
from repro.netsim import DEVICE, HOST, Link, Network
from repro.runtime import KernelSpec, Message, NetCLDevice
from repro.runtime.message import NetCLPacket, unpack

SLOT_SIZE = 32
NUM_SLOTS = 256
AGG_MCAST_GROUP = 42
AGG_DEVICE = 1


@dataclass
class AggStats:
    elements_aggregated: int = 0
    chunks_completed: int = 0
    retransmissions: int = 0
    finished_at_ns: Optional[int] = None


class AggWorker:
    """One training worker's host logic."""

    def __init__(
        self,
        network: Network,
        host_id: int,
        worker_index: int,
        spec: KernelSpec,
        tensor: list[int],
        *,
        window: int = 16,
        timeout_ns: int = 400_000,
        device_id: int = AGG_DEVICE,
    ) -> None:
        self.network = network
        self.host = network.hosts[host_id]
        self.host.on_receive = self._on_receive
        self.host_id = host_id
        self.worker_index = worker_index
        self.spec = spec
        self.tensor = tensor
        self.window = min(window, NUM_SLOTS)
        self.timeout_ns = timeout_ns
        self.device_id = device_id
        #: optional repro.reliability channel: sends then carry sequence
        #: numbers so the switch's dedup window filters network-duplicated
        #: packets (the worker keeps driving its own retransmissions, each
        #: with a fresh sequence number).
        self.channel = None
        #: channel seq -> (slot, chunk) it carried, to reject responses to
        #: sends that are no longer current (a reflect answering a stale
        #: retransmission can arrive a full version cycle late, when the
        #: version bit alone can no longer distinguish it).
        self._sent_seqs: dict[int, tuple[int, int]] = {}
        #: (slot, ver) -> the last aggregate accepted there.  When we
        #: complete a chunk through a reflect, the broadcast copy of that
        #: same result may still be in flight; if it lands a full version
        #: cycle later the version bit matches again, so we recognize the
        #: zombie by its payload (results carry no chunk identity).
        self._last_result: dict[tuple[int, int], list[int]] = {}
        self.num_chunks = (len(tensor) + SLOT_SIZE - 1) // SLOT_SIZE
        self.result: list[int] = [0] * len(tensor)
        self.exponents: list[int] = [0] * self.num_chunks
        self.stats = AggStats()
        #: slot -> chunk index currently in flight on that slot (or None)
        self._slot_chunk: dict[int, Optional[int]] = {}
        self._done_chunks: set[int] = set()
        self._timeouts: dict[int, object] = {}

    # -- protocol -----------------------------------------------------------------
    def start(self) -> None:
        for slot in range(self.window):
            self._send_chunk(slot, slot)

    def _chunk_values(self, chunk: int) -> list[int]:
        lo = chunk * SLOT_SIZE
        vals = self.tensor[lo : lo + SLOT_SIZE]
        return vals + [0] * (SLOT_SIZE - len(vals))

    def _send_chunk(self, slot: int, chunk: int) -> None:
        if chunk >= self.num_chunks:
            self._slot_chunk[slot] = None
            self._check_done()
            return
        self._slot_chunk[slot] = chunk
        round_ = chunk // self.window
        ver = round_ & 1
        values = self._chunk_values(chunk)
        exponent = max((v.bit_length() for v in values), default=0)
        payload = [
            ver,
            slot,  # bmp_idx
            ver * NUM_SLOTS + slot,  # agg_idx
            1 << self.worker_index,  # mask
            exponent,
            values,
        ]
        if self.channel is not None:
            seq = self.channel.request(payload, dst=self.host_id, retransmit=False)
            self._sent_seqs[seq] = (slot, chunk)
        else:
            msg = Message(src=self.host_id, dst=self.host_id, comp=1, to=self.device_id)
            self.host.send_message(msg, self.spec, payload)
        self._arm_timeout(slot, chunk)

    def _arm_timeout(self, slot: int, chunk: int) -> None:
        old = self._timeouts.pop(slot, None)
        if old is not None:
            old.cancel()  # type: ignore[attr-defined]

        def fire() -> None:
            if self._slot_chunk.get(slot) == chunk:
                self.stats.retransmissions += 1
                self._send_chunk(slot, chunk)

        self._timeouts[slot] = self.network.sim.after(self.timeout_ns, fire)

    def resync_slot(self, slot: int, chunk: int) -> None:
        """Failover resynchronization: restart ``slot`` at ``chunk``.

        After a switch crash the aggregation state for in-flight chunks
        is gone; every worker must re-contribute from the earliest chunk
        any worker still needs on each slot — including chunks this
        worker already completed (its tensor data is still available, and
        re-receiving a completed result simply advances the slot again).
        """
        if chunk >= self.num_chunks:
            return
        self._send_chunk(slot, chunk)

    def _on_receive(self, packet: NetCLPacket, now_ns: int) -> None:
        _, values = unpack(packet.to_wire(), self.spec)
        ver, bmp_idx, agg_idx, _mask, exponent, v = values
        slot = bmp_idx
        if packet.rel_kind is not None and packet.src == self.host_id:
            # A response on our own flow (reflect, or the multicast our
            # send triggered): only the send still in flight on its slot
            # may complete it.  Other workers' flows reuse the same
            # sequence numbers, so the map applies only to our src.
            origin = self._sent_seqs.pop(packet.rel_seq, None)
            if origin is not None and self._slot_chunk.get(origin[0]) != origin[1]:
                return  # answers a send this slot has moved past
        chunk = self._slot_chunk.get(slot)
        if chunk is None:
            return
        expected_ver = (chunk // self.window) & 1
        if ver != expected_ver or agg_idx != expected_ver * NUM_SLOTS + slot:
            return  # stale duplicate from an earlier round
        if packet.src != self.host_id and self._last_result.get((slot, ver)) == v:
            return  # zombie broadcast of a result we already completed
        self._last_result[(slot, ver)] = list(v)
        if chunk in self._done_chunks:
            # A resynced slot re-received an already-held result: advance.
            self._send_chunk(slot, chunk + self.window)
            return
        self._done_chunks.add(chunk)
        lo = chunk * SLOT_SIZE
        n = min(SLOT_SIZE, len(self.tensor) - lo)
        self.result[lo : lo + n] = v[:n]
        self.exponents[chunk] = exponent
        self.stats.chunks_completed += 1
        self.stats.elements_aggregated += n
        self._send_chunk(slot, chunk + self.window)

    def _check_done(self) -> None:
        if len(self._done_chunks) == self.num_chunks and self.stats.finished_at_ns is None:
            self.stats.finished_at_ns = self.network.sim.now_ns
            for ev in self._timeouts.values():
                ev.cancel()  # type: ignore[attr-defined]

    @property
    def done(self) -> bool:
        return len(self._done_chunks) == self.num_chunks


@dataclass
class AggCluster:
    network: Network
    device: NetCLDevice
    workers: list[AggWorker]
    compiled: CompiledProgram

    def run(self, until_ms: float = 1000.0) -> None:
        for w in self.workers:
            w.start()
        self.network.sim.run(until_ns=int(until_ms * 1e6))

    @property
    def all_done(self) -> bool:
        return all(w.done for w in self.workers)


def build_agg_cluster(
    num_workers: int = 2,
    tensor_elements: int = 4096,
    *,
    target: str = "tna",
    backend: str = "netcl",
    window: int = 16,
    loss_probability: float = 0.0,
    link_latency_ns: int = 1000,
    bandwidth_gbps: float = 100.0,
    seed: int = 7,
) -> AggCluster:
    """Compile AGG and wire up the rack: workers around one ToR switch.

    ``backend="netcl"`` runs the compiled NetCL kernel; ``backend="p4"``
    runs our handwritten P4 baseline through the P4 interpreter (the
    paper's "P4" series in Fig. 14 — the host program stays identical).
    """
    compiled = compile_app(
        "agg", AGG_DEVICE, target=target, defines={"NUM_WORKERS": num_workers}
    )
    net = Network(seed=seed)
    if backend == "p4":
        from repro.apps import p4_source
        from repro.p4 import parse_p4, p4_to_pipeline_spec, P4NetCLSwitchDevice
        from repro.tofino.report import build_report

        # handwritten P4 takes the worker count as a compile-time constant
        src = p4_source("agg").replace(
            "const bit<8>  NUM_WORKERS = 2;",
            f"const bit<8>  NUM_WORKERS = {num_workers};",
        )
        prog = parse_p4(src)
        device = P4NetCLSwitchDevice(prog, AGG_DEVICE)
        processing = int(
            build_report(p4_to_pipeline_spec(prog, name="agg")).latency.total_ns
        )
    else:
        device = NetCLDevice(AGG_DEVICE, compiled.module, compiled.kernels())
        processing = int(compiled.report.latency.total_ns) if compiled.report else 500
    net.add_switch(device, processing_ns=processing)

    rng = random.Random(seed)
    spec = KernelSpec.from_kernel(compiled.kernels()[0])
    workers: list[AggWorker] = []
    for w in range(num_workers):
        host_id = w + 1
        net.add_host(host_id)
        net.link(
            HOST(host_id),
            DEVICE(AGG_DEVICE),
            Link(
                latency_ns=link_latency_ns,
                bandwidth_gbps=bandwidth_gbps,
                loss_probability=loss_probability,
            ),
        )
        tensor = [rng.randrange(0, 1 << 16) for _ in range(tensor_elements)]
        workers.append(
            AggWorker(net, host_id, w, spec, tensor, window=window)
        )
    net.add_multicast_group(AGG_MCAST_GROUP, [HOST(w.host_id) for w in workers])
    return AggCluster(net, device, workers, compiled)


def expected_sum(cluster: AggCluster) -> list[int]:
    """Ground truth: element-wise (wrapping u32) sum over workers."""
    n = len(cluster.workers[0].tensor)
    out = [0] * n
    for w in cluster.workers:
        for i, v in enumerate(w.tensor):
            out[i] = (out[i] + v) & 0xFFFFFFFF
    return out
