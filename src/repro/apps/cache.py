"""CACHE host side: NetCache-style clients, KVS server, and controller.

The client issues GET/PUT/DEL queries; the switch serves cached GETs
directly (reflect), forwards misses and writes to the KVS server; the
controller populates and invalidates cache lines through the control
plane (managed memory) — including reacting to hot-key reports the switch
marks on forwarded misses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.apps import compile_app
from repro.core.driver import CompiledProgram
from repro.netsim import DEVICE, HOST, Link, Network
from repro.runtime import DeviceConnection, KernelSpec, Message, NetCLDevice
from repro.runtime.message import NetCLPacket, NO_DEVICE, unpack

VALUE_WORDS = 16
NUM_LINES = 1024
CACHE_DEVICE = 1

GET_REQ, PUT_REQ, DEL_REQ, RESP = 1, 2, 3, 4


@dataclass
class QueryRecord:
    key: int
    op: int
    sent_ns: int
    done_ns: Optional[int] = None
    served_by_cache: bool = False
    value: Optional[list[int]] = None

    @property
    def latency_ns(self) -> Optional[int]:
        if self.done_ns is None:
            return None
        return self.done_ns - self.sent_ns


class KVServer:
    """The backing key-value store."""

    def __init__(self, network: Network, host_id: int, spec: KernelSpec) -> None:
        self.network = network
        self.host_id = host_id
        self.spec = spec
        self.host = network.hosts[host_id]
        self.host.on_receive = self._on_receive
        self.store: dict[int, list[int]] = {}
        #: per-query server-side work (storage lookup, app logic).
        self.service_time_ns = 12_000
        self.hot_reports: list[int] = []
        self.on_hot: Optional[Callable[[int], None]] = None
        #: optional repro.reliability channel; replies then echo the
        #: request's sequence number and are cached for replay.
        self.channel = None

    def _on_receive(self, packet: NetCLPacket, now_ns: int) -> None:
        _, values = unpack(packet.to_wire(), self.spec)
        op, key, hit, hot, val = values
        if hot:
            self.hot_reports.append(key)
            if self.on_hot is not None:
                self.on_hot(key)
        if op == GET_REQ:
            data = self.store.get(key, [0] * VALUE_WORDS)
            reply_vals = [RESP, key, 1 if key in self.store else 0, 0, data]
        elif op == PUT_REQ:
            self.store[key] = list(val)
            reply_vals = [RESP, key, 1, 0, val]
        elif op == DEL_REQ:
            self.store.pop(key, None)
            reply_vals = [RESP, key, 1, 0, None]
        else:
            return
        # The response needs no in-network computation: no device requested.
        reply = Message(src=self.host_id, dst=packet.src, comp=1, to=NO_DEVICE)

        def respond() -> None:
            if self.channel is not None:
                self.channel.send_reply(packet, reply_vals)
            else:
                self.host.send_message(reply, self.spec, reply_vals)

        self.network.sim.after(self.service_time_ns, respond)


class CacheClient:
    def __init__(
        self,
        network: Network,
        host_id: int,
        spec: KernelSpec,
        *,
        device_id: int = CACHE_DEVICE,
    ) -> None:
        self.network = network
        self.host_id = host_id
        self.spec = spec
        self.device_id = device_id
        self.host = network.hosts[host_id]
        self.host.on_receive = self._on_receive
        #: per-key FIFO of outstanding queries (responses for one key come
        #: back in order: hits and misses for the same key share a path).
        self.inflight: dict[int, list[QueryRecord]] = {}
        self.completed: list[QueryRecord] = []
        #: optional repro.reliability channel; queries then carry sequence
        #: numbers and retransmit until their response arrives.
        self.channel = None

    def query(self, op: int, key: int, value: Optional[list[int]] = None) -> None:
        rec = QueryRecord(key, op, self.network.sim.now_ns)
        self.inflight.setdefault(key, []).append(rec)
        values = [op, key, None, None, value]
        if self.channel is not None:
            self.channel.request(values, dst=self._server_id)
            return
        msg = Message(src=self.host_id, dst=self._server_id, comp=1, to=self.device_id)
        self.host.send_message(msg, self.spec, values)

    _server_id = 2

    def _on_receive(self, packet: NetCLPacket, now_ns: int) -> None:
        _, values = unpack(packet.to_wire(), self.spec)
        op, key, hit, _hot, val = values
        queue = self.inflight.get(key)
        if not queue:
            return
        rec = queue.pop(0)
        rec.done_ns = now_ns
        rec.served_by_cache = op != RESP and hit == 1
        rec.value = val
        self.completed.append(rec)

    def mean_latency_us(self) -> float:
        lats = [r.latency_ns for r in self.completed if r.latency_ns is not None]
        return (sum(lats) / len(lats) / 1000.0) if lats else 0.0


class CacheController:
    """Populates cache lines through the control plane (managed memory)."""

    def __init__(self, connection: DeviceConnection, server: KVServer) -> None:
        self.conn = connection
        self.server = server
        self._next_line = 0

    def install(self, key: int, value: list[int]) -> int:
        """Insert a key into the switch cache; returns the line index."""
        if self._next_line >= NUM_LINES:
            raise RuntimeError("cache full; eviction not installed")
        idx = self._next_line
        self._next_line += 1
        wmap = (1 << len(value)) - 1
        for i, word in enumerate(value):
            self.conn.managed_write("Data", word, index=i * NUM_LINES + idx)
        self.conn.managed_insert("Index", key, value=(wmap << 16) | idx)
        self.conn.managed_write("Valid", 1, index=idx)
        return idx

    def invalidate(self, key: int) -> None:
        entries = self.conn.entries("Index")
        for e in entries:
            if e.key_lo == key:
                idx = (e.value or 0) & 0xFFFF
                self.conn.managed_write("Valid", 0, index=idx)

    def install_from_server(self, key: int) -> Optional[int]:
        value = self.server.store.get(key)
        if value is None:
            return None
        return self.install(key, value)


@dataclass
class CacheCluster:
    network: Network
    device: NetCLDevice
    client: CacheClient
    server: KVServer
    controller: CacheController
    compiled: CompiledProgram
    spec: KernelSpec


class P4CacheController:
    """Controller flavor speaking to the handwritten P4 baseline."""

    def __init__(self, device, server: KVServer) -> None:
        self.device = device
        self.server = server
        self._next_line = 0

    def install(self, key: int, value: list[int]) -> int:
        if self._next_line >= NUM_LINES:
            raise RuntimeError("cache full; eviction not installed")
        idx = self._next_line
        self._next_line += 1
        wmap = (1 << len(value)) - 1
        for i, word in enumerate(value):
            self.device.register_write(f"data_{i}", idx, word)
        self.device.insert_entry("cache_index", [key], "index_set", [wmap, idx])
        self.device.register_write("valid", idx, 1)
        return idx

    def install_from_server(self, key: int):
        value = self.server.store.get(key)
        if value is None:
            return None
        return self.install(key, value)


def build_cache_cluster(
    *,
    target: str = "tna",
    backend: str = "netcl",
    hot_thresh: int = 128,
    link_latency_ns: int = 1200,
    seed: int = 11,
) -> CacheCluster:
    """Client -- switch(cache) -- server, the NetCache deployment.

    ``backend="p4"`` swaps the compiled NetCL kernel for our handwritten
    P4 baseline (the paper's Fig. 14 comparison keeps the host program
    fixed across both).
    """
    compiled = compile_app(
        "cache", CACHE_DEVICE, target=target, defines={"HOT_THRESH": hot_thresh}
    )
    net = Network(seed=seed)
    if backend == "p4":
        from repro.apps import p4_source
        from repro.p4 import parse_p4, p4_to_pipeline_spec, P4NetCLSwitchDevice
        from repro.tofino.report import build_report

        src = p4_source("cache").replace(
            "const bit<32> HOT_THRESH = 128;",
            f"const bit<32> HOT_THRESH = {hot_thresh};",
        )
        prog = parse_p4(src)
        device = P4NetCLSwitchDevice(prog, CACHE_DEVICE)
        processing = int(
            build_report(p4_to_pipeline_spec(prog, name="cache")).latency.total_ns
        )
    else:
        device = NetCLDevice(CACHE_DEVICE, compiled.module, compiled.kernels())
        processing = int(compiled.report.latency.total_ns) if compiled.report else 500
    net.add_switch(device, processing_ns=processing)
    net.add_host(1)  # client
    net.add_host(2)  # server
    net.link(HOST(1), DEVICE(CACHE_DEVICE), Link(latency_ns=link_latency_ns))
    net.link(HOST(2), DEVICE(CACHE_DEVICE), Link(latency_ns=link_latency_ns))

    spec = KernelSpec.from_kernel(compiled.kernels()[0])
    server = KVServer(net, 2, spec)
    client = CacheClient(net, 1, spec)
    # Host-side stack costs calibrated to the paper's testbed regime
    # (kernel UDP sockets on 100G NICs): all-hit responses land around
    # 9 us, all-miss around 26-27 us.
    for h in (client.host, server.host):
        h.rx_overhead_ns = 3200
        h.tx_overhead_ns = 3200
    server.service_time_ns = 10_000
    if backend == "p4":
        controller = P4CacheController(device, server)
    else:
        controller = CacheController(DeviceConnection(device), server)
    return CacheCluster(net, device, client, server, controller, compiled, spec)
