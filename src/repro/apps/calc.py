"""CALC host side: the P4-tutorial calculator client."""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import compile_app
from repro.netsim import DEVICE, HOST, Link, Network
from repro.runtime import KernelSpec, Message, NetCLDevice
from repro.runtime.message import NetCLPacket, unpack

CALC_DEVICE = 1

OPS = {"+": ord("+"), "-": ord("-"), "&": ord("&"), "|": ord("|"), "^": ord("^")}


class CalcClient:
    def __init__(self, network: Network, host_id: int, spec: KernelSpec) -> None:
        self.network = network
        self.host = network.hosts[host_id]
        self.host.on_receive = self._on_receive
        self.host_id = host_id
        self.spec = spec
        self.answers: list[int] = []

    def compute(self, op: str, a: int, b: int) -> None:
        msg = Message(src=self.host_id, dst=self.host_id, comp=1, to=CALC_DEVICE)
        self.host.send_message(msg, self.spec, [OPS[op], a, b, None])

    def _on_receive(self, packet: NetCLPacket, now_ns: int) -> None:
        _, values = unpack(packet.to_wire(), self.spec)
        self.answers.append(values[3])


@dataclass
class CalcCluster:
    network: Network
    device: NetCLDevice
    client: CalcClient
    compiled: object


def build_calc_cluster(*, target: str = "tna", seed: int = 3) -> CalcCluster:
    compiled = compile_app("calc", CALC_DEVICE, target=target)
    device = NetCLDevice(CALC_DEVICE, compiled.module, compiled.kernels())
    net = Network(seed=seed)
    proc = int(compiled.report.latency.total_ns) if compiled.report else 500
    net.add_switch(device, processing_ns=proc)
    net.add_host(1)
    net.link(HOST(1), DEVICE(CALC_DEVICE), Link())
    spec = KernelSpec.from_kernel(compiled.kernels()[0])
    return CalcCluster(net, device, CalcClient(net, 1, spec), compiled)
