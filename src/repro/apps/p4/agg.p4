#include <core.p4>
#include <tna.p4>

typedef bit<48> mac_addr_t;
typedef bit<9>  port_t;

const bit<16> ETHERTYPE_IPV4 = 0x0800;
const bit<8>  IPPROTO_UDP    = 17;
const bit<16> NETCL_PORT     = 9000;
const bit<16> NO_DEVICE      = 0xFFFF;
const bit<16> DEVICE_ID   = 1;
const bit<16> NUM_SLOTS   = 256;
const bit<8>  NUM_WORKERS = 2;
const bit<16> MCAST_GROUP = 42;

// Forwarding decision codes handed to the fixed-function egress logic.
const bit<8> FWD_HOST   = 0;
const bit<8> FWD_DEVICE = 1;
const bit<8> FWD_MCAST  = 2;
const bit<8> FWD_DROP   = 3;

// NetCL action codes (Table II).
const bit<8> ACT_PASS         = 0;
const bit<8> ACT_DROP         = 1;
const bit<8> ACT_SEND_HOST    = 2;
const bit<8> ACT_SEND_DEVICE  = 3;
const bit<8> ACT_MULTICAST    = 4;
const bit<8> ACT_REPEAT       = 5;
const bit<8> ACT_REFLECT      = 6;
const bit<8> ACT_REFLECT_LONG = 7;

header ethernet_t {
    mac_addr_t dst_addr;
    mac_addr_t src_addr;
    bit<16>    ether_type;
}

header ipv4_t {
    bit<4>  version;
    bit<4>  ihl;
    bit<8>  diffserv;
    bit<16> total_len;
    bit<16> identification;
    bit<16> flags_frag;
    bit<8>  ttl;
    bit<8>  protocol;
    bit<16> hdr_checksum;
    bit<32> src_addr;
    bit<32> dst_addr;
}

header udp_t {
    bit<16> src_port;
    bit<16> dst_port;
    bit<16> length;
    bit<16> checksum;
}

// NetCL shim header (src, dst, from, to, computation, action, length).
header netcl_t {
    bit<16> src;
    bit<16> dst;
    bit<16> from_;
    bit<16> to;
    bit<8>  comp;
    bit<8>  act;
    bit<16> len;
}

header agg_t {
    bit<8>  ver;
    bit<16> bmp_idx;
    bit<16> agg_idx;
    bit<16> mask;
    bit<8>  exponent;
    bit<32> val_0;
    bit<32> val_1;
    bit<32> val_2;
    bit<32> val_3;
    bit<32> val_4;
    bit<32> val_5;
    bit<32> val_6;
    bit<32> val_7;
    bit<32> val_8;
    bit<32> val_9;
    bit<32> val_10;
    bit<32> val_11;
    bit<32> val_12;
    bit<32> val_13;
    bit<32> val_14;
    bit<32> val_15;
    bit<32> val_16;
    bit<32> val_17;
    bit<32> val_18;
    bit<32> val_19;
    bit<32> val_20;
    bit<32> val_21;
    bit<32> val_22;
    bit<32> val_23;
    bit<32> val_24;
    bit<32> val_25;
    bit<32> val_26;
    bit<32> val_27;
    bit<32> val_28;
    bit<32> val_29;
    bit<32> val_30;
    bit<32> val_31;
}

struct headers_t {
    ethernet_t ethernet;
    ipv4_t     ipv4;
    udp_t      udp;
    netcl_t    netcl;
    agg_t      agg;
}

struct metadata_t {
    bit<8>  fwd_kind;
    bit<16> fwd_target;
    bit<8>  computed;
    bit<16> l2_port;
    bit<8>  first;
    bit<8>  seen;
    bit<16> idx;
    bit<32> wmap;
}

parser IngressParser(packet_in pkt, out headers_t hdr, inout metadata_t md) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.ether_type) {
            ETHERTYPE_IPV4: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            IPPROTO_UDP: parse_udp;
            default: accept;
        }
    }
    state parse_udp {
        pkt.extract(hdr.udp);
        transition select(hdr.udp.dst_port) {
            NETCL_PORT: parse_netcl;
            default: accept;
        }
    }
    state parse_netcl {
        pkt.extract(hdr.netcl);
        transition select(hdr.netcl.comp) {
            1: parse_agg;
            default: accept;
        }
    }
    state parse_agg {
        pkt.extract(hdr.agg);
        transition accept;
    }
}

control Ingress(inout headers_t hdr, inout metadata_t md) {
    // -- base program: link-layer forwarding for ordinary traffic ------
    action l2_set_port(port_t port) {
        md.l2_port = (bit<16>)port;
        md.fwd_kind = FWD_HOST;
    }
    action l2_flood() {
        md.fwd_kind = FWD_MCAST;
        md.fwd_target = 1;
    }
    table dmac {
        key = { hdr.ethernet.dst_addr : exact; }
        actions = { l2_set_port; l2_flood; }
        default_action = l2_flood();
        size = 1024;
    }

    // -- slot bookkeeping ----------------------------------------------
    Register<bit<16>, bit<32>>(256) bitmap0;
    Register<bit<16>, bit<32>>(256) bitmap1;
    Register<bit<8>,  bit<32>>(512) exp;
    Register<bit<8>,  bit<32>>(512) count;

    RegisterAction<bit<16>, bit<32>, bit<16>>(bitmap0) bmp0_set = {
        void apply(inout bit<16> value, out bit<16> rv) {
            rv = value;
            value = value | hdr.agg.mask;
        }
    };
    RegisterAction<bit<16>, bit<32>, bit<16>>(bitmap0) bmp0_clear = {
        void apply(inout bit<16> value) {
            value = value & ~hdr.agg.mask;
        }
    };
    RegisterAction<bit<16>, bit<32>, bit<16>>(bitmap1) bmp1_set = {
        void apply(inout bit<16> value, out bit<16> rv) {
            rv = value;
            value = value | hdr.agg.mask;
        }
    };
    RegisterAction<bit<16>, bit<32>, bit<16>>(bitmap1) bmp1_clear = {
        void apply(inout bit<16> value) {
            value = value & ~hdr.agg.mask;
        }
    };
    RegisterAction<bit<8>, bit<32>, bit<8>>(exp) exp_write = {
        void apply(inout bit<8> value) {
            value = hdr.agg.exponent;
        }
    };
    RegisterAction<bit<8>, bit<32>, bit<8>>(exp) exp_max = {
        void apply(inout bit<8> value, out bit<8> rv) {
            if (hdr.agg.exponent > value) {
                value = hdr.agg.exponent;
            }
            rv = value;
        }
    };
    RegisterAction<bit<8>, bit<32>, bit<8>>(count) count_init = {
        void apply(inout bit<8> value) {
            value = NUM_WORKERS - 1;
        }
    };
    RegisterAction<bit<8>, bit<32>, bit<8>>(count) count_dec = {
        void apply(inout bit<8> value, out bit<8> rv) {
            value = value - 1;
            rv = value;
        }
    };
    RegisterAction<bit<8>, bit<32>, bit<8>>(count) count_read = {
        void apply(inout bit<8> value, out bit<8> rv) {
            rv = value;
        }
    };

    // -- aggregation slots, one register per value word ----------------
    Register<bit<32>, bit<32>>(512) agg_0;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_0) store_0 = {
        void apply(inout bit<32> value) {
            value = hdr.agg.val_0;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_0) sum_0 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            value = value + hdr.agg.val_0;
            rv = value;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_1;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_1) store_1 = {
        void apply(inout bit<32> value) {
            value = hdr.agg.val_1;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_1) sum_1 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            value = value + hdr.agg.val_1;
            rv = value;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_2;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_2) store_2 = {
        void apply(inout bit<32> value) {
            value = hdr.agg.val_2;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_2) sum_2 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            value = value + hdr.agg.val_2;
            rv = value;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_3;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_3) store_3 = {
        void apply(inout bit<32> value) {
            value = hdr.agg.val_3;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_3) sum_3 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            value = value + hdr.agg.val_3;
            rv = value;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_4;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_4) store_4 = {
        void apply(inout bit<32> value) {
            value = hdr.agg.val_4;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_4) sum_4 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            value = value + hdr.agg.val_4;
            rv = value;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_5;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_5) store_5 = {
        void apply(inout bit<32> value) {
            value = hdr.agg.val_5;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_5) sum_5 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            value = value + hdr.agg.val_5;
            rv = value;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_6;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_6) store_6 = {
        void apply(inout bit<32> value) {
            value = hdr.agg.val_6;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_6) sum_6 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            value = value + hdr.agg.val_6;
            rv = value;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_7;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_7) store_7 = {
        void apply(inout bit<32> value) {
            value = hdr.agg.val_7;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_7) sum_7 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            value = value + hdr.agg.val_7;
            rv = value;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_8;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_8) store_8 = {
        void apply(inout bit<32> value) {
            value = hdr.agg.val_8;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_8) sum_8 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            value = value + hdr.agg.val_8;
            rv = value;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_9;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_9) store_9 = {
        void apply(inout bit<32> value) {
            value = hdr.agg.val_9;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_9) sum_9 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            value = value + hdr.agg.val_9;
            rv = value;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_10;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_10) store_10 = {
        void apply(inout bit<32> value) {
            value = hdr.agg.val_10;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_10) sum_10 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            value = value + hdr.agg.val_10;
            rv = value;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_11;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_11) store_11 = {
        void apply(inout bit<32> value) {
            value = hdr.agg.val_11;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_11) sum_11 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            value = value + hdr.agg.val_11;
            rv = value;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_12;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_12) store_12 = {
        void apply(inout bit<32> value) {
            value = hdr.agg.val_12;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_12) sum_12 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            value = value + hdr.agg.val_12;
            rv = value;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_13;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_13) store_13 = {
        void apply(inout bit<32> value) {
            value = hdr.agg.val_13;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_13) sum_13 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            value = value + hdr.agg.val_13;
            rv = value;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_14;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_14) store_14 = {
        void apply(inout bit<32> value) {
            value = hdr.agg.val_14;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_14) sum_14 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            value = value + hdr.agg.val_14;
            rv = value;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_15;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_15) store_15 = {
        void apply(inout bit<32> value) {
            value = hdr.agg.val_15;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_15) sum_15 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            value = value + hdr.agg.val_15;
            rv = value;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_16;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_16) store_16 = {
        void apply(inout bit<32> value) {
            value = hdr.agg.val_16;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_16) sum_16 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            value = value + hdr.agg.val_16;
            rv = value;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_17;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_17) store_17 = {
        void apply(inout bit<32> value) {
            value = hdr.agg.val_17;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_17) sum_17 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            value = value + hdr.agg.val_17;
            rv = value;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_18;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_18) store_18 = {
        void apply(inout bit<32> value) {
            value = hdr.agg.val_18;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_18) sum_18 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            value = value + hdr.agg.val_18;
            rv = value;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_19;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_19) store_19 = {
        void apply(inout bit<32> value) {
            value = hdr.agg.val_19;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_19) sum_19 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            value = value + hdr.agg.val_19;
            rv = value;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_20;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_20) store_20 = {
        void apply(inout bit<32> value) {
            value = hdr.agg.val_20;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_20) sum_20 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            value = value + hdr.agg.val_20;
            rv = value;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_21;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_21) store_21 = {
        void apply(inout bit<32> value) {
            value = hdr.agg.val_21;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_21) sum_21 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            value = value + hdr.agg.val_21;
            rv = value;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_22;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_22) store_22 = {
        void apply(inout bit<32> value) {
            value = hdr.agg.val_22;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_22) sum_22 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            value = value + hdr.agg.val_22;
            rv = value;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_23;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_23) store_23 = {
        void apply(inout bit<32> value) {
            value = hdr.agg.val_23;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_23) sum_23 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            value = value + hdr.agg.val_23;
            rv = value;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_24;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_24) store_24 = {
        void apply(inout bit<32> value) {
            value = hdr.agg.val_24;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_24) sum_24 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            value = value + hdr.agg.val_24;
            rv = value;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_25;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_25) store_25 = {
        void apply(inout bit<32> value) {
            value = hdr.agg.val_25;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_25) sum_25 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            value = value + hdr.agg.val_25;
            rv = value;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_26;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_26) store_26 = {
        void apply(inout bit<32> value) {
            value = hdr.agg.val_26;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_26) sum_26 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            value = value + hdr.agg.val_26;
            rv = value;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_27;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_27) store_27 = {
        void apply(inout bit<32> value) {
            value = hdr.agg.val_27;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_27) sum_27 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            value = value + hdr.agg.val_27;
            rv = value;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_28;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_28) store_28 = {
        void apply(inout bit<32> value) {
            value = hdr.agg.val_28;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_28) sum_28 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            value = value + hdr.agg.val_28;
            rv = value;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_29;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_29) store_29 = {
        void apply(inout bit<32> value) {
            value = hdr.agg.val_29;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_29) sum_29 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            value = value + hdr.agg.val_29;
            rv = value;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_30;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_30) store_30 = {
        void apply(inout bit<32> value) {
            value = hdr.agg.val_30;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_30) sum_30 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            value = value + hdr.agg.val_30;
            rv = value;
        }
    };
    Register<bit<32>, bit<32>>(512) agg_31;
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_31) store_31 = {
        void apply(inout bit<32> value) {
            value = hdr.agg.val_31;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(agg_31) sum_31 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            value = value + hdr.agg.val_31;
            rv = value;
        }
    };

    // worker-seen determination via a ternary MAT, following SwitchML:
    // per-worker entries test the worker's bit in the slot bitmap
    action set_unseen() {
        md.seen = 0;
    }
    action set_seen() {
        md.seen = 1;
    }
    table seen_check {
        key = { hdr.agg.mask : exact; md.idx : ternary; }
        actions = { set_unseen; set_seen; }
        const entries = {
            (1, 0 &&& 1) : set_unseen();
            (2, 0 &&& 2) : set_unseen();
            (4, 0 &&& 4) : set_unseen();
            (8, 0 &&& 8) : set_unseen();
            (16, 0 &&& 16) : set_unseen();
            (32, 0 &&& 32) : set_unseen();
            (64, 0 &&& 64) : set_unseen();
            (128, 0 &&& 128) : set_unseen();
        }
        default_action = set_seen();
        size = 16;
    }

    // a retransmission must not contribute again: adding zeros returns
    // the live aggregation values unchanged
    action clear_values() {
        hdr.agg.val_0 = 0;
        hdr.agg.val_1 = 0;
        hdr.agg.val_2 = 0;
        hdr.agg.val_3 = 0;
        hdr.agg.val_4 = 0;
        hdr.agg.val_5 = 0;
        hdr.agg.val_6 = 0;
        hdr.agg.val_7 = 0;
        hdr.agg.val_8 = 0;
        hdr.agg.val_9 = 0;
        hdr.agg.val_10 = 0;
        hdr.agg.val_11 = 0;
        hdr.agg.val_12 = 0;
        hdr.agg.val_13 = 0;
        hdr.agg.val_14 = 0;
        hdr.agg.val_15 = 0;
        hdr.agg.val_16 = 0;
        hdr.agg.val_17 = 0;
        hdr.agg.val_18 = 0;
        hdr.agg.val_19 = 0;
        hdr.agg.val_20 = 0;
        hdr.agg.val_21 = 0;
        hdr.agg.val_22 = 0;
        hdr.agg.val_23 = 0;
        hdr.agg.val_24 = 0;
        hdr.agg.val_25 = 0;
        hdr.agg.val_26 = 0;
        hdr.agg.val_27 = 0;
        hdr.agg.val_28 = 0;
        hdr.agg.val_29 = 0;
        hdr.agg.val_30 = 0;
        hdr.agg.val_31 = 0;
    }

    apply {
        md.fwd_kind = FWD_DROP;
        if (hdr.netcl.isValid()) {
            if (hdr.netcl.to == DEVICE_ID && hdr.netcl.comp == 1) {
                md.computed = 1;
                hdr.netcl.from_ = DEVICE_ID;
                bit<32> bidx = (bit<32>)hdr.agg.bmp_idx;
                bit<32> aidx = (bit<32>)hdr.agg.agg_idx;

                // add this worker to the requested version's bitmap and
                // clear it from the other (same order on both paths)
                if (hdr.agg.ver == 0) {
                    md.idx = bmp0_set.execute(bidx);
                    bmp1_clear.execute(bidx);
                } else {
                    bmp0_clear.execute(bidx);
                    md.idx = bmp1_set.execute(bidx);
                }
                seen_check.apply();
                if (md.idx == 0) {
                    // slot starts now
                    exp_write.execute(aidx);
                store_0.execute(aidx);
                store_1.execute(aidx);
                store_2.execute(aidx);
                store_3.execute(aidx);
                store_4.execute(aidx);
                store_5.execute(aidx);
                store_6.execute(aidx);
                store_7.execute(aidx);
                store_8.execute(aidx);
                store_9.execute(aidx);
                store_10.execute(aidx);
                store_11.execute(aidx);
                store_12.execute(aidx);
                store_13.execute(aidx);
                store_14.execute(aidx);
                store_15.execute(aidx);
                store_16.execute(aidx);
                store_17.execute(aidx);
                store_18.execute(aidx);
                store_19.execute(aidx);
                store_20.execute(aidx);
                store_21.execute(aidx);
                store_22.execute(aidx);
                store_23.execute(aidx);
                store_24.execute(aidx);
                store_25.execute(aidx);
                store_26.execute(aidx);
                store_27.execute(aidx);
                store_28.execute(aidx);
                store_29.execute(aidx);
                store_30.execute(aidx);
                store_31.execute(aidx);
                    count_init.execute(aidx);
                    hdr.netcl.act = ACT_DROP;
                    md.fwd_kind = FWD_DROP;
                } else {
                    if (md.seen != 0) {
                        // retransmission: add zeros, read live values
                        clear_values();
                        hdr.agg.exponent = 0;
                    }
                    hdr.agg.exponent = exp_max.execute(aidx);
                hdr.agg.val_0 = sum_0.execute(aidx);
                hdr.agg.val_1 = sum_1.execute(aidx);
                hdr.agg.val_2 = sum_2.execute(aidx);
                hdr.agg.val_3 = sum_3.execute(aidx);
                hdr.agg.val_4 = sum_4.execute(aidx);
                hdr.agg.val_5 = sum_5.execute(aidx);
                hdr.agg.val_6 = sum_6.execute(aidx);
                hdr.agg.val_7 = sum_7.execute(aidx);
                hdr.agg.val_8 = sum_8.execute(aidx);
                hdr.agg.val_9 = sum_9.execute(aidx);
                hdr.agg.val_10 = sum_10.execute(aidx);
                hdr.agg.val_11 = sum_11.execute(aidx);
                hdr.agg.val_12 = sum_12.execute(aidx);
                hdr.agg.val_13 = sum_13.execute(aidx);
                hdr.agg.val_14 = sum_14.execute(aidx);
                hdr.agg.val_15 = sum_15.execute(aidx);
                hdr.agg.val_16 = sum_16.execute(aidx);
                hdr.agg.val_17 = sum_17.execute(aidx);
                hdr.agg.val_18 = sum_18.execute(aidx);
                hdr.agg.val_19 = sum_19.execute(aidx);
                hdr.agg.val_20 = sum_20.execute(aidx);
                hdr.agg.val_21 = sum_21.execute(aidx);
                hdr.agg.val_22 = sum_22.execute(aidx);
                hdr.agg.val_23 = sum_23.execute(aidx);
                hdr.agg.val_24 = sum_24.execute(aidx);
                hdr.agg.val_25 = sum_25.execute(aidx);
                hdr.agg.val_26 = sum_26.execute(aidx);
                hdr.agg.val_27 = sum_27.execute(aidx);
                hdr.agg.val_28 = sum_28.execute(aidx);
                hdr.agg.val_29 = sum_29.execute(aidx);
                hdr.agg.val_30 = sum_30.execute(aidx);
                hdr.agg.val_31 = sum_31.execute(aidx);
                    bit<8> cnt;
                    if (md.seen == 0) {
                        cnt = count_dec.execute(aidx);
                    } else {
                        cnt = count_read.execute(aidx);
                    }
                    if (md.seen != 0 && cnt == 0) {
                        // slot finished earlier: reflect the stored result
                        hdr.netcl.act = ACT_REFLECT;
                        md.fwd_kind = FWD_HOST;
                        md.fwd_target = hdr.netcl.src;
                    } else if (md.seen == 0 && cnt == 0) {
                        // slot finished now: broadcast to all workers
                        hdr.netcl.act = ACT_MULTICAST;
                        md.fwd_kind = FWD_MCAST;
                        md.fwd_target = MCAST_GROUP;
                    } else {
                        hdr.netcl.act = ACT_DROP;
                        md.fwd_kind = FWD_DROP;
                    }
                }
            } else {
            // transit: no-op at this device (no-implicit-computation rule)
            if (hdr.netcl.to != NO_DEVICE && hdr.netcl.to != DEVICE_ID) {
                md.fwd_kind = FWD_DEVICE;
                md.fwd_target = hdr.netcl.to;
            } else {
                md.fwd_kind = FWD_HOST;
                md.fwd_target = hdr.netcl.dst;
            }
            }
        } else if (hdr.ethernet.isValid()) {
            dmac.apply();
        }
    }
}

control IngressDeparser(packet_out pkt, inout headers_t hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.ipv4);
        pkt.emit(hdr.udp);
        pkt.emit(hdr.netcl);
        pkt.emit(hdr.agg);
    }
}

Pipeline(IngressParser(), Ingress(), IngressDeparser()) pipe;
Switch(pipe) main;
