#include <core.p4>
#include <tna.p4>

typedef bit<48> mac_addr_t;
typedef bit<9>  port_t;

const bit<16> ETHERTYPE_IPV4 = 0x0800;
const bit<8>  IPPROTO_UDP    = 17;
const bit<16> NETCL_PORT     = 9000;
const bit<16> NO_DEVICE      = 0xFFFF;
const bit<16> DEVICE_ID  = 1;
const bit<16> NUM_LINES  = 1024;
const bit<32> CMS_WIDTH  = 65536;
const bit<32> HOT_THRESH = 128;
const bit<8>  GET_REQ = 1;
const bit<8>  PUT_REQ = 2;
const bit<8>  DEL_REQ = 3;

// Forwarding decision codes handed to the fixed-function egress logic.
const bit<8> FWD_HOST   = 0;
const bit<8> FWD_DEVICE = 1;
const bit<8> FWD_MCAST  = 2;
const bit<8> FWD_DROP   = 3;

// NetCL action codes (Table II).
const bit<8> ACT_PASS         = 0;
const bit<8> ACT_DROP         = 1;
const bit<8> ACT_SEND_HOST    = 2;
const bit<8> ACT_SEND_DEVICE  = 3;
const bit<8> ACT_MULTICAST    = 4;
const bit<8> ACT_REPEAT       = 5;
const bit<8> ACT_REFLECT      = 6;
const bit<8> ACT_REFLECT_LONG = 7;

header ethernet_t {
    mac_addr_t dst_addr;
    mac_addr_t src_addr;
    bit<16>    ether_type;
}

header ipv4_t {
    bit<4>  version;
    bit<4>  ihl;
    bit<8>  diffserv;
    bit<16> total_len;
    bit<16> identification;
    bit<16> flags_frag;
    bit<8>  ttl;
    bit<8>  protocol;
    bit<16> hdr_checksum;
    bit<32> src_addr;
    bit<32> dst_addr;
}

header udp_t {
    bit<16> src_port;
    bit<16> dst_port;
    bit<16> length;
    bit<16> checksum;
}

// NetCL shim header (src, dst, from, to, computation, action, length).
header netcl_t {
    bit<16> src;
    bit<16> dst;
    bit<16> from_;
    bit<16> to;
    bit<8>  comp;
    bit<8>  act;
    bit<16> len;
}

header cache_t {
    bit<8>  op;
    bit<64> key;
    bit<8>  hit;
    bit<8>  hot;
    bit<32> val_0;
    bit<32> val_1;
    bit<32> val_2;
    bit<32> val_3;
    bit<32> val_4;
    bit<32> val_5;
    bit<32> val_6;
    bit<32> val_7;
    bit<32> val_8;
    bit<32> val_9;
    bit<32> val_10;
    bit<32> val_11;
    bit<32> val_12;
    bit<32> val_13;
    bit<32> val_14;
    bit<32> val_15;
}

struct headers_t {
    ethernet_t ethernet;
    ipv4_t     ipv4;
    udp_t      udp;
    netcl_t    netcl;
    cache_t    cache;
}

struct metadata_t {
    bit<8>  fwd_kind;
    bit<16> fwd_target;
    bit<8>  computed;
    bit<16> l2_port;
    bit<8>  first;
    bit<8>  seen;
    bit<16> idx;
    bit<32> wmap;
}

parser IngressParser(packet_in pkt, out headers_t hdr, inout metadata_t md) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.ether_type) {
            ETHERTYPE_IPV4: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            IPPROTO_UDP: parse_udp;
            default: accept;
        }
    }
    state parse_udp {
        pkt.extract(hdr.udp);
        transition select(hdr.udp.dst_port) {
            NETCL_PORT: parse_netcl;
            default: accept;
        }
    }
    state parse_netcl {
        pkt.extract(hdr.netcl);
        transition select(hdr.netcl.comp) {
            1: parse_cache;
            default: accept;
        }
    }
    state parse_cache {
        pkt.extract(hdr.cache);
        transition accept;
    }
}

control Ingress(inout headers_t hdr, inout metadata_t md) {
    // -- base program: link-layer forwarding for ordinary traffic ------
    action l2_set_port(port_t port) {
        md.l2_port = (bit<16>)port;
        md.fwd_kind = FWD_HOST;
    }
    action l2_flood() {
        md.fwd_kind = FWD_MCAST;
        md.fwd_target = 1;
    }
    table dmac {
        key = { hdr.ethernet.dst_addr : exact; }
        actions = { l2_set_port; l2_flood; }
        default_action = l2_flood();
        size = 1024;
    }

    // -- cache lines ----------------------------------------------------
    Register<bit<8>,  bit<32>>(1024) valid;
    Register<bit<32>, bit<32>>(1024) hit_count;

    RegisterAction<bit<8>, bit<32>, bit<8>>(valid) valid_read = {
        void apply(inout bit<8> value, out bit<8> rv) {
            rv = value;
        }
    };
    RegisterAction<bit<8>, bit<32>, bit<8>>(valid) valid_clear = {
        void apply(inout bit<8> value) {
            value = 0;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(hit_count) hits_inc = {
        void apply(inout bit<32> value) {
            value = value |+| 1;
        }
    };

    // -- hot-key detection: count-min sketch + bloom filter -------------
    Register<bit<32>, bit<32>>(65536) cms_0;
    Register<bit<32>, bit<32>>(65536) cms_1;
    Register<bit<32>, bit<32>>(65536) cms_2;
    Register<bit<8>,  bit<32>>(65536) bloom_0;
    Register<bit<8>,  bit<32>>(65536) bloom_1;

    RegisterAction<bit<32>, bit<32>, bit<32>>(cms_0) cms0_inc = {
        void apply(inout bit<32> value, out bit<32> rv) {
            value = value |+| 1;
            rv = value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(cms_1) cms1_inc = {
        void apply(inout bit<32> value, out bit<32> rv) {
            value = value |+| 1;
            rv = value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(cms_2) cms2_inc = {
        void apply(inout bit<32> value, out bit<32> rv) {
            value = value |+| 1;
            rv = value;
        }
    };
    RegisterAction<bit<8>, bit<32>, bit<8>>(bloom_0) bloom0_test_set = {
        void apply(inout bit<8> value, out bit<8> rv) {
            rv = value;
            value = 1;
        }
    };
    RegisterAction<bit<8>, bit<32>, bit<8>>(bloom_1) bloom1_test_set = {
        void apply(inout bit<8> value, out bit<8> rv) {
            rv = value;
            value = 1;
        }
    };

    Hash<bit<16>>(HashAlgorithm_t.CRC32) hash_cms0;
    Hash<bit<16>>(HashAlgorithm_t.CRC16) hash_cms1;
    Hash<bit<16>>(HashAlgorithm_t.XOR16) hash_cms2;

    // -- value words, one register per 4-byte word ----------------------
    Register<bit<32>, bit<32>>(1024) data_0;
    RegisterAction<bit<32>, bit<32>, bit<32>>(data_0) data_read_0 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            rv = value;
        }
    };
    Register<bit<32>, bit<32>>(1024) data_1;
    RegisterAction<bit<32>, bit<32>, bit<32>>(data_1) data_read_1 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            rv = value;
        }
    };
    Register<bit<32>, bit<32>>(1024) data_2;
    RegisterAction<bit<32>, bit<32>, bit<32>>(data_2) data_read_2 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            rv = value;
        }
    };
    Register<bit<32>, bit<32>>(1024) data_3;
    RegisterAction<bit<32>, bit<32>, bit<32>>(data_3) data_read_3 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            rv = value;
        }
    };
    Register<bit<32>, bit<32>>(1024) data_4;
    RegisterAction<bit<32>, bit<32>, bit<32>>(data_4) data_read_4 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            rv = value;
        }
    };
    Register<bit<32>, bit<32>>(1024) data_5;
    RegisterAction<bit<32>, bit<32>, bit<32>>(data_5) data_read_5 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            rv = value;
        }
    };
    Register<bit<32>, bit<32>>(1024) data_6;
    RegisterAction<bit<32>, bit<32>, bit<32>>(data_6) data_read_6 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            rv = value;
        }
    };
    Register<bit<32>, bit<32>>(1024) data_7;
    RegisterAction<bit<32>, bit<32>, bit<32>>(data_7) data_read_7 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            rv = value;
        }
    };
    Register<bit<32>, bit<32>>(1024) data_8;
    RegisterAction<bit<32>, bit<32>, bit<32>>(data_8) data_read_8 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            rv = value;
        }
    };
    Register<bit<32>, bit<32>>(1024) data_9;
    RegisterAction<bit<32>, bit<32>, bit<32>>(data_9) data_read_9 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            rv = value;
        }
    };
    Register<bit<32>, bit<32>>(1024) data_10;
    RegisterAction<bit<32>, bit<32>, bit<32>>(data_10) data_read_10 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            rv = value;
        }
    };
    Register<bit<32>, bit<32>>(1024) data_11;
    RegisterAction<bit<32>, bit<32>, bit<32>>(data_11) data_read_11 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            rv = value;
        }
    };
    Register<bit<32>, bit<32>>(1024) data_12;
    RegisterAction<bit<32>, bit<32>, bit<32>>(data_12) data_read_12 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            rv = value;
        }
    };
    Register<bit<32>, bit<32>>(1024) data_13;
    RegisterAction<bit<32>, bit<32>, bit<32>>(data_13) data_read_13 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            rv = value;
        }
    };
    Register<bit<32>, bit<32>>(1024) data_14;
    RegisterAction<bit<32>, bit<32>, bit<32>>(data_14) data_read_14 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            rv = value;
        }
    };
    Register<bit<32>, bit<32>>(1024) data_15;
    RegisterAction<bit<32>, bit<32>, bit<32>>(data_15) data_read_15 = {
        void apply(inout bit<32> value, out bit<32> rv) {
            rv = value;
        }
    };

    // -- the two-step cache index: key -> (word bitmap, line index) ------
    action index_set(bit<32> wmap, bit<16> idx) {
        md.wmap = wmap;
        md.idx = idx;
    }
    table cache_index {
        key = { hdr.cache.key : exact; }
        actions = { index_set; NoAction; }
        default_action = NoAction();
        size = 1024;
    }

    apply {
        md.fwd_kind = FWD_DROP;
        if (hdr.netcl.isValid()) {
            if (hdr.netcl.to == DEVICE_ID && hdr.netcl.comp == 1) {
                md.computed = 1;
                hdr.netcl.from_ = DEVICE_ID;
                // default: continue to the KVS server
                md.fwd_kind = FWD_HOST;
                md.fwd_target = hdr.netcl.dst;
                hdr.netcl.act = ACT_PASS;
                if (cache_index.apply().hit) {
                    bit<32> lidx = (bit<32>)md.idx;
                    if (hdr.cache.op == GET_REQ) {
                        bit<8> v = valid_read.execute(lidx);
                        if (v != 0) {
                            hits_inc.execute(lidx);
                        if ((md.wmap & (32w1 << 0)) != 0) {
                            hdr.cache.val_0 = data_read_0.execute(lidx);
                        }
                        if ((md.wmap & (32w1 << 1)) != 0) {
                            hdr.cache.val_1 = data_read_1.execute(lidx);
                        }
                        if ((md.wmap & (32w1 << 2)) != 0) {
                            hdr.cache.val_2 = data_read_2.execute(lidx);
                        }
                        if ((md.wmap & (32w1 << 3)) != 0) {
                            hdr.cache.val_3 = data_read_3.execute(lidx);
                        }
                        if ((md.wmap & (32w1 << 4)) != 0) {
                            hdr.cache.val_4 = data_read_4.execute(lidx);
                        }
                        if ((md.wmap & (32w1 << 5)) != 0) {
                            hdr.cache.val_5 = data_read_5.execute(lidx);
                        }
                        if ((md.wmap & (32w1 << 6)) != 0) {
                            hdr.cache.val_6 = data_read_6.execute(lidx);
                        }
                        if ((md.wmap & (32w1 << 7)) != 0) {
                            hdr.cache.val_7 = data_read_7.execute(lidx);
                        }
                        if ((md.wmap & (32w1 << 8)) != 0) {
                            hdr.cache.val_8 = data_read_8.execute(lidx);
                        }
                        if ((md.wmap & (32w1 << 9)) != 0) {
                            hdr.cache.val_9 = data_read_9.execute(lidx);
                        }
                        if ((md.wmap & (32w1 << 10)) != 0) {
                            hdr.cache.val_10 = data_read_10.execute(lidx);
                        }
                        if ((md.wmap & (32w1 << 11)) != 0) {
                            hdr.cache.val_11 = data_read_11.execute(lidx);
                        }
                        if ((md.wmap & (32w1 << 12)) != 0) {
                            hdr.cache.val_12 = data_read_12.execute(lidx);
                        }
                        if ((md.wmap & (32w1 << 13)) != 0) {
                            hdr.cache.val_13 = data_read_13.execute(lidx);
                        }
                        if ((md.wmap & (32w1 << 14)) != 0) {
                            hdr.cache.val_14 = data_read_14.execute(lidx);
                        }
                        if ((md.wmap & (32w1 << 15)) != 0) {
                            hdr.cache.val_15 = data_read_15.execute(lidx);
                        }
                            hdr.cache.hit = 1;
                            // serve the cached value: reflect to the client
                            hdr.netcl.act = ACT_REFLECT;
                            md.fwd_target = hdr.netcl.src;
                        }
                    } else {
                        // PUT/DEL: write-back policy, invalidate the line
                        valid_clear.execute(lidx);
                    }
                } else if (hdr.cache.op == GET_REQ) {
                    // miss path: hot-key detection
                    bit<32> c0 = cms0_inc.execute((bit<32>)hash_cms0.get({hdr.cache.key}));
                    bit<32> c1 = cms1_inc.execute((bit<32>)hash_cms1.get({hdr.cache.key}));
                    bit<32> c2 = cms2_inc.execute((bit<32>)hash_cms2.get({hdr.cache.key}));
                    if (c1 < c0) {
                        c0 = c1;
                    }
                    if (c2 < c0) {
                        c0 = c2;
                    }
                    if (c0 > HOT_THRESH) {
                        bit<8> b0 = bloom0_test_set.execute((bit<32>)hash_cms0.get({hdr.cache.key}));
                        bit<8> b1 = bloom1_test_set.execute((bit<32>)hash_cms1.get({hdr.cache.key}));
                        if ((b0 & b1) == 0) {
                            hdr.cache.hot = 1;
                        }
                    }
                }
            } else {
            // transit: no-op at this device (no-implicit-computation rule)
            if (hdr.netcl.to != NO_DEVICE && hdr.netcl.to != DEVICE_ID) {
                md.fwd_kind = FWD_DEVICE;
                md.fwd_target = hdr.netcl.to;
            } else {
                md.fwd_kind = FWD_HOST;
                md.fwd_target = hdr.netcl.dst;
            }
            }
        } else if (hdr.ethernet.isValid()) {
            dmac.apply();
        }
    }
}

control IngressDeparser(packet_out pkt, inout headers_t hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.ipv4);
        pkt.emit(hdr.udp);
        pkt.emit(hdr.netcl);
        pkt.emit(hdr.cache);
    }
}

Pipeline(IngressParser(), Ingress(), IngressDeparser()) pipe;
Switch(pipe) main;
