#include <core.p4>
#include <tna.p4>

typedef bit<48> mac_addr_t;
typedef bit<9>  port_t;

const bit<16> ETHERTYPE_IPV4 = 0x0800;
const bit<8>  IPPROTO_UDP    = 17;
const bit<16> NETCL_PORT     = 9000;
const bit<16> NO_DEVICE      = 0xFFFF;
const bit<16> DEVICE_ID = 1;

// Forwarding decision codes handed to the fixed-function egress logic.
const bit<8> FWD_HOST   = 0;
const bit<8> FWD_DEVICE = 1;
const bit<8> FWD_MCAST  = 2;
const bit<8> FWD_DROP   = 3;

// NetCL action codes (Table II).
const bit<8> ACT_PASS         = 0;
const bit<8> ACT_DROP         = 1;
const bit<8> ACT_SEND_HOST    = 2;
const bit<8> ACT_SEND_DEVICE  = 3;
const bit<8> ACT_MULTICAST    = 4;
const bit<8> ACT_REPEAT       = 5;
const bit<8> ACT_REFLECT      = 6;
const bit<8> ACT_REFLECT_LONG = 7;

header ethernet_t {
    mac_addr_t dst_addr;
    mac_addr_t src_addr;
    bit<16>    ether_type;
}

header ipv4_t {
    bit<4>  version;
    bit<4>  ihl;
    bit<8>  diffserv;
    bit<16> total_len;
    bit<16> identification;
    bit<16> flags_frag;
    bit<8>  ttl;
    bit<8>  protocol;
    bit<16> hdr_checksum;
    bit<32> src_addr;
    bit<32> dst_addr;
}

header udp_t {
    bit<16> src_port;
    bit<16> dst_port;
    bit<16> length;
    bit<16> checksum;
}

// NetCL shim header (src, dst, from, to, computation, action, length).
header netcl_t {
    bit<16> src;
    bit<16> dst;
    bit<16> from_;
    bit<16> to;
    bit<8>  comp;
    bit<8>  act;
    bit<16> len;
}

header calc_t {
    bit<8>  op;
    bit<32> a;
    bit<32> b;
    bit<32> res;
}

struct headers_t {
    ethernet_t ethernet;
    ipv4_t     ipv4;
    udp_t      udp;
    netcl_t    netcl;
    calc_t     calc;
}

struct metadata_t {
    bit<8>  fwd_kind;
    bit<16> fwd_target;
    bit<8>  computed;
    bit<16> l2_port;
    bit<8>  first;
    bit<8>  seen;
    bit<16> idx;
    bit<32> wmap;
}

parser IngressParser(packet_in pkt, out headers_t hdr, inout metadata_t md) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.ether_type) {
            ETHERTYPE_IPV4: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            IPPROTO_UDP: parse_udp;
            default: accept;
        }
    }
    state parse_udp {
        pkt.extract(hdr.udp);
        transition select(hdr.udp.dst_port) {
            NETCL_PORT: parse_netcl;
            default: accept;
        }
    }
    state parse_netcl {
        pkt.extract(hdr.netcl);
        transition select(hdr.netcl.comp) {
            1: parse_calc;
            default: accept;
        }
    }
    state parse_calc {
        pkt.extract(hdr.calc);
        transition accept;
    }
}

control Ingress(inout headers_t hdr, inout metadata_t md) {
    // -- base program: link-layer forwarding for ordinary traffic ------
    action l2_set_port(port_t port) {
        md.l2_port = (bit<16>)port;
        md.fwd_kind = FWD_HOST;
    }
    action l2_flood() {
        md.fwd_kind = FWD_MCAST;
        md.fwd_target = 1;
    }
    table dmac {
        key = { hdr.ethernet.dst_addr : exact; }
        actions = { l2_set_port; l2_flood; }
        default_action = l2_flood();
        size = 1024;
    }

    // -- the calculator service ----------------------------------------
    action do_add() { hdr.calc.res = hdr.calc.a + hdr.calc.b; }
    action do_sub() { hdr.calc.res = hdr.calc.a - hdr.calc.b; }
    action do_and() { hdr.calc.res = hdr.calc.a & hdr.calc.b; }
    action do_or()  { hdr.calc.res = hdr.calc.a | hdr.calc.b; }
    action do_xor() { hdr.calc.res = hdr.calc.a ^ hdr.calc.b; }
    action op_invalid() { md.fwd_kind = FWD_DROP; }
    table calculate {
        key = { hdr.calc.op : exact; }
        actions = { do_add; do_sub; do_and; do_or; do_xor; op_invalid; }
        default_action = op_invalid();
        const entries = {
            0x2b : do_add();
            0x2d : do_sub();
            0x26 : do_and();
            0x7c : do_or();
            0x5e : do_xor();
        }
        size = 8;
    }

    apply {
        md.fwd_kind = FWD_DROP;
        if (hdr.netcl.isValid()) {
            if (hdr.netcl.to == DEVICE_ID && hdr.netcl.comp == 1) {
                md.computed = 1;
                md.fwd_kind = FWD_HOST;
                calculate.apply();
                if (md.fwd_kind != FWD_DROP) {
                    // answer goes straight back to the source host
                    hdr.netcl.act = ACT_REFLECT_LONG;
                    hdr.netcl.from_ = DEVICE_ID;
                    md.fwd_target = hdr.netcl.src;
                } else {
                    hdr.netcl.act = ACT_DROP;
                }
            } else {
            // transit: no-op at this device (no-implicit-computation rule)
            if (hdr.netcl.to != NO_DEVICE && hdr.netcl.to != DEVICE_ID) {
                md.fwd_kind = FWD_DEVICE;
                md.fwd_target = hdr.netcl.to;
            } else {
                md.fwd_kind = FWD_HOST;
                md.fwd_target = hdr.netcl.dst;
            }
            }
        } else if (hdr.ethernet.isValid()) {
            dmac.apply();
        }
    }
}

control IngressDeparser(packet_out pkt, inout headers_t hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.ipv4);
        pkt.emit(hdr.udp);
        pkt.emit(hdr.netcl);
        pkt.emit(hdr.calc);
    }
}

Pipeline(IngressParser(), Ingress(), IngressDeparser()) pipe;
Switch(pipe) main;
