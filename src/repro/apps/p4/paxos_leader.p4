#include <core.p4>
#include <tna.p4>

typedef bit<48> mac_addr_t;
typedef bit<9>  port_t;

const bit<16> ETHERTYPE_IPV4 = 0x0800;
const bit<8>  IPPROTO_UDP    = 17;
const bit<16> NETCL_PORT     = 9000;
const bit<16> NO_DEVICE      = 0xFFFF;
const bit<32> NUM_INSTANCES = 16384;
const bit<8>  MSG_REQUEST = 0;
const bit<8>  MSG_PHASE2A = 1;
const bit<8>  MSG_PHASE2B = 2;
const bit<8>  MSG_DELIVER = 3;
const bit<16> LEARNER_DEV = 5;
const bit<16> ACCEPTOR_MCAST = 43;
const bit<16> DEVICE_ID = 1;

// Forwarding decision codes handed to the fixed-function egress logic.
const bit<8> FWD_HOST   = 0;
const bit<8> FWD_DEVICE = 1;
const bit<8> FWD_MCAST  = 2;
const bit<8> FWD_DROP   = 3;

// NetCL action codes (Table II).
const bit<8> ACT_PASS         = 0;
const bit<8> ACT_DROP         = 1;
const bit<8> ACT_SEND_HOST    = 2;
const bit<8> ACT_SEND_DEVICE  = 3;
const bit<8> ACT_MULTICAST    = 4;
const bit<8> ACT_REPEAT       = 5;
const bit<8> ACT_REFLECT      = 6;
const bit<8> ACT_REFLECT_LONG = 7;

header ethernet_t {
    mac_addr_t dst_addr;
    mac_addr_t src_addr;
    bit<16>    ether_type;
}

header ipv4_t {
    bit<4>  version;
    bit<4>  ihl;
    bit<8>  diffserv;
    bit<16> total_len;
    bit<16> identification;
    bit<16> flags_frag;
    bit<8>  ttl;
    bit<8>  protocol;
    bit<16> hdr_checksum;
    bit<32> src_addr;
    bit<32> dst_addr;
}

header udp_t {
    bit<16> src_port;
    bit<16> dst_port;
    bit<16> length;
    bit<16> checksum;
}

// NetCL shim header (src, dst, from, to, computation, action, length).
header netcl_t {
    bit<16> src;
    bit<16> dst;
    bit<16> from_;
    bit<16> to;
    bit<8>  comp;
    bit<8>  act;
    bit<16> len;
}

header paxos_t {
    bit<8>  msgtype;
    bit<32> instance;
    bit<16> round;
    bit<16> vround;
    bit<8>  vote;
    bit<32> val_0;
    bit<32> val_1;
    bit<32> val_2;
    bit<32> val_3;
    bit<32> val_4;
    bit<32> val_5;
    bit<32> val_6;
    bit<32> val_7;
}

struct headers_t {
    ethernet_t ethernet;
    ipv4_t     ipv4;
    udp_t      udp;
    netcl_t    netcl;
    paxos_t    paxos;
}

struct metadata_t {
    bit<8>  fwd_kind;
    bit<16> fwd_target;
    bit<8>  computed;
    bit<16> l2_port;
    bit<8>  first;
    bit<8>  seen;
    bit<16> idx;
    bit<32> wmap;
}

parser IngressParser(packet_in pkt, out headers_t hdr, inout metadata_t md) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.ether_type) {
            ETHERTYPE_IPV4: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            IPPROTO_UDP: parse_udp;
            default: accept;
        }
    }
    state parse_udp {
        pkt.extract(hdr.udp);
        transition select(hdr.udp.dst_port) {
            NETCL_PORT: parse_netcl;
            default: accept;
        }
    }
    state parse_netcl {
        pkt.extract(hdr.netcl);
        transition select(hdr.netcl.comp) {
            1: parse_paxos;
            default: accept;
        }
    }
    state parse_paxos {
        pkt.extract(hdr.paxos);
        transition accept;
    }
}

control Ingress(inout headers_t hdr, inout metadata_t md) {
    // -- base program: link-layer forwarding for ordinary traffic ------
    action l2_set_port(port_t port) {
        md.l2_port = (bit<16>)port;
        md.fwd_kind = FWD_HOST;
    }
    action l2_flood() {
        md.fwd_kind = FWD_MCAST;
        md.fwd_target = 1;
    }
    table dmac {
        key = { hdr.ethernet.dst_addr : exact; }
        actions = { l2_set_port; l2_flood; }
        default_action = l2_flood();
        size = 1024;
    }

    // -- instance sequencing --------------------------------------------
    Register<bit<32>, bit<32>>(1) instance_reg;
    RegisterAction<bit<32>, bit<32>, bit<32>>(instance_reg) next_instance = {
        void apply(inout bit<32> value, out bit<32> rv) {
            value = value + 1;
            rv = value;
        }
    };

    apply {
        md.fwd_kind = FWD_DROP;
        if (hdr.netcl.isValid()) {
            if (hdr.netcl.to == DEVICE_ID && hdr.netcl.comp == 1) {
                md.computed = 1;
                hdr.netcl.from_ = DEVICE_ID;
                if (hdr.paxos.msgtype == MSG_REQUEST) {
                    // sequence the request into the next instance and
                    // fan it out to all acceptors
                    hdr.paxos.instance = next_instance.execute(0) & (NUM_INSTANCES - 1);
                    hdr.paxos.msgtype = MSG_PHASE2A;
                    hdr.netcl.act = ACT_MULTICAST;
                    md.fwd_kind = FWD_MCAST;
                    md.fwd_target = ACCEPTOR_MCAST;
                } else {
                    hdr.netcl.act = ACT_DROP;
                }
            } else {
            // transit: no-op at this device (no-implicit-computation rule)
            if (hdr.netcl.to != NO_DEVICE && hdr.netcl.to != DEVICE_ID) {
                md.fwd_kind = FWD_DEVICE;
                md.fwd_target = hdr.netcl.to;
            } else {
                md.fwd_kind = FWD_HOST;
                md.fwd_target = hdr.netcl.dst;
            }
            }
        } else if (hdr.ethernet.isValid()) {
            dmac.apply();
        }
    }
}

control IngressDeparser(packet_out pkt, inout headers_t hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.ipv4);
        pkt.emit(hdr.udp);
        pkt.emit(hdr.netcl);
        pkt.emit(hdr.paxos);
    }
}

Pipeline(IngressParser(), Ingress(), IngressDeparser()) pipe;
Switch(pipe) main;
