"""P4XOS host side: clients proposing values through the in-network
Paxos chain (leader switch -> 3 acceptor switches -> learner switch ->
application host).

The same NetCL program is compiled once per device (§III); ACCEPTOR_ID is
materialized per acceptor at compile time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import compile_app
from repro.netsim import DEVICE, HOST, Link, Network
from repro.runtime import KernelSpec, Message, NetCLDevice
from repro.runtime.message import NetCLPacket, unpack

LEADER_DEV = 1
ACCEPTOR_DEVS = (2, 3, 4)
LEARNER_DEV = 5
ACCEPTOR_MCAST = 43
VALUE_WORDS = 8

MSG_REQUEST, MSG_PHASE2A, MSG_PHASE2B, MSG_DELIVER = 0, 1, 2, 3


@dataclass
class Delivery:
    instance: int
    value: list[int]
    time_ns: int


class PaxosClient:
    def __init__(self, network: Network, host_id: int, app_host_id: int, spec: KernelSpec) -> None:
        self.network = network
        self.host = network.hosts[host_id]
        self.host_id = host_id
        self.app_host_id = app_host_id
        self.spec = spec
        self.proposed = 0

    def propose(self, value: list[int], round_: int = 1) -> None:
        """Submit a value for consensus; it is delivered to the app host."""
        assert len(value) <= VALUE_WORDS
        padded = list(value) + [0] * (VALUE_WORDS - len(value))
        msg = Message(src=self.host_id, dst=self.app_host_id, comp=1, to=LEADER_DEV)
        self.host.send_message(
            msg, self.spec, [MSG_REQUEST, 0, round_, None, None, padded]
        )
        self.proposed += 1


class PaxosApp:
    """The replicated application receiving the chosen sequence."""

    def __init__(self, network: Network, host_id: int, spec: KernelSpec) -> None:
        self.network = network
        self.host = network.hosts[host_id]
        self.host.on_receive = self._on_receive
        self.spec = spec
        self.deliveries: list[Delivery] = []

    def _on_receive(self, packet: NetCLPacket, now_ns: int) -> None:
        _, values = unpack(packet.to_wire(), self.spec)
        mtype, instance, _round, _vround, _vote, v = values
        if mtype == MSG_DELIVER:
            self.deliveries.append(Delivery(instance, list(v), now_ns))


@dataclass
class PaxosCluster:
    network: Network
    devices: dict[int, NetCLDevice]
    client: PaxosClient
    app: PaxosApp
    spec: KernelSpec
    compiled: dict[int, object]


def build_paxos_cluster(
    *,
    target: str = "tna",
    majority: int = 2,
    link_latency_ns: int = 1000,
    seed: int = 5,
) -> PaxosCluster:
    """Compile the program once per device and build the chain topology."""
    net = Network(seed=seed)
    devices: dict[int, NetCLDevice] = {}
    compiled: dict[int, object] = {}

    def make_device(dev_id: int, acceptor_id: int = 0) -> NetCLDevice:
        cp = compile_app(
            "paxos",
            dev_id,
            target=target,
            defines={"ACCEPTOR_ID": acceptor_id, "MAJORITY": majority},
        )
        compiled[dev_id] = cp
        dev = NetCLDevice(dev_id, cp.module, cp.kernels())
        proc = int(cp.report.latency.total_ns) if cp.report else 500
        net.add_switch(dev, processing_ns=proc)
        devices[dev_id] = dev
        return dev

    make_device(LEADER_DEV)
    for i, dev_id in enumerate(ACCEPTOR_DEVS):
        make_device(dev_id, acceptor_id=i)
    make_device(LEARNER_DEV)

    # Topology: client - leader - acceptors - learner - app host.
    net.add_host(1)  # client
    net.add_host(2)  # application
    net.link(HOST(1), DEVICE(LEADER_DEV), Link(latency_ns=link_latency_ns))
    for dev_id in ACCEPTOR_DEVS:
        net.link(DEVICE(LEADER_DEV), DEVICE(dev_id), Link(latency_ns=link_latency_ns))
        net.link(DEVICE(dev_id), DEVICE(LEARNER_DEV), Link(latency_ns=link_latency_ns))
    net.link(DEVICE(LEARNER_DEV), HOST(2), Link(latency_ns=link_latency_ns))
    net.add_multicast_group(ACCEPTOR_MCAST, [DEVICE(d) for d in ACCEPTOR_DEVS])

    any_cp = compiled[LEADER_DEV]
    spec = KernelSpec.from_kernel(any_cp.kernels()[0])  # type: ignore[attr-defined]
    client = PaxosClient(net, 1, 2, spec)
    app = PaxosApp(net, 2, spec)
    return PaxosCluster(net, devices, client, app, spec, compiled)
