"""P4 code generation backends (§VI-B "Code generation").

Two targets, chosen as the paper's two extremes:

* :mod:`repro.backends.tna` — Intel Tofino Native Architecture: highly
  constrained 12-stage ASIC; code generation is paired with lowering to a
  :class:`repro.tofino.tables.PipelineSpec` that the fitter places.
* :mod:`repro.backends.v1model` — the software switch: any valid P4 runs.

Both emit readable P4 source (headers for kernel arguments, parsers, one
control block containing all kernels at a location, a top-level switch on
the computation id) and return a :class:`CodegenResult` that carries the
P4 text, the resource spec, and the executable kernels for the behavioral
device runtime.
"""

from repro.backends.common import CodegenResult, prepare_module_for_codegen
from repro.backends.base import base_program_spec, netcl_runtime_spec, NETCL_HEADER_BITS
from repro.backends.lower import lower_to_pipeline_spec
from repro.backends.tna import TnaBackend
from repro.backends.v1model import V1ModelBackend

__all__ = [
    "CodegenResult",
    "prepare_module_for_codegen",
    "base_program_spec",
    "netcl_runtime_spec",
    "NETCL_HEADER_BITS",
    "lower_to_pipeline_spec",
    "TnaBackend",
    "V1ModelBackend",
]
