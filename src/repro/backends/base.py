"""The NetCL-aware base P4 program and device-runtime overheads (§VI-C).

Generated NetCL code is emitted *into* a base P4 program supplied by the
network operator.  Our base program (like the paper's) does basic
link-layer forwarding for ordinary traffic, recognizes NetCL messages by a
configurable UDP destination-port range, stores the incoming NetCL header,
invokes the NetCL runtime, and forwards according to the header diff.

This module describes the base program and runtime as a
:class:`PipelineSpec` so that the EMPTY column of Tables V/VI — the
resource floor every NetCL deployment pays — is explicit, and as header
field inventories used by the PHV allocator.
"""

from __future__ import annotations

from repro.tofino.tables import (
    DependencyKind,
    LogicalTable,
    MatchKind,
    PipelineSpec,
)

# Standard headers the base program parses (bits).
ETH_BITS = 112
IPV4_BITS = 160
UDP_BITS = 64

#: NetCL shim header (Fig. 10): src, dst, from, to (u16 each), computation
#: id (u8), action/flags (u8), length (u16).
NETCL_HEADER_FIELDS = [16, 16, 16, 16, 8, 8, 16]
NETCL_HEADER_BITS = sum(NETCL_HEADER_FIELDS)

#: Metadata the device runtime carries (forwarding decision, multicast
#: group, previous-hop bookkeeping).
NETCL_RUNTIME_METADATA = [8, 16, 16, 16, 4]


def base_program_spec() -> PipelineSpec:
    """L2 forwarding base program with NetCL message classification."""
    spec = PipelineSpec("base")
    spec.header_fields = [ETH_BITS, IPV4_BITS, UDP_BITS]
    spec.metadata_fields = [9, 9, 16, 3]  # ports, bridge md
    spec.parsed_bytes = (ETH_BITS + IPV4_BITS + UDP_BITS) // 8

    smac = spec.add(
        LogicalTable(
            "smac",
            MatchKind.EXACT,
            key_bits=48,
            entries=1024,
            value_bits=1,
            vliw_slots=1,
            origin="base",
        )
    )
    dmac = spec.add(
        LogicalTable(
            "dmac",
            MatchKind.EXACT,
            key_bits=48,
            entries=1024,
            value_bits=9,
            vliw_slots=1,
            origin="base",
        )
    )
    dmac.add_dep(smac.name, DependencyKind.ACTION)
    bcast = spec.add(
        LogicalTable(
            "broadcast",
            MatchKind.TERNARY,
            key_bits=48,
            entries=16,
            value_bits=16,
            vliw_slots=1,
            origin="base",
        )
    )
    bcast.add_dep(dmac.name, DependencyKind.ACTION)
    return spec


def netcl_runtime_spec() -> PipelineSpec:
    """The NetCL device runtime: header classification, kernel dispatch,
    and action-to-forwarding translation (§VI-C)."""
    spec = PipelineSpec("netcl-runtime")
    spec.header_fields = list(NETCL_HEADER_FIELDS)
    spec.metadata_fields = list(NETCL_RUNTIME_METADATA)
    spec.parsed_bytes = NETCL_HEADER_BITS // 8

    # NetCL classification and kernel dispatch fold into one table: it
    # matches (UDP dst port range, to == device.id, computation id) in a
    # single pass — all fields come straight from parsed headers.
    dispatch = spec.add(
        LogicalTable(
            "ncl_dispatch",
            MatchKind.RANGE,
            key_bits=16 + 24,
            entries=16,
            value_bits=8,
            vliw_slots=2,
            origin="runtime",
        )
    )
    fwd = spec.add(
        LogicalTable(
            "ncl_forward",
            MatchKind.EXACT,
            key_bits=8 + 16,  # (action kind, target id)
            entries=64,
            value_bits=16,
            vliw_slots=3,
            origin="runtime",
        )
    )
    fwd.add_dep(dispatch.name, DependencyKind.MATCH)
    return spec


def empty_program_spec() -> PipelineSpec:
    """Base program + runtime, no generated code: the EMPTY column."""
    spec = PipelineSpec("empty")
    spec.merge(base_program_spec())
    spec.merge(netcl_runtime_spec())
    # NetCL classification matches on the parsed UDP port directly; it runs
    # in parallel with the base L2 pipeline (no dependency between them).
    return spec
