"""Shared backend plumbing: codegen preparation and result container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.ir.module import Function, Module
from repro.passes.phielim import eliminate_phis
from repro.passes.structurize import StructuredNode, structurize
from repro.tofino.report import ResourceReport
from repro.tofino.tables import PipelineSpec


def prepare_module_for_codegen(
    module: Module, device_id: Optional[int] = None
) -> dict[str, StructuredNode]:
    """φ-elimination + structurization for every kernel at ``device_id``.

    Returns kernel name -> structured tree (the form both code generators
    and the resource lowering consume).
    """
    trees: dict[str, StructuredNode] = {}
    for fn in module.kernels():
        if device_id is not None and not fn.placed_at(device_id):
            continue
        eliminate_phis(fn)
        trees[fn.name] = structurize(fn)
    return trees


@dataclass
class CodegenResult:
    """Everything one backend invocation produces."""

    target: str
    device_id: Optional[int]
    module: Module
    kernels: list[Function]
    trees: dict[str, StructuredNode]
    p4_source: str
    spec: PipelineSpec
    report: Optional[ResourceReport] = None
    kernel_stats: dict[str, object] = field(default_factory=dict)

    @property
    def fits(self) -> bool:
        return self.report is not None

    def kernel_for_computation(self, comp: int) -> Optional[Function]:
        for fn in self.kernels:
            if fn.computation == comp:
                return fn
        return None
