"""Lowering NetCL IR to a :class:`PipelineSpec` (resource-level codegen).

Follows the paper's Fig. 9 mapping:

* straight-line ALU instructions become P4 actions (VLIW slots) — grouped
  per basic-block run so independent ops share a stage;
* global register memory becomes ``Register`` + ``RegisterAction`` tables
  (one SALU, stage-local storage);
* ``_lookup_`` memory becomes MATs (exact → SRAM, range/ternary/LPM →
  TCAM);
* dynamically-indexed local arrays / message field arrays become header
  stacks with index tables;
* hash intrinsics occupy hash engines on the consuming table;
* every conditional branch becomes a gateway.

Dependencies are classified the RMT way: a value feeding a match key or a
register index is a MATCH dependency (the consumer cannot start before the
producer's action completes); a value feeding action data is an ACTION
dependency; tables guarded by a gateway take a CONTROL dependency on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.ir.instructions import (
    Alloca,
    AtomicRMW,
    BinOp,
    Cast,
    Constant,
    ICmp,
    Instruction,
    Intrinsic,
    Load,
    LoadGlobal,
    LoadMsg,
    Lookup,
    LookupVal,
    Ret,
    Select,
    Store,
    StoreGlobal,
    StoreMsg,
    Value,
)
from repro.ir.module import Function, LookupKind, Module
from repro.passes.structurize import (
    IfNode,
    LeafNode,
    PredDecls,
    PredUpdate,
    SeqNode,
    StructuredNode,
)
from repro.tofino.tables import (
    DependencyKind,
    LogicalTable,
    MatchKind,
    PipelineSpec,
)

_HASH_INTRINSICS = {"ncl.crc16", "ncl.crc32", "ncl.crc64", "ncl.xor16", "ncl.identity"}

#: Maximum ALU ops per generated P4 action.  A VLIW action executes in one
#: stage, so a single action may never exceed the per-stage instruction
#: budget; bf-p4c splits oversized actions and so do we.
MAX_ACTION_OPS = 16


@dataclass
class KernelLowerStats:
    """Per-kernel local-memory accounting (feeds Table VI)."""

    name: str
    ir_alloca_bits: int = 0
    p4_local_bits: int = 0  # values carried between actions (PHV locals)
    header_bits: int = 0  # kernel-argument message fields
    actions: int = 0
    gateways: int = 0


class _SpecBuilder:
    def __init__(self, spec: PipelineSpec, kernel: Function) -> None:
        self.spec = spec
        self.kernel = kernel
        self.stats = KernelLowerStats(kernel.name)
        self.producer: dict[int, str] = {}
        self._counter = 0
        self._group: Optional[LogicalTable] = None
        self._register_tables: dict[str, LogicalTable] = {}
        self._index_tables: dict[object, LogicalTable] = {}
        # Values produced by some table: id -> (width, producing table).
        # Only values consumed by a *different* table escape into PHV
        # locals; intra-action temporaries live in the VLIW datapath.
        self._value_width: dict[int, int] = {}
        self._escaped: set[int] = set()
        # Local-slot dataflow (phi-elimination slots and local arrays): a
        # load depends on every table that stored to the slot before it.
        self._slot_writers: dict[int, set[str]] = {}
        # Fallback (predicate) structurization: predicate name -> tables
        # whose PredUpdate assignments feed it.
        self._pred_writers: dict[str, set[str]] = {}

    # -- naming ------------------------------------------------------------------
    def _fresh(self, stem: str) -> str:
        self._counter += 1
        return f"{self.kernel.name}_{stem}_{self._counter}"

    # -- dependency helpers ----------------------------------------------------------
    def _dep_on_value(self, table: LogicalTable, v: Value, kind: DependencyKind) -> None:
        name = self.producer.get(id(v))
        if name is not None and name != table.name:
            table.add_dep(name, kind)
            self._escaped.add(id(v))

    def finish(self) -> None:
        """Fold escaped-value widths into the PHV-local accounting."""
        self.stats.p4_local_bits += sum(
            self._value_width.get(v, 0) for v in self._escaped
        )

    def _control_deps(self, table: LogicalTable, ctx: list[str]) -> None:
        if ctx:
            table.add_dep(ctx[-1], DependencyKind.CONTROL)

    # -- groups (plain P4 actions) ----------------------------------------------------
    def _current_group(self, ctx: list[str]) -> LogicalTable:
        if self._group is not None and self._group.vliw_slots >= MAX_ACTION_OPS:
            self._flush_group()
        if self._group is None:
            self._group = self.spec.add(
                LogicalTable(
                    self._fresh("act"),
                    origin=self.kernel.name,
                )
            )
            self._control_deps(self._group, ctx)
            self.stats.actions += 1
        return self._group

    def _flush_group(self) -> None:
        self._group = None

    # -- per-instruction lowering --------------------------------------------------------
    def lower_tree(self, node: StructuredNode, ctx: list[str]) -> None:
        if isinstance(node, SeqNode):
            for item in node.items:
                self.lower_tree(item, ctx)
        elif isinstance(node, LeafNode):
            for inst in node.instructions:
                self._lower_inst(inst, ctx)
        elif isinstance(node, IfNode):
            gw = self._gateway(node, ctx)
            self._flush_group()
            self.lower_tree(node.then, ctx + [gw.name])
            if node.els is not None:
                self._flush_group()
                self.lower_tree(node.els, ctx + [gw.name])
            self._flush_group()
        elif isinstance(node, PredUpdate):
            g = self._current_group(ctx)
            g.vliw_slots += 1
            if node.cond is not None:
                self._dep_on_value(g, node.cond, DependencyKind.ACTION)
            writers = self._pred_writers.setdefault(node.target, set())
            writers.add(g.name)
            # Chained predicates: pred[target] |= pred[source] && ...
            if node.source:
                writers |= self._pred_writers.get(node.source, set())
        elif isinstance(node, PredDecls):
            self.stats.p4_local_bits += len(node.names)  # 1-bit predicates

    def _gateway(self, node: IfNode, ctx: list[str]) -> LogicalTable:
        cond = node.cond
        key_bits = 1
        gw = self.spec.add(
            LogicalTable(
                self._fresh("gw"),
                is_gateway=True,
                key_bits=key_bits,
                origin=self.kernel.name,
            )
        )
        self.stats.gateways += 1
        if isinstance(cond, Value):
            self._dep_on_value(gw, cond, DependencyKind.MATCH)
        else:
            for writer in sorted(self._pred_writers.get(cond, ())):
                gw.add_dep(writer, DependencyKind.MATCH)
        self._control_deps(gw, ctx)
        return gw

    def _lower_inst(self, inst: Instruction, ctx: list[str]) -> None:
        if isinstance(inst, Alloca):
            bits = inst.elem.width * inst.shape.num_elements
            self.stats.ir_alloca_bits += bits
            self.stats.p4_local_bits += bits
            return
        if isinstance(inst, (LoadGlobal, StoreGlobal, AtomicRMW)):
            self._lower_register_access(inst, ctx)
            return
        if isinstance(inst, (Lookup, LookupVal)):
            self._lower_lookup(inst, ctx)
            return
        if isinstance(inst, (Load, Store)):
            self._lower_local_access(inst, ctx)
            return
        if isinstance(inst, LoadMsg):
            idx = inst.index
            if idx is None or isinstance(idx, Constant):
                # Header fields are directly available on the PHV: reading
                # one costs nothing and produces no dependency (match keys
                # and action operands read headers in place).
                return
            # Dynamic header-stack index: index table (Fig. 9 rightmost).
            tbl = self._index_table_for(inst, idx, ctx)
            self.producer[id(inst)] = tbl.name
            self._value_width[id(inst)] = _int_width(inst)
            return
        if isinstance(inst, StoreMsg):
            idx = inst.index
            producer = self.producer.get(id(inst.value))
            if (
                (idx is None or isinstance(idx, Constant))
                and producer is not None
                and id(inst.value) not in self._escaped
                and ("_reg_" in producer or "_mat_" in producer)
            ):
                # The header write rides along in the producing Register /
                # MAT action (rv is assigned straight to the header field):
                # no PHV-resident temporary, no extra table.
                self.spec.table(producer).vliw_slots += 1
                return
            g = self._current_group(ctx)
            g.vliw_slots += 1
            if idx is not None and not isinstance(idx, Constant):
                tbl = self._index_table_for(inst, idx, ctx)
                tbl.add_dep(g.name, DependencyKind.ACTION)
            self._dep_on_value(g, inst.value, DependencyKind.ACTION)
            return
        if isinstance(inst, Intrinsic):
            g = self._current_group(ctx)
            if inst.callee in _HASH_INTRINSICS:
                g.hash_engines += 1
            elif getattr(inst, "lpm_table", False):
                self._flush_group()
                tbl = self.spec.add(
                    LogicalTable(
                        self._fresh("lpm"),
                        MatchKind.LPM,
                        key_bits=inst.args[0].type.width if inst.args else 32,
                        entries=(inst.args[0].type.width + 1) if inst.args else 33,
                        value_bits=inst.type.width,
                        origin=self.kernel.name,
                    )
                )
                for a in inst.args:
                    self._dep_on_value(tbl, a, DependencyKind.MATCH)
                self._control_deps(tbl, ctx)
                self.producer[id(inst)] = tbl.name
                return
            else:
                g.vliw_slots += 1
            for a in inst.args:
                self._dep_on_value(g, a, DependencyKind.ACTION)
            self.producer[id(inst)] = g.name
            return
        if isinstance(inst, (BinOp, ICmp, Select, Cast)):
            g = self._current_group(ctx)
            if getattr(inst, "on_hash_engine", False):
                g.hash_engines += 1
            else:
                g.vliw_slots += 1
            for op in inst.operands:
                self._dep_on_value(g, op, DependencyKind.ACTION)
            self.producer[id(inst)] = g.name
            self._value_width[id(inst)] = _int_width(inst)
            return
        if isinstance(inst, Ret):
            g = self._current_group(ctx)
            g.vliw_slots += 1  # writing the runtime's action/target metadata
            for op in inst.operands:
                self._dep_on_value(g, op, DependencyKind.ACTION)
            return
        # Phi and friends should be gone by now.
        raise ValueError(f"cannot lower instruction {inst!r} to pipeline spec")

    def _lower_register_access(self, inst: Union[LoadGlobal, StoreGlobal, AtomicRMW], ctx: list[str]) -> None:
        self._flush_group()
        gv = inst.gv
        # One logical table per access site (a distinct RegisterAction).
        # All sites over one Register share its stage-local storage, so the
        # first site carries the SRAM bits and later sites are colocated
        # with it — the fitter enforces same-stage placement on ASICs.
        first = self._register_tables.get(gv.name)
        n_prior = sum(1 for t in self.spec.tables if t.colocate == (first.name if first else None) and first is not None)
        tbl = self.spec.add(
            LogicalTable(
                f"{self.kernel.name}_reg_{gv.name.replace('.', '_')}"
                + (f"_{n_prior + 1}" if first is not None else ""),
                register_bits=gv.bits if first is None else 0,
                salus=1 if first is None else 0,  # one SALU serves the Register
                vliw_slots=1,  # the RegisterAction invocation
                colocate=first.name if first is not None else None,
                origin=self.kernel.name,
            )
        )
        if first is None:
            self._register_tables[gv.name] = tbl
        for idx in inst.indices:
            self._dep_on_value(tbl, idx, DependencyKind.MATCH)
        if isinstance(inst, StoreGlobal):
            self._dep_on_value(tbl, inst.value, DependencyKind.ACTION)
        if isinstance(inst, AtomicRMW):
            for extra in (inst.operand, inst.cond, inst.compare):
                if extra is not None:
                    self._dep_on_value(tbl, extra, DependencyKind.ACTION)
        self._control_deps(tbl, ctx)
        if not isinstance(inst, StoreGlobal):
            self.producer[id(inst)] = tbl.name
            self._value_width[id(inst)] = _int_width(inst)

    def _lower_lookup(self, inst: Union[Lookup, LookupVal], ctx: list[str]) -> None:
        gv = inst.gv
        name = f"{self.kernel.name}_mat_{gv.name.replace('.', '_')}"
        existing = next((t for t in self.spec.tables if t.name == name), None)
        if existing is None:
            match = MatchKind.EXACT
            if gv.lookup_kind == LookupKind.RV:
                match = MatchKind.RANGE
            existing = self.spec.add(
                LogicalTable(
                    name,
                    match,
                    key_bits=(gv.key_type or gv.elem).width,
                    entries=max(gv.capacity, len(gv.entries)),
                    value_bits=(gv.value_type.width if gv.value_type else 0) + 1,
                    vliw_slots=1,
                    origin=self.kernel.name,
                )
            )
        self._flush_group()
        self._dep_on_value(existing, inst.key, DependencyKind.MATCH)
        self._control_deps(existing, ctx)
        self.producer[id(inst)] = existing.name
        self._value_width[id(inst)] = _int_width(inst)

    def _lower_local_access(self, inst: Union[Load, Store], ctx: list[str]) -> None:
        if isinstance(inst, Store) and not any(
            not isinstance(i, Constant) for i in inst.indices
        ):
            producer = self.producer.get(id(inst.value))
            if (
                producer is not None
                and id(inst.value) not in self._escaped
                and ("_reg_" in producer or "_mat_" in producer)
            ):
                # The local write rides along in the producing Register /
                # MAT action (rv is assigned straight to the local).
                self.spec.table(producer).vliw_slots += 1
                self._slot_writers.setdefault(id(inst.slot), set()).add(producer)
                return
        g = self._current_group(ctx)
        g.vliw_slots += 1
        dynamic = any(not isinstance(i, Constant) for i in inst.indices)
        if dynamic:
            tbl = self._index_table_for(inst, inst.indices[0], ctx)
            tbl.add_dep(g.name, DependencyKind.ACTION)
        slot_key = id(inst.slot)
        if isinstance(inst, Load):
            # The load sees whatever any earlier table stored to the slot.
            for writer in self._slot_writers.get(slot_key, ()):  # dataflow
                g.add_dep(writer, DependencyKind.ACTION)
            self.producer[id(inst)] = g.name
            self._value_width[id(inst)] = _int_width(inst)
            # A local slot read across tables is PHV-resident by definition.
            self._escaped.add(id(inst.slot))
            self._value_width.setdefault(id(inst.slot), 0)
        else:
            self._dep_on_value(g, inst.value, DependencyKind.ACTION)
            self._slot_writers.setdefault(slot_key, set()).add(g.name)
        for i in inst.indices:
            self._dep_on_value(g, i, DependencyKind.ACTION)

    def _index_table_for(self, inst: Instruction, idx: Value, ctx: list[str]) -> LogicalTable:
        slot = getattr(inst, "slot", None)
        if slot is not None:
            slot_id: object = id(slot)
        else:
            slot_id = getattr(inst, "field", id(inst))  # message field arrays
        tbl = self._index_tables.get(slot_id)
        if tbl is None:
            entries = 16
            slot = getattr(inst, "slot", None)
            if isinstance(slot, Alloca):
                entries = slot.shape.num_elements
            tbl = self.spec.add(
                LogicalTable(
                    self._fresh("idx"),
                    MatchKind.EXACT,
                    key_bits=max(_int_width_v(idx), 1),
                    entries=entries,
                    value_bits=8,
                    vliw_slots=1,
                    origin=self.kernel.name,
                )
            )
            self._index_tables[slot_id] = tbl
        self._dep_on_value(tbl, idx, DependencyKind.MATCH)
        self._control_deps(tbl, ctx)
        return tbl


def _int_width(inst: Instruction) -> int:
    from repro.ir.types import IntType

    return inst.type.width if isinstance(inst.type, IntType) else 0


def _int_width_v(v: Value) -> int:
    from repro.ir.types import IntType

    return v.type.width if isinstance(v.type, IntType) else 0


def lower_to_pipeline_spec(
    module: Module,
    trees: dict[str, StructuredNode],
    device_id: Optional[int] = None,
    name: str = "netcl",
) -> tuple[PipelineSpec, dict[str, KernelLowerStats]]:
    """Lower every kernel at ``device_id`` into one pipeline spec.

    ``trees`` maps kernel name -> structured tree (post phi-elimination).
    """
    spec = PipelineSpec(name)
    stats: dict[str, KernelLowerStats] = {}
    header_bits_per_kernel: list[int] = []
    for fn in module.kernels():
        if device_id is not None and not fn.placed_at(device_id):
            continue
        builder = _SpecBuilder(spec, fn)
        builder.lower_tree(trees[fn.name], [])
        builder.finish()
        builder.stats.header_bits = sum(a.type.width * a.spec for a in fn.args)
        stats[fn.name] = builder.stats
        header_bits_per_kernel.append(builder.stats.header_bits)
    # Message data fields: the pipe carries one kernel's arguments at a
    # time; the worst case is the largest argument header.
    if header_bits_per_kernel:
        worst = max(header_bits_per_kernel)
        spec.header_fields.append(worst)
    # PHV locals are reported separately (build_report's local_fields), so
    # they are *not* folded into metadata_fields here.
    return spec, stats
