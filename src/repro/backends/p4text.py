"""P4 source emission from structured trees (§VI-B "Code generation").

Emits readable P4 in two dialects:

* ``tna``   — Intel Tofino Native Architecture style: ``Register`` /
  ``RegisterAction`` externs, ``Hash`` externs, TNA pipeline blocks;
* ``v1``    — v1model style: ``register<bit<W>>`` externs with
  ``read``/``write``, ``hash()`` calls.

The emitter follows the paper's codegen rules: instructions become P4
actions writing local variables; global memory becomes Registers with one
RegisterAction per access form; lookup memory becomes MATs; kernels for a
location share one control block with a top-level dispatch on the
computation id; structured-tree IfNodes become nested ``if`` scopes.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.ir.instructions import (
    ActionKind,
    Alloca,
    AtomicOp,
    AtomicRMW,
    BinOp,
    BinOpKind,
    Cast,
    Constant,
    ICmp,
    ICmpPred,
    Instruction,
    Intrinsic,
    Load,
    LoadGlobal,
    LoadMsg,
    Lookup,
    LookupVal,
    Ret,
    Select,
    Store,
    StoreGlobal,
    StoreMsg,
    Undef,
    Value,
)
from repro.ir.module import Function, GlobalVar, LookupKind, Module
from repro.ir.types import IntType
from repro.passes.structurize import (
    IfNode,
    LeafNode,
    PredDecls,
    PredUpdate,
    SeqNode,
    StructuredNode,
)

_BINOP_P4 = {
    BinOpKind.ADD: "+",
    BinOpKind.SUB: "-",
    BinOpKind.MUL: "*",
    BinOpKind.AND: "&",
    BinOpKind.OR: "|",
    BinOpKind.XOR: "^",
    BinOpKind.SHL: "<<",
    BinOpKind.LSHR: ">>",
    BinOpKind.ASHR: ">>",
    BinOpKind.SADDU: "|+|",
    BinOpKind.SSUBU: "|-|",
    BinOpKind.UDIV: "/",
    BinOpKind.SDIV: "/",
    BinOpKind.UREM: "%",
    BinOpKind.SREM: "%",
}

_ICMP_P4 = {
    ICmpPred.EQ: "==",
    ICmpPred.NE: "!=",
    ICmpPred.ULT: "<",
    ICmpPred.ULE: "<=",
    ICmpPred.UGT: ">",
    ICmpPred.UGE: ">=",
    ICmpPred.SLT: "<",
    ICmpPred.SLE: "<=",
    ICmpPred.SGT: ">",
    ICmpPred.SGE: ">=",
}

_ACTION_CODE = {
    ActionKind.PASS: 0,
    ActionKind.DROP: 1,
    ActionKind.SEND_TO_HOST: 2,
    ActionKind.SEND_TO_DEVICE: 3,
    ActionKind.MULTICAST: 4,
    ActionKind.REPEAT: 5,
    ActionKind.REFLECT: 6,
    ActionKind.REFLECT_LONG: 7,
}


class P4Emitter:
    """Emits one P4 translation unit for all kernels at a location."""

    def __init__(self, dialect: str = "tna") -> None:
        assert dialect in ("tna", "v1")
        self.dialect = dialect
        self.lines: list[str] = []
        self.indent = 0
        self._names: dict[int, str] = {}
        self._decls: list[str] = []
        self._tables: list[str] = []
        self._counter = 0

    # -- low-level emission ------------------------------------------------------
    def w(self, text: str = "") -> None:
        self.lines.append(("    " * self.indent) + text if text else "")

    def fresh(self, stem: str) -> str:
        self._counter += 1
        return f"{stem}_{self._counter}"

    @staticmethod
    def bit(ty: IntType) -> str:
        return f"bit<{ty.width}>"

    def ref(self, v: Value) -> str:
        if isinstance(v, Constant):
            return f"{v.value}"
        if isinstance(v, Undef):
            return "0 /* undef */"
        name = self._names.get(id(v))
        if name is None:
            name = f"t{len(self._names)}"
            self._names[id(v)] = name
        return name

    def define(self, inst: Instruction, expr: str) -> None:
        """Declare a local for an instruction result and assign it."""
        assert isinstance(inst.type, IntType)
        name = self.ref(inst)
        self._decls.append(f"{self.bit(inst.type)} {name};")
        self.w(f"{name} = {expr};")

    # -- program emission -------------------------------------------------------------
    def emit_program(
        self,
        module: Module,
        trees: dict[str, StructuredNode],
        device_id: Optional[int],
        kernels: list[Function],
    ) -> str:
        self.w(f"// NetCL generated P4 ({self.dialect}), device {device_id}")
        self.w('#include <core.p4>')
        self.w('#include <tna.p4>' if self.dialect == "tna" else '#include <v1model.p4>')
        self.w()
        self._emit_headers(kernels)
        body_chunks: list[list[str]] = []
        for fn in kernels:
            saved, self.lines, self.indent = self.lines, [], 2
            self._emit_kernel_body(fn, trees[fn.name])
            body_chunks.append(self.lines)
            self.lines, self.indent = saved, 0
        self._emit_globals(module, device_id, kernels)
        self._emit_control(kernels, body_chunks)
        return "\n".join(self.lines) + "\n"

    def _emit_headers(self, kernels: list[Function]) -> None:
        self.w("// NetCL shim header (Fig. 10)")
        self.w("header netcl_t {")
        self.indent += 1
        for f in ("src", "dst", "from_", "to"):
            self.w(f"bit<16> {f};")
        self.w("bit<8> comp;")
        self.w("bit<8> act;")
        self.w("bit<16> len;")
        self.indent -= 1
        self.w("}")
        self.w()
        for fn in kernels:
            self.w(f"// kernel {fn.name}, computation {fn.computation}")
            self.w(f"header {fn.name}_args_t {{")
            self.indent += 1
            for a in fn.args:
                if a.is_array:
                    for i in range(a.spec):
                        self.w(f"bit<{a.type.width}> {a.name}_{i};")
                else:
                    self.w(f"bit<{max(8, a.type.width)}> {a.name};")
            self.indent -= 1
            self.w("}")
            self.w()

    def _emit_globals(self, module: Module, device_id: Optional[int], kernels: list[Function]) -> None:
        used: set[str] = set()
        for fn in kernels:
            for inst in fn.instructions():
                gv = getattr(inst, "gv", None)
                if isinstance(gv, GlobalVar):
                    used.add(gv.name)
        self.w("// -- global device memory " + "-" * 40)
        for name in sorted(used):
            gv = module.globals[name]
            ident = name.replace(".", "_")
            if gv.space.is_lookup:
                continue  # emitted as MATs with the kernel bodies
            if self.dialect == "tna":
                self.w(
                    f"Register<bit<{gv.elem.width}>, bit<32>>"
                    f"({max(1, gv.capacity)}) {ident};"
                )
            else:
                self.w(f"register<bit<{gv.elem.width}>>({max(1, gv.capacity)}) {ident};")
        self.w()

    def _emit_control(self, kernels: list[Function], bodies: list[list[str]]) -> None:
        io = (
            "inout headers_t hdr, inout metadata_t md"
            if self.dialect == "v1"
            else "inout headers_t hdr, inout metadata_t md, "
            "in ingress_intrinsic_metadata_t ig_md"
        )
        self.w(f"control NetCLIngress({io}) {{")
        self.indent += 1
        for d in sorted(set(self._decls)):
            self.w(d)
        for t in self._tables:
            for line in t.split("\n"):
                self.w(line)
        self.w("apply {")
        self.indent += 1
        self.w("// dispatch on the requested computation id (device runtime)")
        first = True
        for fn, chunk in zip(kernels, bodies):
            kw = "if" if first else "else if"
            first = False
            self.w(f"{kw} (hdr.netcl.comp == {fn.computation}) {{")
            self.lines.extend(chunk)
            self.w("}")
        self.indent -= 1
        self.w("}")
        self.indent -= 1
        self.w("}")

    # -- kernel bodies ------------------------------------------------------------------
    def _emit_kernel_body(self, fn: Function, tree: StructuredNode) -> None:
        self._fn = fn
        self.emit_node(tree)

    def emit_node(self, node: StructuredNode) -> None:
        if isinstance(node, SeqNode):
            for item in node.items:
                self.emit_node(item)
        elif isinstance(node, LeafNode):
            for inst in node.instructions:
                self.emit_inst(inst)
        elif isinstance(node, IfNode):
            cond = node.cond if isinstance(node.cond, str) else f"{self.ref(node.cond)} == 1"
            if node.negate:
                cond = f"!({cond})"
            self.w(f"if ({cond}) {{")
            self.indent += 1
            self.emit_node(node.then)
            self.indent -= 1
            if node.els is not None:
                self.w("} else {")
                self.indent += 1
                self.emit_node(node.els)
                self.indent -= 1
            self.w("}")
        elif isinstance(node, PredDecls):
            for n in node.names:
                self._decls.append(f"bool {n};")
                self.w(f"{n} = false;")
        elif isinstance(node, PredUpdate):
            src = node.source or "true"
            if node.cond is None:
                self.w(f"{node.target} = {node.target} || {src};")
            else:
                c = f"{self.ref(node.cond)} == 1"
                if not node.expect:
                    c = f"!({c})"
                self.w(f"{node.target} = {node.target} || ({src} && {c});")

    # -- instructions ----------------------------------------------------------------------
    def emit_inst(self, inst: Instruction) -> None:
        if isinstance(inst, Alloca):
            ident = self.ref(inst)
            if inst.is_scalar:
                self._decls.append(f"{self.bit(inst.elem)} {ident};")
            else:
                # local array: header stack
                self._decls.append(
                    f"box<bit<{inst.elem.width}>> {ident}[{inst.shape.num_elements}];"
                    " // header stack"
                )
            return
        if isinstance(inst, BinOp):
            op = _BINOP_P4[inst.kind]
            self.define(inst, f"{self.ref(inst.a)} {op} {self.ref(inst.b)}")
            return
        if isinstance(inst, ICmp):
            op = _ICMP_P4[inst.pred]
            signed = inst.pred.value.startswith("s")
            a, b = self.ref(inst.a), self.ref(inst.b)
            if signed:
                assert isinstance(inst.a.type, IntType)
                a, b = f"(int<{inst.a.type.width}>){a}", f"(int<{inst.a.type.width}>){b}"
            self.define(inst, f"({a} {op} {b}) ? 1w1 : 1w0")
            return
        if isinstance(inst, Select):
            self.define(
                inst,
                f"({self.ref(inst.cond)} == 1) ? {self.ref(inst.t)} : {self.ref(inst.f)}",
            )
            return
        if isinstance(inst, Cast):
            assert isinstance(inst.type, IntType)
            self.define(inst, f"({self.bit(inst.type)}){self.ref(inst.value)}")
            return
        if isinstance(inst, Load):
            idx = "".join(f"[{self.ref(i)}]" for i in inst.indices)
            self.define(inst, f"{self.ref(inst.slot)}{idx}" + (".value" if idx else ""))
            return
        if isinstance(inst, Store):
            idx = "".join(f"[{self.ref(i)}]" for i in inst.indices)
            tgt = f"{self.ref(inst.slot)}{idx}" + (".value" if idx else "")
            self.w(f"{tgt} = {self.ref(inst.value)};")
            return
        if isinstance(inst, LoadMsg):
            self.define(inst, self._msg_field(inst.field, inst.index))
            return
        if isinstance(inst, StoreMsg):
            self.w(f"{self._msg_field(inst.field, inst.index)} = {self.ref(inst.value)};")
            return
        if isinstance(inst, (LoadGlobal, StoreGlobal, AtomicRMW)):
            self._emit_register_access(inst)
            return
        if isinstance(inst, (Lookup, LookupVal)):
            self._emit_lookup(inst)
            return
        if isinstance(inst, Intrinsic):
            self._emit_intrinsic(inst)
            return
        if isinstance(inst, Ret):
            self._emit_ret(inst)
            return
        raise ValueError(f"cannot emit {inst!r}")

    def _msg_field(self, field: str, index: Optional[Value]) -> str:
        if field.startswith("__"):
            name = {"__from": "from_"}.get(field, field[2:])
            return f"hdr.netcl.{name}"
        base = f"hdr.{self._fn.name}_args.{field}"
        if index is None:
            return base
        if isinstance(index, Constant):
            return f"{base}_{index.value}"
        return f"{base}_/*dyn:*/[{self.ref(index)}]"

    def _emit_register_access(self, inst: Union[LoadGlobal, StoreGlobal, AtomicRMW]) -> None:
        gv = inst.gv
        ident = gv.name.replace(".", "_")
        index = self._flat_index_expr(gv, inst.indices)
        if self.dialect == "v1":
            if isinstance(inst, LoadGlobal):
                self.define(inst, f"0; {ident}.read({self.ref(inst)}, (bit<32>){index})")
                return
            if isinstance(inst, StoreGlobal):
                self.w(f"{ident}.write((bit<32>){index}, {self.ref(inst.value)});")
                return
            # v1model has no SALU abstraction: read-modify-write sequence.
            tmp = self.fresh("rmw")
            assert isinstance(inst.type, IntType)
            self._decls.append(f"{self.bit(inst.type)} {tmp};")
            self.w(f"{ident}.read({tmp}, (bit<32>){index});")
            self._emit_v1_rmw(inst, ident, index, tmp)
            return
        # TNA: a RegisterAction per access form.
        ra = f"ra_{self.fresh(ident)}"
        body = self._salu_microprogram(inst)
        self._tables.append(
            f"RegisterAction<bit<{gv.elem.width}>, bit<32>, bit<{gv.elem.width}>>"
            f"({ident}) {ra} = {{\n"
            f"    void apply(inout bit<{gv.elem.width}> mem, out bit<{gv.elem.width}> rv) {{\n"
            f"        {body}\n"
            f"    }}\n"
            f"}};"
        )
        if isinstance(inst, StoreGlobal):
            self.w(f"{ra}.execute((bit<32>){index});")
        else:
            self.define(inst, f"{ra}.execute((bit<32>){index})")

    def _flat_index_expr(self, gv: GlobalVar, indices: list[Value]) -> str:
        if not indices:
            return "0"
        dims = gv.shape.dims
        expr = self.ref(indices[0])
        for d, idx in zip(dims[1:], indices[1:]):
            expr = f"({expr} * {d} + {self.ref(idx)})"
        return expr

    def _salu_microprogram(self, inst: Union[LoadGlobal, StoreGlobal, AtomicRMW]) -> str:
        if isinstance(inst, LoadGlobal):
            return "rv = mem;"
        if isinstance(inst, StoreGlobal):
            return f"mem = {self.ref(inst.value)}; rv = mem;"
        op_expr = {
            AtomicOp.ADD: "mem |+| {0}" if inst.saturating else "mem + {0}",
            AtomicOp.SUB: "mem |-| {0}" if inst.saturating else "mem - {0}",
            AtomicOp.AND: "mem & {0}",
            AtomicOp.OR: "mem | {0}",
            AtomicOp.XOR: "mem ^ {0}",
            AtomicOp.MIN: "min(mem, {0})",
            AtomicOp.MAX: "max(mem, {0})",
            AtomicOp.EXCH: "{0}",
            AtomicOp.WRITE: "{0}",
            AtomicOp.CAS: "{0}",
            AtomicOp.READ: "mem",
        }[inst.op]
        operand = self.ref(inst.operand) if inst.operand is not None else "0"
        new = op_expr.format(operand)
        lines = []
        if inst.op == AtomicOp.CAS:
            cmp = self.ref(inst.compare) if inst.compare is not None else "0"
            lines.append(f"rv = mem; if (mem == {cmp}) {{ mem = {operand}; }}")
        elif inst.cond is not None:
            cond = self.ref(inst.cond)
            if inst.return_new:
                lines.append(f"if ({cond} == 1) {{ mem = {new}; }} rv = mem;")
            else:
                lines.append(f"rv = mem; if ({cond} == 1) {{ mem = {new}; }}")
        else:
            if inst.return_new:
                lines.append(f"mem = {new}; rv = mem;")
            else:
                lines.append(f"rv = mem; mem = {new};")
        return " ".join(lines)

    def _emit_v1_rmw(self, inst: AtomicRMW, ident: str, index: str, tmp: str) -> None:
        op_expr = {
            AtomicOp.ADD: "{t} |+| {o}" if inst.saturating else "{t} + {o}",
            AtomicOp.SUB: "{t} |-| {o}" if inst.saturating else "{t} - {o}",
            AtomicOp.AND: "{t} & {o}",
            AtomicOp.OR: "{t} | {o}",
            AtomicOp.XOR: "{t} ^ {o}",
            AtomicOp.MIN: "min({t}, {o})",
            AtomicOp.MAX: "max({t}, {o})",
            AtomicOp.EXCH: "{o}",
            AtomicOp.WRITE: "{o}",
            AtomicOp.CAS: "{o}",
            AtomicOp.READ: "{t}",
        }[inst.op]
        operand = self.ref(inst.operand) if inst.operand is not None else "0"
        new = op_expr.format(t=tmp, o=operand)
        guard = ""
        if inst.cond is not None:
            guard = f"if ({self.ref(inst.cond)} == 1) "
        if inst.op == AtomicOp.CAS:
            cmp = self.ref(inst.compare) if inst.compare is not None else "0"
            guard = f"if ({tmp} == {cmp}) "
        self.w(f"{guard}{ident}.write((bit<32>){index}, {new});")
        result = new if inst.return_new and inst.cond is None else tmp
        self.define(inst, result)

    def _emit_lookup(self, inst: Union[Lookup, LookupVal]) -> None:
        gv = inst.gv
        tname = f"mat_{gv.name.replace('.', '_')}"
        if not any(t.startswith(f"table {tname} ") for t in self._tables):
            match = "range" if gv.lookup_kind == LookupKind.RV else "exact"
            val_w = gv.value_type.width if gv.value_type else 0
            hit_var = f"{tname}_hit"
            val_var = f"{tname}_val"
            self._decls.append(f"bool {hit_var};")
            act = ""
            if val_w:
                self._decls.append(f"bit<{val_w}> {val_var};")
                act = (
                    f"action {tname}_set(bit<{val_w}> v) {{ {val_var} = v; }}\n"
                )
            entries = ";\n        ".join(self._entry_text(gv, val_w, tname)) or ""
            self._tables.append(
                act
                + f"table {tname} {{\n"
                + f"    key = {{ md.{tname}_key : {match}; }}\n"
                + f"    actions = {{ {(tname + '_set;') if val_w else 'NoAction;'} }}\n"
                + (f"    const entries = {{\n        {entries};\n    }}\n" if gv.entries else "")
                + f"    size = {max(1, gv.capacity)};\n"
                + "}"
            )
        if isinstance(inst, Lookup):
            self.w(f"md.{tname}_key = {self.ref(inst.key)};")
            self.w(f"{tname}_hit = {tname}.apply().hit;")
            self.define(inst, f"{tname}_hit ? 1w1 : 1w0")
        else:
            self.define(inst, f"({tname}_hit) ? {tname}_val : {self.ref(inst.default)}")

    @staticmethod
    def _entry_text(gv: GlobalVar, val_w: int, tname: str) -> list[str]:
        out = []
        for e in gv.entries:
            key = f"{e.key_lo}" if e.key_lo == e.key_hi else f"{e.key_lo} .. {e.key_hi}"
            if val_w:
                out.append(f"{key} : {tname}_set({e.value})")
            else:
                out.append(f"{key} : NoAction()")
        return out

    def _emit_intrinsic(self, inst: Intrinsic) -> None:
        args = ", ".join(self.ref(a) for a in inst.args)
        assert isinstance(inst.type, IntType)
        if inst.callee == "device.id":
            self.define(inst, "DEVICE_ID /* materialized at deploy time */")
            return
        if inst.callee.startswith("ncl.crc") or inst.callee in ("ncl.xor16", "ncl.identity"):
            algo = inst.callee.split(".", 1)[1].upper()
            if self.dialect == "tna":
                h = self.fresh("hash")
                self._tables.append(
                    f"Hash<bit<{inst.type.width}>>(HashAlgorithm_t.{algo}) {h};"
                )
                self.define(inst, f"{h}.get({{{args}}})")
            else:
                name = self.ref(inst)
                self._decls.append(f"{self.bit(inst.type)} {name};")
                self.w(
                    f"hash({name}, HashAlgorithm.{algo.lower()}, "
                    f"(bit<{inst.type.width}>)0, {{{args}}}, "
                    f"(bit<{inst.type.width + 1}>){1 << inst.type.width});"
                )
            return
        if inst.callee == "ncl.rand":
            if self.dialect == "tna":
                r = self.fresh("rng")
                self._tables.append(f"Random<bit<{inst.type.width}>>() {r};")
                self.define(inst, f"{r}.get()")
            else:
                name = self.ref(inst)
                self._decls.append(f"{self.bit(inst.type)} {name};")
                self.w(f"random({name}, 0, {inst.type.mask});")
            return
        # Generic math helpers expand inline.
        table = {
            "ncl.min": f"min({args})",
            "ncl.max": f"max({args})",
            "ncl.sadd": args.replace(", ", " |+| ") if "," in args else args,
            "ncl.ssub": args.replace(", ", " |-| ") if "," in args else args,
        }
        expr = table.get(inst.callee)
        if expr is None:
            expr = f"ncl_{inst.callee.split('.', 1)[-1]}({args})"
        self.define(inst, expr)

    def _emit_ret(self, inst: Ret) -> None:
        if inst.action is None:
            self.w("exit;")
            return
        code = _ACTION_CODE[inst.action.kind]
        self.w(f"hdr.netcl.act = {code}; // {inst.action.kind.value}")
        if inst.action.target is not None:
            self.w(f"md.ncl_target = (bit<16>){self.ref(inst.action.target)};")
        self.w("exit;")
