"""The TNA (Intel Tofino Native Architecture) backend."""

from __future__ import annotations

from typing import Optional

from repro.backends.base import empty_program_spec
from repro.backends.common import CodegenResult, prepare_module_for_codegen
from repro.backends.lower import lower_to_pipeline_spec
from repro.backends.p4text import P4Emitter
from repro.ir.module import Module
from repro.tofino.chip import ChipSpec, TOFINO_1
from repro.tofino.report import build_report
from repro.tofino.tables import DependencyKind


class TnaBackend:
    """Generates TNA P4 + a fitted pipeline for one device.

    ``fit=False`` skips the fitter (useful when only the P4 text is
    wanted); otherwise :class:`repro.tofino.allocator.FitError` propagates
    when the program does not fit — the paper's trial-and-error contract.
    """

    target = "tna"

    def __init__(self, chip: ChipSpec = TOFINO_1) -> None:
        self.chip = chip

    def compile(
        self,
        module: Module,
        device_id: Optional[int] = None,
        *,
        fit: bool = True,
        include_base_program: bool = True,
        program_name: str = "netcl",
    ) -> CodegenResult:
        trees = prepare_module_for_codegen(module, device_id)
        kernels = [
            fn
            for fn in module.kernels()
            if device_id is None or fn.placed_at(device_id)
        ]
        spec, stats = lower_to_pipeline_spec(module, trees, device_id, name=program_name)
        if include_base_program:
            base = empty_program_spec()
            spec.merge(base)
            # Generated kernel tables run after the runtime dispatch.
            for t in spec.tables:
                if t.origin and t.origin not in ("base", "runtime", "netcl-runtime"):
                    if not t.depends:
                        t.add_dep("ncl_dispatch", DependencyKind.CONTROL)
        emitter = P4Emitter("tna")
        p4 = emitter.emit_program(module, trees, device_id, kernels)
        report = None
        if fit:
            local_fields = [s.p4_local_bits for s in stats.values()]
            report = build_report(spec, self.chip, local_fields=local_fields)
        return CodegenResult(
            target=self.target,
            device_id=device_id,
            module=module,
            kernels=kernels,
            trees=trees,
            p4_source=p4,
            spec=spec,
            report=report,
            kernel_stats=dict(stats),
        )
