"""The v1model (software switch) backend.

The v1model executes any valid P4, so this backend skips the Tofino
memory passes' constraints and fits against an effectively unconstrained
"chip" — reaching the end of the common pipeline stage already guarantees
compilability (§VI-B).
"""

from __future__ import annotations

from typing import Optional

from repro.backends.base import empty_program_spec
from repro.backends.common import CodegenResult, prepare_module_for_codegen
from repro.backends.lower import lower_to_pipeline_spec
from repro.backends.p4text import P4Emitter
from repro.ir.module import Module
from repro.tofino.chip import V1MODEL, ChipSpec
from repro.tofino.report import build_report


class V1ModelBackend:
    target = "v1model"

    def __init__(self, chip: ChipSpec = V1MODEL) -> None:
        self.chip = chip

    def compile(
        self,
        module: Module,
        device_id: Optional[int] = None,
        *,
        fit: bool = True,
        include_base_program: bool = True,
        program_name: str = "netcl",
    ) -> CodegenResult:
        trees = prepare_module_for_codegen(module, device_id)
        kernels = [
            fn
            for fn in module.kernels()
            if device_id is None or fn.placed_at(device_id)
        ]
        spec, stats = lower_to_pipeline_spec(module, trees, device_id, name=program_name)
        if include_base_program:
            spec.merge(empty_program_spec())
        emitter = P4Emitter("v1")
        p4 = emitter.emit_program(module, trees, device_id, kernels)
        report = None
        if fit:
            local_fields = [s.p4_local_bits for s in stats.values()]
            report = build_report(spec, self.chip, local_fields=local_fields)
        return CodegenResult(
            target=self.target,
            device_id=device_id,
            module=module,
            kernels=kernels,
            trees=trees,
            p4_source=p4,
            spec=spec,
            report=report,
            kernel_stats=dict(stats),
        )
