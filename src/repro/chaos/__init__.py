"""repro.chaos — scriptable fault injection for the network simulator.

Declarative, replayable failure plans (:class:`~repro.chaos.plan.ChaosPlan`)
drive a per-hop fault engine (:class:`~repro.chaos.inject.ChaosController`):
packet loss, corruption, duplication, reordering, latency jitter, and
scheduled switch crashes / restarts / link flaps.  All randomness derives
from the plan's seed, so every failure run replays bit-identically.

``python -m repro.chaos --app cache --seed 7`` runs the acceptance
scenarios from :mod:`repro.chaos.scenarios`: the paper's applications
completing correctly through combined loss + duplication + reordering +
a mid-run primary-switch crash with failover (see :mod:`repro.reliability`).
"""

from repro.chaos.plan import ChaosEvent, ChaosPlan, LinkFaults, link_name, parse_node
from repro.chaos.inject import ChaosController, apply_faults
from repro.chaos.scenarios import (
    ChaosRunResult,
    compile_app_at,
    default_chaos_plan,
    run_agg_chaos,
    run_cache_chaos,
)

__all__ = [
    "ChaosController",
    "ChaosEvent",
    "ChaosPlan",
    "ChaosRunResult",
    "LinkFaults",
    "apply_faults",
    "compile_app_at",
    "default_chaos_plan",
    "link_name",
    "parse_node",
    "run_agg_chaos",
    "run_cache_chaos",
]
