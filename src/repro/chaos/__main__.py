from repro.chaos.cli import main

raise SystemExit(main())
