"""``python -m repro.chaos`` — run the fault-injection acceptance scenarios.

Usage::

    python -m repro.chaos --app cache --seed 7
    python -m repro.chaos --app agg --seed 7 --json
    python -m repro.chaos --app cache --no-crash      # link faults only
    python -m repro.chaos --app cache --plan plan.json
    python -m repro.chaos --app agg --check-determinism

One ``--seed`` drives everything — topology RNG, fault RNG, and
workload — so a run is reproducible bit-for-bit: the printed digest is
identical across invocations with the same seed (``--check-determinism``
runs twice and verifies exactly that).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

from repro.chaos.plan import ChaosPlan
from repro.chaos.scenarios import SCENARIOS, ChaosRunResult, default_chaos_plan


def build_arg_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Run the paper's apps under injected network failures",
    )
    p.add_argument(
        "--app", choices=sorted(SCENARIOS), default="cache",
        help="which acceptance scenario to run",
    )
    p.add_argument(
        "--seed", type=int, default=7,
        help="master seed for topology, faults, and workload",
    )
    p.add_argument(
        "--plan", type=Path, default=None,
        help="JSON ChaosPlan file to replay (overrides the default plan)",
    )
    p.add_argument(
        "--loss", type=float, default=0.05, help="per-hop loss probability"
    )
    p.add_argument(
        "--no-crash", action="store_true",
        help="skip the mid-run primary-switch crash (link faults only)",
    )
    p.add_argument(
        "--json", action="store_true", help="emit the full result as JSON"
    )
    p.add_argument(
        "--dump-plan", action="store_true",
        help="print the effective ChaosPlan JSON and exit",
    )
    p.add_argument(
        "--check-determinism", action="store_true",
        help="run the scenario twice and require identical digests",
    )
    return p


def _build_plan(args: argparse.Namespace) -> Optional[ChaosPlan]:
    if args.plan is not None:
        return ChaosPlan.from_json(args.plan.read_text())
    crash_at: Optional[int]
    if args.app == "agg":
        crash_at = None if args.no_crash else 60_000
    else:
        crash_at = None if args.no_crash else 600_000
    return default_chaos_plan(args.seed, loss=args.loss, crash_at_ns=crash_at)


def _render(result: ChaosRunResult) -> str:
    lines = [
        f"chaos run: app={result.app} seed={result.seed} "
        f"{'OK' if result.ok else 'FAILED'}",
        f"  completed {result.completed}/{result.expected} "
        f"in {result.sim_ns / 1e6:.3f} ms simulated"
        f"{' (failed over to standby)' if result.failed_over else ''}",
        f"  digest {result.digest}",
    ]
    for name, value in sorted(result.counters.items()):
        lines.append(f"  {name:<24} {value}")
    for err in result.errors:
        lines.append(f"  ERROR: {err}")
    return "\n".join(lines)


def main(argv: Optional[list[str]] = None) -> int:
    args = build_arg_parser().parse_args(argv)
    plan = _build_plan(args)
    if args.dump_plan:
        print(plan.to_json())
        return 0
    scenario = SCENARIOS[args.app]
    result = scenario(args.seed, plan=plan)
    if args.check_determinism:
        again = scenario(args.seed, plan=_build_plan(args))
        if again.digest != result.digest:
            print(
                f"NOT deterministic: {result.digest} != {again.digest}",
                file=sys.stderr,
            )
            return 2
        print(f"deterministic: two runs produced digest {result.digest}")
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(_render(result))
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
