"""The fault-injection engine: applies a :class:`ChaosPlan` to a network.

:class:`ChaosController` installs itself as the network's per-hop fault
injector and schedules the plan's node events on the simulator.  All
randomness comes from one RNG derived from the plan seed, and the event
queue is deterministic, so a (plan, topology, workload) triple replays
bit-identically.

Everything the controller does is counted in the network's telemetry
registry under ``chaos.*`` — injected faults are observable, never
silent.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.netsim.net import Network, NodeKey
from repro.runtime.message import NetCLPacket
from repro.chaos.plan import ChaosEvent, ChaosPlan, LinkFaults, link_name, parse_node


class ChaosController:
    """Drives one ChaosPlan against one Network."""

    def __init__(
        self, network: Network, plan: ChaosPlan, *, rng: Optional[random.Random] = None
    ) -> None:
        self.network = network
        self.plan = plan
        self.rng = rng or random.Random(f"{plan.seed}:chaos")
        m = network.metrics
        self._lost = m.counter("chaos.lost")
        self._corrupted = m.counter("chaos.corrupted")
        self._duplicated = m.counter("chaos.duplicated")
        self._reordered = m.counter("chaos.reordered")
        self._jitter_ns = m.counter("chaos.jitter_ns")
        self._events_fired = m.counter("chaos.events_fired")
        self._armed = False

    def arm(self) -> "ChaosController":
        """Install the fault hook and schedule all plan events."""
        if self._armed:
            return self
        self._armed = True
        self.network.fault_injector = self
        now = self.network.sim.now_ns
        for event in self.plan.events:
            self.network.sim.at(max(now, event.at_ns), self._fire, event)
        return self

    def disarm(self) -> None:
        if self.network.fault_injector is self:
            self.network.fault_injector = None
        self._armed = False

    # -- scheduled events --------------------------------------------------------
    def _fire(self, event: ChaosEvent) -> None:
        self._events_fired.inc()
        if event.kind == "crash":
            self.network.crash_switch(parse_node(event.node)[1])
        elif event.kind == "restart":
            self.network.restart_switch(parse_node(event.node)[1])
        elif event.kind == "link_down":
            self.network.set_link_up(parse_node(event.a), parse_node(event.b), False)
        elif event.kind == "link_up":
            self.network.set_link_up(parse_node(event.a), parse_node(event.b), True)

    # -- per-hop fault hook (called by Network._hop) ------------------------------
    def on_transmit(
        self, at: NodeKey, nxt: NodeKey, packet: NetCLPacket, delay_ns: int
    ) -> list[tuple[int, NetCLPacket]]:
        """Returns the (delay, packet) deliveries for this transmission —
        empty for a loss, two entries for a duplication."""
        faults = self.plan.faults_for(at, nxt)
        if faults is None:
            return [(delay_ns, packet)]
        rng = self.rng
        if faults.loss and rng.random() < faults.loss:
            self._lost.inc()
            self.network.metrics.counter(f"chaos.lost.{link_name(at, nxt)}").inc()
            return []
        pkt = packet
        if faults.corrupt and packet.data and rng.random() < faults.corrupt:
            pkt = self._corrupt(packet)
        delay = delay_ns
        if faults.jitter_ns:
            extra = rng.randrange(0, faults.jitter_ns + 1)
            delay += extra
            self._jitter_ns.inc(extra)
        if faults.reorder and rng.random() < faults.reorder:
            delay += rng.randrange(1, faults.reorder_delay_ns + 1)
            self._reordered.inc()
        deliveries = [(delay, pkt)]
        if faults.duplicate and rng.random() < faults.duplicate:
            self._duplicated.inc()
            gap = rng.randrange(1, max(2, faults.reorder_delay_ns + 1))
            deliveries.append((delay + gap, pkt.copy()))
        return deliveries

    def _corrupt(self, packet: NetCLPacket) -> NetCLPacket:
        """Flip random bits in one byte of the data section (a copy)."""
        self._corrupted.inc()
        data = bytearray(packet.data)
        i = self.rng.randrange(len(data))
        data[i] ^= self.rng.randrange(1, 256)
        out = packet.copy()
        out.data = bytes(data)
        return out


def apply_faults(faults: LinkFaults, network: Network, *links) -> ChaosController:
    """Convenience: one fault model on specific links (or all, if none
    given), armed immediately with the network's derived chaos RNG."""
    plan = ChaosPlan(seed=network.seed, default_link=None if links else faults)
    for a, b in links:
        plan.links[link_name(a, b)] = faults
    controller = ChaosController(network, plan, rng=network.child_rng("chaos"))
    return controller.arm()
