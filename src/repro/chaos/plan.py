"""Declarative, replayable fault plans.

A :class:`ChaosPlan` says *what goes wrong and when*: per-link fault
models (loss, corruption, duplication, reordering, latency jitter) plus
scheduled node events (switch crash/restart, link flaps).  Plans are
plain data — JSON-serializable both ways — and carry their own RNG seed,
so a failure run is fully described by one artifact and replays
bit-identically.

Link keys use the telemetry node naming: ``"d1-h1"`` (sorted endpoint
names joined by ``-``); node references are ``"h<id>"`` / ``"d<id>"``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Optional

from repro.netsim.net import DEVICE, HOST, NodeKey


def parse_node(name: str) -> NodeKey:
    """``"h1"`` -> HOST(1), ``"d2"`` -> DEVICE(2)."""
    kind, ident = name[0], name[1:]
    if kind not in ("h", "d") or not ident.isdigit():
        raise ValueError(f"bad node name {name!r} (want h<id> or d<id>)")
    return HOST(int(ident)) if kind == "h" else DEVICE(int(ident))


def link_name(a: NodeKey, b: NodeKey) -> str:
    """Canonical plan/telemetry key for the link between two nodes."""
    return "-".join(sorted((f"{a[0]}{a[1]}", f"{b[0]}{b[1]}")))


@dataclass(frozen=True)
class LinkFaults:
    """One link's fault model; all probabilities are per transmission."""

    loss: float = 0.0
    corrupt: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    #: extra delay applied to reordered packets (uniform in [1, this]).
    reorder_delay_ns: int = 20_000
    #: uniform extra latency in [0, this] applied to every packet.
    jitter_ns: int = 0

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "LinkFaults":
        return cls(**d)


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled failure event.

    ``kind`` is one of ``crash`` / ``restart`` (with ``node``) or
    ``link_down`` / ``link_up`` (with ``a`` and ``b``).
    """

    at_ns: int
    kind: str
    node: Optional[str] = None
    a: Optional[str] = None
    b: Optional[str] = None

    KINDS = ("crash", "restart", "link_down", "link_up")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise ValueError(f"unknown chaos event kind {self.kind!r}")
        if self.kind in ("crash", "restart") and self.node is None:
            raise ValueError(f"{self.kind} event needs a node")
        if self.kind in ("link_down", "link_up") and (self.a is None or self.b is None):
            raise ValueError(f"{self.kind} event needs link endpoints a and b")

    def to_dict(self) -> dict:
        return {k: v for k, v in asdict(self).items() if v is not None}

    @classmethod
    def from_dict(cls, d: dict) -> "ChaosEvent":
        return cls(**d)


@dataclass
class ChaosPlan:
    """A complete, replayable description of one failure run."""

    seed: int = 0
    #: faults applied to links with no explicit entry (None = healthy).
    default_link: Optional[LinkFaults] = None
    #: link name (see :func:`link_name`) -> fault model.
    links: dict[str, LinkFaults] = field(default_factory=dict)
    events: list[ChaosEvent] = field(default_factory=list)

    def faults_for(self, a: NodeKey, b: NodeKey) -> Optional[LinkFaults]:
        return self.links.get(link_name(a, b), self.default_link)

    # -- (de)serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "default_link": self.default_link.to_dict() if self.default_link else None,
            "links": {k: v.to_dict() for k, v in sorted(self.links.items())},
            "events": [e.to_dict() for e in self.events],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ChaosPlan":
        return cls(
            seed=d.get("seed", 0),
            default_link=(
                LinkFaults.from_dict(d["default_link"]) if d.get("default_link") else None
            ),
            links={k: LinkFaults.from_dict(v) for k, v in d.get("links", {}).items()},
            events=[ChaosEvent.from_dict(e) for e in d.get("events", [])],
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ChaosPlan":
        return cls.from_dict(json.loads(text))
