"""Acceptance scenarios: the paper's apps surviving injected failures.

Each scenario builds a two-switch deployment (primary + standby compiled
for its own device id), wires the hosts through
:class:`~repro.reliability.channel.ReliableChannel`, arms a
:class:`~repro.chaos.plan.ChaosPlan` that combines packet loss,
duplication, reordering, jitter, *and* a mid-run crash of the primary
switch, and then validates end-to-end correctness of the results.

Every run returns a :class:`ChaosRunResult` carrying the full telemetry
snapshot and a SHA-256 digest over the application-visible outcome plus
all counters: two runs with the same seed must produce identical
digests (the determinism acceptance criterion).
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Optional

from repro.apps import netcl_source
from repro.apps.agg import (
    AGG_DEVICE,
    AGG_MCAST_GROUP,
    AggWorker,
    SLOT_SIZE,
)
from repro.apps.cache import (
    CACHE_DEVICE,
    CacheClient,
    CacheController,
    GET_REQ,
    KVServer,
    PUT_REQ,
    VALUE_WORDS,
)
from repro.chaos.inject import ChaosController
from repro.chaos.plan import ChaosEvent, ChaosPlan, LinkFaults
from repro.core import compile_netcl
from repro.netsim import DEVICE, HOST, Link, Network
from repro.reliability import (
    BackoffPolicy,
    FailoverManager,
    ReliableChannel,
    ReliableNetCLDevice,
    ReplicatedConnection,
)
from repro.runtime import DeviceConnection, KernelSpec


@dataclass
class ChaosRunResult:
    """What one chaos scenario run produced."""

    app: str
    seed: int
    ok: bool
    errors: list[str]
    completed: int
    expected: int
    failed_over: bool
    sim_ns: int
    digest: str
    counters: dict[str, object] = field(default_factory=dict)
    plan: dict = field(default_factory=dict)
    metrics: dict[str, object] = field(default_factory=dict)
    #: tracing by-products (``trace=True`` runs only).  Deliberately kept
    #: out of the digest and ``to_dict``: a traced run must produce the
    #: same digest as an untraced one.
    traces: int = 0
    trace_events: int = 0

    def to_dict(self) -> dict:
        return {
            "app": self.app,
            "seed": self.seed,
            "ok": self.ok,
            "errors": self.errors,
            "completed": self.completed,
            "expected": self.expected,
            "failed_over": self.failed_over,
            "sim_ns": self.sim_ns,
            "digest": self.digest,
            "counters": self.counters,
            "plan": self.plan,
        }


def compile_app_at(name: str, device_id: int, *, defines: Optional[dict] = None):
    """Compile one app's kernel pinned to ``device_id``.

    The paper's sources pin their kernels ``_at(1)``; a standby switch
    runs the *same* computation at a different device id, so we re-pin
    the placement before compiling (the control plane's "install the
    program on the spare" step).
    """
    src = netcl_source(name).replace("_at(1)", f"_at({device_id})")
    return compile_netcl(src, device_id, defines=defines, program_name=name)


def default_chaos_plan(
    seed: int,
    *,
    loss: float = 0.05,
    duplicate: float = 0.05,
    reorder: float = 0.05,
    jitter_ns: int = 1_000,
    crash_at_ns: Optional[int] = 600_000,
) -> ChaosPlan:
    """The acceptance fault model: 5% loss + duplication + reordering +
    jitter on every link, and a crash of the primary switch mid-run."""
    faults = LinkFaults(
        loss=loss,
        duplicate=duplicate,
        reorder=reorder,
        reorder_delay_ns=15_000,
        jitter_ns=jitter_ns,
    )
    events = []
    if crash_at_ns is not None:
        events.append(ChaosEvent(at_ns=crash_at_ns, kind="crash", node="d1"))
    return ChaosPlan(seed=seed, default_link=faults, events=events)


def _digest(payload: dict) -> str:
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()


def _value(key: int, salt: int) -> list[int]:
    return [(key * 31 + i * salt + 7) & 0xFFFFFFFF for i in range(VALUE_WORDS)]


# ---------------------------------------------------------------------------
# CACHE under chaos
# ---------------------------------------------------------------------------

def run_cache_chaos(
    seed: int = 7,
    *,
    plan: Optional[ChaosPlan] = None,
    standby_id: int = 2,
    heartbeat_ns: int = 150_000,
    horizon_ms: float = 100.0,
    trace: bool = False,
) -> ChaosRunResult:
    """NetCache client/server/controller surviving the acceptance plan.

    Cached GETs must keep returning correct values through loss,
    duplication, reordering, and a primary-switch crash with failover to
    a standby whose cache lines are re-installed from the control-plane
    journal.
    """
    plan = plan if plan is not None else default_chaos_plan(seed)
    primary = compile_app_at("cache", CACHE_DEVICE)
    standby = compile_app_at("cache", standby_id)

    net = Network(seed=seed)
    if trace:
        net.enable_tracing()
    processing = int(primary.report.latency.total_ns) if primary.report else 500
    dev_p = ReliableNetCLDevice(
        CACHE_DEVICE, primary.module, primary.kernels(), metrics=net.metrics
    )
    dev_s = ReliableNetCLDevice(
        standby_id, standby.module, standby.kernels(), metrics=net.metrics
    )
    net.add_switch(dev_p, processing_ns=processing)
    net.add_switch(dev_s, processing_ns=processing)
    net.add_host(1)  # client
    net.add_host(2)  # server
    for h in (1, 2):
        for d in (CACHE_DEVICE, standby_id):
            net.link(HOST(h), DEVICE(d), Link(latency_ns=1200))

    spec = KernelSpec.from_kernel(primary.kernels()[0])
    server = KVServer(net, 2, spec)
    client = CacheClient(net, 1, spec)
    for h in (client.host, server.host):
        h.rx_overhead_ns = 3200
        h.tx_overhead_ns = 3200
    server.service_time_ns = 10_000
    client.channel = ReliableChannel(
        net,
        client.host,
        spec,
        target_device=CACHE_DEVICE,
        policy=BackoffPolicy(base_timeout_ns=400_000, max_timeout_ns=3_200_000,
                             max_retries=12),
    )
    server.channel = ReliableChannel(net, server.host, spec, target_device=CACHE_DEVICE)

    conn = ReplicatedConnection(DeviceConnection(dev_p))
    controller = CacheController(conn, server)

    cached_keys = [100 + i for i in range(6)]
    server_keys = [200 + i for i in range(6)]
    put_keys = [300 + i for i in range(4)]
    for k in cached_keys:
        server.store[k] = _value(k, 3)
        controller.install(k, server.store[k])
    for k in server_keys:
        server.store[k] = _value(k, 5)

    failover = FailoverManager(
        net,
        CACHE_DEVICE,
        standby_id,
        heartbeat_ns=heartbeat_ns,
        replicated=conn,
        channels=[client.channel, server.channel],
    ).start()

    ChaosController(net, plan).arm()

    # The workload: writes first, then interleaved hit/miss reads spanning
    # the crash, then reads of the written keys.
    expect: dict[tuple[int, int], list[int]] = {}
    schedule: list[tuple[int, int, Optional[list[int]]]] = []  # (op, key, value)
    for k in put_keys:
        schedule.append((PUT_REQ, k, _value(k, 7)))
        expect[(PUT_REQ, k)] = _value(k, 7)
    for _ in range(2):
        for hit_k, miss_k in zip(cached_keys, server_keys):
            schedule.append((GET_REQ, hit_k, None))
            expect[(GET_REQ, hit_k)] = _value(hit_k, 3)
            schedule.append((GET_REQ, miss_k, None))
            expect[(GET_REQ, miss_k)] = _value(miss_k, 5)
    for k in put_keys:
        schedule.append((GET_REQ, k, None))
        expect[(GET_REQ, k)] = _value(k, 7)

    t = 50_000
    for op, key, value in schedule:
        net.sim.at(t, lambda op=op, key=key, value=value: client.query(op, key, value))
        t += 40_000

    net.sim.run(until_ns=int(horizon_ms * 1e6))

    errors: list[str] = []
    if len(client.completed) != len(schedule):
        errors.append(
            f"completed {len(client.completed)}/{len(schedule)} queries "
            f"({client.channel.outstanding} still outstanding)"
        )
    for rec in client.completed:
        want = expect.get((rec.op, rec.key))
        if want is None:
            errors.append(f"unexpected completion op={rec.op} key={rec.key}")
        elif rec.op == GET_REQ and list(rec.value or []) != want:
            errors.append(f"GET {rec.key} returned wrong value")
    hits = sum(1 for r in client.completed if r.served_by_cache)
    if not any(r.served_by_cache for r in client.completed):
        errors.append("no query was served by the switch cache")
    if plan.events and not failover.failed_over:
        errors.append("primary crash never triggered failover")

    m = net.metrics
    counters = {
        "cache_hits": hits,
        "retransmits": m.total("reliability.ch.retransmits."),
        "expired": m.total("reliability.ch.expired."),
        "dup_rx_dropped": m.total("reliability.ch.dup_rx_dropped."),
        "reply_replays": m.total("reliability.ch.reply_replays."),
        "device_dup_drops": m.total("reliability.dup_drops"),
        "device_replays": m.total("reliability.replays"),
        "device_corrupt_drops": m.total("reliability.corrupt_drops"),
        "failovers": m.total("reliability.failover.count"),
        "failover_ops_replayed": m.total("reliability.failover.ops_replayed"),
        "chaos_lost": m.total("chaos.lost"),
        "chaos_duplicated": m.total("chaos.duplicated"),
        "chaos_reordered": m.total("chaos.reordered"),
    }
    snapshot = m.snapshot()
    digest = _digest(
        {
            "app": "cache",
            "seed": seed,
            "records": [
                [r.op, r.key, r.value, r.served_by_cache, r.done_ns]
                for r in client.completed
            ],
            "metrics": snapshot,
        }
    )
    return ChaosRunResult(
        app="cache",
        seed=seed,
        ok=not errors,
        errors=errors,
        completed=len(client.completed),
        expected=len(schedule),
        failed_over=failover.failed_over,
        sim_ns=net.sim.now_ns,
        digest=digest,
        counters=counters,
        plan=plan.to_dict(),
        metrics=snapshot,
        traces=len(net.tracer.traces),
        trace_events=sum(len(t.hops) for t in net.tracer.traces.values()),
    )


# ---------------------------------------------------------------------------
# AGG under chaos
# ---------------------------------------------------------------------------

def run_agg_chaos(
    seed: int = 7,
    *,
    plan: Optional[ChaosPlan] = None,
    num_workers: int = 2,
    tensor_elements: int = 2048,
    window: int = 8,
    standby_id: int = 2,
    heartbeat_ns: int = 100_000,
    horizon_ms: float = 100.0,
    trace: bool = False,
) -> ChaosRunResult:
    """SwitchML aggregation surviving the acceptance plan.

    On failover the in-flight aggregation state dies with the primary;
    the manager's hook resynchronizes every worker to the earliest chunk
    any worker still needs on each slot, and the slot protocol re-builds
    the lost partial aggregations on the standby.
    """
    plan = (
        plan
        if plan is not None
        else default_chaos_plan(seed, crash_at_ns=60_000)
    )
    defines = {"NUM_WORKERS": num_workers}
    primary = compile_app_at("agg", AGG_DEVICE, defines=defines)
    standby = compile_app_at("agg", standby_id, defines=defines)

    net = Network(seed=seed)
    if trace:
        net.enable_tracing()
    processing = int(primary.report.latency.total_ns) if primary.report else 500
    # ordered=True: the slot protocol assumes per-worker FIFO delivery
    # (a late out-of-order contribution from an advanced worker corrupts
    # the version-alternating bitmap), so the device drops stale packets
    # and lets the worker's fresh-sequence retransmission recover them.
    dev_p = ReliableNetCLDevice(
        AGG_DEVICE, primary.module, primary.kernels(), metrics=net.metrics,
        ordered=True,
    )
    dev_s = ReliableNetCLDevice(
        standby_id, standby.module, standby.kernels(), metrics=net.metrics,
        ordered=True,
    )
    net.add_switch(dev_p, processing_ns=processing)
    net.add_switch(dev_s, processing_ns=processing)

    rng = random.Random(f"{seed}:tensor")
    spec = KernelSpec.from_kernel(primary.kernels()[0])
    workers: list[AggWorker] = []
    for w in range(num_workers):
        host_id = w + 1
        net.add_host(host_id)
        for d in (AGG_DEVICE, standby_id):
            net.link(HOST(host_id), DEVICE(d), Link(latency_ns=1000))
        tensor = [rng.randrange(0, 1 << 16) for _ in range(tensor_elements)]
        worker = AggWorker(
            net, host_id, w, spec, tensor, window=window, device_id=AGG_DEVICE
        )
        worker.channel = ReliableChannel(
            net, worker.host, spec, target_device=AGG_DEVICE
        )
        workers.append(worker)
    net.add_multicast_group(AGG_MCAST_GROUP, [HOST(w.host_id) for w in workers])

    def resync(mgr: FailoverManager) -> None:
        # Every slot restarts at the earliest chunk any worker still has
        # in flight there; workers past it re-contribute (their data is
        # still at hand, and re-received results simply advance them).
        slots: set[int] = set()
        for w in workers:
            slots.update(s for s, c in w._slot_chunk.items() if c is not None)
        for slot in sorted(slots):
            chunks = [
                c for c in (w._slot_chunk.get(slot) for w in workers) if c is not None
            ]
            if not chunks:
                continue
            base = min(chunks)
            for w in workers:
                w.resync_slot(slot, base)

    failover = FailoverManager(
        net,
        AGG_DEVICE,
        standby_id,
        heartbeat_ns=heartbeat_ns,
        channels=[w.channel for w in workers],
        on_failover=resync,
    ).start()

    ChaosController(net, plan).arm()

    for w in workers:
        w.start()
    net.sim.run(until_ns=int(horizon_ms * 1e6))

    errors: list[str] = []
    num_chunks = (tensor_elements + SLOT_SIZE - 1) // SLOT_SIZE
    done = sum(1 for w in workers if w.done)
    if done != num_workers:
        errors.append(f"only {done}/{num_workers} workers finished")
    expected_result = [0] * tensor_elements
    for w in workers:
        for i, v in enumerate(w.tensor):
            expected_result[i] = (expected_result[i] + v) & 0xFFFFFFFF
    for w in workers:
        if w.done and w.result != expected_result:
            bad = sum(1 for a, b in zip(w.result, expected_result) if a != b)
            errors.append(
                f"worker {w.worker_index} aggregated {bad}/{tensor_elements} "
                "elements wrong"
            )
    if plan.events and not failover.failed_over:
        errors.append("primary crash never triggered failover")

    m = net.metrics
    counters = {
        "chunks": num_chunks * num_workers,
        "app_retransmissions": sum(w.stats.retransmissions for w in workers),
        "acks": m.total("reliability.ch.acks."),
        "dup_rx_dropped": m.total("reliability.ch.dup_rx_dropped."),
        "device_dup_drops": m.total("reliability.dup_drops"),
        "device_stale_drops": m.total("reliability.stale_drops"),
        "device_replays": m.total("reliability.replays"),
        "failovers": m.total("reliability.failover.count"),
        "chaos_lost": m.total("chaos.lost"),
        "chaos_duplicated": m.total("chaos.duplicated"),
        "chaos_reordered": m.total("chaos.reordered"),
    }
    snapshot = m.snapshot()
    digest = _digest(
        {
            "app": "agg",
            "seed": seed,
            "results": [w.result for w in workers],
            "finished": [w.stats.finished_at_ns for w in workers],
            "metrics": snapshot,
        }
    )
    return ChaosRunResult(
        app="agg",
        seed=seed,
        ok=not errors,
        errors=errors,
        completed=sum(w.stats.chunks_completed for w in workers),
        expected=num_chunks * num_workers,
        failed_over=failover.failed_over,
        sim_ns=net.sim.now_ns,
        digest=digest,
        counters=counters,
        plan=plan.to_dict(),
        metrics=snapshot,
        traces=len(net.tracer.traces),
        trace_events=sum(len(t.hops) for t in net.tracer.traces.values()),
    )


SCENARIOS = {
    "cache": run_cache_chaos,
    "agg": run_agg_chaos,
}
