"""repro.collective — hierarchical in-network collectives.

A NCCL-like collective-communication subsystem on top of the repro
stack: :class:`CollectiveJob` operations (``allreduce``,
``reduce_scatter``, ``allgather``, ``broadcast``) over named float32
tensors, block-quantized to fixed-point integers and aggregated by a
two-level switch tree (worker -> ToR leaf-sum -> spine root-sum ->
broadcast down).  See ``docs/COLLECTIVE.md``.

* :mod:`repro.collective.protocol` — the shared windowed slot-stream
  machinery (also the engine under :mod:`repro.apps.agg`);
* :mod:`repro.collective.quantize` — block quantization to fixed point
  with per-chunk max-exponent scaling and a provable error bound;
* :mod:`repro.collective.job` — the :class:`CollectiveJob` API and the
  per-rank :class:`CollectiveWorker` (exponent stream + reduce stream);
* :mod:`repro.collective.tree` — role compilation and fabric wiring for
  the two-level aggregation tree;
* :mod:`repro.collective.baseline` — the host-based ring allreduce the
  telemetry compares against;
* :mod:`repro.collective.tenant` — the same tree submitted to
  :mod:`repro.service` as a multi-tenant workload;
* :mod:`repro.collective.scenarios` — the chaos acceptance run
  (``python -m repro.collective``).
"""

from repro.collective.baseline import RingResult, run_host_ring
from repro.collective.job import (
    COMP_EXPMAX,
    COMP_REDUCE,
    OPS,
    CollectiveJob,
    CollectiveWorker,
    contribution,
    shard_range,
)
from repro.collective.protocol import (
    NUM_SLOTS,
    SlotStream,
    StallError,
    StreamStats,
    require_all_done,
)
from repro.collective.quantize import (
    EXP_BIAS,
    MANTISSA_BITS,
    chunk_exponent,
    dequantize_chunk,
    quantization_error_bound,
    quantize_chunk,
)
from repro.collective.tree import (
    COLL_MCAST_GROUP,
    ROOT_DEVICE,
    CollectiveCluster,
    build_collective_cluster,
    compile_role,
    leaf_device,
    standby_device,
)

# The scenario and tenant layers pull in repro.chaos / repro.service,
# whose own scenario modules import repro.apps.agg — which imports
# repro.collective.protocol.  Resolve them lazily (PEP 562) so
# `import repro.apps.agg` doesn't cycle through this package.
_LAZY = {
    "CollectiveRunResult": "scenarios",
    "default_collective_plan": "scenarios",
    "run_collective_chaos": "scenarios",
    "ABSTRACT_ROOT": "tenant",
    "CollectiveTenant": "tenant",
    "abstract_leaf": "tenant",
    "submit_collective_tenant": "tenant",
}


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        module = importlib.import_module(f"repro.collective.{_LAZY[name]}")
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ABSTRACT_ROOT",
    "COLL_MCAST_GROUP",
    "COMP_EXPMAX",
    "COMP_REDUCE",
    "CollectiveCluster",
    "CollectiveJob",
    "CollectiveRunResult",
    "CollectiveTenant",
    "CollectiveWorker",
    "EXP_BIAS",
    "MANTISSA_BITS",
    "NUM_SLOTS",
    "OPS",
    "ROOT_DEVICE",
    "RingResult",
    "SlotStream",
    "StallError",
    "StreamStats",
    "abstract_leaf",
    "build_collective_cluster",
    "chunk_exponent",
    "compile_role",
    "contribution",
    "default_collective_plan",
    "dequantize_chunk",
    "leaf_device",
    "quantization_error_bound",
    "quantize_chunk",
    "require_all_done",
    "run_collective_chaos",
    "run_host_ring",
    "shard_range",
    "standby_device",
    "submit_collective_tenant",
]
