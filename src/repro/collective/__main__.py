from repro.collective.cli import main

raise SystemExit(main())
