"""Host-based ring allreduce: the no-INC comparison point.

The same leaf/spine fabric, but the switches are plain transit devices
(no kernels) and the workers run the classic bandwidth-optimal ring
algorithm entirely host-to-host: ``N-1`` reduce-scatter steps followed
by ``N-1`` allgather steps, each rank exchanging one shard per step with
its ring neighbor.  Every element therefore crosses host links
``2*(N-1)/N * 2`` times, versus once up and once down for the in-network
tree — the traffic ratio the ``collective.*`` telemetry quantifies.

Values travel as raw IEEE-754 float32 bit patterns (same 4 bytes per
element as the tree's quantized mantissas) and are accumulated in
float32, so the baseline also exhibits the sequential rounding the
in-network fixed-point sum avoids.

The ring runs over a minimal reliable transport — per-packet ACKs from
the successor plus timeout retransmission — because that is what a host
ring actually pays (TCP / RDMA RC): a bare datagram ring would deadlock
on the first lost packet.  This also lets the baseline run under the
same link-fault plan as the tree, so the traffic comparison is measured
under identical conditions.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.collective.job import shard_range
from repro.collective.tree import ROOT_DEVICE, leaf_device
from repro.ir.module import Module
from repro.netsim import DEVICE, HOST, Link, Network
from repro.runtime import KernelSpec, Message, NetCLDevice
from repro.runtime.message import FieldSpec, NetCLPacket, NO_DEVICE, unpack

#: float32 values per ring packet — matches the tree's SLOT_SIZE so the
#: per-packet framing overhead is comparable.
RING_CHUNK = 16

#: wire layout of one ring packet (reuses the NetCL framing so transit
#: switches, telemetry, and tracing see ordinary packets).
RING_SPEC = KernelSpec(
    computation=1,
    fields=(
        FieldSpec("phase", 8),
        FieldSpec("step", 16),
        FieldSpec("pkt", 16),
        FieldSpec("shard", 16),
        FieldSpec("v", 32, count=RING_CHUNK),
    ),
)

#: the transport ACK a receiver returns for every data packet.
RING_ACK_SPEC = KernelSpec(
    computation=2,
    fields=(
        FieldSpec("phase", 8),
        FieldSpec("step", 16),
        FieldSpec("pkt", 16),
    ),
)


def _f32_bits(x: float) -> int:
    return struct.unpack("<I", struct.pack("<f", x))[0]


def _bits_f32(b: int) -> float:
    return struct.unpack("<f", struct.pack("<I", b))[0]


def _f32(x: float) -> float:
    """Round to float32, as a host summing fp32 gradients would."""
    return struct.unpack("<f", struct.pack("<f", x))[0]


@dataclass
class RingResult:
    """What one host-ring allreduce run produced."""

    results: dict[int, list[float]]
    finished_at_ns: int
    link_bytes: int
    packets_sent: int
    retransmissions: int = 0
    acks_sent: int = 0


class _RingNode:
    """One rank of the ring: buffer incoming shards, advance in order."""

    def __init__(self, runner: "_RingRun", rank: int, tensor: list[float]) -> None:
        self.runner = runner
        self.rank = rank
        self.acc = [_f32(x) for x in tensor]
        self.host = runner.net.hosts[rank + 1]
        self.host.on_receive = self._on_receive
        #: (phase, step, pkt) -> values, for packets that arrive before
        #: this rank has advanced to their step
        self._pending: dict[tuple[int, int, int], list[int]] = {}
        #: keys already folded into ``acc`` — re-ACKed but not re-applied
        self._consumed: set[tuple[int, int, int]] = set()
        #: (phase, step, pkt) -> (shard, bits) awaiting the successor's ACK
        self._unacked: dict[tuple[int, int, int], tuple[int, list[int]]] = {}
        self._timers: dict[tuple[int, int, int], object] = {}
        self.phase = 0
        self.step = 0
        self._recv_pkts = 0
        self.done = False

    # phase 0 step s: rank i sends shard (i - s) % N, receives (i-1-s) % N.
    # phase 1 step s: rank i sends shard (i+1-s) % N, receives (i - s) % N.
    def _send_shard_idx(self) -> int:
        n = self.runner.num_workers
        return (self.rank - self.step + self.phase) % n

    def _recv_shard_idx(self) -> int:
        n = self.runner.num_workers
        return (self.rank - 1 - self.step + self.phase) % n

    def start(self) -> None:
        self._send_step()

    def _send_step(self) -> None:
        shard = self._send_shard_idx()
        lo, hi = shard_range(self.runner.num_elements, self.runner.num_workers, shard)
        values = self.acc[lo:hi]
        npkts = max(1, (len(values) + RING_CHUNK - 1) // RING_CHUNK)
        for pkt in range(npkts):
            chunk = values[pkt * RING_CHUNK : (pkt + 1) * RING_CHUNK]
            chunk += [0.0] * (RING_CHUNK - len(chunk))
            key = (self.phase, self.step, pkt)
            # Snapshot the bits: acc mutates as later steps fold in, but a
            # retransmission must resend what the successor was promised.
            self._unacked[key] = (shard, [_f32_bits(x) for x in chunk])
            self._transmit(key)

    def _transmit(self, key: tuple[int, int, int]) -> None:
        phase, step, pkt = key
        shard, bits = self._unacked[key]
        msg = Message(
            src=self.host.host_id,
            dst=self.runner.next_host(self.rank),
            comp=1,
            to=NO_DEVICE,
        )
        self.host.send_message(msg, RING_SPEC, [phase, step, pkt, shard, bits])
        self.runner.packets_sent += 1
        self._arm(key)

    def _arm(self, key: tuple[int, int, int]) -> None:
        old = self._timers.pop(key, None)
        if old is not None:
            old.cancel()  # type: ignore[attr-defined]

        def fire() -> None:
            if key in self._unacked:
                self.runner.retransmissions += 1
                self._transmit(key)

        self._timers[key] = self.runner.net.sim.after(self.runner.timeout_ns, fire)

    def _on_receive(self, packet: NetCLPacket, now_ns: int) -> None:
        if packet.comp == 2:  # transport ACK from the successor
            _, values = unpack(packet.to_wire(), RING_ACK_SPEC)
            key = (values[0], values[1], values[2])
            self._unacked.pop(key, None)
            timer = self._timers.pop(key, None)
            if timer is not None:
                timer.cancel()  # type: ignore[attr-defined]
            return
        _, values = unpack(packet.to_wire(), RING_SPEC)
        key = (values[0], values[1], values[2])
        # Always ACK — the data may be a retransmission whose ACK was lost.
        msg = Message(
            src=self.host.host_id,
            dst=self.runner.prev_host(self.rank),
            comp=2,
            to=NO_DEVICE,
        )
        self.host.send_message(msg, RING_ACK_SPEC, list(key))
        self.runner.acks_sent += 1
        if key in self._consumed or key in self._pending:
            return
        self._pending[key] = values[4]
        self._drain()

    def _drain(self) -> None:
        while not self.done:
            shard = self._recv_shard_idx()
            lo, hi = shard_range(
                self.runner.num_elements, self.runner.num_workers, shard
            )
            npkts = max(1, (hi - lo + RING_CHUNK - 1) // RING_CHUNK)
            key = (self.phase, self.step, self._recv_pkts)
            if key not in self._pending:
                return
            bits = self._pending.pop(key)
            self._consumed.add(key)
            base = lo + self._recv_pkts * RING_CHUNK
            for i, b in enumerate(bits):
                at = base + i
                if at >= hi:
                    break
                x = _bits_f32(b)
                if self.phase == 0:
                    self.acc[at] = _f32(self.acc[at] + x)
                else:
                    self.acc[at] = x
            self._recv_pkts += 1
            if self._recv_pkts < npkts:
                continue
            # step complete: advance
            self._recv_pkts = 0
            self.step += 1
            if self.step == self.runner.num_workers - 1:
                self.step = 0
                self.phase += 1
                if self.phase == 2:
                    self.done = True
                    self.runner.node_finished(self)
                    return
            self._send_step()


class _RingRun:
    def __init__(
        self,
        num_racks: int,
        workers_per_rack: int,
        tensors: list[list[float]],
        *,
        link_latency_ns: int,
        bandwidth_gbps: float,
        seed: int,
        timeout_ns: int = 400_000,
    ) -> None:
        self.num_workers = num_racks * workers_per_rack
        if len(tensors) != self.num_workers:
            raise ValueError(
                f"{len(tensors)} tensors for {self.num_workers} workers"
            )
        self.num_elements = len(tensors[0])
        self.timeout_ns = timeout_ns
        self.packets_sent = 0
        self.retransmissions = 0
        self.acks_sent = 0
        self.finished_at_ns = 0
        self._finished = 0

        net = Network(seed=seed)
        self.net = net
        link = lambda a, b: net.link(  # noqa: E731
            a, b, Link(latency_ns=link_latency_ns, bandwidth_gbps=bandwidth_gbps)
        )
        net.add_switch(
            NetCLDevice(ROOT_DEVICE, Module("transit_root"), []), processing_ns=350
        )
        for rack in range(num_racks):
            dev = leaf_device(rack)
            net.add_switch(
                NetCLDevice(dev, Module(f"transit_leaf{rack}"), []),
                processing_ns=350,
            )
            link(DEVICE(dev), DEVICE(ROOT_DEVICE))
        for rank in range(self.num_workers):
            net.add_host(rank + 1)
            link(HOST(rank + 1), DEVICE(leaf_device(rank // workers_per_rack)))
        self.nodes = [
            _RingNode(self, rank, tensors[rank]) for rank in range(self.num_workers)
        ]

    def next_host(self, rank: int) -> int:
        return (rank + 1) % self.num_workers + 1

    def prev_host(self, rank: int) -> int:
        return (rank - 1) % self.num_workers + 1

    def node_finished(self, node: _RingNode) -> None:
        self._finished += 1
        if self._finished == self.num_workers:
            self.finished_at_ns = self.net.sim.now_ns

    def run(self, until_ms: float) -> RingResult:
        for node in self.nodes:
            node.start()
        self.net.sim.run(until_ns=self.net.sim.now_ns + int(until_ms * 1e6))
        if self._finished != self.num_workers:
            stuck = [n.rank for n in self.nodes if not n.done]
            raise RuntimeError(
                f"host ring stalled: ranks {stuck} incomplete "
                f"(phase/step: {[(n.phase, n.step) for n in self.nodes]})"
            )
        return RingResult(
            results={n.rank: list(n.acc) for n in self.nodes},
            finished_at_ns=self.finished_at_ns,
            link_bytes=int(self.net.metrics.total("link.tx_bytes.")),
            packets_sent=self.packets_sent,
            retransmissions=self.retransmissions,
            acks_sent=self.acks_sent,
        )


def run_host_ring(
    num_racks: int,
    workers_per_rack: int,
    tensors: list[list[float]],
    *,
    link_latency_ns: int = 1000,
    bandwidth_gbps: float = 100.0,
    seed: int = 7,
    timeout_ns: int = 400_000,
    until_ms: float = 1000.0,
    plan=None,
) -> RingResult:
    """Run a full ring allreduce over ``tensors`` on a transit-only fabric.

    ``plan`` (a :class:`~repro.chaos.plan.ChaosPlan`) injects link faults
    into the ring's fabric so it can be measured under the same
    conditions as the in-network tree; the transport's ACK/retransmit
    machinery absorbs them.
    """
    run = _RingRun(
        num_racks,
        workers_per_rack,
        tensors,
        link_latency_ns=link_latency_ns,
        bandwidth_gbps=bandwidth_gbps,
        seed=seed,
        timeout_ns=timeout_ns,
    )
    if plan is not None:
        from repro.chaos.inject import ChaosController

        ChaosController(run.net, plan).arm()
    return run.run(until_ms)
