"""``python -m repro.collective`` — run the collective acceptance scenario.

Usage::

    python -m repro.collective                      # 2-rack 8-worker allreduce
    python -m repro.collective --op reduce_scatter --racks 2 --workers-per-rack 4
    python -m repro.collective --elements 4096 --window 16 --json
    python -m repro.collective --no-crash           # link faults only
    python -m repro.collective --check-determinism  # run twice, compare digests

One ``--seed`` drives everything — tensors, fault RNG, and the fabric —
so the printed digest is identical across invocations with the same
seed.  Exit status is 0 only if every acceptance check passed (all ranks
finished, every element within the quantization error bound, failover
happened when a crash was planned, and the tree's fabric traffic beat
the host-ring baseline under the same link faults).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.collective.job import OPS
from repro.collective.scenarios import (
    CollectiveRunResult,
    default_collective_plan,
    run_collective_chaos,
)


def build_arg_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.collective",
        description="Hierarchical in-network collectives under injected faults",
    )
    p.add_argument(
        "--op", choices=OPS, default="allreduce",
        help="which collective to run",
    )
    p.add_argument(
        "--seed", type=int, default=7,
        help="master seed for tensors, faults, and the fabric",
    )
    p.add_argument("--racks", type=int, default=2, help="number of racks")
    p.add_argument(
        "--workers-per-rack", type=int, default=4,
        help="worker hosts attached to each rack's ToR",
    )
    p.add_argument(
        "--elements", type=int, default=2048,
        help="float32 tensor elements per rank",
    )
    p.add_argument(
        "--window", type=int, default=8, help="slot-stream window size"
    )
    p.add_argument(
        "--loss", type=float, default=0.05, help="per-hop loss probability"
    )
    p.add_argument(
        "--no-crash", action="store_true",
        help="skip the mid-run ToR crash (link faults only)",
    )
    p.add_argument(
        "--no-baseline", action="store_true",
        help="skip the host-ring baseline run and traffic comparison",
    )
    p.add_argument(
        "--json", action="store_true", help="emit the full result as JSON"
    )
    p.add_argument(
        "--check-determinism", action="store_true",
        help="run the scenario twice and require identical digests",
    )
    return p


def _run(args: argparse.Namespace) -> CollectiveRunResult:
    plan = default_collective_plan(
        args.seed,
        loss=args.loss,
        crash_at_ns=None if args.no_crash else 60_000,
    )
    return run_collective_chaos(
        args.seed,
        op=args.op,
        num_racks=args.racks,
        workers_per_rack=args.workers_per_rack,
        tensor_elements=args.elements,
        window=args.window,
        plan=plan,
        baseline=not args.no_baseline,
    )


def _render(r: CollectiveRunResult) -> str:
    lines = [
        f"collective run: op={r.op} seed={r.seed} "
        f"{r.num_racks}x{r.workers_per_rack} workers "
        f"{'OK' if r.ok else 'FAILED'}",
        f"  {r.finished}/{r.num_racks * r.workers_per_rack} ranks finished "
        f"in {r.sim_ns / 1e6:.3f} ms simulated"
        f"{' (failed over to standby ToR)' if r.failed_over else ''}",
        f"  max |error| {r.max_abs_error:.3e} (bound {r.error_bound:.3e})",
    ]
    if r.ring_link_bytes:
        lines.append(
            f"  fabric traffic {r.innetwork_link_bytes} B vs host ring "
            f"{r.ring_link_bytes} B "
            f"({r.ring_link_bytes / max(1, r.innetwork_link_bytes):.2f}x saved)"
        )
    else:
        lines.append(f"  fabric traffic {r.innetwork_link_bytes} B")
    lines.append(f"  digest {r.digest}")
    for name, value in sorted(r.counters.items()):
        lines.append(f"  {name:<24} {value}")
    for err in r.errors:
        lines.append(f"  ERROR: {err}")
    return "\n".join(lines)


def main(argv: Optional[list[str]] = None) -> int:
    args = build_arg_parser().parse_args(argv)
    result = _run(args)
    if args.check_determinism:
        again = _run(args)
        if again.digest != result.digest:
            print(
                f"NOT deterministic: {result.digest} != {again.digest}",
                file=sys.stderr,
            )
            return 2
        print(f"deterministic: two runs produced digest {result.digest}")
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(_render(result))
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
