"""CollectiveJob API and the collective worker host logic.

A :class:`CollectiveJob` is one collective operation over a named float
tensor.  All four operations ride the same data path — a quantized
in-network sum through the aggregation tree — by shaping what each rank
*contributes* and what slice of the summed tensor it *extracts*:

==============  ===============================  =====================
op              rank contributes                 rank extracts
==============  ===============================  =====================
allreduce       its full tensor                  the full sum
reduce_scatter  its full tensor                  its shard of the sum
allgather       its shard, zero-padded in place  the full concatenation
broadcast       root: tensor; others: zeros      the full tensor
==============  ===============================  =====================

Each rank runs **two** :class:`~repro.collective.protocol.SlotStream`\\ s
multiplexed over one host: computation 2 negotiates the per-group
maximum exponent (tiny packets), computation 1 streams the quantized
mantissas.  A reduce round is *parked* until its exponent group has
completed, so every worker quantizes against the same scale and the
switch sum is exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.collective.protocol import SlotStream
from repro.collective.quantize import (
    chunk_exponent,
    dequantize_chunk,
    quantization_error_bound,
    quantize_chunk,
)
from repro.runtime import KernelSpec
from repro.runtime.message import NetCLPacket

COMP_REDUCE = 1
COMP_EXPMAX = 2

OPS = ("allreduce", "reduce_scatter", "allgather", "broadcast")


def shard_range(num_elements: int, num_workers: int, rank: int) -> tuple[int, int]:
    """Rank's contiguous shard [lo, hi) of an ``num_elements`` tensor."""
    base, rem = divmod(num_elements, num_workers)
    lo = rank * base + min(rank, rem)
    return lo, lo + base + (1 if rank < rem else 0)


def contribution(
    op: str,
    tensor: list[float],
    rank: int,
    num_workers: int,
    num_elements: int,
    root: int = 0,
) -> list[float]:
    """What ``rank`` feeds into the in-network sum for ``op``."""
    if op not in OPS:
        raise ValueError(f"unknown collective op {op!r} (want one of {OPS})")
    if op in ("allreduce", "reduce_scatter"):
        if len(tensor) != num_elements:
            raise ValueError(f"rank {rank}: tensor has {len(tensor)} elements, "
                             f"job has {num_elements}")
        return list(tensor)
    if op == "allgather":
        lo, hi = shard_range(num_elements, num_workers, rank)
        if len(tensor) != hi - lo:
            raise ValueError(f"rank {rank}: shard has {len(tensor)} elements, "
                             f"want {hi - lo}")
        out = [0.0] * num_elements
        out[lo:hi] = tensor
        return out
    # broadcast: only the root contributes; everyone else sums in zeros.
    if rank == root:
        if len(tensor) != num_elements:
            raise ValueError(f"root tensor has {len(tensor)} elements, "
                             f"job has {num_elements}")
        return list(tensor)
    return [0.0] * num_elements


@dataclass
class CollectiveJob:
    """One collective operation over a named tensor."""

    name: str
    op: str
    num_elements: int
    root: int = 0
    num_workers: int = 0
    #: negotiated biased exponent per chunk (equal across ranks)
    exponents: list[int] = field(default_factory=list)
    #: rank -> op-shaped output (filled as workers finish)
    results: dict[int, list[float]] = field(default_factory=dict)

    def error_bound(self, chunk: int) -> float:
        """Per-element quantization error bound for one chunk's sum."""
        return quantization_error_bound(self.exponents[chunk], self.num_workers)

    def max_error_bound(self) -> float:
        return max(
            (self.error_bound(c) for c in range(len(self.exponents))),
            default=0.0,
        )


class _ExpStream(SlotStream):
    """Computation 2: negotiate each group's max biased exponent."""

    def __init__(self, worker: "CollectiveWorker", num_groups: int) -> None:
        super().__init__(
            worker.network,
            worker.host_id,
            worker.rank,
            worker.spec_exp,
            num_groups,
            window=worker.window,
            timeout_ns=worker.staggered_timeout_ns,
            device_id=worker.device_id,
            comp=COMP_EXPMAX,
            install_handler=False,
        )
        self.owner = worker

    def _chunk_payload(self, group: int) -> list:
        return [group & 0xFFFF, self.owner._group_exponent(group)]

    def _accept_result(self, group: int, values: list) -> None:
        self.owner._exp_done(group, values[5])

    def _result_round(self, values: list) -> int:
        return values[4]

    def _result_key(self, values: list) -> list:
        return [values[4]]


class _ReduceStream(SlotStream):
    """Computation 1: stream quantized mantissa chunks."""

    def __init__(self, worker: "CollectiveWorker", num_chunks: int) -> None:
        super().__init__(
            worker.network,
            worker.host_id,
            worker.rank,
            worker.spec_reduce,
            num_chunks,
            window=worker.window,
            timeout_ns=worker.staggered_timeout_ns,
            device_id=worker.device_id,
            comp=COMP_REDUCE,
            install_handler=False,
        )
        self.owner = worker

    def _chunk_payload(self, chunk: int) -> Optional[list]:
        estar = self.owner._estar_for(chunk)
        if estar is None:
            return None  # parked until the exponent group completes
        return [chunk & 0xFFFF, estar, self.owner._quantized_chunk(chunk, estar)]

    def _accept_result(self, chunk: int, values: list) -> None:
        self.owner._reduce_done(chunk, values[5], values[6])

    def _result_round(self, values: list) -> int:
        return values[4]

    def _result_key(self, values: list) -> list:
        return [values[4]]

    def _on_finished(self) -> None:
        self.owner._finished()


class CollectiveWorker:
    """One rank: two multiplexed slot streams against its rack's ToR."""

    def __init__(
        self,
        network,
        host_id: int,
        rank: int,
        rack: int,
        spec_reduce: KernelSpec,
        spec_exp: KernelSpec,
        *,
        device_id: int,
        window: int = 8,
        timeout_ns: int = 400_000,
        stagger_ns: int = 25_000,
        exp_group: int = 4,
    ) -> None:
        self.network = network
        self.host = network.hosts[host_id]
        self.host.on_receive = self._dispatch
        self.host_id = host_id
        self.rank = rank
        self.worker_index = rank  # for require_all_done diagnostics
        self.rack = rack
        self.spec_reduce = spec_reduce
        self.spec_exp = spec_exp
        self.slot_size = spec_reduce.fields[-1].count
        self.device_id = device_id
        self.window = window
        self.timeout_ns = timeout_ns
        self.stagger_ns = stagger_ns
        self.exp_group = exp_group
        #: optional ReliableChannel, shared by both streams
        self.channel = None
        self.job: Optional[CollectiveJob] = None
        self.exp: Optional[_ExpStream] = None
        self.reduce: Optional[_ReduceStream] = None
        self._contrib: list[float] = []
        self._estar: dict[int, int] = {}
        self.result_sum: list[float] = []
        self._m_chunks = network.metrics.counter("collective.chunks_completed")
        self._m_elems = network.metrics.counter("collective.elements_reduced")

    @property
    def staggered_timeout_ns(self) -> int:
        """Per-rank retransmission timeout.

        A lost contribution stalls its round *globally* (the tree sum
        cannot complete), so with identical timeouts every rank's timer
        fires in lockstep even though only one rank's retransmission can
        repair an up-loss — an 8x retransmission swarm per loss.
        Staggering by rank lets the earliest rank probe first; its
        retransmission re-forwards any completed leaf/root partial, and
        the repaired result quiesces the later ranks' timers before they
        fire.
        """
        return self.timeout_ns + self.rank * self.stagger_ns

    # -- job lifecycle ------------------------------------------------------------
    def start_job(self, job: CollectiveJob, tensor: list[float]) -> None:
        """Prepare (fresh streams) for one collective; send with start()."""
        self.job = job
        self._contrib = contribution(
            job.op, tensor, self.rank, job.num_workers, job.num_elements, job.root
        )
        self._estar = {}
        self.result_sum = [0.0] * job.num_elements
        num_chunks = (job.num_elements + self.slot_size - 1) // self.slot_size
        num_groups = (num_chunks + self.exp_group - 1) // self.exp_group
        if not job.exponents:
            job.exponents.extend([0] * num_chunks)
        self.exp = _ExpStream(self, num_groups)
        self.reduce = _ReduceStream(self, num_chunks)
        self.exp.channel = self.channel
        self.reduce.channel = self.channel

    def start(self) -> None:
        self.exp.start()
        self.reduce.start()  # every round parks until its exponent lands

    def set_device(self, device_id: int) -> None:
        """Failover retarget: future sends go to the replacement ToR."""
        self.device_id = device_id
        if self.exp is not None:
            self.exp.device_id = device_id
        if self.reduce is not None:
            self.reduce.device_id = device_id

    # -- receive dispatch ---------------------------------------------------------
    def _dispatch(self, packet: NetCLPacket, now_ns: int) -> None:
        if packet.comp == COMP_EXPMAX and self.exp is not None:
            self.exp.handle(packet, now_ns)
        elif packet.comp == COMP_REDUCE and self.reduce is not None:
            self.reduce.handle(packet, now_ns)

    # -- quantization plumbing ----------------------------------------------------
    def _chunk_floats(self, chunk: int) -> list[float]:
        lo = chunk * self.slot_size
        vals = self._contrib[lo : lo + self.slot_size]
        return vals + [0.0] * (self.slot_size - len(vals))

    def _group_exponent(self, group: int) -> int:
        lo = group * self.exp_group
        hi = min(lo + self.exp_group, self.reduce.num_rounds)
        return max(
            chunk_exponent(self._chunk_floats(c)) for c in range(lo, hi)
        )

    def _estar_for(self, chunk: int) -> Optional[int]:
        return self._estar.get(chunk // self.exp_group)

    def _quantized_chunk(self, chunk: int, estar: int) -> list[int]:
        return quantize_chunk(self._chunk_floats(chunk), estar)

    # -- stream callbacks ---------------------------------------------------------
    def _exp_done(self, group: int, estar: int) -> None:
        self._estar[group] = estar
        # Un-park every reduce round of this group waiting on a slot.
        r = self.reduce
        for slot, chunk in list(r._slot_chunk.items()):
            if (
                chunk is not None
                and chunk // self.exp_group == group
                and chunk not in r._done_chunks
            ):
                r._send_chunk(slot, chunk)

    def _reduce_done(self, chunk: int, exponent: int, v: list[int]) -> None:
        lo = chunk * self.slot_size
        n = min(self.slot_size, len(self.result_sum) - lo)
        self.result_sum[lo : lo + n] = dequantize_chunk(v[:n], exponent)
        self.job.exponents[chunk] = exponent
        self.reduce.stats.elements_aggregated += n
        self._m_chunks.inc()
        self._m_elems.inc(n)

    def _finished(self) -> None:
        job = self.job
        if job.op == "reduce_scatter":
            lo, hi = shard_range(job.num_elements, job.num_workers, self.rank)
            job.results[self.rank] = self.result_sum[lo:hi]
        else:
            job.results[self.rank] = list(self.result_sum)

    # -- status -------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self.reduce is not None and self.reduce.done

    @property
    def finished_at_ns(self) -> Optional[int]:
        return self.reduce.stats.finished_at_ns if self.reduce else None

    @property
    def retransmissions(self) -> int:
        total = 0
        for s in (self.exp, self.reduce):
            if s is not None:
                total += s.stats.retransmissions
        return total

    def stall_report(self, *, label: str = "chunk") -> Optional[str]:
        if self.done:
            return None
        parts = []
        if self.exp is not None:
            r = self.exp.stall_report(label="exp-group")
            if r is not None:
                parts.append(r)
        if self.reduce is not None:
            r = self.reduce.stall_report(label=label)
            if r is not None:
                parts.append(r)
        return " | ".join(parts) if parts else "no job started"
