"""The shared windowed slot-stream protocol core (SwitchML-style).

This is AGG's worker machinery (§VII, Fig. 14) factored out so every
in-network aggregation protocol — AGG's single-switch integer sum and
the hierarchical collectives in :mod:`repro.collective` — runs the same
host-side engine:

* a tensor is streamed as fixed-size *rounds* (AGG calls them chunks)
  over a window of protocol *slots*;
* each slot carries an alternating version bit, so the switch keeps the
  previously completed aggregate available for retransmission while the
  next round builds in the other version (no worker can be more than one
  round ahead of another);
* lost results are recovered by re-sending the contribution — the
  switch-side ``cnt == 0`` path answers with the completed aggregate;
* after a failover the control plane calls :meth:`SlotStream.resync_slot`
  to rebuild in-flight rounds on the standby.

Subclasses provide the payload (:meth:`SlotStream._chunk_payload`) and
consume completed rounds (:meth:`SlotStream._accept_result`); the wire
layout is always ``[ver, bmp_idx, agg_idx, mask, *payload]``.

The module also owns stall diagnostics: a run that ends incomplete can
name *which* workers and rounds are missing (:class:`StallError`)
instead of failing a bare ``assert cluster.all_done``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.runtime import KernelSpec, Message
from repro.runtime.constants import DEFAULT_SLOT_TIMEOUT_NS, NUM_SLOTS
from repro.runtime.message import NetCLPacket, unpack


@dataclass
class StreamStats:
    """Per-stream protocol statistics (the shape AGG always exposed)."""

    elements_aggregated: int = 0
    chunks_completed: int = 0
    retransmissions: int = 0
    finished_at_ns: Optional[int] = None


class StallError(RuntimeError):
    """A run ended with incomplete workers.

    ``reports`` holds one line per stalled worker naming the missing
    rounds and the slots still in flight — the diagnostics a bare
    ``assert cluster.all_done`` never gave.
    """

    def __init__(self, message: str, reports: list[str]):
        super().__init__(message)
        self.reports = reports


def require_all_done(workers, *, what: str = "worker", label: str = "chunk") -> None:
    """Raise :class:`StallError` naming every incomplete worker.

    ``workers`` is any iterable of objects with a ``stall_report``
    method (:class:`SlotStream`, ``AggWorker``, ``CollectiveWorker``).
    """
    reports = []
    for w in workers:
        r = w.stall_report(label=label)
        if r is not None:
            reports.append(f"{what} {getattr(w, 'worker_index', '?')}: {r}")
    if reports:
        raise StallError(
            f"{len(reports)} {what}(s) stalled:\n  " + "\n  ".join(reports),
            reports,
        )


class SlotStream:
    """One host's windowed, version-alternating slot stream.

    The round currently riding slot ``s`` is always ``s + k*window``;
    round ``r``'s version bit is ``(r // window) & 1`` and its state
    index at the switch is ``ver * num_slots + slot``.
    """

    def __init__(
        self,
        network,
        host_id: int,
        worker_index: int,
        spec: KernelSpec,
        num_rounds: int,
        *,
        window: int = 16,
        timeout_ns: int = DEFAULT_SLOT_TIMEOUT_NS,
        device_id: int,
        comp: int = 1,
        num_slots: int = NUM_SLOTS,
        slot_base: int = 0,
        install_handler: bool = True,
    ) -> None:
        self.network = network
        self.host = network.hosts[host_id]
        if install_handler:
            self.host.on_receive = self._on_receive
        self.host_id = host_id
        self.worker_index = worker_index
        self.spec = spec
        self.num_rounds = num_rounds
        self.num_chunks = num_rounds  # AGG-compatible alias
        #: first switch slot this stream owns.  Collectives share slots
        #: (every worker contributes to the same rounds); independent
        #: streams multiplexed onto one switch (repro.rpc clients) each
        #: take a disjoint ``[slot_base, slot_base + window)`` range so
        #: their rounds never collide in the slot registers.
        self.slot_base = slot_base
        self.window = min(window, num_slots - slot_base)
        if self.window < 1:
            raise ValueError(
                f"slot_base {slot_base} leaves no slots of {num_slots}"
            )
        self.timeout_ns = timeout_ns
        self.device_id = device_id
        self.comp = comp
        self.num_slots = num_slots
        #: optional repro.reliability channel: sends then carry sequence
        #: numbers so the switch's dedup window filters network-duplicated
        #: packets (the worker keeps driving its own retransmissions, each
        #: with a fresh sequence number).
        self.channel = None
        #: channel seq -> (slot, round) it carried, to reject responses to
        #: sends that are no longer current (a reflect answering a stale
        #: retransmission can arrive a full version cycle late, when the
        #: version bit alone can no longer distinguish it).
        self._sent_seqs: dict[int, tuple[int, int]] = {}
        #: (slot, ver) -> the last aggregate accepted there.  When we
        #: complete a round through a reflect, the broadcast copy of that
        #: same result may still be in flight; if it lands a full version
        #: cycle later the version bit matches again, so we recognize the
        #: zombie by its payload (results carry no round identity).
        self._last_result: dict[tuple[int, int], list[int]] = {}
        self.stats = StreamStats()
        #: slot -> round currently in flight on that slot (or None)
        self._slot_chunk: dict[int, Optional[int]] = {}
        self._done_chunks: set[int] = set()
        self._timeouts: dict[int, object] = {}

    # -- subclass hooks -----------------------------------------------------------
    def _chunk_payload(self, chunk: int) -> Optional[list]:
        """Wire fields after the 4-field slot header, or ``None`` to park
        the round (the subclass re-sends once its data is ready)."""
        raise NotImplementedError

    def _accept_result(self, chunk: int, values: list) -> None:
        """Consume one completed round's decoded message fields."""
        raise NotImplementedError

    def _result_key(self, values: list) -> list:
        """Payload identity used by the zombie-broadcast filter."""
        last = values[-1]
        return list(last) if isinstance(last, list) else [last]

    def _result_round(self, values: list) -> Optional[int]:
        """Round identity echoed by the wire format, if it carries one.

        AGG's format does not (results are matched by slot/version and
        payload); the collective format echoes the sender's round tag, so
        stale broadcasts are rejected exactly instead of heuristically.
        """
        return None

    def _on_finished(self) -> None:
        """All rounds completed (called once, timers already cancelled)."""

    # -- protocol -----------------------------------------------------------------
    def start(self) -> None:
        for slot in range(self.window):
            self._send_chunk(slot, slot)

    def _send_chunk(self, slot: int, chunk: int) -> None:
        if chunk >= self.num_rounds:
            self._slot_chunk[slot] = None
            self._check_done()
            return
        self._slot_chunk[slot] = chunk
        payload = self._chunk_payload(chunk)
        if payload is None:
            return  # parked: no timeout until the payload exists
        round_ = chunk // self.window
        ver = round_ & 1
        gslot = self.slot_base + slot
        head = [
            ver,
            gslot,  # bmp_idx
            ver * self.num_slots + gslot,  # agg_idx
            1 << self.worker_index,  # mask
        ]
        if self.channel is not None:
            seq = self.channel.request(
                head + payload,
                dst=self.host_id,
                retransmit=False,
                spec=self.spec,
                comp=self.comp,
            )
            self._sent_seqs[seq] = (slot, chunk)
        else:
            msg = Message(
                src=self.host_id, dst=self.host_id, comp=self.comp, to=self.device_id
            )
            self.host.send_message(msg, self.spec, head + payload)
        self._arm_timeout(slot, chunk)

    def _arm_timeout(self, slot: int, chunk: int) -> None:
        old = self._timeouts.pop(slot, None)
        if old is not None:
            old.cancel()  # type: ignore[attr-defined]

        def fire() -> None:
            if self._slot_chunk.get(slot) == chunk:
                self.stats.retransmissions += 1
                self._send_chunk(slot, chunk)

        self._timeouts[slot] = self.network.sim.after(self.timeout_ns, fire)

    def resync_slot(self, slot: int, chunk: int) -> None:
        """Failover resynchronization: restart ``slot`` at ``chunk``.

        After a switch crash the aggregation state for in-flight rounds
        is gone; every worker must re-contribute from the earliest round
        any worker still needs on each slot — including rounds this
        worker already completed (its data is still available, and
        re-receiving a completed result simply advances the slot again).
        """
        if chunk >= self.num_rounds:
            return
        self._send_chunk(slot, chunk)

    def _on_receive(self, packet: NetCLPacket, now_ns: int) -> None:
        self.handle(packet, now_ns)

    def handle(self, packet: NetCLPacket, now_ns: int) -> None:
        _, values = unpack(packet.to_wire(), self.spec)
        ver, bmp_idx, agg_idx = values[0], values[1], values[2]
        slot = bmp_idx - self.slot_base
        if slot < 0:
            return  # another stream's slot range
        if packet.rel_kind is not None and packet.src == self.host_id:
            # A response on our own flow (reflect, or the multicast our
            # send triggered): only the send still in flight on its slot
            # may complete it.  Other workers' flows reuse the same
            # sequence numbers, so the map applies only to our src.
            origin = self._sent_seqs.pop(packet.rel_seq, None)
            if origin is not None and self._slot_chunk.get(origin[0]) != origin[1]:
                return  # answers a send this slot has moved past
        chunk = self._slot_chunk.get(slot)
        if chunk is None:
            return
        expected_ver = (chunk // self.window) & 1
        if ver != expected_ver or agg_idx != expected_ver * self.num_slots + bmp_idx:
            return  # stale duplicate from an earlier round
        tag = self._result_round(values)
        if tag is not None and tag != (chunk & 0xFFFF):
            return  # result of an older round that wrapped the version bit
        key = self._result_key(values)
        if packet.src != self.host_id and self._last_result.get((slot, ver)) == key:
            return  # zombie broadcast of a result we already completed
        self._last_result[(slot, ver)] = key
        if chunk in self._done_chunks:
            # A resynced slot re-received an already-held result: advance.
            self._send_chunk(slot, chunk + self.window)
            return
        self._done_chunks.add(chunk)
        self.stats.chunks_completed += 1
        self._accept_result(chunk, values)
        self._send_chunk(slot, chunk + self.window)

    def _check_done(self) -> None:
        if len(self._done_chunks) == self.num_rounds and self.stats.finished_at_ns is None:
            self.stats.finished_at_ns = self.network.sim.now_ns
            for ev in self._timeouts.values():
                ev.cancel()  # type: ignore[attr-defined]
            self._on_finished()

    @property
    def done(self) -> bool:
        return len(self._done_chunks) == self.num_rounds

    # -- diagnostics --------------------------------------------------------------
    def incomplete_chunks(self) -> list[int]:
        """Rounds not yet completed (empty when done)."""
        return sorted(set(range(self.num_rounds)) - self._done_chunks)

    def stall_report(self, *, label: str = "chunk") -> Optional[str]:
        """One-line diagnosis of what this stream is still missing."""
        if self.done:
            return None
        missing = self.incomplete_chunks()
        in_flight = {
            s: c for s, c in sorted(self._slot_chunk.items()) if c is not None
        }
        shown = ", ".join(str(c) for c in missing[:12])
        if len(missing) > 12:
            shown += f" … +{len(missing) - 12} more"
        return (
            f"{len(missing)}/{self.num_rounds} {label}s missing [{shown}]; "
            f"in flight (slot->{label}): {in_flight}"
        )
