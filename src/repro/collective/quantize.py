"""Block quantization for float tensors (generalizing AGG's exponent).

Switches sum *integers* (wrapping u32), so float gradients are quantized
per chunk to fixed-point mantissas against a shared scale:

* every worker computes its chunk's **biased maximum exponent**
  ``e = max(frexp(|x|)) + EXP_BIAS`` (a uint8, so the switch's
  ``atomic_max`` can negotiate the cross-worker maximum ``e*`` on the
  wire — computation 2 of ``collective.ncl``);
* values are then quantized as ``q = round(x * 2^(MANTISSA_BITS - e*))``
  encoded two's-complement in u32.  Wrapping u32 addition of
  two's-complement values *is* signed addition, so the in-network sum is
  exact as long as ``N * 2^MANTISSA_BITS < 2^31`` — with 24 mantissa
  bits that holds for up to 64 workers;
* dequantizing the switch total against ``e*`` gives the float sum with
  per-element error at most ``N * 2^(e* - EXP_BIAS - MANTISSA_BITS - 1)``
  (each worker contributes half an ulp of the shared scale).

The bound is what the property tests in
``tests/test_quantize_properties.py`` pin down, including zero, negative
and denormal-ish inputs.
"""

from __future__ import annotations

import math

#: fixed-point mantissa width.  24 bits keeps N*2^24 < 2^31 for N <= 64
#: workers while matching float32's native precision.
MANTISSA_BITS = 24

#: wire exponents are biased so the switch's unsigned max works:
#: biased = unbiased + EXP_BIAS, clamped to [0, 255].
EXP_BIAS = 128

_U32 = 1 << 32
_I32_MAX = (1 << 31) - 1
_I32_MIN = -(1 << 31)


def chunk_exponent(values: list[float]) -> int:
    """The chunk's biased maximum exponent (uint8).

    ``frexp`` gives ``|x| = m * 2^e`` with ``0.5 <= m < 1``, so ``2^e``
    strictly bounds every value; an all-zero chunk reports the minimum
    (biased 0), which never raises the negotiated maximum.
    """
    e = None
    for x in values:
        if x:
            ex = math.frexp(x)[1]
            if e is None or ex > e:
                e = ex
    if e is None:
        return 0
    return min(255, max(0, e + EXP_BIAS))


def quantize_chunk(values: list[float], biased_exp: int) -> list[int]:
    """Quantize a chunk against the (negotiated) biased exponent.

    Returns u32 two's-complement fixed-point mantissas.  Values are
    saturated at int32 — only reachable when ``biased_exp`` is below the
    chunk's own exponent (i.e. outside protocol use) or the chunk
    exceeds the representable ``|x| < 2^127`` range.
    """
    scale = math.ldexp(1.0, MANTISSA_BITS - (biased_exp - EXP_BIAS))
    out = []
    for x in values:
        q = round(x * scale)
        if q > _I32_MAX:
            q = _I32_MAX
        elif q < _I32_MIN:
            q = _I32_MIN
        out.append(q & 0xFFFFFFFF)
    return out


def dequantize_chunk(qs: list[int], biased_exp: int) -> list[float]:
    """Decode u32 two's-complement mantissas back to floats."""
    scale = math.ldexp(1.0, (biased_exp - EXP_BIAS) - MANTISSA_BITS)
    return [
        (q - _U32 if q >= 1 << 31 else q) * scale
        for q in qs
    ]


def quantization_error_bound(biased_exp: int, num_workers: int = 1) -> float:
    """Per-element bound on |dequantized sum - exact float sum|.

    Each worker's rounding error is at most half an ulp of the shared
    scale ``2^(e* - MANTISSA_BITS)``; the integer summation itself is
    exact, so errors only add across workers.
    """
    return num_workers * math.ldexp(
        1.0, (biased_exp - EXP_BIAS) - MANTISSA_BITS - 1
    )
