"""Acceptance scenario: a hierarchical collective surviving chaos.

The flagship run the subsystem is judged by: a 2-rack (two ToRs + one
spine), 8-worker float32 allreduce completing *bit-identically per seed*
under 5% loss, duplication, reordering, jitter, and a mid-run crash of
rack 0's ToR — with every worker's dequantized result inside the
quantization error bound of the exact float sum, and the in-network
fabric traffic (including every retransmission the chaos forced) still
below the host-ring baseline running over its reliable transport under
the same link faults.

Mirrors :mod:`repro.chaos.scenarios`: same fault plan shape, same
sha256-over-sorted-JSON determinism digest.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Optional

from repro.chaos.inject import ChaosController
from repro.chaos.plan import ChaosEvent, ChaosPlan, LinkFaults
from repro.collective.baseline import run_host_ring
from repro.collective.job import contribution, shard_range
from repro.collective.tree import (
    build_collective_cluster,
    leaf_device,
    standby_device,
)
from repro.reliability import FailoverManager


@dataclass
class CollectiveRunResult:
    """What one collective chaos run produced."""

    op: str
    seed: int
    ok: bool
    errors: list[str]
    num_racks: int
    workers_per_rack: int
    tensor_elements: int
    finished: int
    failed_over: bool
    sim_ns: int
    finished_at_ns: Optional[int]
    max_abs_error: float
    error_bound: float
    innetwork_link_bytes: int
    ring_link_bytes: Optional[int]
    hops_saved: int
    digest: str
    counters: dict[str, object] = field(default_factory=dict)
    plan: dict = field(default_factory=dict)
    metrics: dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "op": self.op,
            "seed": self.seed,
            "ok": self.ok,
            "errors": self.errors,
            "num_racks": self.num_racks,
            "workers_per_rack": self.workers_per_rack,
            "tensor_elements": self.tensor_elements,
            "finished": self.finished,
            "failed_over": self.failed_over,
            "sim_ns": self.sim_ns,
            "finished_at_ns": self.finished_at_ns,
            "max_abs_error": self.max_abs_error,
            "error_bound": self.error_bound,
            "innetwork_link_bytes": self.innetwork_link_bytes,
            "ring_link_bytes": self.ring_link_bytes,
            "hops_saved": self.hops_saved,
            "digest": self.digest,
            "counters": self.counters,
            "plan": self.plan,
        }


def default_collective_plan(
    seed: int,
    *,
    loss: float = 0.05,
    duplicate: float = 0.05,
    reorder: float = 0.05,
    jitter_ns: int = 1_000,
    crash_at_ns: Optional[int] = 60_000,
) -> ChaosPlan:
    """The acceptance fault model, aimed at rack 0's primary ToR."""
    faults = LinkFaults(
        loss=loss,
        duplicate=duplicate,
        reorder=reorder,
        reorder_delay_ns=15_000,
        jitter_ns=jitter_ns,
    )
    events = []
    if crash_at_ns is not None:
        events.append(
            ChaosEvent(at_ns=crash_at_ns, kind="crash", node=f"d{leaf_device(0)}")
        )
    return ChaosPlan(seed=seed, default_link=faults, events=events)


def _digest(payload: dict) -> str:
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()


def run_collective_chaos(
    seed: int = 7,
    *,
    op: str = "allreduce",
    num_racks: int = 2,
    workers_per_rack: int = 4,
    tensor_elements: int = 2048,
    window: int = 8,
    exp_group: int = 4,
    plan: Optional[ChaosPlan] = None,
    heartbeat_ns: int = 100_000,
    horizon_ms: float = 150.0,
    baseline: bool = True,
    trace: bool = False,
) -> CollectiveRunResult:
    """One collective surviving the acceptance fault plan.

    Every rack gets a standby ToR and a
    :class:`~repro.reliability.FailoverManager`; on a ToR crash the
    manager retargets the rack's channels and the resync hook restarts
    both slot streams (exponent + reduce) of every rack worker at the
    earliest round any of them still has in flight per slot — the slot
    protocol then rebuilds the lost rack partials on the standby.
    """
    plan = plan if plan is not None else default_collective_plan(seed)
    cluster = build_collective_cluster(
        num_racks,
        workers_per_rack,
        window=window,
        exp_group=exp_group,
        seed=seed,
        standby=True,
        reliable=True,
    )
    net = cluster.network
    if trace:
        net.enable_tracing()

    num_workers = cluster.num_workers
    rng = random.Random(f"{seed}:collective")
    if op == "allgather":
        tensors = []
        for rank in range(num_workers):
            lo, hi = shard_range(tensor_elements, num_workers, rank)
            tensors.append([rng.uniform(-50.0, 50.0) for _ in range(hi - lo)])
    elif op == "broadcast":
        tensors = [[rng.uniform(-50.0, 50.0) for _ in range(tensor_elements)]]
        tensors += [[] for _ in range(num_workers - 1)]
    else:
        tensors = [
            [rng.uniform(-50.0, 50.0) for _ in range(tensor_elements)]
            for _ in range(num_workers)
        ]
    job = cluster.submit(op, tensors)

    managers: list[FailoverManager] = []
    for rack in range(num_racks):
        rack_workers = [w for w in cluster.workers if w.rack == rack]

        def resync(mgr: FailoverManager, rack_workers=rack_workers) -> None:
            # The crashed ToR took its rack partials with it: restart
            # each stream's slots at the earliest round any rack worker
            # still needs there (see run_agg_chaos for the argument).
            for attr in ("exp", "reduce"):
                streams = [getattr(w, attr) for w in rack_workers]
                slots: set[int] = set()
                for s in streams:
                    slots.update(
                        sl for sl, c in s._slot_chunk.items() if c is not None
                    )
                for slot in sorted(slots):
                    chunks = [
                        c
                        for c in (s._slot_chunk.get(slot) for s in streams)
                        if c is not None
                    ]
                    if not chunks:
                        continue
                    base = min(chunks)
                    for s in streams:
                        s.resync_slot(slot, base)
            for w in rack_workers:
                w.set_device(mgr.standby_id)

        managers.append(
            FailoverManager(
                net,
                leaf_device(rack),
                standby_device(rack),
                heartbeat_ns=heartbeat_ns,
                channels=[w.channel for w in rack_workers],
                on_failover=resync,
            ).start()
        )

    ChaosController(net, plan).arm()
    cluster.run(until_ms=horizon_ms)

    # -- validate -----------------------------------------------------------------
    errors: list[str] = []
    finished = sum(1 for w in cluster.workers if w.done)
    if finished != num_workers:
        errors.extend(cluster.stall_report())
        errors.append(f"only {finished}/{num_workers} workers finished")

    contribs = [
        contribution(op, tensors[r], r, num_workers, job.num_elements, job.root)
        for r in range(num_workers)
    ]
    exact = [0.0] * job.num_elements
    for c in contribs:
        for i, x in enumerate(c):
            exact[i] += x

    slot_size = cluster.workers[0].slot_size
    max_err = 0.0
    for w in cluster.workers:
        if not w.done:
            continue
        got = job.results[w.rank]
        base = 0
        if op == "reduce_scatter":
            base, hi = shard_range(job.num_elements, num_workers, w.rank)
            if len(got) != hi - base:
                errors.append(f"rank {w.rank}: wrong shard length {len(got)}")
                continue
        for i, a in enumerate(got):
            at = base + i
            err = abs(a - exact[at])
            max_err = max(max_err, err)
            bound = job.error_bound(at // slot_size)
            if err > bound:
                errors.append(
                    f"rank {w.rank} element {at}: |{a} - {exact[at]}| = "
                    f"{err} > bound {bound}"
                )
                break
    if plan.events and not managers[0].failed_over:
        errors.append("ToR crash never triggered failover")

    innetwork_bytes = cluster.link_bytes()
    ring_bytes: Optional[int] = None
    if baseline:
        # The ring runs under the same link faults (its ACK/retransmit
        # transport absorbs them) but without the ToR crash: a host ring
        # has no standby path, so a crashed ToR would partition it for
        # good — the baseline gets the kinder plan and still loses.
        ring_plan = ChaosPlan(
            seed=plan.seed, default_link=plan.default_link, links=dict(plan.links)
        )
        ring = run_host_ring(
            num_racks, workers_per_rack, contribs, seed=seed, plan=ring_plan
        )
        ring_bytes = ring.link_bytes
        if innetwork_bytes >= ring_bytes:
            errors.append(
                f"in-network traffic {innetwork_bytes} B did not beat the "
                f"host ring's {ring_bytes} B under the same link faults"
            )

    m = net.metrics
    m.counter("collective.innetwork_link_bytes").inc(innetwork_bytes)
    if ring_bytes is not None:
        m.counter("collective.host_ring_link_bytes").inc(ring_bytes)
    hops_saved = int(m.total("net.multicast.hops_saved"))
    counters = {
        "protocol_retransmissions": sum(
            w.retransmissions for w in cluster.workers
        ),
        "channel_retransmits": m.total("reliability.ch.retransmits."),
        "dup_rx_dropped": m.total("reliability.ch.dup_rx_dropped."),
        "device_dup_drops": m.total("reliability.dup_drops"),
        "failovers": m.total("reliability.failover.count"),
        "chaos_lost": m.total("chaos.lost"),
        "chaos_duplicated": m.total("chaos.duplicated"),
        "chaos_reordered": m.total("chaos.reordered"),
        "chunks_completed": m.total("collective.chunks_completed"),
        "elements_reduced": m.total("collective.elements_reduced"),
        "hops_saved": hops_saved,
    }
    finished_at = (
        max(w.finished_at_ns for w in cluster.workers)
        if finished == num_workers
        else None
    )
    snapshot = m.snapshot()
    digest = _digest(
        {
            "app": "collective",
            "op": op,
            "seed": seed,
            "results": {
                str(rank): [x.hex() for x in res]
                for rank, res in sorted(job.results.items())
            },
            "exponents": job.exponents,
            "finished_at_ns": finished_at,
            "metrics": snapshot,
        }
    )
    return CollectiveRunResult(
        op=op,
        seed=seed,
        ok=not errors,
        errors=errors,
        num_racks=num_racks,
        workers_per_rack=workers_per_rack,
        tensor_elements=tensor_elements,
        finished=finished,
        failed_over=any(mgr.failed_over for mgr in managers),
        sim_ns=net.sim.now_ns,
        finished_at_ns=finished_at,
        max_abs_error=max_err,
        error_bound=job.max_error_bound(),
        innetwork_link_bytes=innetwork_bytes,
        ring_link_bytes=ring_bytes,
        hops_saved=hops_saved,
        digest=digest,
        counters=counters,
        plan=plan.to_dict(),
        metrics=snapshot,
    )
