"""Run a collective as a :mod:`repro.service` tenant.

The standalone :mod:`repro.collective.tree` owns its whole fabric; here
the same aggregation tree is expressed as an *abstract* topology (root
device 1, one leaf per rack) and submitted to a long-lived
:class:`~repro.service.INCService`, which places it into whatever
headroom other tenants left, enforces the tenant's QoS, and live-migrates
the slices off crashed switches.  The collective's slot streams ride the
service's ReliableChannels, so a migration is absorbed the same way a
standby failover is: the control plane retargets the channels and the
``on_migrate`` hook restarts every in-flight round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.collective.job import CollectiveJob, CollectiveWorker, OPS
from repro.collective.protocol import require_all_done
from repro.collective.tree import COLL_MCAST_GROUP, compile_role
from repro.netsim import HOST
from repro.runtime import KernelSpec
from repro.service import INCService, Tenant, TenantQoS

#: abstract device ids the collective program is written against.
ABSTRACT_ROOT = 1


def abstract_leaf(rack: int) -> int:
    """The abstract device id of rack ``rack``'s leaf."""
    return 2 + rack


@dataclass
class CollectiveTenant:
    """One admitted collective tenant: its workers and job lifecycle."""

    service: INCService
    tenant_id: str
    tenant: Tenant
    workers: list[CollectiveWorker]
    spec_reduce: KernelSpec
    spec_exp: KernelSpec
    num_racks: int
    workers_per_rack: int
    jobs_run: int = 0
    _started: bool = field(default=False, repr=False)

    @property
    def num_workers(self) -> int:
        return self.num_racks * self.workers_per_rack

    def submit_job(
        self,
        op: str,
        tensors: list[list[float]],
        *,
        name: str = "job",
        root: int = 0,
    ) -> CollectiveJob:
        """Set up one collective over per-rank ``tensors``; run() drives it."""
        if op not in OPS:
            raise ValueError(f"unknown collective op {op!r} (want one of {OPS})")
        if len(tensors) != self.num_workers:
            raise ValueError(
                f"{len(tensors)} tensors for {self.num_workers} workers"
            )
        if self.jobs_run > 0:
            # Between-job epoch bump: wipe the slices' slot state so the
            # previous job's final rounds don't alias as in-progress.
            for dev in self.tenant.devices.values():
                dev.reset_state()
        self.jobs_run += 1
        num_elements = (
            len(tensors[root])
            if op != "allgather"
            else sum(len(t) for t in tensors)
        )
        job = CollectiveJob(
            name=name,
            op=op,
            num_elements=num_elements,
            root=root,
            num_workers=self.num_workers,
        )
        for w in self.workers:
            w.start_job(job, tensors[w.rank])
        self._started = False
        return job

    def run(self, until_ms: float = 200.0, *, require_done: bool = False) -> None:
        """Drive the service's simulation (relative horizon; see
        :meth:`repro.collective.tree.CollectiveCluster.run`)."""
        if not self._started:
            for w in self.workers:
                w.start()
            self._started = True
        sim = self.service.network.sim
        sim.run(until_ns=sim.now_ns + int(until_ms * 1e6))
        if require_done:
            self.require_done()

    @property
    def all_done(self) -> bool:
        return all(w.done for w in self.workers)

    def require_done(self) -> None:
        require_all_done(self.workers, what="rank", label="chunk")

    def stall_report(self) -> list[str]:
        out = []
        for w in self.workers:
            r = w.stall_report()
            if r is not None:
                out.append(f"rank {w.rank}: {r}")
        return out

    # -- migration ----------------------------------------------------------------
    def resync(self) -> None:
        """Restart every in-flight round (migration lost the slot state).

        A migrated leaf lost its rack partials; a migrated root lost the
        cross-rack totals.  The control plane doesn't say which slice
        moved, so every stream restarts each slot at the earliest round
        any worker still has in flight there — spurious re-contributions
        land on completed slots and are answered by re-multicast, which
        the hosts reject by round tag.
        """
        for attr in ("exp", "reduce"):
            streams = [getattr(w, attr) for w in self.workers if getattr(w, attr)]
            slots: set[int] = set()
            for s in streams:
                slots.update(sl for sl, c in s._slot_chunk.items() if c is not None)
            for slot in sorted(slots):
                chunks = [
                    c
                    for c in (s._slot_chunk.get(slot) for s in streams)
                    if c is not None
                ]
                if chunks:
                    base = min(chunks)
                    for s in streams:
                        s.resync_slot(slot, base)


def submit_collective_tenant(
    service: INCService,
    tenant_id: str,
    hosts: list[int],
    *,
    num_racks: int = 2,
    qos: Optional[TenantQoS] = None,
    window: int = 8,
    exp_group: int = 4,
    timeout_ns: int = 400_000,
    stagger_ns: int = 25_000,
    target: str = "tna",
) -> CollectiveTenant:
    """Admit a collective tenant onto ``service``'s shared fabric.

    ``hosts`` are the worker hosts in rank order, split evenly into
    ``num_racks`` racks; rack ``r``'s workers attach to abstract leaf
    ``2 + r``.  Raises :class:`~repro.service.AdmissionError` if the
    fabric has no headroom for the tree.
    """
    if len(hosts) % num_racks != 0:
        raise ValueError(f"{len(hosts)} hosts do not split into {num_racks} racks")
    workers_per_rack = len(hosts) // num_racks
    from repro.deploy.planner import AbstractTopology

    topo = AbstractTopology()
    compiled: dict[int, object] = {}

    def compile_at(abstract_id: int, rack: Optional[int]):
        prog = compile_role(
            abstract_id,
            rack=rack,
            num_racks=num_racks,
            workers_per_rack=workers_per_rack,
            root_device=ABSTRACT_ROOT,
            mcast_group=COLL_MCAST_GROUP,
            target=target,
        )
        compiled[abstract_id] = prog
        topo.add_device(abstract_id, prog)
        return prog

    compile_at(ABSTRACT_ROOT, None)
    for rack in range(num_racks):
        compile_at(abstract_leaf(rack), rack)
        topo.connect_devices(abstract_leaf(rack), ABSTRACT_ROOT)
    for rank, h in enumerate(hosts):
        topo.attach_host(h, abstract_leaf(rank // workers_per_rack))
    topo.add_multicast_group(COLL_MCAST_GROUP, [HOST(h) for h in hosts])

    ct: Optional[CollectiveTenant] = None

    def on_migrate(service: INCService, tenant: Tenant) -> None:
        if ct is not None:
            ct.resync()

    # The slot protocol assumes per-sender FIFO delivery.
    qos = qos or TenantQoS(ordered=True)
    tenant = service.submit(tenant_id, topo, qos, on_migrate=on_migrate)

    leaf_kernels = {
        k.computation: k for k in compiled[abstract_leaf(0)].kernels()
    }
    spec_reduce = KernelSpec.from_kernel(leaf_kernels[1])
    spec_exp = KernelSpec.from_kernel(leaf_kernels[2])

    from repro.reliability import ReliableChannel

    net = service.network
    workers: list[CollectiveWorker] = []
    for rank, h in enumerate(hosts):
        rack = rank // workers_per_rack
        leaf_abstract = abstract_leaf(rack)
        gid = tenant.abstract_to_gid[leaf_abstract]
        worker = CollectiveWorker(
            net,
            h,
            rank,
            rack,
            spec_reduce,
            spec_exp,
            device_id=gid,
            window=window,
            timeout_ns=timeout_ns,
            stagger_ns=stagger_ns,
            exp_group=exp_group,
        )
        # ack=False for the same reason as the standalone tree: the slot
        # protocol completes through the reflected result.
        worker.channel = ReliableChannel(
            net, worker.host, spec_reduce, target_device=gid, ack=False
        )
        service.register_channel(tenant_id, leaf_abstract, worker.channel)
        workers.append(worker)

    ct = CollectiveTenant(
        service=service,
        tenant_id=tenant_id,
        tenant=tenant,
        workers=workers,
        spec_reduce=spec_reduce,
        spec_exp=spec_exp,
        num_racks=num_racks,
        workers_per_rack=workers_per_rack,
    )
    return ct
