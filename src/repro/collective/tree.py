"""Aggregation-tree construction: compile roles, wire the fabric.

The collective data path is a two-level switch tree on a leaf/spine
fabric: every rack's workers attach to a ToR *leaf* that sums the rack's
contributions (``reduce_leaf`` / ``expmax_leaf``), forwards the rack
partial to the spine *root* (``reduce_root`` / ``expmax_root``), and the
root multicasts the cross-rack total back down to every worker host.

The same program text is compiled once per device (§III): each leaf is
pinned with its own ``LEAVES``/``RACK_MASK`` defines and the root with
``NUM_RACKS``, mirroring how a control plane installs one binary per
switch role.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.apps import compile_app
from repro.collective.job import CollectiveJob, CollectiveWorker, OPS
from repro.collective.protocol import require_all_done
from repro.netsim import DEVICE, HOST, Link, Network
from repro.runtime import KernelSpec, NetCLDevice

ROOT_DEVICE = 100
COLL_MCAST_GROUP = 77

#: standby ToRs live in their own id range so ``leaf_device`` stays dense
STANDBY_BASE = 131


def leaf_device(rack: int) -> int:
    """The device id of rack ``rack``'s primary ToR."""
    return 101 + rack


def standby_device(rack: int) -> int:
    """The device id of rack ``rack``'s standby ToR."""
    return STANDBY_BASE + rack


def compile_role(
    device_id: int,
    *,
    rack: Optional[int] = None,
    num_racks: int = 2,
    workers_per_rack: int = 4,
    root_device: int = ROOT_DEVICE,
    mcast_group: int = COLL_MCAST_GROUP,
    target: str = "tna",
):
    """Compile ``collective.ncl`` for one switch role.

    ``rack=None`` compiles the spine root; otherwise the ToR (primary or
    standby) serving ``rack``, pinned to ``device_id`` and carrying that
    rack's contribution bit.
    """
    defines: dict = {
        "LOCAL_WORKERS": workers_per_rack,
        "NUM_RACKS": num_racks,
        "ROOT_DEV": root_device,
        "COLL_MCAST_GROUP": mcast_group,
    }
    if rack is not None:
        defines["LEAVES"] = str(device_id)
        defines["RACK_MASK"] = 1 << rack
    return compile_app("collective", device_id, target=target, defines=defines)


@dataclass
class CollectiveCluster:
    """A compiled, wired collective fabric ready to run jobs."""

    network: Network
    root: NetCLDevice
    leaves: list[NetCLDevice]
    standbys: list[NetCLDevice]
    workers: list[CollectiveWorker]
    compiled: dict[int, object]
    spec_reduce: KernelSpec
    spec_exp: KernelSpec
    num_racks: int
    workers_per_rack: int
    jobs_run: int = 0
    _started: bool = field(default=False, repr=False)

    @property
    def num_workers(self) -> int:
        return self.num_racks * self.workers_per_rack

    def submit(
        self,
        op: str,
        tensors: list[list[float]],
        *,
        name: str = "job",
        root: int = 0,
    ) -> CollectiveJob:
        """Set up one collective over per-rank ``tensors``; run() drives it.

        A second submit on the same cluster resets the switches' slot
        state first (the control plane's between-job epoch bump): a
        finished job leaves its final rounds' bitmap bits set, which
        would alias as in-progress slots for the next job.
        """
        if op not in OPS:
            raise ValueError(f"unknown collective op {op!r} (want one of {OPS})")
        if len(tensors) != self.num_workers:
            raise ValueError(
                f"{len(tensors)} tensors for {self.num_workers} workers"
            )
        if self.jobs_run > 0:
            self.reset_tree()
        self.jobs_run += 1
        num_elements = (
            len(tensors[root])
            if op != "allgather"
            else sum(len(t) for t in tensors)
        )
        job = CollectiveJob(
            name=name,
            op=op,
            num_elements=num_elements,
            root=root,
            num_workers=self.num_workers,
        )
        for w in self.workers:
            w.start_job(job, tensors[w.rank])
        self._started = False
        return job

    def run(self, until_ms: float = 200.0, *, require_done: bool = False) -> None:
        """Drive the simulation; ``require_done`` raises a diagnostic
        :class:`~repro.collective.protocol.StallError` on a stall.

        The horizon is *relative* to the current simulated time (the
        simulator clock is advanced to the horizon even when the event
        queue drains, so an absolute horizon would make every job after
        the first a no-op)."""
        if not self._started:
            for w in self.workers:
                w.start()
            self._started = True
        sim = self.network.sim
        sim.run(until_ns=sim.now_ns + int(until_ms * 1e6))
        if require_done:
            self.require_done()

    @property
    def all_done(self) -> bool:
        return all(w.done for w in self.workers)

    def require_done(self) -> None:
        require_all_done(self.workers, what="rank", label="chunk")

    def stall_report(self) -> list[str]:
        out = []
        for w in self.workers:
            r = w.stall_report()
            if r is not None:
                out.append(f"rank {w.rank}: {r}")
        return out

    def reset_tree(self) -> None:
        """Wipe slot state on every switch that is still up."""
        for dev in [self.root, *self.leaves, *self.standbys]:
            if self.network.is_up(DEVICE(dev.device_id)):
                dev.reset_state()

    def link_bytes(self) -> int:
        """Total bytes every link carried so far (the traffic metric the
        in-network vs host-ring comparison is about)."""
        return int(self.network.metrics.total("link.tx_bytes."))


def build_collective_cluster(
    num_racks: int = 2,
    workers_per_rack: int = 4,
    *,
    window: int = 8,
    exp_group: int = 4,
    timeout_ns: int = 400_000,
    stagger_ns: int = 25_000,
    loss: float = 0.0,
    link_latency_ns: int = 1000,
    bandwidth_gbps: float = 100.0,
    seed: int = 7,
    standby: bool = False,
    reliable: bool = False,
    target: str = "tna",
) -> CollectiveCluster:
    """Compile the tree and wire racks of workers onto a 2-level fabric.

    ``standby=True`` adds a spare ToR per rack (linked to the spine and
    to the rack's hosts) for crash failover; ``reliable=True`` runs the
    switches as :class:`~repro.reliability.ReliableNetCLDevice` (ordered
    per-sender delivery + dedup) and gives every worker a
    :class:`~repro.reliability.ReliableChannel` — the configuration the
    chaos scenarios use.
    """
    if not 2 <= num_racks <= 16:
        raise ValueError("num_racks must be in [2, 16] (rack bits are u16)")
    if not 2 <= workers_per_rack <= 16:
        raise ValueError(
            "workers_per_rack must be in [2, 16] (worker bits are u16)"
        )
    if num_racks * workers_per_rack > 64:
        raise ValueError(
            "at most 64 workers total (the fixed-point sum is exact only "
            "while N * 2^MANTISSA_BITS fits an i32)"
        )

    net = Network(seed=seed)

    def make_device(device_id: int, compiled) -> NetCLDevice:
        if reliable:
            from repro.reliability import ReliableNetCLDevice

            # ordered=True: the slot protocol assumes per-worker FIFO
            # delivery (see run_agg_chaos).
            return ReliableNetCLDevice(
                device_id,
                compiled.module,
                compiled.kernels(),
                metrics=net.metrics,
                ordered=True,
            )
        return NetCLDevice(device_id, compiled.module, compiled.kernels())

    compiled: dict[int, object] = {}

    def add_switch(device_id: int, rack: Optional[int]) -> NetCLDevice:
        prog = compile_role(
            device_id,
            rack=rack,
            num_racks=num_racks,
            workers_per_rack=workers_per_rack,
            target=target,
        )
        compiled[device_id] = prog
        dev = make_device(device_id, prog)
        processing = int(prog.report.latency.total_ns) if prog.report else 500
        net.add_switch(dev, processing_ns=processing)
        return dev

    def fabric_link(a, b) -> None:
        net.link(
            a,
            b,
            Link(
                latency_ns=link_latency_ns,
                bandwidth_gbps=bandwidth_gbps,
                loss_probability=loss,
            ),
        )

    root = add_switch(ROOT_DEVICE, None)
    leaves: list[NetCLDevice] = []
    standbys: list[NetCLDevice] = []
    for rack in range(num_racks):
        leaf = add_switch(leaf_device(rack), rack)
        leaves.append(leaf)
        fabric_link(DEVICE(leaf.device_id), DEVICE(ROOT_DEVICE))
        if standby:
            spare = add_switch(standby_device(rack), rack)
            standbys.append(spare)
            fabric_link(DEVICE(spare.device_id), DEVICE(ROOT_DEVICE))

    leaf_kernels = {k.computation: k for k in compiled[leaf_device(0)].kernels()}
    spec_reduce = KernelSpec.from_kernel(leaf_kernels[1])
    spec_exp = KernelSpec.from_kernel(leaf_kernels[2])

    workers: list[CollectiveWorker] = []
    for rack in range(num_racks):
        for i in range(workers_per_rack):
            rank = rack * workers_per_rack + i
            host_id = rank + 1
            net.add_host(host_id)
            fabric_link(HOST(host_id), DEVICE(leaf_device(rack)))
            if standby:
                fabric_link(HOST(host_id), DEVICE(standby_device(rack)))
            worker = CollectiveWorker(
                net,
                host_id,
                rank,
                rack,
                spec_reduce,
                spec_exp,
                device_id=leaf_device(rack),
                window=window,
                timeout_ns=timeout_ns,
                stagger_ns=stagger_ns,
                exp_group=exp_group,
            )
            if reliable:
                from repro.reliability import ReliableChannel

                # Construct after the worker installed its dispatch so the
                # channel interposes on it.  ack=False: the slot protocol
                # completes every exchange through the reflected result
                # (reflect or multicast), so per-request device ACKs would
                # be pure wire overhead; sequence numbers are still
                # stamped, so the switches' dedup keeps filtering
                # network-duplicated packets.
                worker.channel = ReliableChannel(
                    net,
                    worker.host,
                    spec_reduce,
                    target_device=leaf_device(rack),
                    ack=False,
                )
            workers.append(worker)
    net.add_multicast_group(COLL_MCAST_GROUP, [HOST(w.host_id) for w in workers])

    return CollectiveCluster(
        network=net,
        root=root,
        leaves=leaves,
        standbys=standbys,
        workers=workers,
        compiled=compiled,
        spec_reduce=spec_reduce,
        spec_exp=spec_exp,
        num_racks=num_racks,
        workers_per_rack=workers_per_rack,
    )
