"""The NetCL compiler driver (``ncc``).

Ties the pipeline together: NetCL source → frontend (parse, sema) →
IR lowering → middle-end passes → backend (P4 text + pipeline spec +
fitting).  :func:`compile_netcl` is the main public entry point of the
whole library.
"""

from repro.core.driver import (
    CompiledProgram,
    CompileTimings,
    compile_netcl,
    compile_netcl_file,
)

__all__ = [
    "CompiledProgram",
    "CompileTimings",
    "compile_netcl",
    "compile_netcl_file",
]
