"""``ncc`` — the NetCL compiler command-line interface.

Usage::

    ncc program.ncl --device 1 --target tna -o out.p4
    ncc program.ncl --no-speculation --report
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.driver import compile_netcl_file
from repro.lang.errors import CompileError
from repro.passes.manager import PassOptions
from repro.passes.memcheck import MemoryCheckError
from repro.telemetry import Profiler, render_profile_text, write_profile_json
from repro.tofino.allocator import FitError


def build_arg_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="ncc", description="NetCL compiler: C/C++ kernels -> P4"
    )
    p.add_argument("source", help="NetCL source file (.ncl)")
    p.add_argument("--device", type=int, default=None, help="device id to compile for")
    p.add_argument("--target", choices=("tna", "v1model"), default="tna")
    p.add_argument("-o", "--output", help="write generated P4 here")
    p.add_argument("-D", "--define", action="append", default=[], metavar="NAME=VALUE")
    p.add_argument("--no-speculation", action="store_true", help="disable speculation (§VI-B)")
    p.add_argument("--no-duplication", action="store_true", help="disable lookup duplication")
    p.add_argument("--no-partitioning", action="store_true", help="disable memory partitioning")
    p.add_argument("--no-intrinsics", action="store_true", help="disable intrinsic conversion")
    p.add_argument("--hash-bitcasts", action="store_true", help="place bitcasts on hash engines")
    p.add_argument("--no-fit", action="store_true", help="skip the Tofino fitter")
    p.add_argument("--report", action="store_true", help="print the resource report")
    p.add_argument("--dump-ir", action="store_true", help="print the optimized IR")
    p.add_argument(
        "--profile",
        action="store_true",
        help="print a per-phase / per-pass compile-time breakdown",
    )
    p.add_argument(
        "--profile-json",
        metavar="PATH",
        help="write the compile profile as a JSON report (implies --profile timing)",
    )
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)
    defines = {}
    for d in args.define:
        if "=" in d:
            name, value = d.split("=", 1)
            defines[name] = int(value, 0)
        else:
            defines[d] = 1
    options = PassOptions(
        target=args.target,
        speculation=not args.no_speculation,
        lookup_duplication=not args.no_duplication,
        memory_partitioning=not args.no_partitioning,
        intrinsic_conversion=not args.no_intrinsics,
        hash_bitcasts=args.hash_bitcasts,
    )
    profiling = args.profile or args.profile_json
    profiler = Profiler() if profiling else None
    try:
        compiled = compile_netcl_file(
            args.source,
            args.device,
            target=args.target,
            options=options,
            defines=defines or None,
            fit=not args.no_fit,
            profiler=profiler,
        )
    except (CompileError, MemoryCheckError, FitError) as exc:
        print(f"ncc: error: {exc}", file=sys.stderr)
        return 1

    if args.output:
        Path(args.output).write_text(compiled.p4_source)
        print(f"wrote {args.output}")
    else:
        sys.stdout.write(compiled.p4_source)

    if args.dump_ir:
        print(compiled.module.dump())

    if args.report and compiled.report is not None:
        row = compiled.report.row()
        print("\n-- resource report " + "-" * 40, file=sys.stderr)
        for k, v in row.items():
            print(f"  {k:>16}: {v}", file=sys.stderr)
        t = compiled.timings
        print(
            f"  ncc {t.ncc_seconds * 1000:.1f} ms + fitter "
            f"{t.fitter_seconds * 1000:.1f} ms",
            file=sys.stderr,
        )

    if profiling:
        print(render_profile_text(compiled.profile), file=sys.stderr)
        if args.profile_json:
            path = write_profile_json(args.profile_json, compiled.profile)
            print(f"wrote profile to {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
