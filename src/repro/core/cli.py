"""``ncc`` — the NetCL compiler command-line interface.

Usage::

    ncc program.ncl --device 1 --target tna -o out.p4
    ncc program.ncl --no-speculation --report
    ncc program.ncl --lint                  # compile + warnings
    ncc program.ncl --verify-passes         # compile + translation validation
    ncc lint program.ncl                    # analysis only
    ncc lint program.ncl --Werror --json
    ncc lint program.ncl -Wno-NCL004
    ncc verify program.ncl --json           # translation validation only

Warning control (both modes): ``--Werror`` turns warnings into a nonzero
exit, ``-Wno-<code>`` suppresses one diagnostic code.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.tvalid import TranslationValidationError
from repro.core.driver import compile_netcl_file
from repro.lang.errors import CompileError
from repro.passes.manager import PassOptions
from repro.passes.memcheck import MemoryCheckError
from repro.telemetry import Profiler, render_profile_text, write_profile_json
from repro.tofino.allocator import FitError


def _extract_warning_flags(argv: list[str]) -> tuple[list[str], bool, list[str]]:
    """Pull ``--Werror`` / ``-Wno-<code>`` out of ``argv`` (argparse has no
    clean spelling for the ``-Wno-`` family)."""
    rest: list[str] = []
    werror = False
    suppressed: list[str] = []
    for a in argv:
        if a == "--Werror" or a == "-Werror":
            werror = True
        elif a.startswith("-Wno-"):
            suppressed.append(a[len("-Wno-") :])
        else:
            rest.append(a)
    return rest, werror, suppressed


def _parse_defines(pairs: list[str]) -> dict[str, int]:
    defines: dict[str, int] = {}
    for d in pairs:
        if "=" in d:
            name, value = d.split("=", 1)
            defines[name] = int(value, 0)
        else:
            defines[d] = 1
    return defines


def build_arg_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="ncc", description="NetCL compiler: C/C++ kernels -> P4"
    )
    p.add_argument("source", help="NetCL source file (.ncl)")
    p.add_argument("--device", type=int, default=None, help="device id to compile for")
    p.add_argument("--target", choices=("tna", "v1model"), default="tna")
    p.add_argument("-o", "--output", help="write generated P4 here")
    p.add_argument("-D", "--define", action="append", default=[], metavar="NAME=VALUE")
    p.add_argument("--no-speculation", action="store_true", help="disable speculation (§VI-B)")
    p.add_argument("--no-duplication", action="store_true", help="disable lookup duplication")
    p.add_argument("--no-partitioning", action="store_true", help="disable memory partitioning")
    p.add_argument("--no-intrinsics", action="store_true", help="disable intrinsic conversion")
    p.add_argument("--hash-bitcasts", action="store_true", help="place bitcasts on hash engines")
    p.add_argument("--no-fit", action="store_true", help="skip the Tofino fitter")
    p.add_argument("--report", action="store_true", help="print the resource report")
    p.add_argument("--dump-ir", action="store_true", help="print the optimized IR")
    p.add_argument(
        "--lint",
        action="store_true",
        help="also run the static-analysis phase and print warnings",
    )
    p.add_argument(
        "--verify-passes",
        action="store_true",
        help="translation validation: differentially execute each kernel "
        "after every middle-end pass against its pre-pipeline behavior",
    )
    p.add_argument(
        "--profile",
        action="store_true",
        help="print a per-phase / per-pass compile-time breakdown",
    )
    p.add_argument(
        "--profile-json",
        metavar="PATH",
        help="write the compile profile as a JSON report (implies --profile timing)",
    )
    return p


def build_lint_arg_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="ncc lint",
        description="NetCL static analysis: dataflow lints, cross-kernel "
        "hazards, and pre-fitter resource estimation",
    )
    p.add_argument("source", help="NetCL source file (.ncl)")
    p.add_argument("--device", type=int, default=None, help="device id to analyze for")
    p.add_argument("--target", choices=("tna", "v1model"), default="tna")
    p.add_argument("-D", "--define", action="append", default=[], metavar="NAME=VALUE")
    p.add_argument("--json", action="store_true", help="emit diagnostics as JSON")
    p.add_argument(
        "--no-deep",
        action="store_true",
        help="skip the pipeline-backed checks (memory constraints)",
    )
    return p


def build_verify_arg_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="ncc verify",
        description="Translation validation: run the full middle-end and "
        "prove every pass behavior-preserving by differential concrete "
        "execution on boundary-mined + random input vectors",
    )
    p.add_argument("source", help="NetCL source file (.ncl)")
    p.add_argument("--device", type=int, default=None, help="device id to verify for")
    p.add_argument("--target", choices=("tna", "v1model"), default="tna")
    p.add_argument("-D", "--define", action="append", default=[], metavar="NAME=VALUE")
    p.add_argument("--json", action="store_true", help="emit the validation report as JSON")
    return p


def verify_main(argv: list[str]) -> int:
    import json

    from repro.analysis.estimate import estimate_devices
    from repro.analysis.tvalid import TranslationValidationError
    from repro.lang import analyze, lower_to_ir, parse_source
    from repro.passes.manager import PassManager

    args = build_verify_arg_parser().parse_args(argv)
    try:
        source = Path(args.source).read_text()
    except OSError as exc:
        print(f"ncc: error: {exc}", file=sys.stderr)
        return 1
    defines = _parse_defines(args.define) or None
    name = Path(args.source).stem

    try:
        module = lower_to_ir(analyze(parse_source(source, defines)), name=name)
    except CompileError as exc:
        print(f"ncc: error: {exc}", file=sys.stderr)
        return 1
    devices = [args.device] if args.device is not None else estimate_devices(module)

    report: dict = {"source": args.source, "target": args.target, "devices": []}
    failure: TranslationValidationError | None = None
    for dev in devices:
        module2 = lower_to_ir(analyze(parse_source(source, defines)), name=name)
        pm = PassManager(PassOptions(target=args.target, verify_passes=True))
        try:
            pm.run_pipeline(module2, dev)
        except TranslationValidationError as exc:
            failure = exc
            entry = {"device": dev, "status": "miscompile", **exc.to_json_dict()}
        except (CompileError, MemoryCheckError) as exc:
            entry = {"device": dev, "status": "compile-error", "error": str(exc)}
        else:
            entry = {"device": dev, "status": "ok"}
            if pm.validator is not None:
                entry.update(pm.validator.report())
        report["devices"].append(entry)
        if failure is not None:
            break

    report["status"] = "miscompile" if failure is not None else "ok"
    if args.json:
        print(json.dumps(report, indent=2))
    elif failure is not None:
        print(f"ncc verify: FAIL: {failure}", file=sys.stderr)
    else:
        checks = sum(
            len(d.get("checks", ())) for d in report["devices"] if isinstance(d, dict)
        )
        kernels = sorted(
            {k for d in report["devices"] for k in d.get("kernels", ())}
        )
        print(
            f"ncc verify: OK: {checks} pass checks across "
            f"{len(report['devices'])} device(s), kernels: {', '.join(kernels) or '-'}"
        )
    return 1 if failure is not None else 0


def lint_main(argv: list[str], *, werror: bool, suppressed: list[str]) -> int:
    from repro.analysis import DiagnosticEngine, lint_source
    from repro.tofino.chip import TOFINO_1, V1MODEL

    args = build_lint_arg_parser().parse_args(argv)
    try:
        source = Path(args.source).read_text()
    except OSError as exc:
        print(f"ncc: error: {exc}", file=sys.stderr)
        return 1
    engine = DiagnosticEngine(
        werror=werror, suppressed=suppressed, source_name=args.source
    )
    lint_source(
        source,
        engine=engine,
        device_id=args.device,
        target=args.target,
        chip=TOFINO_1 if args.target == "tna" else V1MODEL,
        defines=_parse_defines(args.define) or None,
        program_name=Path(args.source).stem,
        deep=not args.no_deep,
    )
    if args.json:
        print(engine.to_json())
    elif engine.diagnostics:
        print(engine.render_text(), file=sys.stderr)
    return engine.exit_code


def main(argv: list[str] | None = None) -> int:
    raw = list(sys.argv[1:] if argv is None else argv)
    raw, werror, suppressed = _extract_warning_flags(raw)
    if raw and raw[0] == "lint":
        return lint_main(raw[1:], werror=werror, suppressed=suppressed)
    if raw and raw[0] == "verify":
        return verify_main(raw[1:])

    args = build_arg_parser().parse_args(raw)
    defines = _parse_defines(args.define)
    options = PassOptions(
        target=args.target,
        speculation=not args.no_speculation,
        lookup_duplication=not args.no_duplication,
        memory_partitioning=not args.no_partitioning,
        intrinsic_conversion=not args.no_intrinsics,
        hash_bitcasts=args.hash_bitcasts,
        verify_passes=args.verify_passes,
    )
    profiling = args.profile or args.profile_json
    profiler = Profiler() if profiling else None
    diagnostics = None
    if args.lint:
        from repro.analysis import DiagnosticEngine

        diagnostics = DiagnosticEngine(
            werror=werror, suppressed=suppressed, source_name=args.source
        )
    try:
        compiled = compile_netcl_file(
            args.source,
            args.device,
            target=args.target,
            options=options,
            defines=defines or None,
            fit=not args.no_fit,
            profiler=profiler,
            lint=args.lint,
            diagnostics=diagnostics,
        )
    except (CompileError, MemoryCheckError, FitError) as exc:
        print(f"ncc: error: {exc}", file=sys.stderr)
        return 1
    except TranslationValidationError as exc:
        print(f"ncc: error: translation validation failed: {exc}", file=sys.stderr)
        return 1

    if diagnostics is not None and diagnostics.diagnostics:
        print(diagnostics.render_text(), file=sys.stderr)

    if args.output:
        Path(args.output).write_text(compiled.p4_source)
        print(f"wrote {args.output}")
    else:
        sys.stdout.write(compiled.p4_source)

    if args.dump_ir:
        print(compiled.module.dump())

    if args.report and compiled.report is not None:
        row = compiled.report.row()
        print("\n-- resource report " + "-" * 40, file=sys.stderr)
        for k, v in row.items():
            print(f"  {k:>16}: {v}", file=sys.stderr)
        t = compiled.timings
        print(
            f"  ncc {t.ncc_seconds * 1000:.1f} ms + fitter "
            f"{t.fitter_seconds * 1000:.1f} ms",
            file=sys.stderr,
        )

    if profiling:
        print(render_profile_text(compiled.profile), file=sys.stderr)
        if args.profile_json:
            path = write_profile_json(args.profile_json, compiled.profile)
            print(f"wrote profile to {path}", file=sys.stderr)

    if diagnostics is not None and diagnostics.exit_code:
        return diagnostics.exit_code
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
