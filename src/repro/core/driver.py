"""Compiler driver: source in, compiled program out (§III workflow, step 1).

The timing split mirrors Table IV: ``ncc_seconds`` covers everything our
compiler does (frontend, middle-end, code generation), while
``fitter_seconds`` covers the stand-in for Intel's bf-p4c (stage fitting,
PHV allocation, latency extraction), which in the paper dominates at over
98% of total compile time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.diagnostics import DiagnosticEngine

from repro.backends.common import CodegenResult
from repro.backends.tna import TnaBackend
from repro.backends.v1model import V1ModelBackend
from repro.ir.module import Module
from repro.ir.verifier import verify_module
from repro.lang.lower import lower_to_ir
from repro.lang.parser import parse_source
from repro.lang.sema import analyze
from repro.passes.manager import PassManager, PassOptions
from repro.telemetry.profile import NULL_PROFILER, Profiler
from repro.tofino.chip import ChipSpec, TOFINO_1, V1MODEL


@dataclass
class CompileTimings:
    frontend_seconds: float = 0.0
    passes_seconds: float = 0.0
    codegen_seconds: float = 0.0
    fitter_seconds: float = 0.0

    @property
    def ncc_seconds(self) -> float:
        return self.frontend_seconds + self.passes_seconds + self.codegen_seconds

    @property
    def total_seconds(self) -> float:
        return self.ncc_seconds + self.fitter_seconds


@dataclass
class CompiledProgram:
    """The result of compiling one NetCL program for one device."""

    source: str
    device_id: Optional[int]
    target: str
    module: Module
    codegen: CodegenResult
    timings: CompileTimings
    options: PassOptions
    #: the telemetry profiler this compile reported into (``ncc --profile``);
    #: the shared disabled instance unless the caller passed one.
    profile: Profiler = NULL_PROFILER
    #: the diagnostics engine of the opt-in analysis phase (``ncc --lint``);
    #: None unless ``compile_netcl(..., lint=True)`` was requested.
    diagnostics: Optional["DiagnosticEngine"] = None

    @property
    def p4_source(self) -> str:
        return self.codegen.p4_source

    @property
    def report(self):
        return self.codegen.report

    def kernels(self):
        return self.codegen.kernels


def compile_netcl(
    source: str,
    device_id: Optional[int] = None,
    *,
    target: str = "tna",
    options: Optional[PassOptions] = None,
    chip: Optional[ChipSpec] = None,
    defines: Optional[dict[str, int]] = None,
    fit: bool = True,
    include_base_program: bool = True,
    program_name: str = "netcl",
    profiler: Optional[Profiler] = None,
    lint: bool = False,
    diagnostics: Optional["DiagnosticEngine"] = None,
) -> CompiledProgram:
    """Compile NetCL source text for one device.

    Pass an enabled :class:`~repro.telemetry.Profiler` to record phase
    and per-pass spans (``ncc --profile``); by default profiling is the
    shared disabled instance and costs nothing beyond the phase timers.

    With ``lint=True`` an opt-in static-analysis phase runs on the
    freshly-lowered IR (before the optimizer mutates it), collecting
    warnings into ``diagnostics`` (a fresh engine is created when none is
    given); the result is attached as ``CompiledProgram.diagnostics``.
    Analysis never aborts the compile — check the engine's ``exit_code``.

    Raises :class:`repro.lang.errors.CompileError` on language violations,
    :class:`repro.passes.memcheck.MemoryCheckError` on Tofino memory
    constraint violations, and :class:`repro.tofino.allocator.FitError`
    when the program does not fit the pipeline.
    """
    opts = options or PassOptions(target=target)
    opts.target = target
    prof = profiler or NULL_PROFILER
    timings = CompileTimings()

    t0 = time.perf_counter()
    with prof.span("frontend", category="phase", program=program_name):
        program = parse_source(source, defines)
        sema = analyze(program)
        module = lower_to_ir(sema, name=program_name)
        verify_module(module)
    timings.frontend_seconds = time.perf_counter() - t0

    engine = diagnostics
    if lint or engine is not None:
        from repro.analysis import DiagnosticEngine, run_lints

        engine = engine or DiagnosticEngine(source_name=program_name)
        with prof.span("analysis", category="phase", program=program_name):
            run_lints(module, engine, chip or (TOFINO_1 if target == "tna" else V1MODEL))

    t0 = time.perf_counter()
    with prof.span("passes", category="phase"):
        pm = PassManager(opts, profiler=prof)
        pm.run_pipeline(module, device_id)
    timings.passes_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    with prof.span("codegen", category="phase", target=target):
        if target == "tna":
            backend = TnaBackend(chip or TOFINO_1)
        elif target == "v1model":
            backend = V1ModelBackend(chip or V1MODEL)
        else:
            raise ValueError(f"unknown target {target!r} (expected 'tna' or 'v1model')")
        # Code generation proper (structurize + P4 text) is ncc work; fitting
        # is the downstream P4 compiler's.
        result = backend.compile(
            module,
            device_id,
            fit=False,
            include_base_program=include_base_program,
            program_name=program_name,
        )
    timings.codegen_seconds = time.perf_counter() - t0

    if fit:
        t0 = time.perf_counter()
        with prof.span("fitter", category="phase"):
            from repro.tofino.report import build_report

            local_fields = [
                getattr(s, "p4_local_bits", 0) for s in result.kernel_stats.values()
            ]
            result.report = build_report(
                result.spec, backend.chip, local_fields=local_fields
            )
        timings.fitter_seconds = time.perf_counter() - t0

    return CompiledProgram(
        source=source,
        device_id=device_id,
        target=target,
        module=module,
        codegen=result,
        timings=timings,
        options=opts,
        profile=prof,
        diagnostics=engine,
    )


def compile_netcl_file(
    path: str | Path, device_id: Optional[int] = None, **kwargs
) -> CompiledProgram:
    """Compile a ``.ncl`` source file (see :mod:`repro.apps` for the
    paper's applications)."""
    text = Path(path).read_text()
    kwargs.setdefault("program_name", Path(path).stem)
    return compile_netcl(text, device_id, **kwargs)
