"""Application deployment — Fig. 3 step 3, the paper's future work (§VIII).

The NetCL workflow ends with "the assumed (abstract) topology gets mapped
to the real network, via a deployment system managed by the network
operator".  The paper implements steps 1-2 (compiler, runtimes) and
leaves deployment open; this package provides a working planner:

* :class:`AbstractTopology` — what the *programmer* assumed: device ids,
  which hosts talk through which device, device-device edges, multicast
  groups (§IV: "the abstract topology captures the INC traffic patterns
  of an application and can later be used to drive deployment");
* :class:`PhysicalFabric` — what the *operator* has: switches with
  per-switch resource headroom, hosts, links;
* :class:`DeploymentPlanner` — assigns abstract devices to physical
  switches such that every program fits its switch's remaining resources
  (§VIII: "switches with enough available resources in the base program to
  fit the NetCL code") and hosts sit close to their devices, then
  instantiates device runtimes and multicast groups on a netsim network.
"""

from repro.deploy.planner import (
    AbstractTopology,
    DeploymentError,
    DeploymentPlan,
    DeploymentPlanner,
    PhysicalFabric,
    PhysicalSwitch,
    PlacementBreakdown,
    SwitchResidual,
)

__all__ = [
    "AbstractTopology",
    "DeploymentError",
    "DeploymentPlan",
    "DeploymentPlanner",
    "PhysicalFabric",
    "PhysicalSwitch",
    "PlacementBreakdown",
    "SwitchResidual",
]
