"""The deployment planner: abstract topology -> physical fabric."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional

import networkx as nx

from repro.core.driver import CompiledProgram
from repro.netsim import DEVICE, HOST, Link, Network, NodeKey
from repro.runtime.device import NetCLDevice


class DeploymentError(Exception):
    """Placement failed.

    When the failure is resource-driven the error carries a
    :class:`PlacementBreakdown` in :attr:`breakdown`: the demand of the
    abstract device that could not be placed and, per physical switch,
    the residual headroom plus the specific reason that switch was
    rejected (stages/SRAM/SALU shortfall, occupancy, reachability).
    The service admission path (``repro.service``) surfaces this to the
    tenant so a reject names the binding resource instead of a bare
    "does not fit".
    """

    def __init__(self, message: str, *, breakdown: Optional["PlacementBreakdown"] = None):
        super().__init__(message)
        self.breakdown = breakdown


@dataclass
class SwitchResidual:
    """One switch's remaining headroom and why it was rejected."""

    switch_id: int
    free_stages: float
    free_sram_pct: float
    free_salu_pct: float
    reason: str

    def to_dict(self) -> dict:
        return {
            "switch": self.switch_id,
            "free_stages": self.free_stages,
            "free_sram_pct": round(self.free_sram_pct, 2),
            "free_salu_pct": round(self.free_salu_pct, 2),
            "reason": self.reason,
        }


@dataclass
class PlacementBreakdown:
    """Which device could not be placed, what it needed, and the
    per-switch residual that made every candidate infeasible."""

    device: int
    need_stages: int
    need_sram_pct: float
    need_salu_pct: float
    switches: list[SwitchResidual] = field(default_factory=list)

    def render(self) -> str:
        lines = [
            f"abstract device {self.device} needs {self.need_stages} stages, "
            f"{self.need_sram_pct:.1f}% SRAM, {self.need_salu_pct:.1f}% SALUs; "
            "per-switch residual:"
        ]
        for sw in self.switches:
            lines.append(
                f"  switch {sw.switch_id}: {sw.free_stages:g} stages, "
                f"{sw.free_sram_pct:.1f}% SRAM, {sw.free_salu_pct:.1f}% SALUs "
                f"free -- {sw.reason}"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "device": self.device,
            "need": {
                "stages": self.need_stages,
                "sram_pct": round(self.need_sram_pct, 2),
                "salu_pct": round(self.need_salu_pct, 2),
            },
            "switches": [sw.to_dict() for sw in self.switches],
        }


def fit_reason(
    need_stages: float, need_sram_pct: float, need_salu_pct: float, free: list
) -> Optional[str]:
    """Why ``free`` = [stages, sram_pct, salu_pct] cannot host the demand
    (None when it fits) — names the binding resource and the shortfall."""
    if need_stages > free[0]:
        return f"stages {free[0]:g} < {need_stages:g}"
    if need_sram_pct > free[1]:
        return f"SRAM {free[1]:.1f}% < {need_sram_pct:.1f}%"
    if need_salu_pct > free[2]:
        return f"SALUs {free[2]:.1f}% < {need_salu_pct:.1f}%"
    return None


@dataclass
class AbstractTopology:
    """The topology the NetCL program was written against (§IV, Fig. 5c)."""

    #: abstract device id -> compiled program for that device
    programs: dict[int, CompiledProgram] = field(default_factory=dict)
    #: host id -> abstract device the host's traffic enters through
    host_attachments: dict[int, int] = field(default_factory=dict)
    #: device-device edges the computation steers messages along
    device_edges: list[tuple[int, int]] = field(default_factory=list)
    #: multicast group id -> member node keys ("h"/"d", id)
    multicast_groups: dict[int, list[NodeKey]] = field(default_factory=dict)

    def add_device(self, device_id: int, compiled: CompiledProgram) -> None:
        self.programs[device_id] = compiled

    def attach_host(self, host_id: int, device_id: int) -> None:
        prev = self.host_attachments.get(host_id)
        if prev is not None and prev != device_id:
            raise ValueError(
                f"host {host_id} is already attached to abstract device "
                f"{prev}; cannot also attach it to {device_id}"
            )
        self.host_attachments[host_id] = device_id

    def connect_devices(self, a: int, b: int) -> None:
        self.device_edges.append((a, b))

    def add_multicast_group(self, gid: int, members: list[NodeKey]) -> None:
        self.multicast_groups[gid] = list(members)


@dataclass
class PhysicalSwitch:
    """One operator-owned switch and its remaining headroom.

    ``free_stages`` models "enough available resources in the base program
    to fit the NetCL code" (§VIII): the operator's existing program already
    occupies part of the pipe.
    """

    switch_id: int
    free_stages: int = 12
    free_sram_pct: float = 100.0
    free_salu_pct: float = 100.0


#: the kwargs ``PhysicalFabric.add_switch`` accepts (everything on
#: PhysicalSwitch except its identity).
_HEADROOM_FIELDS = frozenset(
    f.name for f in dataclasses.fields(PhysicalSwitch)
) - {"switch_id"}


@dataclass
class PhysicalFabric:
    """The real network: switches, hosts, and links between them."""

    switches: dict[int, PhysicalSwitch] = field(default_factory=dict)
    hosts: list[int] = field(default_factory=list)
    links: list[tuple[NodeKey, NodeKey]] = field(default_factory=list)

    def add_switch(self, switch_id: int, **headroom) -> PhysicalSwitch:
        unknown = sorted(set(headroom) - _HEADROOM_FIELDS)
        if unknown:
            raise TypeError(
                f"add_switch() got unknown headroom key "
                f"{unknown[0]!r}; valid keys: {sorted(_HEADROOM_FIELDS)}"
            )
        if switch_id in self.switches:
            raise ValueError(f"switch {switch_id} is already in the fabric")
        sw = PhysicalSwitch(switch_id, **headroom)
        self.switches[switch_id] = sw
        return sw

    def add_host(self, host_id: int) -> None:
        self.hosts.append(host_id)

    def link(self, a: NodeKey, b: NodeKey) -> None:
        self.links.append((a, b))

    def graph(self) -> nx.Graph:
        g = nx.Graph()
        for sid in self.switches:
            g.add_node(DEVICE(sid))
        for hid in self.hosts:
            g.add_node(HOST(hid))
        g.add_edges_from(self.links)
        return g


@dataclass
class DeploymentPlan:
    """abstract device id -> physical switch id, plus the live network."""

    assignment: dict[int, int]
    network: Network
    devices: dict[int, NetCLDevice]

    def physical_for(self, abstract_device: int) -> int:
        return self.assignment[abstract_device]


class DeploymentPlanner:
    """Greedy resource-aware placement.

    Abstract devices are placed most-demanding-first; each goes to the
    physical switch with enough free stages/SRAM/SALUs that minimizes the
    total distance to the hosts and already-placed devices it talks to.
    """

    def __init__(self, fabric: PhysicalFabric) -> None:
        self.fabric = fabric

    # -- planning -------------------------------------------------------------
    def plan(self, topology: AbstractTopology) -> dict[int, int]:
        graph = self.fabric.graph()
        for host_id in topology.host_attachments:
            if HOST(host_id) not in graph:
                raise DeploymentError(f"host {host_id} is not in the fabric")
        demands = {}
        for dev_id, cp in topology.programs.items():
            if cp.report is None:
                raise DeploymentError(
                    f"abstract device {dev_id}: program was not fitted; "
                    "compile with fit=True first"
                )
            demands[dev_id] = cp.report

        paths = dict(nx.all_pairs_shortest_path_length(graph))
        for host_id in topology.host_attachments:
            reach = paths.get(HOST(host_id), {})
            if not any(DEVICE(sid) in reach for sid in self.fabric.switches):
                raise DeploymentError(
                    f"host {host_id} cannot reach any switch "
                    "(disconnected fabric)"
                )

        order = sorted(demands, key=lambda d: -demands[d].stages_used)
        assignment: dict[int, int] = {}
        headroom = {
            sid: [sw.free_stages, sw.free_sram_pct, sw.free_salu_pct]
            for sid, sw in self.fabric.switches.items()
        }

        for dev_id in order:
            report = demands[dev_id]
            neighbors: list[NodeKey] = [
                HOST(h) for h, d in topology.host_attachments.items() if d == dev_id
            ]
            for a, b in topology.device_edges:
                if a == dev_id and b in assignment:
                    neighbors.append(DEVICE(assignment[b]))
                if b == dev_id and a in assignment:
                    neighbors.append(DEVICE(assignment[a]))

            best: Optional[tuple[float, int]] = None
            rejects: list[SwitchResidual] = []

            def reject(sid: int, free: list, reason: str) -> None:
                rejects.append(SwitchResidual(sid, free[0], free[1], free[2], reason))

            for sid, free in headroom.items():
                if sid in assignment.values():
                    # one NetCL program per switch in this planner
                    reject(sid, free, "holds another device of this topology")
                    continue
                reason = fit_reason(
                    report.stages_used, report.sram_pct, report.salus_pct, free
                )
                if reason is not None:
                    reject(sid, free, reason)
                    continue
                key = DEVICE(sid)
                dist = 0
                unreachable: Optional[NodeKey] = None
                for n in neighbors:
                    hop = paths.get(key, {}).get(n)
                    if hop is None:
                        unreachable = n
                        break
                    dist += hop
                if unreachable is not None:
                    kind, ident = unreachable
                    reject(
                        sid, free,
                        f"unreachable from {'host' if kind == 'h' else 'device'} "
                        f"{ident} (disconnected fabric)",
                    )
                    continue
                if best is None or dist < best[0]:
                    best = (dist, sid)
            if best is None:
                breakdown = PlacementBreakdown(
                    device=dev_id,
                    need_stages=report.stages_used,
                    need_sram_pct=report.sram_pct,
                    need_salu_pct=report.salus_pct,
                    switches=rejects,
                )
                raise DeploymentError(
                    f"no physical switch has room for abstract device "
                    f"{dev_id} ({report.stages_used} stages, "
                    f"{report.sram_pct:.1f}% SRAM, {report.salus_pct:.1f}% SALUs)\n"
                    + breakdown.render(),
                    breakdown=breakdown,
                )
            sid = best[1]
            assignment[dev_id] = sid
            headroom[sid][0] -= report.stages_used
            headroom[sid][1] -= report.sram_pct
            headroom[sid][2] -= report.salus_pct
        return assignment

    # -- instantiation ------------------------------------------------------------
    def deploy(
        self,
        topology: AbstractTopology,
        *,
        link: Optional[Link] = None,
        seed: int = 1,
    ) -> DeploymentPlan:
        """Plan, then build a live netsim network with device runtimes on
        the chosen switches and the multicast groups configured."""
        assignment = self.plan(topology)
        physical_to_abstract = {p: a for a, p in assignment.items()}

        net = Network(seed=seed)
        devices: dict[int, NetCLDevice] = {}
        for sid in self.fabric.switches:
            abstract = physical_to_abstract.get(sid)
            if abstract is not None:
                cp = topology.programs[abstract]
                # The runtime keeps the *abstract* device id: kernels were
                # compiled against it (device.id, send_to_device targets).
                dev = NetCLDevice(abstract, cp.module, cp.kernels())
                proc = int(cp.report.latency.total_ns) if cp.report else 400
            else:
                # A plain transit switch: base program only.
                from repro.ir.module import Module

                dev = NetCLDevice(10_000 + sid, Module(f"transit{sid}"), [])
                proc = 350
            devices[dev.device_id] = dev
            net.add_switch(dev, processing_ns=proc)

        for hid in self.fabric.hosts:
            net.add_host(hid)

        def to_net_key(node: NodeKey) -> NodeKey:
            kind, ident = node
            if kind == "h":
                return node
            abstract = physical_to_abstract.get(ident)
            return DEVICE(abstract if abstract is not None else 10_000 + ident)

        for a, b in self.fabric.links:
            net.link(to_net_key(a), to_net_key(b), link or Link())

        for gid, members in topology.multicast_groups.items():
            net.add_multicast_group(gid, list(members))
        return DeploymentPlan(assignment, net, devices)
