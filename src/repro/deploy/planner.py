"""The deployment planner: abstract topology -> physical fabric."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import networkx as nx

from repro.core.driver import CompiledProgram
from repro.netsim import DEVICE, HOST, Link, Network, NodeKey
from repro.runtime.device import NetCLDevice


class DeploymentError(Exception):
    pass


@dataclass
class AbstractTopology:
    """The topology the NetCL program was written against (§IV, Fig. 5c)."""

    #: abstract device id -> compiled program for that device
    programs: dict[int, CompiledProgram] = field(default_factory=dict)
    #: host id -> abstract device the host's traffic enters through
    host_attachments: dict[int, int] = field(default_factory=dict)
    #: device-device edges the computation steers messages along
    device_edges: list[tuple[int, int]] = field(default_factory=list)
    #: multicast group id -> member node keys ("h"/"d", id)
    multicast_groups: dict[int, list[NodeKey]] = field(default_factory=dict)

    def add_device(self, device_id: int, compiled: CompiledProgram) -> None:
        self.programs[device_id] = compiled

    def attach_host(self, host_id: int, device_id: int) -> None:
        self.host_attachments[host_id] = device_id

    def connect_devices(self, a: int, b: int) -> None:
        self.device_edges.append((a, b))

    def add_multicast_group(self, gid: int, members: list[NodeKey]) -> None:
        self.multicast_groups[gid] = list(members)


@dataclass
class PhysicalSwitch:
    """One operator-owned switch and its remaining headroom.

    ``free_stages`` models "enough available resources in the base program
    to fit the NetCL code" (§VIII): the operator's existing program already
    occupies part of the pipe.
    """

    switch_id: int
    free_stages: int = 12
    free_sram_pct: float = 100.0
    free_salu_pct: float = 100.0


@dataclass
class PhysicalFabric:
    """The real network: switches, hosts, and links between them."""

    switches: dict[int, PhysicalSwitch] = field(default_factory=dict)
    hosts: list[int] = field(default_factory=list)
    links: list[tuple[NodeKey, NodeKey]] = field(default_factory=list)

    def add_switch(self, switch_id: int, **headroom) -> PhysicalSwitch:
        sw = PhysicalSwitch(switch_id, **headroom)
        self.switches[switch_id] = sw
        return sw

    def add_host(self, host_id: int) -> None:
        self.hosts.append(host_id)

    def link(self, a: NodeKey, b: NodeKey) -> None:
        self.links.append((a, b))

    def graph(self) -> nx.Graph:
        g = nx.Graph()
        for sid in self.switches:
            g.add_node(DEVICE(sid))
        for hid in self.hosts:
            g.add_node(HOST(hid))
        g.add_edges_from(self.links)
        return g


@dataclass
class DeploymentPlan:
    """abstract device id -> physical switch id, plus the live network."""

    assignment: dict[int, int]
    network: Network
    devices: dict[int, NetCLDevice]

    def physical_for(self, abstract_device: int) -> int:
        return self.assignment[abstract_device]


class DeploymentPlanner:
    """Greedy resource-aware placement.

    Abstract devices are placed most-demanding-first; each goes to the
    physical switch with enough free stages/SRAM/SALUs that minimizes the
    total distance to the hosts and already-placed devices it talks to.
    """

    def __init__(self, fabric: PhysicalFabric) -> None:
        self.fabric = fabric

    # -- planning -------------------------------------------------------------
    def plan(self, topology: AbstractTopology) -> dict[int, int]:
        graph = self.fabric.graph()
        for host_id in topology.host_attachments:
            if HOST(host_id) not in graph:
                raise DeploymentError(f"host {host_id} is not in the fabric")
        demands = {}
        for dev_id, cp in topology.programs.items():
            if cp.report is None:
                raise DeploymentError(
                    f"abstract device {dev_id}: program was not fitted; "
                    "compile with fit=True first"
                )
            demands[dev_id] = cp.report

        order = sorted(demands, key=lambda d: -demands[d].stages_used)
        assignment: dict[int, int] = {}
        headroom = {
            sid: [sw.free_stages, sw.free_sram_pct, sw.free_salu_pct]
            for sid, sw in self.fabric.switches.items()
        }
        paths = dict(nx.all_pairs_shortest_path_length(graph))

        for dev_id in order:
            report = demands[dev_id]
            neighbors: list[NodeKey] = [
                HOST(h) for h, d in topology.host_attachments.items() if d == dev_id
            ]
            for a, b in topology.device_edges:
                if a == dev_id and b in assignment:
                    neighbors.append(DEVICE(assignment[b]))
                if b == dev_id and a in assignment:
                    neighbors.append(DEVICE(assignment[a]))

            best: Optional[tuple[float, int]] = None
            for sid, free in headroom.items():
                if sid in assignment.values():
                    continue  # one NetCL program per switch in this planner
                if (
                    report.stages_used > free[0]
                    or report.sram_pct > free[1]
                    or report.salus_pct > free[2]
                ):
                    continue
                key = DEVICE(sid)
                dist = sum(paths.get(key, {}).get(n, 1_000) for n in neighbors)
                if best is None or dist < best[0]:
                    best = (dist, sid)
            if best is None:
                raise DeploymentError(
                    f"no physical switch has room for abstract device "
                    f"{dev_id} ({report.stages_used} stages, "
                    f"{report.sram_pct:.1f}% SRAM, {report.salus_pct:.1f}% SALUs)"
                )
            sid = best[1]
            assignment[dev_id] = sid
            headroom[sid][0] -= report.stages_used
            headroom[sid][1] -= report.sram_pct
            headroom[sid][2] -= report.salus_pct
        return assignment

    # -- instantiation ------------------------------------------------------------
    def deploy(
        self,
        topology: AbstractTopology,
        *,
        link: Optional[Link] = None,
        seed: int = 1,
    ) -> DeploymentPlan:
        """Plan, then build a live netsim network with device runtimes on
        the chosen switches and the multicast groups configured."""
        assignment = self.plan(topology)
        physical_to_abstract = {p: a for a, p in assignment.items()}

        net = Network(seed=seed)
        devices: dict[int, NetCLDevice] = {}
        for sid in self.fabric.switches:
            abstract = physical_to_abstract.get(sid)
            if abstract is not None:
                cp = topology.programs[abstract]
                # The runtime keeps the *abstract* device id: kernels were
                # compiled against it (device.id, send_to_device targets).
                dev = NetCLDevice(abstract, cp.module, cp.kernels())
                proc = int(cp.report.latency.total_ns) if cp.report else 400
            else:
                # A plain transit switch: base program only.
                from repro.ir.module import Module

                dev = NetCLDevice(10_000 + sid, Module(f"transit{sid}"), [])
                proc = 350
            devices[dev.device_id] = dev
            net.add_switch(dev, processing_ns=proc)

        for hid in self.fabric.hosts:
            net.add_host(hid)

        def to_net_key(node: NodeKey) -> NodeKey:
            kind, ident = node
            if kind == "h":
                return node
            abstract = physical_to_abstract.get(ident)
            return DEVICE(abstract if abstract is not None else 10_000 + ident)

        for a, b in self.fabric.links:
            net.link(to_net_key(a), to_net_key(b), link or Link())

        for gid, members in topology.multicast_groups.items():
            net.add_multicast_group(gid, list(members))
        return DeploymentPlan(assignment, net, devices)
