"""Hash functions exposed by the NetCL device library (``ncl::crc16`` etc.).

These back both the IR interpreter (device-side execution) and host-side
tooling.  They are table-driven CRC implementations with the standard
polynomials hardware hash engines implement, so the same key always maps to
the same index on the "device" and in host-side unit tests.
"""

from __future__ import annotations

import functools


def _int_to_bytes(value: int, width_bits: int) -> bytes:
    nbytes = max(1, (width_bits + 7) // 8)
    return int(value).to_bytes(nbytes, "big")


@functools.lru_cache(maxsize=None)
def _crc_table(poly: int, width: int) -> tuple[int, ...]:
    top = 1 << (width - 1)
    mask = (1 << width) - 1
    table = []
    for byte in range(256):
        crc = byte << (width - 8)
        for _ in range(8):
            crc = ((crc << 1) ^ poly) if crc & top else (crc << 1)
        table.append(crc & mask)
    return tuple(table)


def _crc(data: bytes, poly: int, width: int, init: int, xor_out: int, reflect: bool) -> int:
    # Non-reflected, MSB-first CRC; sufficient for index hashing where only
    # distribution quality matters.
    mask = (1 << width) - 1
    table = _crc_table(poly, width)
    crc = init & mask
    for b in data:
        crc = (table[((crc >> (width - 8)) ^ b) & 0xFF] ^ (crc << 8)) & mask
    return (crc ^ xor_out) & mask


def crc16(value: int, width_bits: int = 32) -> int:
    """CRC-16/CCITT of the key's big-endian bytes."""
    return _crc(_int_to_bytes(value, width_bits), 0x1021, 16, 0xFFFF, 0x0000, False)


def crc32(value: int, width_bits: int = 32) -> int:
    """CRC-32 (IEEE polynomial, non-reflected) of the key's bytes."""
    return _crc(_int_to_bytes(value, width_bits), 0x04C11DB7, 32, 0xFFFFFFFF, 0xFFFFFFFF, False)


def crc64(value: int, width_bits: int = 64) -> int:
    """CRC-64/ECMA of the key's bytes (exposed as a TNA intrinsic)."""
    return _crc(_int_to_bytes(value, width_bits), 0x42F0E1EBA9EA3693, 64, 0, 0, False)


def xor16(value: int, width_bits: int = 32) -> int:
    """Fold the key into 16 bits by XOR of its 16-bit words."""
    v = int(value) & ((1 << max(16, width_bits)) - 1)
    out = 0
    while v:
        out ^= v & 0xFFFF
        v >>= 16
    return out


def identity(value: int, width_bits: int = 32) -> int:
    return int(value) & ((1 << width_bits) - 1)


def truncate(value: int, out_bits: int) -> int:
    """Reduce a hash to ``out_bits`` (e.g. ``ncl::crc32<16>``)."""
    return int(value) & ((1 << out_bits) - 1)


#: Dispatch table keyed by NetCL builtin name.
HASH_FUNCTIONS = {
    "crc16": crc16,
    "crc32": crc32,
    "crc64": crc64,
    "xor16": xor16,
    "identity": identity,
}
