"""Width-typed, CFG-based intermediate representation for the NetCL compiler.

The IR plays the role LLVM IR plays in the paper: both host- and device-side
NetCL code are lowered onto it, homogenizing the meaning of types and
operations, and all middle-end passes (:mod:`repro.passes`) and backends
(:mod:`repro.backends`) operate on it.

Key differences from LLVM that reflect the NetCL/P4 setting:

* There is no addressable memory.  Storage is partitioned into *locals*
  (:class:`Alloca` slots, promoted to SSA by mem2reg), *message fields*
  (kernel arguments passed by reference — the P4 header stack), and
  *global device memory* (:class:`GlobalVar` — P4 ``Register`` objects or
  match-action tables for ``_lookup_`` memory).
* Functions terminate with a forwarding :class:`Action` (Table II of the
  paper) rather than a return value.
* The atomic instruction :class:`AtomicRMW` natively expresses the paper's
  conditional / saturating / value-returning forms so that a single Tofino
  SALU microprogram can implement each one.
"""

from repro.ir.types import (
    IntType,
    VoidType,
    ArrayShape,
    BOOL,
    U8,
    U16,
    U32,
    U64,
    I8,
    I16,
    I32,
    I64,
)
from repro.ir.module import Module, GlobalVar, Function, Argument, MemSpace
from repro.ir.blocks import BasicBlock
from repro.ir.instructions import (
    Instruction,
    Constant,
    Value,
    BinOp,
    ICmp,
    Select,
    Cast,
    Alloca,
    Load,
    Store,
    LoadMsg,
    StoreMsg,
    LoadGlobal,
    StoreGlobal,
    AtomicRMW,
    Lookup,
    LookupVal,
    Intrinsic,
    Phi,
    Br,
    Jmp,
    Ret,
    Action,
    ActionKind,
    SourceLoc,
)
from repro.ir.builder import IRBuilder
from repro.ir.verifier import verify_module, verify_function, IRVerifyError
from repro.ir.dominators import DominatorTree, reverse_postorder
from repro.ir.interp import IRInterpreter, GlobalState, KernelMessage

__all__ = [
    "IntType",
    "VoidType",
    "ArrayShape",
    "BOOL",
    "U8",
    "U16",
    "U32",
    "U64",
    "I8",
    "I16",
    "I32",
    "I64",
    "Module",
    "GlobalVar",
    "Function",
    "Argument",
    "MemSpace",
    "BasicBlock",
    "Instruction",
    "Constant",
    "Value",
    "BinOp",
    "ICmp",
    "Select",
    "SourceLoc",
    "Cast",
    "Alloca",
    "Load",
    "Store",
    "LoadMsg",
    "StoreMsg",
    "LoadGlobal",
    "StoreGlobal",
    "AtomicRMW",
    "Lookup",
    "LookupVal",
    "Intrinsic",
    "Phi",
    "Br",
    "Jmp",
    "Ret",
    "Action",
    "ActionKind",
    "IRBuilder",
    "verify_module",
    "verify_function",
    "IRVerifyError",
    "DominatorTree",
    "reverse_postorder",
    "IRInterpreter",
    "GlobalState",
    "KernelMessage",
]
