"""Basic blocks and CFG edges."""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Iterator, Optional

from repro.ir.instructions import Instruction, Phi, Terminator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ir.module import Function
_bb_counter = itertools.count()


class BasicBlock:
    """A straight-line instruction sequence ending in a terminator."""

    def __init__(self, name: str = "", parent: Optional["Function"] = None) -> None:
        self.name = name or f"bb{next(_bb_counter)}"
        self.parent = parent
        self.instructions: list[Instruction] = []

    # -- construction --------------------------------------------------------
    def append(self, inst: Instruction) -> Instruction:
        if self.is_terminated:
            raise ValueError(f"appending to terminated block {self.name}")
        inst.parent = self
        self.instructions.append(inst)
        return inst

    def insert(self, index: int, inst: Instruction) -> Instruction:
        inst.parent = self
        self.instructions.insert(index, inst)
        return inst

    def remove(self, inst: Instruction) -> None:
        self.instructions.remove(inst)
        inst.parent = None

    # -- structure -----------------------------------------------------------
    @property
    def terminator(self) -> Optional[Terminator]:
        if self.instructions and isinstance(self.instructions[-1], Terminator):
            return self.instructions[-1]
        return None

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    def successors(self) -> tuple["BasicBlock", ...]:
        term = self.terminator
        return term.successors() if term is not None else ()

    def predecessors(self) -> list["BasicBlock"]:
        if self.parent is None:
            return []
        return [b for b in self.parent.blocks if self in b.successors()]

    def phis(self) -> Iterator[Phi]:
        for inst in self.instructions:
            if isinstance(inst, Phi):
                yield inst
            else:
                break

    def non_phis(self) -> Iterator[Instruction]:
        for inst in self.instructions:
            if not isinstance(inst, Phi):
                yield inst

    def __repr__(self) -> str:
        return f"<BasicBlock {self.name} ({len(self.instructions)} insts)>"
