"""Convenience builder for emitting IR instruction streams."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.ir.blocks import BasicBlock
from repro.ir.instructions import (
    Action,
    ActionKind,
    Alloca,
    AtomicOp,
    AtomicRMW,
    BinOp,
    BinOpKind,
    Br,
    Call,
    Cast,
    CastKind,
    Constant,
    ICmp,
    ICmpPred,
    Instruction,
    Intrinsic,
    Jmp,
    Load,
    LoadGlobal,
    LoadMsg,
    Lookup,
    LookupVal,
    Phi,
    Ret,
    Select,
    SourceLoc,
    Store,
    StoreGlobal,
    StoreMsg,
    Value,
)
from repro.ir.module import Function, GlobalVar
from repro.ir.types import ArrayShape, IntType


class IRBuilder:
    """Appends instructions to a current insertion block.

    Mirrors ``llvm::IRBuilder``: frontend lowering and passes position the
    builder on a block and emit; every ``emit_*`` helper returns the created
    instruction so it can be used as an operand downstream.
    """

    def __init__(self, function: Function) -> None:
        self.function = function
        self.block: Optional[BasicBlock] = None
        self._loc: Optional[SourceLoc] = None

    def set_source_line(self, line: Optional[int], col: int = 0) -> None:
        """Stamp subsequently emitted instructions with a source location."""
        self._loc = None if line is None else SourceLoc(int(line), int(col))

    def set_loc(self, loc: Optional[SourceLoc]) -> None:
        self._loc = loc

    def position_at_end(self, block: BasicBlock) -> None:
        self.block = block

    def new_block(self, name: str = "") -> BasicBlock:
        return self.function.new_block(name)

    def _append(self, inst: Instruction) -> Instruction:
        if self.block is None:
            raise ValueError("builder has no insertion block")
        inst.loc = self._loc
        return self.block.append(inst)

    # -- arithmetic / logic ---------------------------------------------------
    def binop(self, kind: BinOpKind, a: Value, b: Value, name: str = "") -> Instruction:
        return self._append(BinOp(kind, a, b, name))

    def add(self, a: Value, b: Value, name: str = "") -> Instruction:
        return self.binop(BinOpKind.ADD, a, b, name)

    def sub(self, a: Value, b: Value, name: str = "") -> Instruction:
        return self.binop(BinOpKind.SUB, a, b, name)

    def icmp(self, pred: ICmpPred, a: Value, b: Value, name: str = "") -> Instruction:
        return self._append(ICmp(pred, a, b, name))

    def select(self, cond: Value, t: Value, f: Value, name: str = "") -> Instruction:
        return self._append(Select(cond, t, f, name))

    def cast(self, kind: CastKind, v: Value, to: IntType, name: str = "") -> Instruction:
        return self._append(Cast(kind, v, to, name))

    def coerce(self, v: Value, to: IntType, name: str = "") -> Value:
        """Insert the cast needed to view ``v`` as type ``to`` (if any)."""
        if v.type == to:
            return v
        assert isinstance(v.type, IntType)
        if isinstance(v, Constant):
            return Constant(to, v.value)
        if v.type.width == to.width:
            return self.cast(CastKind.BITCAST, v, to, name)
        if v.type.width < to.width:
            kind = CastKind.SEXT if v.type.signed else CastKind.ZEXT
            return self.cast(kind, v, to, name)
        return self.cast(CastKind.TRUNC, v, to, name)

    # -- locals ---------------------------------------------------------------
    def alloca(self, elem: IntType, shape: ArrayShape = ArrayShape(), name: str = "") -> Alloca:
        inst = Alloca(elem, shape, name)
        # Allocas live in the entry block so mem2reg sees a single decl point.
        entry = self.function.entry
        idx = 0
        while idx < len(entry.instructions) and isinstance(entry.instructions[idx], Alloca):
            idx += 1
        entry.insert(idx, inst)
        return inst

    def load(self, slot: Alloca, indices: Sequence[Value] = (), name: str = "") -> Instruction:
        return self._append(Load(slot, indices, name))

    def store(self, slot: Alloca, value: Value, indices: Sequence[Value] = ()) -> Instruction:
        return self._append(Store(slot, value, indices))

    # -- message fields ---------------------------------------------------------
    def load_msg(self, field: str, elem: IntType, index: Optional[Value] = None, name: str = "") -> Instruction:
        return self._append(LoadMsg(field, elem, index, name))

    def store_msg(self, field: str, value: Value, index: Optional[Value] = None) -> Instruction:
        return self._append(StoreMsg(field, value, index))

    # -- global memory ----------------------------------------------------------
    def load_global(self, gv: GlobalVar, indices: Sequence[Value] = (), name: str = "") -> Instruction:
        return self._append(LoadGlobal(gv, indices, name))

    def store_global(self, gv: GlobalVar, value: Value, indices: Sequence[Value] = ()) -> Instruction:
        return self._append(StoreGlobal(gv, value, indices))

    def atomic(
        self,
        op: AtomicOp,
        gv: GlobalVar,
        indices: Sequence[Value],
        operand: Optional[Value] = None,
        **kwargs,
    ) -> Instruction:
        return self._append(AtomicRMW(op, gv, indices, operand, **kwargs))

    def lookup(self, gv: GlobalVar, key: Value, name: str = "") -> Instruction:
        return self._append(Lookup(gv, key, name))

    def lookup_val(self, gv: GlobalVar, key: Value, default: Value, name: str = "") -> Instruction:
        return self._append(LookupVal(gv, key, default, name))

    # -- calls --------------------------------------------------------------------
    def intrinsic(self, callee: str, args: Sequence[Value], type_: IntType, name: str = "") -> Instruction:
        return self._append(Intrinsic(callee, args, type_, name))

    def call(self, callee: str, args: Sequence[Value], type_, name: str = "") -> Instruction:
        return self._append(Call(callee, args, type_, name))

    def phi(self, type_: IntType, name: str = "") -> Phi:
        node = Phi(type_, name)
        assert self.block is not None
        self.block.insert(0, node)
        return node

    # -- terminators -----------------------------------------------------------------
    def jmp(self, target: BasicBlock) -> Instruction:
        return self._append(Jmp(target))

    def br(self, cond: Value, then_: BasicBlock, else_: BasicBlock) -> Instruction:
        return self._append(Br(cond, then_, else_))

    def ret_action(self, kind: ActionKind, target: Optional[Value] = None) -> Instruction:
        return self._append(Ret(Action(kind, target)))

    def ret_value(self, value: Optional[Value] = None) -> Instruction:
        return self._append(Ret(None, value))

    # -- constants ----------------------------------------------------------------------
    @staticmethod
    def const(type_: IntType, value: int) -> Constant:
        return Constant(type_, value)

    @staticmethod
    def true() -> Constant:
        from repro.ir.types import BOOL

        return Constant(BOOL, 1)

    @staticmethod
    def false() -> Constant:
        from repro.ir.types import BOOL

        return Constant(BOOL, 0)
