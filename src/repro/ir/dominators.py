"""Dominator analysis (Cooper-Harper-Kennedy) and CFG orderings.

Used by mem2reg (phi placement via dominance frontiers), the hoisting and
speculation passes (common dominators, earliest placement), and code
generation (the structurizer emits sinks in the scope of the nearest common
dominator of their predecessors, §VI-B).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.ir.blocks import BasicBlock
from repro.ir.module import Function


def reverse_postorder(fn: Function) -> list[BasicBlock]:
    """Blocks in reverse postorder from the entry (topological for DAGs)."""
    visited: set[int] = set()
    order: list[BasicBlock] = []

    def visit(bb: BasicBlock) -> None:
        if id(bb) in visited:
            return
        visited.add(id(bb))
        for succ in bb.successors():
            visit(succ)
        order.append(bb)

    visit(fn.entry)
    order.reverse()
    return order


def reachable_blocks(fn: Function) -> set[int]:
    """ids of blocks reachable from the entry."""
    seen: set[int] = set()
    stack = [fn.entry]
    while stack:
        bb = stack.pop()
        if id(bb) in seen:
            continue
        seen.add(id(bb))
        stack.extend(bb.successors())
    return seen


class DominatorTree:
    """Immediate dominators, dominance queries, and dominance frontiers."""

    def __init__(self, fn: Function) -> None:
        self.function = fn
        self.rpo = reverse_postorder(fn)
        self._rpo_index = {id(bb): i for i, bb in enumerate(self.rpo)}
        self.idom: dict[int, BasicBlock] = {}
        self._compute_idoms()
        self._depth: dict[int, int] = {}
        self._compute_depths()

    # -- construction --------------------------------------------------------
    def _compute_idoms(self) -> None:
        entry = self.function.entry
        self.idom[id(entry)] = entry
        changed = True
        while changed:
            changed = False
            for bb in self.rpo:
                if bb is entry:
                    continue
                preds = [p for p in bb.predecessors() if id(p) in self.idom]
                if not preds:
                    continue
                new_idom = preds[0]
                for p in preds[1:]:
                    new_idom = self._intersect(p, new_idom)
                if self.idom.get(id(bb)) is not new_idom:
                    self.idom[id(bb)] = new_idom
                    changed = True

    def _intersect(self, a: BasicBlock, b: BasicBlock) -> BasicBlock:
        while a is not b:
            while self._rpo_index[id(a)] > self._rpo_index[id(b)]:
                a = self.idom[id(a)]
            while self._rpo_index[id(b)] > self._rpo_index[id(a)]:
                b = self.idom[id(b)]
        return a

    def _compute_depths(self) -> None:
        entry = self.function.entry
        self._depth[id(entry)] = 0
        for bb in self.rpo:
            if bb is entry or id(bb) not in self.idom:
                continue
            self._depth[id(bb)] = self._depth[id(self.idom[id(bb)])] + 1

    # -- queries ---------------------------------------------------------------
    def immediate_dominator(self, bb: BasicBlock) -> Optional[BasicBlock]:
        if bb is self.function.entry:
            return None
        return self.idom.get(id(bb))

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True if every path from entry to ``b`` passes through ``a``."""
        while True:
            if a is b:
                return True
            if b is self.function.entry:
                return False
            parent = self.idom.get(id(b))
            if parent is None or parent is b:
                return False
            b = parent

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates(a, b)

    def nearest_common_dominator(self, blocks: Iterable[BasicBlock]) -> BasicBlock:
        it = iter(blocks)
        try:
            ncd = next(it)
        except StopIteration:
            raise ValueError("nearest_common_dominator of empty set")
        for bb in it:
            ncd = self._intersect(bb, ncd)
        return ncd

    def depth(self, bb: BasicBlock) -> int:
        return self._depth.get(id(bb), 0)

    def dominance_frontiers(self) -> dict[int, set[int]]:
        """Per-block dominance frontier as sets of block ids."""
        df: dict[int, set[int]] = {id(bb): set() for bb in self.rpo}
        for bb in self.rpo:
            preds = bb.predecessors()
            if len(preds) < 2:
                continue
            for p in preds:
                runner = p
                while id(runner) in self.idom and runner is not self.idom[id(bb)]:
                    df[id(runner)].add(id(bb))
                    if runner is self.idom[id(runner)]:
                        break
                    runner = self.idom[id(runner)]
        return df

    def block_by_id(self, block_id: int) -> BasicBlock:
        for bb in self.rpo:
            if id(bb) == block_id:
                return bb
        raise KeyError(block_id)
