"""IR values and instructions.

Every instruction exposes a uniform ``operands`` sequence so passes can
traverse and rewrite def-use edges generically; structured fields (the
global variable of a memory access, the predicate of a compare, ...) are
kept as named attributes alongside it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Optional, Sequence

from repro.ir.types import BOOL, ArrayShape, IntType, VOID, VoidType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ir.blocks import BasicBlock
    from repro.ir.module import GlobalVar
_id_counter = itertools.count()


@dataclass(frozen=True)
class SourceLoc:
    """A source position (1-based line, 1-based column; 0 = unknown column).

    Threaded from the lexer through AST lowering onto every emitted
    instruction so diagnostics (``repro.analysis``) can point at the
    offending source construct.
    """

    line: int
    col: int = 0

    def __str__(self) -> str:
        return f"{self.line}:{self.col}" if self.col else f"{self.line}"


class Value:
    """Base class of everything an instruction may use as an operand."""

    type: IntType | VoidType

    def __init__(self, type_: IntType | VoidType, name: str = "") -> None:
        self.type = type_
        self.name = name or f"v{next(_id_counter)}"

    def short(self) -> str:
        return f"%{self.name}"


class Constant(Value):
    """An integer literal, wrapped to its type's range at construction."""

    def __init__(self, type_: IntType, value: int) -> None:
        super().__init__(type_, f"const{next(_id_counter)}")
        self.value = type_.wrap(int(value))

    def short(self) -> str:
        return f"{self.value}:{self.type}"

    def __repr__(self) -> str:
        return f"Constant({self.type}, {self.value})"


class Undef(Value):
    """An undefined value (default-initialized local memory, §V-B)."""

    def short(self) -> str:
        return f"undef:{self.type}"


class BinOpKind(str, Enum):
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    UDIV = "udiv"
    SDIV = "sdiv"
    UREM = "urem"
    SREM = "srem"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    LSHR = "lshr"
    ASHR = "ashr"
    SADDU = "saddu"  # saturating unsigned add (ncl::sadd)
    SSUBU = "ssubu"  # saturating unsigned sub (ncl::ssub)

    @property
    def commutative(self) -> bool:
        return self in (
            BinOpKind.ADD,
            BinOpKind.MUL,
            BinOpKind.AND,
            BinOpKind.OR,
            BinOpKind.XOR,
            BinOpKind.SADDU,
        )


class ICmpPred(str, Enum):
    EQ = "eq"
    NE = "ne"
    ULT = "ult"
    ULE = "ule"
    UGT = "ugt"
    UGE = "uge"
    SLT = "slt"
    SLE = "sle"
    SGT = "sgt"
    SGE = "sge"

    @property
    def swapped(self) -> "ICmpPred":
        table = {
            ICmpPred.EQ: ICmpPred.EQ,
            ICmpPred.NE: ICmpPred.NE,
            ICmpPred.ULT: ICmpPred.UGT,
            ICmpPred.ULE: ICmpPred.UGE,
            ICmpPred.UGT: ICmpPred.ULT,
            ICmpPred.UGE: ICmpPred.ULE,
            ICmpPred.SLT: ICmpPred.SGT,
            ICmpPred.SLE: ICmpPred.SGE,
            ICmpPred.SGT: ICmpPred.SLT,
            ICmpPred.SGE: ICmpPred.SLE,
        }
        return table[self]

    @property
    def negated(self) -> "ICmpPred":
        table = {
            ICmpPred.EQ: ICmpPred.NE,
            ICmpPred.NE: ICmpPred.EQ,
            ICmpPred.ULT: ICmpPred.UGE,
            ICmpPred.ULE: ICmpPred.UGT,
            ICmpPred.UGT: ICmpPred.ULE,
            ICmpPred.UGE: ICmpPred.ULT,
            ICmpPred.SLT: ICmpPred.SGE,
            ICmpPred.SLE: ICmpPred.SGT,
            ICmpPred.SGT: ICmpPred.SLE,
            ICmpPred.SGE: ICmpPred.SLT,
        }
        return table[self]


class AtomicOp(str, Enum):
    """The RMW operation of an :class:`AtomicRMW` instruction.

    Combined with the ``conditional``/``return_new``/``saturating`` flags,
    this covers NetCL's full atomic API (``atomic_add``, ``atomic_sadd_new``,
    ``atomic_cond_add_new``, ``atomic_cas``, ...).  Each combination maps
    onto a single Tofino SALU microprogram (§V-D).
    """

    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    MIN = "min"
    MAX = "max"
    EXCH = "exch"  # unconditional swap
    CAS = "cas"  # compare-and-swap; ``compare`` operand used
    READ = "read"  # plain atomic load (no modification)
    WRITE = "write"  # plain atomic store


class ActionKind(str, Enum):
    """NetCL forwarding actions (Table II of the paper)."""

    PASS = "pass"  # continue to the message's destination
    DROP = "drop"  # exit the network immediately
    SEND_TO_HOST = "send_to_host"
    SEND_TO_DEVICE = "send_to_device"
    MULTICAST = "multicast"
    REPEAT = "repeat"  # execute the kernel again (recirculate)
    REFLECT = "reflect"  # back to the previous node (source or last device)
    REFLECT_LONG = "reflect_long"  # back to the source host

    @property
    def takes_target(self) -> bool:
        return self in (
            ActionKind.SEND_TO_HOST,
            ActionKind.SEND_TO_DEVICE,
            ActionKind.MULTICAST,
        )


class Action:
    """A fully-specified forwarding decision: kind plus optional target id."""

    __slots__ = ("kind", "target")

    def __init__(self, kind: ActionKind, target: Optional["Value"] = None) -> None:
        if kind.takes_target and target is None:
            raise ValueError(f"action {kind.value} requires a target operand")
        if not kind.takes_target and target is not None:
            raise ValueError(f"action {kind.value} takes no target operand")
        self.kind = kind
        self.target = target

    def __repr__(self) -> str:
        if self.target is not None:
            return f"{self.kind.value}({self.target.short()})"
        return f"{self.kind.value}()"


class Instruction(Value):
    """Base class for all IR instructions.

    Subclasses declare their value operands via ``operands``; rewriting an
    operand goes through :meth:`replace_operand` so that structured views
    (e.g. phi incoming lists) stay consistent.
    """

    parent: Optional["BasicBlock"]

    def __init__(self, type_: IntType | VoidType, name: str = "") -> None:
        super().__init__(type_, name)
        self.parent = None
        #: source span this instruction was lowered from (None for
        #: synthesized IR, e.g. pass-created instructions without an origin).
        self.loc: Optional[SourceLoc] = None

    @property
    def source_line(self) -> Optional[int]:
        """Line component of :attr:`loc` (backwards-compatible view)."""
        return self.loc.line if self.loc is not None else None

    @source_line.setter
    def source_line(self, line: Optional[int]) -> None:
        if line is None:
            self.loc = None
        elif self.loc is None or self.loc.line != line:
            self.loc = SourceLoc(int(line))

    # -- operand protocol ---------------------------------------------------
    @property
    def operands(self) -> tuple[Value, ...]:
        return ()

    def replace_operand(self, old: Value, new: Value) -> None:
        """Replace every use of ``old`` among this instruction's operands."""
        raise NotImplementedError

    @property
    def is_terminator(self) -> bool:
        return False

    @property
    def has_side_effects(self) -> bool:
        """True if the instruction writes memory or controls forwarding."""
        return False

    def short(self) -> str:
        return f"%{self.name}"

    def __repr__(self) -> str:
        ops = ", ".join(o.short() for o in self.operands)
        return f"%{self.name} = {type(self).__name__.lower()} {ops}"


class BinOp(Instruction):
    def __init__(self, kind: BinOpKind, a: Value, b: Value, name: str = "") -> None:
        super().__init__(a.type, name)
        self.kind = kind
        self.a = a
        self.b = b

    @property
    def operands(self) -> tuple[Value, ...]:
        return (self.a, self.b)

    def replace_operand(self, old: Value, new: Value) -> None:
        if self.a is old:
            self.a = new
        if self.b is old:
            self.b = new

    def __repr__(self) -> str:
        return f"%{self.name} = {self.kind.value} {self.a.short()}, {self.b.short()}"


class ICmp(Instruction):
    def __init__(self, pred: ICmpPred, a: Value, b: Value, name: str = "") -> None:
        super().__init__(BOOL, name)
        self.pred = pred
        self.a = a
        self.b = b

    @property
    def operands(self) -> tuple[Value, ...]:
        return (self.a, self.b)

    def replace_operand(self, old: Value, new: Value) -> None:
        if self.a is old:
            self.a = new
        if self.b is old:
            self.b = new

    def __repr__(self) -> str:
        return f"%{self.name} = icmp {self.pred.value} {self.a.short()}, {self.b.short()}"


class Select(Instruction):
    def __init__(self, cond: Value, t: Value, f: Value, name: str = "") -> None:
        super().__init__(t.type, name)
        self.cond = cond
        self.t = t
        self.f = f

    @property
    def operands(self) -> tuple[Value, ...]:
        return (self.cond, self.t, self.f)

    def replace_operand(self, old: Value, new: Value) -> None:
        if self.cond is old:
            self.cond = new
        if self.t is old:
            self.t = new
        if self.f is old:
            self.f = new

    def __repr__(self) -> str:
        return (
            f"%{self.name} = select {self.cond.short()}, "
            f"{self.t.short()}, {self.f.short()}"
        )


class CastKind(str, Enum):
    ZEXT = "zext"
    SEXT = "sext"
    TRUNC = "trunc"
    BITCAST = "bitcast"  # same-width signedness reinterpretation


class Cast(Instruction):
    def __init__(self, kind: CastKind, value: Value, to: IntType, name: str = "") -> None:
        super().__init__(to, name)
        self.kind = kind
        self.value = value
        #: True when the source wrote an explicit cast (e.g. ``(u8)x``);
        #: implicit truncations are lint candidates, explicit ones are not.
        self.explicit = False

    @property
    def operands(self) -> tuple[Value, ...]:
        return (self.value,)

    def replace_operand(self, old: Value, new: Value) -> None:
        if self.value is old:
            self.value = new

    def __repr__(self) -> str:
        return f"%{self.name} = {self.kind.value} {self.value.short()} to {self.type}"


class Alloca(Instruction):
    """A thread-private local slot (scalar or small array).

    Scalars are promoted to SSA registers by mem2reg; arrays become P4
    header stacks indexed through index tables (Fig. 9 of the paper).
    """

    def __init__(self, elem: IntType, shape: ArrayShape = ArrayShape(), name: str = "") -> None:
        super().__init__(elem, name)
        self.elem = elem
        self.shape = shape

    @property
    def is_scalar(self) -> bool:
        return self.shape.rank == 0

    def replace_operand(self, old: Value, new: Value) -> None:
        pass

    def __repr__(self) -> str:
        return f"%{self.name} = alloca {self.elem}{self.shape if self.shape.dims else ''}"


class Load(Instruction):
    """Read a local slot (optionally at a per-dimension index list)."""

    def __init__(self, slot: Alloca, indices: Sequence[Value] = (), name: str = "") -> None:
        super().__init__(slot.elem, name)
        self.slot = slot
        self.indices = list(indices)

    @property
    def operands(self) -> tuple[Value, ...]:
        return (self.slot, *self.indices)

    def replace_operand(self, old: Value, new: Value) -> None:
        if self.slot is old and isinstance(new, Alloca):
            self.slot = new
        self.indices = [new if i is old else i for i in self.indices]

    def __repr__(self) -> str:
        idx = "".join(f"[{i.short()}]" for i in self.indices)
        return f"%{self.name} = load %{self.slot.name}{idx}"


class Store(Instruction):
    """Write a local slot (optionally at a per-dimension index list)."""

    def __init__(self, slot: Alloca, value: Value, indices: Sequence[Value] = ()) -> None:
        super().__init__(VOID)
        self.slot = slot
        self.value = value
        self.indices = list(indices)

    @property
    def operands(self) -> tuple[Value, ...]:
        return (self.slot, self.value, *self.indices)

    def replace_operand(self, old: Value, new: Value) -> None:
        if self.slot is old and isinstance(new, Alloca):
            self.slot = new
        if self.value is old:
            self.value = new
        self.indices = [new if i is old else i for i in self.indices]

    @property
    def has_side_effects(self) -> bool:
        return True

    def __repr__(self) -> str:
        idx = "".join(f"[{i.short()}]" for i in self.indices)
        return f"store %{self.slot.name}{idx}, {self.value.short()}"


class LoadMsg(Instruction):
    """Read a by-reference kernel argument (a NetCL message field)."""

    def __init__(self, field: str, elem: IntType, index: Optional[Value] = None, name: str = "") -> None:
        super().__init__(elem, name)
        self.field = field
        self.index = index

    @property
    def operands(self) -> tuple[Value, ...]:
        return (self.index,) if self.index is not None else ()

    def replace_operand(self, old: Value, new: Value) -> None:
        if self.index is old:
            self.index = new

    def __repr__(self) -> str:
        idx = f"[{self.index.short()}]" if self.index is not None else ""
        return f"%{self.name} = loadmsg @{self.field}{idx}"


class StoreMsg(Instruction):
    """Write a by-reference kernel argument (visible to all receivers)."""

    def __init__(self, field: str, value: Value, index: Optional[Value] = None) -> None:
        super().__init__(VOID)
        self.field = field
        self.value = value
        self.index = index

    @property
    def operands(self) -> tuple[Value, ...]:
        ops: list[Value] = [self.value]
        if self.index is not None:
            ops.append(self.index)
        return tuple(ops)

    def replace_operand(self, old: Value, new: Value) -> None:
        if self.value is old:
            self.value = new
        if self.index is old:
            self.index = new

    @property
    def has_side_effects(self) -> bool:
        return True

    def __repr__(self) -> str:
        idx = f"[{self.index.short()}]" if self.index is not None else ""
        return f"storemsg @{self.field}{idx}, {self.value.short()}"


class GlobalAccess(Instruction):
    """Common base for instructions touching global device memory."""

    gv: "GlobalVar"
    indices: list[Value]

    def _fmt_indices(self) -> str:
        return "".join(f"[{i.short()}]" for i in self.indices)


class LoadGlobal(GlobalAccess):
    def __init__(self, gv: "GlobalVar", indices: Sequence[Value] = (), name: str = "") -> None:
        super().__init__(gv.elem, name)
        self.gv = gv
        self.indices = list(indices)

    @property
    def operands(self) -> tuple[Value, ...]:
        return tuple(self.indices)

    def replace_operand(self, old: Value, new: Value) -> None:
        self.indices = [new if i is old else i for i in self.indices]

    def __repr__(self) -> str:
        return f"%{self.name} = gload @{self.gv.name}{self._fmt_indices()}"


class StoreGlobal(GlobalAccess):
    def __init__(self, gv: "GlobalVar", value: Value, indices: Sequence[Value] = ()) -> None:
        super().__init__(VOID)
        self.gv = gv
        self.value = value
        self.indices = list(indices)

    @property
    def operands(self) -> tuple[Value, ...]:
        return (self.value, *self.indices)

    def replace_operand(self, old: Value, new: Value) -> None:
        if self.value is old:
            self.value = new
        self.indices = [new if i is old else i for i in self.indices]

    @property
    def has_side_effects(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"gstore @{self.gv.name}{self._fmt_indices()}, {self.value.short()}"


class AtomicRMW(GlobalAccess):
    """Atomic read-modify-write on global memory.

    ``conditional`` gates the modification on a runtime predicate,
    ``return_new`` selects whether the new or old value is produced, and
    ``saturating`` selects clamped arithmetic.  The semantics of the
    conditional/new combination follow §V-E: a guarded-off operation
    returns the *old* memory value.
    """

    def __init__(
        self,
        op: AtomicOp,
        gv: "GlobalVar",
        indices: Sequence[Value],
        operand: Optional[Value] = None,
        *,
        cond: Optional[Value] = None,
        compare: Optional[Value] = None,
        return_new: bool = False,
        saturating: bool = False,
        name: str = "",
    ) -> None:
        super().__init__(gv.elem, name)
        self.op = op
        self.gv = gv
        self.indices = list(indices)
        self.operand = operand
        self.cond = cond
        self.compare = compare
        self.return_new = return_new
        self.saturating = saturating

    @property
    def operands(self) -> tuple[Value, ...]:
        ops: list[Value] = list(self.indices)
        for extra in (self.operand, self.cond, self.compare):
            if extra is not None:
                ops.append(extra)
        return tuple(ops)

    def replace_operand(self, old: Value, new: Value) -> None:
        self.indices = [new if i is old else i for i in self.indices]
        if self.operand is old:
            self.operand = new
        if self.cond is old:
            self.cond = new
        if self.compare is old:
            self.compare = new

    @property
    def has_side_effects(self) -> bool:
        return True

    def mnemonic(self) -> str:
        parts = ["atomic"]
        if self.cond is not None:
            parts.append("cond")
        if self.saturating:
            parts.append("s")
        parts.append(self.op.value)
        if self.return_new:
            parts.append("new")
        return "_".join(parts)

    def __repr__(self) -> str:
        extra = ""
        if self.operand is not None:
            extra += f", {self.operand.short()}"
        if self.compare is not None:
            extra += f", cmp={self.compare.short()}"
        if self.cond is not None:
            extra += f", if={self.cond.short()}"
        return (
            f"%{self.name} = {self.mnemonic()} @{self.gv.name}"
            f"{self._fmt_indices()}{extra}"
        )


class Lookup(GlobalAccess):
    """Hit/miss probe of ``_lookup_`` memory (a match-action table)."""

    def __init__(self, gv: "GlobalVar", key: Value, name: str = "") -> None:
        super().__init__(BOOL, name)
        self.gv = gv
        self.key = key
        self.indices = []

    @property
    def operands(self) -> tuple[Value, ...]:
        return (self.key,)

    def replace_operand(self, old: Value, new: Value) -> None:
        if self.key is old:
            self.key = new

    def __repr__(self) -> str:
        return f"%{self.name} = lookup @{self.gv.name}, {self.key.short()}"


class LookupVal(GlobalAccess):
    """Value side of a kv/rv lookup: matched value on hit, ``default`` on miss.

    Code generation pairs a :class:`LookupVal` with the :class:`Lookup` of the
    same table and key into a single MAT apply.
    """

    def __init__(self, gv: "GlobalVar", key: Value, default: Value, name: str = "") -> None:
        super().__init__(gv.value_type or gv.elem, name)
        self.gv = gv
        self.key = key
        self.default = default
        self.indices = []

    @property
    def operands(self) -> tuple[Value, ...]:
        return (self.key, self.default)

    def replace_operand(self, old: Value, new: Value) -> None:
        if self.key is old:
            self.key = new
        if self.default is old:
            self.default = new

    def __repr__(self) -> str:
        return (
            f"%{self.name} = lookupval @{self.gv.name}, {self.key.short()}, "
            f"miss={self.default.short()}"
        )


class Intrinsic(Instruction):
    """A target or NetCL builtin: hashes, byte swaps, RNG, device.id, ...

    The set of recognized intrinsic names lives in
    :mod:`repro.lang.builtins`; the interpreter and backends dispatch on
    ``callee``.
    """

    def __init__(self, callee: str, args: Sequence[Value], type_: IntType, name: str = "") -> None:
        super().__init__(type_, name)
        self.callee = callee
        self.args = list(args)

    @property
    def operands(self) -> tuple[Value, ...]:
        return tuple(self.args)

    def replace_operand(self, old: Value, new: Value) -> None:
        self.args = [new if a is old else a for a in self.args]

    @property
    def has_side_effects(self) -> bool:
        # RNG draws advance generator state; everything else is pure.
        return self.callee == "ncl.rand"

    def __repr__(self) -> str:
        args = ", ".join(a.short() for a in self.args)
        return f"%{self.name} = call {self.callee}({args})"


class Call(Instruction):
    """Direct call to a ``_net_`` function; eliminated by the inliner."""

    def __init__(self, callee: str, args: Sequence[Value], type_: IntType | VoidType, name: str = "") -> None:
        super().__init__(type_, name)
        self.callee = callee
        self.args = list(args)

    @property
    def operands(self) -> tuple[Value, ...]:
        return tuple(self.args)

    def replace_operand(self, old: Value, new: Value) -> None:
        self.args = [new if a is old else a for a in self.args]

    @property
    def has_side_effects(self) -> bool:
        return True  # conservatively: callee may touch memory

    def __repr__(self) -> str:
        args = ", ".join(a.short() for a in self.args)
        return f"%{self.name} = netcall @{self.callee}({args})"


class Phi(Instruction):
    """SSA phi node; eliminated before code generation (§VI-B)."""

    def __init__(self, type_: IntType, name: str = "") -> None:
        super().__init__(type_, name)
        self.incoming: list[tuple[Value, "BasicBlock"]] = []

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        self.incoming.append((value, block))

    def incoming_for(self, block: "BasicBlock") -> Optional[Value]:
        for v, b in self.incoming:
            if b is block:
                return v
        return None

    @property
    def operands(self) -> tuple[Value, ...]:
        return tuple(v for v, _ in self.incoming)

    def replace_operand(self, old: Value, new: Value) -> None:
        self.incoming = [(new if v is old else v, b) for v, b in self.incoming]

    def replace_incoming_block(self, old: "BasicBlock", new: "BasicBlock") -> None:
        self.incoming = [(v, new if b is old else b) for v, b in self.incoming]

    def __repr__(self) -> str:
        inc = ", ".join(f"[{v.short()}, {b.name}]" for v, b in self.incoming)
        return f"%{self.name} = phi {inc}"


# -- terminators -------------------------------------------------------------


class Terminator(Instruction):
    @property
    def is_terminator(self) -> bool:
        return True

    @property
    def has_side_effects(self) -> bool:
        return True

    def successors(self) -> tuple["BasicBlock", ...]:
        return ()

    def replace_successor(self, old: "BasicBlock", new: "BasicBlock") -> None:
        pass


class Jmp(Terminator):
    def __init__(self, target: "BasicBlock") -> None:
        super().__init__(VOID)
        self.target = target

    def successors(self) -> tuple["BasicBlock", ...]:
        return (self.target,)

    def replace_successor(self, old: "BasicBlock", new: "BasicBlock") -> None:
        if self.target is old:
            self.target = new

    def replace_operand(self, old: Value, new: Value) -> None:
        pass

    def __repr__(self) -> str:
        return f"jmp {self.target.name}"


class Br(Terminator):
    def __init__(self, cond: Value, then_: "BasicBlock", else_: "BasicBlock") -> None:
        super().__init__(VOID)
        self.cond = cond
        self.then_ = then_
        self.else_ = else_

    @property
    def operands(self) -> tuple[Value, ...]:
        return (self.cond,)

    def replace_operand(self, old: Value, new: Value) -> None:
        if self.cond is old:
            self.cond = new

    def successors(self) -> tuple["BasicBlock", ...]:
        return (self.then_, self.else_)

    def replace_successor(self, old: "BasicBlock", new: "BasicBlock") -> None:
        if self.then_ is old:
            self.then_ = new
        if self.else_ is old:
            self.else_ = new

    def __repr__(self) -> str:
        return f"br {self.cond.short()}, {self.then_.name}, {self.else_.name}"


class Ret(Terminator):
    """Kernel exit carrying a forwarding :class:`Action`.

    In ``_net_`` functions, ``action`` may instead be ``None`` with an
    optional return ``value``; the inliner rewrites these into value flow.
    """

    def __init__(self, action: Optional[Action] = None, value: Optional[Value] = None) -> None:
        super().__init__(VOID)
        self.action = action
        self.value = value

    @property
    def operands(self) -> tuple[Value, ...]:
        ops: list[Value] = []
        if self.value is not None:
            ops.append(self.value)
        if self.action is not None and self.action.target is not None:
            ops.append(self.action.target)
        return tuple(ops)

    def replace_operand(self, old: Value, new: Value) -> None:
        if self.value is old:
            self.value = new
        if self.action is not None and self.action.target is old:
            self.action = Action(self.action.kind, new)

    def __repr__(self) -> str:
        if self.action is not None:
            return f"ret {self.action!r}"
        if self.value is not None:
            return f"ret {self.value.short()}"
        return "ret"


def side_effect_free(inst: Instruction) -> bool:
    """True if ``inst`` may be removed when its result is unused."""
    return not inst.has_side_effects and not inst.is_terminator
