"""Behavioral IR interpreter — the execution engine of the device model.

The device runtime (:mod:`repro.runtime.device`) executes compiled NetCL
kernels by interpreting their (post-middle-end) IR against a
:class:`GlobalState` holding the device's register and table memory, exactly
as bmv2 executes generated P4 behaviorally in the paper's evaluation.

The interpreter implements the device model of §IV: one logical thread per
message, processing uninterrupted; thread-private local memory; atomic
transactions on shared global memory; and kernel exit via a forwarding
action (Table II).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro import hashing
from repro.ir.blocks import BasicBlock
from repro.ir.instructions import (
    ActionKind,
    Alloca,
    AtomicOp,
    AtomicRMW,
    BinOp,
    BinOpKind,
    Br,
    Call,
    Cast,
    CastKind,
    Constant,
    ICmp,
    ICmpPred,
    Instruction,
    Intrinsic,
    Jmp,
    Load,
    LoadGlobal,
    LoadMsg,
    Lookup,
    LookupVal,
    Phi,
    Ret,
    Select,
    Store,
    StoreGlobal,
    StoreMsg,
    Undef,
    Value,
)
from repro.ir.module import Function, GlobalVar, LookupEntry, Module
from repro.ir.types import IntType


class InterpError(Exception):
    """Runtime fault during kernel interpretation."""


_NUMPY_DTYPE = {8: np.uint8, 16: np.uint16, 32: np.uint32, 64: np.uint64}


def _dtype_for(width: int):
    for w, dt in _NUMPY_DTYPE.items():
        if width <= w:
            return dt
    return np.uint64


class GlobalState:
    """All global device memory of one device: registers plus lookup tables.

    Register memory (``_net_`` / ``_managed_``) is zero-initialized numpy
    storage, flattened row-major.  Lookup memory is an ordered entry list;
    ``_managed_ _lookup_`` entries may be mutated through the control-plane
    methods, static ``_lookup_`` entries are frozen (P4 does not allow data
    plane MAT updates, §V-B).
    """

    def __init__(self) -> None:
        self._registers: dict[str, np.ndarray] = {}
        self._meta: dict[str, GlobalVar] = {}
        self._tables: dict[str, list[LookupEntry]] = {}

    # -- declaration ---------------------------------------------------------
    def declare(self, gv: GlobalVar) -> None:
        base = self._base_name(gv.name)
        if base in self._meta:
            return
        self._meta[base] = gv
        if gv.space.is_lookup:
            self._tables[base] = [
                LookupEntry(e.key_lo, e.key_hi, e.value) for e in gv.entries
            ]
        else:
            dt = _dtype_for(gv.elem.width)
            self._registers[base] = np.zeros(gv.shape.num_elements or 1, dtype=dt)

    @staticmethod
    def _base_name(name: str) -> str:
        # Memory partitioning / duplication passes rename accesses to
        # "name.partN" / "name.dupN"; all copies share the base storage so
        # behavior is unchanged (duplication of read-only tables, partitions
        # indexed disjointly).
        return name.split(".", 1)[0]

    def _meta_for(self, gv: GlobalVar) -> tuple[str, GlobalVar]:
        base = self._base_name(gv.name)
        if base not in self._meta:
            self.declare(
                GlobalVar(
                    base,
                    gv.elem,
                    gv.shape,
                    gv.space,
                    gv.locations,
                    gv.lookup_kind,
                    gv.key_type,
                    gv.value_type,
                    [LookupEntry(e.key_lo, e.key_hi, e.value) for e in gv.entries],
                )
            )
        return base, self._meta[base]

    @staticmethod
    def _effective_indices(gv: GlobalVar, indices: Sequence[int]) -> list[int]:
        """Map a (possibly partitioned) access back onto base storage."""
        fixed = getattr(gv, "fixed_outer", None)
        if fixed is not None:
            return [fixed, *indices]
        return list(indices)

    # -- register access -------------------------------------------------------
    def _flat_index(self, gv: GlobalVar, indices: Sequence[int]) -> int:
        dims = gv.shape.dims
        if len(indices) != len(dims):
            raise InterpError(
                f"{gv.name}: expected {len(dims)} indices, got {len(indices)}"
            )
        flat = 0
        for idx, dim in zip(indices, dims):
            if not 0 <= idx < dim:
                raise InterpError(f"{gv.name}: index {idx} out of range [0,{dim})")
            flat = flat * dim + idx
        return flat

    def read(self, gv: GlobalVar, indices: Sequence[int]) -> int:
        base, meta = self._meta_for(gv)
        flat = self._flat_index(meta, self._effective_indices(gv, indices))
        return int(self._registers[base][flat])

    def write(self, gv: GlobalVar, indices: Sequence[int], value: int) -> None:
        base, meta = self._meta_for(gv)
        flat = self._flat_index(meta, self._effective_indices(gv, indices))
        self._registers[base][flat] = value & meta.elem.mask

    def atomic(
        self,
        gv: GlobalVar,
        indices: Sequence[int],
        op: AtomicOp,
        operand: Optional[int],
        *,
        cond: Optional[int] = None,
        compare: Optional[int] = None,
        return_new: bool = False,
        saturating: bool = False,
    ) -> int:
        """Execute one SALU-style read-modify-write transaction.

        A guarded-off conditional operation leaves memory untouched and
        returns the *old* value (§V-E retransmission detection relies on
        this).
        """
        base, meta = self._meta_for(gv)
        flat = self._flat_index(meta, self._effective_indices(gv, indices))
        ty = meta.elem
        old = int(self._registers[base][flat])

        if op == AtomicOp.READ:
            return old

        if op == AtomicOp.CAS:
            if compare is None:
                raise InterpError("CAS requires a compare operand")
            if old == (compare & ty.mask):
                self._registers[base][flat] = (operand or 0) & ty.mask
            return old

        if operand is None and op != AtomicOp.READ:
            raise InterpError(f"atomic {op.value} requires an operand")
        arg = (operand or 0) & ty.mask

        if op == AtomicOp.ADD:
            raw = old + arg
            new = min(raw, ty.mask) if saturating else raw & ty.mask
        elif op == AtomicOp.SUB:
            raw = old - arg
            new = max(raw, 0) if saturating else raw & ty.mask
        elif op == AtomicOp.AND:
            new = old & arg
        elif op == AtomicOp.OR:
            new = old | arg
        elif op == AtomicOp.XOR:
            new = old ^ arg
        elif op == AtomicOp.MIN:
            new = min(old, arg)
        elif op == AtomicOp.MAX:
            new = max(old, arg)
        elif op in (AtomicOp.EXCH, AtomicOp.WRITE):
            new = arg
        else:  # pragma: no cover - enum exhaustive
            raise InterpError(f"unhandled atomic op {op}")

        performed = cond is None or cond != 0
        if performed:
            self._registers[base][flat] = new
        if not performed:
            return old
        return new if return_new else old

    # -- lookup access -------------------------------------------------------------
    def lookup(self, gv: GlobalVar, key: int) -> tuple[bool, Optional[int]]:
        base, _ = self._meta_for(gv)
        for entry in self._tables[base]:
            if entry.matches(key):
                return True, entry.value
        return False, None

    # -- whole-state capture ---------------------------------------------------
    def snapshot(self) -> dict:
        """Deep, comparable copy of all device memory.

        Registers become plain lists, lookup tables become entry tuples;
        two snapshots compare equal iff every observable memory cell
        matches.  Translation validation diffs these across passes.
        """
        return {
            "registers": {k: v.tolist() for k, v in sorted(self._registers.items())},
            "tables": {
                k: [(e.key_lo, e.key_hi, e.value) for e in v]
                for k, v in sorted(self._tables.items())
            },
        }

    # -- control-plane surface (P4Runtime stand-in, §V-B managed memory) -----------
    def cp_register_read(self, name: str, index: int = 0) -> int:
        base = self._base_name(name)
        if base not in self._registers:
            raise InterpError(f"no register memory named {name}")
        return int(self._registers[base][index])

    def cp_register_write(self, name: str, value: int, index: int = 0) -> None:
        base = self._base_name(name)
        if base not in self._registers:
            raise InterpError(f"no register memory named {name}")
        meta = self._meta[base]
        if not meta.space.is_managed:
            raise InterpError(f"{name} is not _managed_: host writes forbidden")
        self._registers[base][index] = value & meta.elem.mask

    def cp_register_read_all(self, name: str) -> np.ndarray:
        base = self._base_name(name)
        return self._registers[base].copy()

    def cp_table_entries(self, name: str) -> list[LookupEntry]:
        base = self._base_name(name)
        return list(self._tables[base])

    def cp_table_insert(self, name: str, key_lo: int, key_hi: Optional[int] = None, value: Optional[int] = None) -> None:
        base = self._base_name(name)
        meta = self._meta[base]
        if not meta.space.is_managed:
            raise InterpError(f"{name} is not _managed_: host inserts forbidden")
        hi = key_lo if key_hi is None else key_hi
        if len(self._tables[base]) >= meta.capacity:
            raise InterpError(f"{name}: table full (capacity {meta.capacity})")
        self._tables[base].append(LookupEntry(key_lo, hi, value))

    def cp_table_modify(self, name: str, key: int, value: int) -> bool:
        base = self._base_name(name)
        meta = self._meta[base]
        if not meta.space.is_managed:
            raise InterpError(f"{name} is not _managed_: host modifies forbidden")
        for entry in self._tables[base]:
            if entry.matches(key):
                entry.value = value
                return True
        return False

    def cp_table_remove(self, name: str, key: int) -> bool:
        base = self._base_name(name)
        meta = self._meta[base]
        if not meta.space.is_managed:
            raise InterpError(f"{name} is not _managed_: host removes forbidden")
        for entry in list(self._tables[base]):
            if entry.matches(key):
                self._tables[base].remove(entry)
                return True
        return False


class KernelMessage:
    """Mutable view of a NetCL message's data fields during kernel execution.

    Field names are kernel argument names; array fields hold lists.  Writes
    through by-reference arguments mutate this object in place, which is how
    updates become "visible to all receivers" (§V-A).
    """

    def __init__(self, fields: dict[str, int | list[int]]) -> None:
        self.fields = fields

    def get(self, name: str, index: Optional[int] = None) -> int:
        v = self.fields[name]
        if isinstance(v, list):
            if index is None:
                raise InterpError(f"field {name} is an array; index required")
            if not 0 <= index < len(v):
                raise InterpError(f"field {name}: index {index} out of range")
            return v[index]
        if index not in (None, 0):
            raise InterpError(f"field {name} is scalar; got index {index}")
        return v

    def set(self, name: str, value: int, index: Optional[int] = None) -> None:
        cur = self.fields.get(name)
        if isinstance(cur, list):
            if index is None:
                raise InterpError(f"field {name} is an array; index required")
            if not 0 <= index < len(cur):
                raise InterpError(f"field {name}: index {index} out of range")
            cur[index] = value
        else:
            self.fields[name] = value

    def copy(self) -> "KernelMessage":
        return KernelMessage(
            {k: (list(v) if isinstance(v, list) else v) for k, v in self.fields.items()}
        )

    def __repr__(self) -> str:
        return f"KernelMessage({self.fields})"


@dataclass
class ActionOutcome:
    """The forwarding decision a kernel exits with."""

    kind: ActionKind
    target: Optional[int] = None

    def __repr__(self) -> str:
        if self.target is not None:
            return f"{self.kind.value}({self.target})"
        return f"{self.kind.value}()"


class IRInterpreter:
    """Executes a kernel function over a message and a device's global state."""

    def __init__(
        self,
        module: Module,
        state: GlobalState,
        *,
        device_id: int = 0,
        rng: Optional[random.Random] = None,
        max_steps: int = 200_000,
    ) -> None:
        self.module = module
        self.state = state
        self.device_id = device_id
        self.rng = rng or random.Random(0)
        self.max_steps = max_steps
        for gv in module.globals.values():
            if gv.placed_at(device_id):
                state.declare(gv)

    # -- public entry ---------------------------------------------------------
    def run_kernel(self, fn: Function, msg: KernelMessage) -> ActionOutcome:
        """Process one message with ``fn``; mutates ``msg`` and global state."""
        env: dict[int, int] = {}
        locals_: dict[int, int | list[int]] = {}
        for arg in fn.args:
            if not arg.byref and not arg.is_array:
                env[id(arg)] = msg.get(arg.name)
        outcome = self._exec(fn, env, locals_, msg)
        if isinstance(outcome, ActionOutcome):
            return outcome
        # Any path without an explicit action has the implicit pass() (§V-A).
        return ActionOutcome(ActionKind.PASS)

    def run_netfn(self, fn: Function, args: Sequence[int]) -> Optional[int]:
        """Call a net function with by-value scalar arguments (tests only)."""
        env: dict[int, int] = {}
        for formal, actual in zip(fn.args, args):
            if formal.byref or formal.is_array:
                raise InterpError(
                    "direct net-function interpretation supports by-value "
                    "scalars only; compile (inline) first"
                )
            env[id(formal)] = actual
        result = self._exec(fn, env, {}, KernelMessage({}))
        return result if isinstance(result, int) else None

    # -- execution loop ----------------------------------------------------------
    def _exec(
        self,
        fn: Function,
        env: dict[int, int],
        locals_: dict[int, int | list[int]],
        msg: KernelMessage,
    ):
        block = fn.entry
        prev_block: Optional[BasicBlock] = None
        steps = 0
        while True:
            next_block: Optional[BasicBlock] = None
            # Phi nodes read their incoming values in parallel.
            phi_updates: list[tuple[Phi, int]] = []
            for inst in block.instructions:
                steps += 1
                if steps > self.max_steps:
                    raise InterpError(f"step limit exceeded in {fn.name}")
                if isinstance(inst, Phi):
                    assert prev_block is not None
                    val = inst.incoming_for(prev_block)
                    if val is None:
                        raise InterpError(
                            f"phi {inst.name} has no incoming for {prev_block.name}"
                        )
                    phi_updates.append((inst, self._val(val, env)))
                    continue
                if phi_updates:
                    for node, v in phi_updates:
                        env[id(node)] = v
                    phi_updates = []
                result = self._step(fn, inst, env, locals_, msg)
                if isinstance(result, ActionOutcome):
                    return result
                if isinstance(result, _ReturnValue):
                    return result.value
                if isinstance(result, BasicBlock):
                    next_block = result
                    break
            if phi_updates:
                for node, v in phi_updates:
                    env[id(node)] = v
            if next_block is None:
                raise InterpError(f"block {block.name} fell through without terminator")
            prev_block, block = block, next_block

    # -- single instruction ----------------------------------------------------------
    def _val(self, v: Value, env: dict[int, int]) -> int:
        if isinstance(v, Constant):
            return v.value
        if isinstance(v, Undef):
            return 0  # deterministic choice for undefined locals
        if id(v) in env:
            return env[id(v)]
        raise InterpError(f"use of unevaluated value {v.short()}")

    def _step(self, fn, inst: Instruction, env, locals_, msg):
        if isinstance(inst, BinOp):
            env[id(inst)] = self._binop(inst, env)
        elif isinstance(inst, ICmp):
            env[id(inst)] = self._icmp(inst, env)
        elif isinstance(inst, Select):
            c = self._val(inst.cond, env)
            env[id(inst)] = self._val(inst.t if c else inst.f, env)
        elif isinstance(inst, Cast):
            env[id(inst)] = self._cast(inst, env)
        elif isinstance(inst, Alloca):
            if inst.is_scalar:
                locals_.setdefault(id(inst), 0)
            else:
                locals_.setdefault(id(inst), [0] * inst.shape.num_elements)
        elif isinstance(inst, Load):
            slot = locals_.setdefault(
                id(inst.slot),
                0 if inst.slot.is_scalar else [0] * inst.slot.shape.num_elements,
            )
            if inst.indices:
                flat = self._flat_local(inst.slot, inst.indices, env)
                env[id(inst)] = slot[flat]  # type: ignore[index]
            else:
                env[id(inst)] = slot  # type: ignore[assignment]
        elif isinstance(inst, Store):
            val = self._val(inst.value, env) & self._mask(inst.slot.elem)
            if inst.indices:
                arr = locals_.setdefault(
                    id(inst.slot), [0] * inst.slot.shape.num_elements
                )
                flat = self._flat_local(inst.slot, inst.indices, env)
                arr[flat] = val  # type: ignore[index]
            else:
                locals_[id(inst.slot)] = val
        elif isinstance(inst, LoadMsg):
            idx = self._val(inst.index, env) if inst.index is not None else None
            env[id(inst)] = msg.get(inst.field, idx) & self._mask(inst.type)
        elif isinstance(inst, StoreMsg):
            idx = self._val(inst.index, env) if inst.index is not None else None
            msg.set(inst.field, self._val(inst.value, env) & self._mask(inst.value.type), idx)
        elif isinstance(inst, LoadGlobal):
            idxs = [self._val(i, env) for i in inst.indices]
            env[id(inst)] = self.state.read(inst.gv, idxs)
        elif isinstance(inst, StoreGlobal):
            idxs = [self._val(i, env) for i in inst.indices]
            self.state.write(inst.gv, idxs, self._val(inst.value, env))
        elif isinstance(inst, AtomicRMW):
            idxs = [self._val(i, env) for i in inst.indices]
            env[id(inst)] = self.state.atomic(
                inst.gv,
                idxs,
                inst.op,
                self._val(inst.operand, env) if inst.operand is not None else None,
                cond=self._val(inst.cond, env) if inst.cond is not None else None,
                compare=self._val(inst.compare, env) if inst.compare is not None else None,
                return_new=inst.return_new,
                saturating=inst.saturating,
            )
        elif isinstance(inst, Lookup):
            hit, _ = self.state.lookup(inst.gv, self._val(inst.key, env))
            env[id(inst)] = 1 if hit else 0
        elif isinstance(inst, LookupVal):
            hit, value = self.state.lookup(inst.gv, self._val(inst.key, env))
            if hit and value is not None:
                env[id(inst)] = value & self._mask(inst.type)
            else:
                env[id(inst)] = self._val(inst.default, env)
        elif isinstance(inst, Intrinsic):
            env[id(inst)] = self._intrinsic(inst, env)
        elif isinstance(inst, Call):
            callee = self.module.functions.get(inst.callee)
            if callee is None:
                raise InterpError(f"call to unknown function {inst.callee}")
            ret = self.run_netfn(callee, [self._val(a, env) for a in inst.args])
            if ret is not None:
                env[id(inst)] = ret
        elif isinstance(inst, Jmp):
            return inst.target
        elif isinstance(inst, Br):
            return inst.then_ if self._val(inst.cond, env) else inst.else_
        elif isinstance(inst, Ret):
            if inst.action is not None:
                target = (
                    self._val(inst.action.target, env)
                    if inst.action.target is not None
                    else None
                )
                return ActionOutcome(inst.action.kind, target)
            if inst.value is not None:
                return _ReturnValue(self._val(inst.value, env))
            return _ReturnValue(None)
        else:  # pragma: no cover - instruction set exhaustive
            raise InterpError(f"unhandled instruction {inst!r}")
        return None

    # -- helpers -------------------------------------------------------------------
    @staticmethod
    def _mask(ty) -> int:
        return ty.mask if isinstance(ty, IntType) else (1 << 64) - 1

    def _flat_local(self, slot: Alloca, indices: Sequence[Value], env) -> int:
        flat = 0
        for iv, dim in zip(indices, slot.shape.dims):
            idx = self._val(iv, env)
            if not 0 <= idx < dim:
                raise InterpError(f"local {slot.name}: index {idx} out of [0,{dim})")
            flat = flat * dim + idx
        return flat

    def _binop(self, inst: BinOp, env) -> int:
        ty = inst.type
        assert isinstance(ty, IntType)
        a = self._val(inst.a, env) & ty.mask
        b = self._val(inst.b, env) & ty.mask
        k = inst.kind
        if k == BinOpKind.ADD:
            r = a + b
        elif k == BinOpKind.SUB:
            r = a - b
        elif k == BinOpKind.MUL:
            r = a * b
        elif k == BinOpKind.UDIV:
            if b == 0:
                raise InterpError("division by zero")
            r = a // b
        elif k == BinOpKind.SDIV:
            sa, sb = ty.wrap(a), ty.wrap(b)
            if sb == 0:
                raise InterpError("division by zero")
            q = abs(sa) // abs(sb)
            r = -q if (sa < 0) != (sb < 0) else q
        elif k == BinOpKind.UREM:
            if b == 0:
                raise InterpError("remainder by zero")
            r = a % b
        elif k == BinOpKind.SREM:
            sa, sb = ty.wrap(a), ty.wrap(b)
            if sb == 0:
                raise InterpError("remainder by zero")
            r = abs(sa) % abs(sb)
            if sa < 0:
                r = -r
        elif k == BinOpKind.AND:
            r = a & b
        elif k == BinOpKind.OR:
            r = a | b
        elif k == BinOpKind.XOR:
            r = a ^ b
        elif k == BinOpKind.SHL:
            r = a << (b % ty.width) if b < ty.width else 0
        elif k == BinOpKind.LSHR:
            r = a >> b if b < ty.width else 0
        elif k == BinOpKind.ASHR:
            r = ty.wrap(a) >> min(b, ty.width - 1)
        elif k == BinOpKind.SADDU:
            r = min(a + b, ty.mask)
        elif k == BinOpKind.SSUBU:
            r = max(a - b, 0)
        else:  # pragma: no cover
            raise InterpError(f"unhandled binop {k}")
        return r & ty.mask

    def _icmp(self, inst: ICmp, env) -> int:
        ty = inst.a.type
        assert isinstance(ty, IntType)
        ua = self._val(inst.a, env) & ty.mask
        ub = self._val(inst.b, env) & ty.mask
        sa, sb = ty.wrap(ua) if ty.signed else ua, ty.wrap(ub) if ty.signed else ub
        # signed predicates reinterpret regardless of declared signedness
        swa = ua - (1 << ty.width) if ua >> (ty.width - 1) else ua
        swb = ub - (1 << ty.width) if ub >> (ty.width - 1) else ub
        p = inst.pred
        table = {
            ICmpPred.EQ: ua == ub,
            ICmpPred.NE: ua != ub,
            ICmpPred.ULT: ua < ub,
            ICmpPred.ULE: ua <= ub,
            ICmpPred.UGT: ua > ub,
            ICmpPred.UGE: ua >= ub,
            ICmpPred.SLT: swa < swb,
            ICmpPred.SLE: swa <= swb,
            ICmpPred.SGT: swa > swb,
            ICmpPred.SGE: swa >= swb,
        }
        return 1 if table[p] else 0

    def _cast(self, inst: Cast, env) -> int:
        src_ty = inst.value.type
        assert isinstance(src_ty, IntType) and isinstance(inst.type, IntType)
        v = self._val(inst.value, env) & src_ty.mask
        if inst.kind == CastKind.ZEXT:
            return v
        if inst.kind == CastKind.SEXT:
            if v >> (src_ty.width - 1):
                v |= inst.type.mask & ~src_ty.mask
            return v & inst.type.mask
        if inst.kind == CastKind.TRUNC:
            return v & inst.type.mask
        return v & inst.type.mask  # bitcast

    def _intrinsic(self, inst: Intrinsic, env) -> int:
        name = inst.callee
        args = [self._val(a, env) for a in inst.args]
        out_ty = inst.type
        assert isinstance(out_ty, IntType)
        if name == "device.id":
            return self.device_id & out_ty.mask
        if name == "device.kind":
            return 1  # switch
        if name == "ncl.rand":
            return self.rng.randrange(0, out_ty.mask + 1)
        if name.startswith("ncl.crc") or name in ("ncl.xor16", "ncl.identity"):
            fn_name = name.split(".", 1)[1]
            h = hashing.HASH_FUNCTIONS[fn_name]
            width = inst.args[0].type.width if inst.args else 32
            return hashing.truncate(h(args[0], width), out_ty.width)
        if name == "ncl.bswap":
            width = out_ty.width
            nbytes = width // 8
            v = args[0] & out_ty.mask
            return int.from_bytes(v.to_bytes(nbytes, "big"), "little")
        if name == "ncl.clz":
            w = inst.args[0].type.width
            v = args[0]
            return (w - v.bit_length()) & out_ty.mask
        if name == "ncl.ctz":
            v = args[0]
            if v == 0:
                return inst.args[0].type.width
            return (v & -v).bit_length() - 1
        if name == "ncl.popcount":
            return bin(args[0]).count("1") & out_ty.mask
        if name == "ncl.bit_chk":
            return (args[0] >> args[1]) & 1
        if name == "ncl.min":
            return min(args[0], args[1])
        if name == "ncl.max":
            return max(args[0], args[1])
        if name == "ncl.sadd":
            return min(args[0] + args[1], out_ty.mask)
        if name == "ncl.ssub":
            return max(args[0] - args[1], 0)
        if name == "ncl.csum16r":
            # One's-complement 16-bit checksum (v1model intrinsic).
            s = 0
            for a in args:
                s += a & 0xFFFF
                s = (s & 0xFFFF) + (s >> 16)
            return (~s) & 0xFFFF
        raise InterpError(f"unknown intrinsic {name}")


@dataclass
class _ReturnValue:
    value: Optional[int]
