"""Modules, functions, arguments, and global device memory."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator, Optional, Sequence

from repro.ir.blocks import BasicBlock
from repro.ir.instructions import Instruction, SourceLoc, Value
from repro.ir.types import ArrayShape, IntType


class MemSpace(str, Enum):
    """Memory class of a global declaration (§V-B of the paper)."""

    NET = "net"  # _net_: device-writable register memory
    MANAGED = "managed"  # _managed_: also host-writable via the control plane
    LOOKUP = "lookup"  # _lookup_: match-action table, searched not indexed
    MANAGED_LOOKUP = "managed_lookup"  # _managed_ _lookup_

    @property
    def is_lookup(self) -> bool:
        return self in (MemSpace.LOOKUP, MemSpace.MANAGED_LOOKUP)

    @property
    def is_managed(self) -> bool:
        return self in (MemSpace.MANAGED, MemSpace.MANAGED_LOOKUP)


class LookupKind(str, Enum):
    """Match discipline of ``_lookup_`` memory (Table I lookup types)."""

    SET = "set"  # scalar array: membership test, exact match
    KV = "kv"  # ncl::kv<K,V>: exact match, returns value
    RV = "rv"  # ncl::rv<R,V>: range match lo <= x <= hi, returns value


@dataclass
class LookupEntry:
    """One static initializer entry of a lookup array."""

    key_lo: int
    key_hi: int
    value: Optional[int] = None

    def matches(self, key: int) -> bool:
        return self.key_lo <= key <= self.key_hi


class GlobalVar(Value):
    """Statically-allocated global device memory.

    Capacity is fixed by the declaration for the lifetime of the program.
    Register-space globals are zero-initialized; lookup-space globals carry
    their initializer entries.
    """

    def __init__(
        self,
        name: str,
        elem: IntType,
        shape: ArrayShape = ArrayShape(),
        space: MemSpace = MemSpace.NET,
        locations: frozenset[int] = frozenset(),
        lookup_kind: Optional[LookupKind] = None,
        key_type: Optional[IntType] = None,
        value_type: Optional[IntType] = None,
        entries: Optional[list[LookupEntry]] = None,
        source_line: Optional[int] = None,
        col: int = 0,
    ) -> None:
        super().__init__(elem, name)
        self.name = name
        self.elem = elem
        self.shape = shape
        self.space = space
        self.locations = locations  # empty set = location-less (everywhere)
        self.lookup_kind = lookup_kind
        self.key_type = key_type
        self.value_type = value_type
        self.entries: list[LookupEntry] = entries or []
        self.source_line = source_line
        self.loc: Optional[SourceLoc] = (
            SourceLoc(source_line, col) if source_line is not None else None
        )

    @property
    def capacity(self) -> int:
        return self.shape.num_elements

    @property
    def bits(self) -> int:
        return self.elem.width * self.shape.num_elements

    def placed_at(self, device_id: int) -> bool:
        """Whether this declaration is included when compiling ``device_id``."""
        return not self.locations or device_id in self.locations

    def short(self) -> str:
        return f"@{self.name}"

    def __repr__(self) -> str:
        loc = f" _at({','.join(map(str, sorted(self.locations)))})" if self.locations else ""
        return f"@{self.name}: {self.space.value} {self.elem}{self.shape}{loc}"


class Argument(Value):
    """A kernel or net-function parameter.

    ``byref`` arguments alias NetCL message fields (updates visible to all
    receivers, §V-A); ``spec`` is the element count of the message field the
    argument occupies (the kernel *specification*).
    """

    def __init__(
        self,
        name: str,
        type_: IntType,
        *,
        byref: bool = False,
        spec: int = 1,
        is_array: bool = False,
        tail: bool = False,
    ) -> None:
        super().__init__(type_, name)
        self.byref = byref
        self.spec = spec
        self.is_array = is_array
        #: _tail_ argument: optional on the wire (§VIII extension)
        self.tail = tail

    def __repr__(self) -> str:
        ref = "&" if self.byref else ""
        arr = f"[{self.spec}]" if self.is_array else ""
        return f"{self.type}{ref} {self.name}{arr}"


class FunctionKind(str, Enum):
    KERNEL = "kernel"
    NETFN = "netfn"


class Function:
    """A kernel (``_kernel(c)``) or net function (``_net_``) in IR form."""

    def __init__(
        self,
        name: str,
        kind: FunctionKind,
        args: Sequence[Argument],
        *,
        computation: Optional[int] = None,
        locations: frozenset[int] = frozenset(),
        return_type: Optional[IntType] = None,
        source_line: Optional[int] = None,
        col: int = 0,
    ) -> None:
        self.name = name
        self.kind = kind
        self.args = list(args)
        self.computation = computation
        self.locations = locations
        self.return_type = return_type
        self.blocks: list[BasicBlock] = []
        self.source_line = source_line
        self.loc: Optional[SourceLoc] = (
            SourceLoc(source_line, col) if source_line is not None else None
        )

    # -- block management ----------------------------------------------------
    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def new_block(self, name: str = "") -> BasicBlock:
        if name:
            existing = {b.name for b in self.blocks}
            if name in existing:
                i = 1
                while f"{name}{i}" in existing:
                    i += 1
                name = f"{name}{i}"
        bb = BasicBlock(name, parent=self)
        self.blocks.append(bb)
        return bb

    def remove_block(self, bb: BasicBlock) -> None:
        self.blocks.remove(bb)
        bb.parent = None

    def instructions(self) -> Iterator[Instruction]:
        for bb in self.blocks:
            yield from bb.instructions

    @property
    def is_kernel(self) -> bool:
        return self.kind == FunctionKind.KERNEL

    def specification(self) -> tuple[tuple, ...]:
        """The kernel specification: per-argument (element count, type),
        with a "tail" marker for optional-on-the-wire arguments."""
        return tuple(
            (a.spec, str(a.type), "tail") if getattr(a, "tail", False)
            else (a.spec, str(a.type))
            for a in self.args
        )

    def replace_all_uses(self, old: Value, new: Value) -> None:
        for inst in self.instructions():
            if old in inst.operands:
                inst.replace_operand(old, new)

    def placed_at(self, device_id: int) -> bool:
        return not self.locations or device_id in self.locations

    def __repr__(self) -> str:
        args = ", ".join(repr(a) for a in self.args)
        tag = f"_kernel({self.computation})" if self.is_kernel else "_net_"
        loc = f" _at({','.join(map(str, sorted(self.locations)))})" if self.locations else ""
        return f"{tag}{loc} {self.name}({args})"


class Module:
    """A compiled NetCL translation unit: globals plus functions."""

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.globals: dict[str, GlobalVar] = {}
        self.functions: dict[str, Function] = {}
        #: (function name, line, col) of source statements the frontend
        #: dropped as unreachable — consumed by the NCL006 lint.
        self.dropped_statements: list[tuple[str, int, int]] = []

    def add_global(self, gv: GlobalVar) -> GlobalVar:
        if gv.name in self.globals:
            raise ValueError(f"duplicate global {gv.name}")
        self.globals[gv.name] = gv
        return gv

    def add_function(self, fn: Function) -> Function:
        if fn.name in self.functions:
            raise ValueError(f"duplicate function {fn.name}")
        self.functions[fn.name] = fn
        return fn

    def kernels(self) -> list[Function]:
        return [f for f in self.functions.values() if f.is_kernel]

    def netfns(self) -> list[Function]:
        return [f for f in self.functions.values() if not f.is_kernel]

    def kernels_at(self, device_id: int) -> list[Function]:
        """Kernels included when compiling for ``device_id`` (§V-C)."""
        return [f for f in self.kernels() if f.placed_at(device_id)]

    def globals_at(self, device_id: int) -> list[GlobalVar]:
        return [g for g in self.globals.values() if g.placed_at(device_id)]

    def dump(self) -> str:
        """Human-readable listing of the whole module (for tests/debugging)."""
        lines: list[str] = [f"; module {self.name}"]
        for gv in self.globals.values():
            lines.append(repr(gv))
        for fn in self.functions.values():
            lines.append("")
            lines.append(repr(fn) + " {")
            for bb in fn.blocks:
                lines.append(f"{bb.name}:")
                for inst in bb.instructions:
                    lines.append(f"  {inst!r}")
            lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<Module {self.name}: {len(self.globals)} globals, "
            f"{len(self.functions)} functions>"
        )
