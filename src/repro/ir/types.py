"""IR type system: fixed-width integers and array shapes.

P4 targets expose ``bit<W>`` values only, so the IR type lattice is tiny:
booleans are 1-bit integers, every scalar is an N-bit (un)signed integer
with wrapping arithmetic, and aggregates are rectangular arrays of scalars
(global device memory / message field arrays).  There are no pointers —
§V-D of the paper: the compiler must always be able to infer a base object
and a regular offset, so pointer arithmetic and casts are rejected in the
frontend and never reach the IR.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache


@dataclass(frozen=True)
class IntType:
    """A fixed-width integer type (``bit<W>`` / ``int<W>`` in P4 terms)."""

    width: int
    signed: bool = False

    def __post_init__(self) -> None:
        if self.width < 1 or self.width > 64:
            raise ValueError(f"unsupported integer width {self.width}")

    @property
    def mask(self) -> int:
        """Bit mask selecting the value bits of this type."""
        return (1 << self.width) - 1

    @property
    def min_value(self) -> int:
        return -(1 << (self.width - 1)) if self.signed else 0

    @property
    def max_value(self) -> int:
        if self.signed:
            return (1 << (self.width - 1)) - 1
        return (1 << self.width) - 1

    def wrap(self, v: int) -> int:
        """Reduce an arbitrary Python int to this type's value range."""
        v &= self.mask
        if self.signed and v >> (self.width - 1):
            v -= 1 << self.width
        return v

    def saturate(self, v: int) -> int:
        """Clamp an arbitrary Python int to this type's value range."""
        return max(self.min_value, min(self.max_value, v))

    def to_unsigned(self, v: int) -> int:
        """Reinterpret a wrapped value as its unsigned bit pattern."""
        return v & self.mask

    def __str__(self) -> str:
        return f"{'i' if self.signed else 'u'}{self.width}"


@dataclass(frozen=True)
class VoidType:
    """The type of instructions that produce no value."""

    def __str__(self) -> str:
        return "void"


BOOL = IntType(1)
U8 = IntType(8)
U16 = IntType(16)
U32 = IntType(32)
U64 = IntType(64)
I8 = IntType(8, signed=True)
I16 = IntType(16, signed=True)
I32 = IntType(32, signed=True)
I64 = IntType(64, signed=True)

VOID = VoidType()


@lru_cache(maxsize=None)
def int_type(width: int, signed: bool = False) -> IntType:
    """Interned constructor for :class:`IntType`."""
    return IntType(width, signed)


@dataclass(frozen=True)
class ArrayShape:
    """Rectangular shape of a global memory object or message field array.

    ``dims == ()`` denotes a scalar.  Dimensions are static for the lifetime
    of the program (§V-B: global memory cannot be freed or resized).
    """

    dims: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        for d in self.dims:
            if d < 1:
                raise ValueError(f"array dimension must be positive, got {d}")

    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def num_elements(self) -> int:
        n = 1
        for d in self.dims:
            n *= d
        return n

    def drop_outer(self) -> "ArrayShape":
        """Shape of one slice along the outermost dimension."""
        if not self.dims:
            raise ValueError("cannot drop a dimension of a scalar shape")
        return ArrayShape(self.dims[1:])

    def __str__(self) -> str:
        return "".join(f"[{d}]" for d in self.dims) if self.dims else "scalar"
