"""Structural IR verifier.

Run after frontend lowering and between passes (in pass-manager debug mode)
to catch malformed IR early: unterminated blocks, uses of values from
non-dominating blocks, phi/predecessor mismatches, type mismatches on
binary operations, and dangling block references.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.ir.blocks import BasicBlock
from repro.ir.dominators import DominatorTree, reachable_blocks
from repro.ir.instructions import (
    BinOp,
    Constant,
    ICmp,
    Instruction,
    Phi,
    Select,
    Terminator,
    Undef,
    Value,
)
from repro.ir.module import Argument, Function, GlobalVar, Module
from repro.ir.types import IntType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.diagnostics import DiagnosticEngine

class IRVerifyError(Exception):
    """The IR violates a structural invariant."""


def _err(fn: Function, msg: str) -> None:
    raise IRVerifyError(f"in function {fn.name}: {msg}")


def verify_function(fn: Function, engine: Optional["DiagnosticEngine"] = None) -> None:
    """Check structural invariants; raises :class:`IRVerifyError`.

    With an ``engine``, the first violation is reported as an ``NCL110``
    diagnostic (anchored at the function declaration) and verification of
    this function stops without raising — lint mode keeps collecting.
    """
    if engine is not None:
        try:
            verify_function(fn)
        except IRVerifyError as e:
            engine.emit("NCL110", str(e), fn.loc)
        return
    if not fn.blocks:
        _err(fn, "function has no blocks")

    block_ids = {id(bb) for bb in fn.blocks}
    defined: dict[int, BasicBlock] = {}

    for bb in fn.blocks:
        term = bb.terminator
        if term is None:
            _err(fn, f"block {bb.name} is not terminated")
        for i, inst in enumerate(bb.instructions):
            if isinstance(inst, Terminator) and inst is not term:
                _err(fn, f"block {bb.name} has a terminator mid-block")
            if inst.parent is not bb:
                _err(fn, f"instruction {inst!r} has stale parent pointer")
            defined[id(inst)] = bb
        for succ in bb.successors():
            if id(succ) not in block_ids:
                _err(fn, f"block {bb.name} branches to unlisted block {succ.name}")

    # Phi nodes: one incoming value per predecessor, and phis lead the block.
    for bb in fn.blocks:
        preds = bb.predecessors()
        seen_non_phi = False
        for inst in bb.instructions:
            if isinstance(inst, Phi):
                if seen_non_phi:
                    _err(fn, f"phi {inst.name} not at head of block {bb.name}")
                inc_blocks = [b for _, b in inst.incoming]
                if len(inc_blocks) != len(preds) or {id(b) for b in inc_blocks} != {
                    id(p) for p in preds
                }:
                    _err(
                        fn,
                        f"phi {inst.name} in {bb.name} does not match predecessors "
                        f"({[b.name for b in inc_blocks]} vs {[p.name for p in preds]})",
                    )
            else:
                seen_non_phi = True

    # Type checks on value-producing instructions.
    for bb in fn.blocks:
        for inst in bb.instructions:
            if isinstance(inst, BinOp) and inst.a.type != inst.b.type:
                _err(fn, f"binop operand type mismatch: {inst!r}")
            if isinstance(inst, ICmp) and inst.a.type != inst.b.type:
                _err(fn, f"icmp operand type mismatch: {inst!r}")
            if isinstance(inst, Select) and inst.t.type != inst.f.type:
                _err(fn, f"select arm type mismatch: {inst!r}")

    # Dominance: every instruction operand must be an argument, constant,
    # global, undef, or an instruction whose definition dominates the use.
    reachable = reachable_blocks(fn)
    dt = DominatorTree(fn)
    args = {id(a) for a in fn.args}
    for bb in fn.blocks:
        if id(bb) not in reachable:
            continue
        for inst in bb.instructions:
            operand_lists: list[Value] = list(inst.operands)
            for op in operand_lists:
                if isinstance(op, (Constant, GlobalVar, Undef)) or id(op) in args:
                    continue
                if isinstance(op, Argument):
                    continue
                if isinstance(op, Instruction):
                    def_bb = defined.get(id(op))
                    if def_bb is None:
                        _err(fn, f"{inst!r} uses value {op.short()} not defined in function")
                    if id(def_bb) not in reachable:
                        continue
                    if isinstance(inst, Phi):
                        inc = dict((id(v), b) for v, b in inst.incoming)
                        # value must dominate the incoming edge's source block
                        src = inc.get(id(op))
                        if src is not None and not dt.dominates(def_bb, src):
                            _err(
                                fn,
                                f"phi {inst.name}: incoming {op.short()} from "
                                f"{src.name} not dominated by def in {def_bb.name}",
                            )
                    elif def_bb is bb:
                        if bb.instructions.index(op) >= bb.instructions.index(inst):
                            _err(fn, f"{inst!r} uses {op.short()} before definition")
                    elif not dt.dominates(def_bb, bb):
                        _err(
                            fn,
                            f"{inst!r} in {bb.name} uses {op.short()} defined in "
                            f"non-dominating block {def_bb.name}",
                        )
                elif not isinstance(op, Value):
                    _err(fn, f"{inst!r} has non-Value operand {op!r}")


def verify_module(mod: Module, engine: Optional["DiagnosticEngine"] = None) -> None:
    for fn in mod.functions.values():
        verify_function(fn, engine)
    for gv in mod.globals.values():
        try:
            if not isinstance(gv.elem, IntType):
                raise IRVerifyError(f"global {gv.name} has non-integer element type")
            if gv.space.is_lookup and gv.lookup_kind is None:
                raise IRVerifyError(f"lookup global {gv.name} missing lookup kind")
        except IRVerifyError as e:
            if engine is None:
                raise
            engine.emit("NCL110", str(e), gv.loc)
