"""NetCL language frontend.

Parses the NetCL C/C++ subset (Table I of the paper): kernel and net
functions, the ``_kernel``/``_at``/``_net_``/``_managed_``/``_lookup_``/
``_spec`` specifiers, the ``ncl::`` device library, and the ``kv``/``rv``
lookup types.  Semantic analysis enforces the placement and reference
validity rules of §V-C and the restrictions of §V-D, and lowering produces
:mod:`repro.ir` modules.
"""

from repro.lang.errors import CompileError, Diagnostic
from repro.lang.lexer import Lexer, Token, TokenKind
from repro.lang.parser import Parser, parse_source
from repro.lang.sema import analyze
from repro.lang.lower import lower_to_ir

__all__ = [
    "CompileError",
    "Diagnostic",
    "Lexer",
    "Token",
    "TokenKind",
    "Parser",
    "parse_source",
    "analyze",
    "lower_to_ir",
]
