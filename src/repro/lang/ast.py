"""AST for the NetCL C/C++ subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union


# -- source-level types --------------------------------------------------------


@dataclass(frozen=True)
class ScalarType:
    """A fundamental integer type, by width and signedness."""

    width: int
    signed: bool
    name: str = ""

    def __str__(self) -> str:
        return self.name or f"{'i' if self.signed else 'u'}{self.width}"


@dataclass(frozen=True)
class AutoType:
    """``auto``; resolved from the initializer during lowering."""

    def __str__(self) -> str:
        return "auto"


@dataclass(frozen=True)
class VoidSrcType:
    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class LookupPairType:
    """``ncl::kv<K,V>`` or ``ncl::rv<R,V>`` (Table I lookup types)."""

    kind: str  # "kv" | "rv"
    key: ScalarType
    value: ScalarType

    def __str__(self) -> str:
        return f"ncl::{self.kind}<{self.key},{self.value}>"


SrcType = Union[ScalarType, AutoType, VoidSrcType, LookupPairType]


# -- declarations ----------------------------------------------------------------


@dataclass
class Specifiers:
    """Accumulated NetCL declaration specifiers (Table I)."""

    kernel: Optional[int] = None  # _kernel(c)
    net: bool = False  # _net_
    managed: bool = False  # _managed_
    lookup: bool = False  # _lookup_
    at: Optional[tuple[int, ...]] = None  # _at(l, ...)
    static: bool = False
    const: bool = False

    @property
    def is_device(self) -> bool:
        return self.kernel is not None or self.net or self.managed or self.lookup


@dataclass
class Node:
    line: int = 0
    col: int = 0  # 1-based column of the node's first token (0 = unknown)


@dataclass
class Expr(Node):
    pass


@dataclass
class Num(Expr):
    value: int = 0


@dataclass
class Ident(Expr):
    name: str = ""


@dataclass
class Member(Expr):
    """``base.field`` — used for the ``device.id`` / ``msg.src`` builtins."""

    base: str = ""
    field_name: str = ""


@dataclass
class Unary(Expr):
    op: str = ""
    operand: Optional[Expr] = None
    prefix: bool = True  # for ++/--


@dataclass
class Binary(Expr):
    op: str = ""
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class Assign(Expr):
    op: str = "="  # =, +=, -=, ...
    target: Optional[Expr] = None
    value: Optional[Expr] = None


@dataclass
class Ternary(Expr):
    cond: Optional[Expr] = None
    then: Optional[Expr] = None
    els: Optional[Expr] = None


@dataclass
class Call(Expr):
    """A function call; ``is_ncl`` marks ``ncl::`` (builtin) callees.

    ``template_args`` carries things like the output width of
    ``ncl::crc32<16>`` or the result type of ``ncl::rand<u8>``.
    """

    name: str = ""
    args: list[Expr] = field(default_factory=list)
    is_ncl: bool = False
    template_args: list[object] = field(default_factory=list)


@dataclass
class Index(Expr):
    base: Optional[Expr] = None
    index: Optional[Expr] = None


@dataclass
class InitList(Expr):
    items: list[Expr] = field(default_factory=list)


# -- statements --------------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class Block(Stmt):
    stmts: list[Stmt] = field(default_factory=list)


@dataclass
class VarDecl(Stmt):
    """Variable declaration: global device memory or a function-local."""

    specs: Specifiers = field(default_factory=Specifiers)
    type: SrcType = field(default_factory=AutoType)
    name: str = ""
    dims: tuple[int, ...] = ()
    init: Optional[Expr] = None


@dataclass
class If(Stmt):
    cond: Optional[Expr] = None
    then: Optional[Stmt] = None
    els: Optional[Stmt] = None


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


# -- functions ------------------------------------------------------------------------


@dataclass
class Param(Node):
    """A kernel or net-function parameter.

    ``byref`` for C++ references (message-visible updates), ``ptr`` for
    pointer parameters (always message field arrays, sized by ``spec``),
    ``dims`` for array declarators (``int x[3]`` — no decay in kernel
    declarations, §V-A).
    """

    type: SrcType = field(default_factory=AutoType)
    name: str = ""
    byref: bool = False
    ptr: bool = False
    spec: Optional[int] = None
    dims: tuple[int, ...] = ()
    #: _tail_ argument (§VIII extension): optional on the wire; senders
    #: may omit it and the device appends it to the message.
    tail: bool = False

    @property
    def is_array(self) -> bool:
        return self.ptr or bool(self.dims)

    @property
    def element_count(self) -> int:
        if self.dims:
            n = 1
            for d in self.dims:
                n *= d
            return n
        if self.ptr:
            return self.spec if self.spec is not None else 1
        return 1


@dataclass
class FuncDecl(Node):
    specs: Specifiers = field(default_factory=Specifiers)
    ret_type: SrcType = field(default_factory=VoidSrcType)
    name: str = ""
    params: list[Param] = field(default_factory=list)
    body: Optional[Block] = None

    @property
    def is_kernel(self) -> bool:
        return self.specs.kernel is not None

    @property
    def is_netfn(self) -> bool:
        return self.specs.net and self.specs.kernel is None


@dataclass
class Program(Node):
    decls: list[Union[VarDecl, FuncDecl]] = field(default_factory=list)

    def functions(self) -> list[FuncDecl]:
        return [d for d in self.decls if isinstance(d, FuncDecl)]

    def globals(self) -> list[VarDecl]:
        return [d for d in self.decls if isinstance(d, VarDecl)]
