"""The ``ncl::`` device library (Table I / Table II of the paper).

Three families:

* **Actions** — declarative forwarding; only legal in ``return`` position
  of device code.
* **Atomics** — read-modify-write on global memory, with the conditional /
  saturating / value-returning variants that map 1:1 onto Tofino SALU
  microprograms (§V-D).
* **Pure builtins** — hashes, math/binary helpers, and target intrinsics
  (``ncl::tna::*``, ``ncl::v1::*``).

Host-library names (``ncl::managed_read`` etc.) are listed so sema can give
a precise error when they appear in device code.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from repro.ir.instructions import ActionKind, AtomicOp

#: source call name -> forwarding action
ACTIONS: dict[str, ActionKind] = {
    "drop": ActionKind.DROP,
    "send_to_host": ActionKind.SEND_TO_HOST,
    "send_to_device": ActionKind.SEND_TO_DEVICE,
    "multicast": ActionKind.MULTICAST,
    "repeat": ActionKind.REPEAT,
    "reflect": ActionKind.REFLECT,
    "reflect_long": ActionKind.REFLECT_LONG,
    "pass": ActionKind.PASS,
}


@dataclass(frozen=True)
class AtomicSpec:
    """Decoded form of an ``ncl::atomic_*`` builtin name."""

    op: AtomicOp
    conditional: bool
    saturating: bool
    return_new: bool
    implicit_operand: Optional[int] = None  # inc/dec carry their own +1/-1

    @property
    def operand_count(self) -> int:
        """Value operands after the memory reference and optional condition."""
        if self.op == AtomicOp.CAS:
            return 2  # compare, desired
        if self.op == AtomicOp.READ or self.implicit_operand is not None:
            return 0
        return 1


_ATOMIC_RE = re.compile(
    r"^atomic_(?:(cond)_)?(s)?(add|sub|inc|dec|and|or|xor|min|max|exch|cas|read|write)(_new)?$"
)

_OP_MAP = {
    "add": AtomicOp.ADD,
    "sub": AtomicOp.SUB,
    "inc": AtomicOp.ADD,
    "dec": AtomicOp.SUB,
    "and": AtomicOp.AND,
    "or": AtomicOp.OR,
    "xor": AtomicOp.XOR,
    "min": AtomicOp.MIN,
    "max": AtomicOp.MAX,
    "exch": AtomicOp.EXCH,
    "cas": AtomicOp.CAS,
    "read": AtomicOp.READ,
    "write": AtomicOp.WRITE,
}


def parse_atomic(name: str) -> Optional[AtomicSpec]:
    """Decode an atomic builtin name, or None if ``name`` is not one."""
    m = _ATOMIC_RE.match(name)
    if m is None:
        return None
    cond, sat, op_name, new = m.groups()
    if sat and op_name not in ("add", "sub", "inc", "dec"):
        return None  # saturation only defined for arithmetic
    implicit = 1 if op_name in ("inc", "dec") else None
    return AtomicSpec(
        op=_OP_MAP[op_name],
        conditional=cond is not None,
        saturating=sat is not None,
        return_new=new is not None,
        implicit_operand=implicit,
    )


@dataclass(frozen=True)
class PureBuiltin:
    """A pure device-library function lowered to an :class:`Intrinsic`."""

    intrinsic: str
    arg_count: int
    # Result width: fixed number of bits, "arg" (same as first argument),
    # or "template" (from the <N> template argument, e.g. crc32<16>).
    result_bits: int | str = "arg"
    allows_template_bits: bool = False


PURE_BUILTINS: dict[str, PureBuiltin] = {
    "crc16": PureBuiltin("ncl.crc16", 1, 16, allows_template_bits=True),
    "crc32": PureBuiltin("ncl.crc32", 1, 32, allows_template_bits=True),
    "xor16": PureBuiltin("ncl.xor16", 1, 16, allows_template_bits=True),
    "identity": PureBuiltin("ncl.identity", 1, "arg", allows_template_bits=True),
    "sadd": PureBuiltin("ncl.sadd", 2, "arg"),
    "ssub": PureBuiltin("ncl.ssub", 2, "arg"),
    "min": PureBuiltin("ncl.min", 2, "arg"),
    "max": PureBuiltin("ncl.max", 2, "arg"),
    "bit_chk": PureBuiltin("ncl.bit_chk", 2, 1),
    "bswap": PureBuiltin("ncl.bswap", 1, "arg"),
    "clz": PureBuiltin("ncl.clz", 1, "arg"),
    "ctz": PureBuiltin("ncl.ctz", 1, "arg"),
    "popcount": PureBuiltin("ncl.popcount", 1, "arg"),
    "rand": PureBuiltin("ncl.rand", 0, "template"),
    # Target intrinsics (Table I: ncl::tna::crc64, ncl::v1::csum16r)
    "tna.crc64": PureBuiltin("ncl.crc64", 1, 64, allows_template_bits=True),
    "v1.csum16r": PureBuiltin("ncl.csum16r", 2, 16),
}

#: Host-library names — calling these from device code is a sema error.
HOST_ONLY = {
    "managed_read",
    "managed_write",
    "managed_insert",
    "managed_remove",
    "managed_modify",
    "message",
    "pack",
    "unpack",
    "device_connection",
}

#: Builtins whose target availability differs (used by per-target checks).
TNA_ONLY = {"tna.crc64"}
V1_ONLY = {"v1.csum16r"}


def is_builtin(name: str) -> bool:
    return (
        name in ACTIONS
        or name in PURE_BUILTINS
        or name == "lookup"
        or parse_atomic(name) is not None
    )
