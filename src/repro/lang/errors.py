"""Compiler diagnostics."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Diagnostic:
    """One compiler message, tied to a source location.

    ``code`` is the stable ``NCLxxx`` identifier used by the analysis
    engine for suppression (``-Wno-NCLxxx``) and machine-readable output;
    empty for legacy call sites that predate coded diagnostics.
    """

    message: str
    line: int = 0
    col: int = 0
    severity: str = "error"
    code: str = ""

    def __str__(self) -> str:
        loc = f"{self.line}:{self.col}: " if self.line else ""
        tag = f" [{self.code}]" if self.code else ""
        return f"{loc}{self.severity}: {self.message}{tag}"


class CompileError(Exception):
    """Raised when compilation cannot proceed.

    Carries one or more :class:`Diagnostic` records; semantic analysis
    accumulates all errors it can before raising so the programmer sees
    every placement/reference violation at once.
    """

    def __init__(self, diagnostics: list[Diagnostic] | str, line: int = 0, col: int = 0) -> None:
        if isinstance(diagnostics, str):
            diagnostics = [Diagnostic(diagnostics, line, col)]
        self.diagnostics = diagnostics
        super().__init__("\n".join(str(d) for d in diagnostics))

    @property
    def first(self) -> Diagnostic:
        return self.diagnostics[0]
