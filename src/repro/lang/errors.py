"""Compiler diagnostics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class Diagnostic:
    """One compiler message, tied to a source location."""

    message: str
    line: int = 0
    col: int = 0
    severity: str = "error"

    def __str__(self) -> str:
        loc = f"{self.line}:{self.col}: " if self.line else ""
        return f"{loc}{self.severity}: {self.message}"


class CompileError(Exception):
    """Raised when compilation cannot proceed.

    Carries one or more :class:`Diagnostic` records; semantic analysis
    accumulates all errors it can before raising so the programmer sees
    every placement/reference violation at once.
    """

    def __init__(self, diagnostics: list[Diagnostic] | str, line: int = 0, col: int = 0) -> None:
        if isinstance(diagnostics, str):
            diagnostics = [Diagnostic(diagnostics, line, col)]
        self.diagnostics = diagnostics
        super().__init__("\n".join(str(d) for d in diagnostics))

    @property
    def first(self) -> Diagnostic:
        return self.diagnostics[0]
