"""Lexer for the NetCL C/C++ subset, with a tiny object-macro preprocessor.

The preprocessor supports ``//`` and ``/* */`` comments and object-like
``#define NAME value`` macros (the only preprocessor feature the paper's
applications use — e.g. ``CMS_HASHES``, ``NUM_SLOTS``, ``THRESH``).
Function-like macros are intentionally unsupported: NetCL's whole pitch is
that loop unrolling and code generation replace P4's preprocessor abuse
(§II, [53] [54]).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Iterator, Optional

from repro.lang.errors import CompileError


class TokenKind(Enum):
    IDENT = auto()
    NUMBER = auto()
    CHARLIT = auto()
    STRING = auto()
    PUNCT = auto()
    KEYWORD = auto()
    EOF = auto()


KEYWORDS = {
    "if",
    "else",
    "for",
    "while",
    "do",
    "return",
    "break",
    "continue",
    "goto",
    "struct",
    "void",
    "bool",
    "char",
    "short",
    "int",
    "long",
    "unsigned",
    "signed",
    "auto",
    "const",
    "static",
    "true",
    "false",
    "sizeof",
    "switch",
    "case",
    "default",
    # NetCL specifiers (Table I)
    "_kernel",
    "_net_",
    "_managed_",
    "_lookup_",
    "_at",
    "_spec",
    "_tail_",
}

# Multi-character punctuators, longest first so maximal munch works.
PUNCTUATORS = [
    "<<=",
    ">>=",
    "...",
    "->",
    "++",
    "--",
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "::",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    ";",
    ",",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "%",
    "&",
    "|",
    "^",
    "~",
    "!",
    "=",
    "?",
    ":",
    ".",
]


@dataclass
class Token:
    kind: TokenKind
    text: str
    line: int
    col: int
    value: Optional[int] = None  # numeric value for NUMBER / CHARLIT

    def is_punct(self, text: str) -> bool:
        return self.kind == TokenKind.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind == TokenKind.KEYWORD and self.text == text

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r} @{self.line}:{self.col})"


def _strip_comments(src: str) -> str:
    """Replace comments with spaces, preserving line structure."""
    out: list[str] = []
    i, n = 0, len(src)
    while i < n:
        c = src[i]
        if c == "/" and i + 1 < n and src[i + 1] == "/":
            while i < n and src[i] != "\n":
                i += 1
        elif c == "/" and i + 1 < n and src[i + 1] == "*":
            i += 2
            while i + 1 < n and not (src[i] == "*" and src[i + 1] == "/"):
                if src[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        else:
            out.append(c)
            i += 1
    return "".join(out)


def preprocess(src: str, extra_defines: Optional[dict[str, int]] = None) -> tuple[str, dict[str, str]]:
    """Strip comments and collect ``#define`` macros.

    Returns the source with directive lines blanked, plus the macro table.
    ``extra_defines`` lets callers (e.g. benchmark parameter sweeps) inject
    compile-time constants, like ``-D`` on a C compiler command line.
    """
    src = _strip_comments(src)
    macros: dict[str, str] = {}
    if extra_defines:
        macros.update({k: str(v) for k, v in extra_defines.items()})
    lines = src.split("\n")
    out_lines: list[str] = []
    # Conditional-inclusion stack: each entry is True when the enclosing
    # #if(n)def branch is active.
    cond_stack: list[bool] = []

    def active() -> bool:
        return all(cond_stack)

    for lineno, line in enumerate(lines, start=1):
        stripped = line.strip()
        if stripped.startswith("#"):
            parts = stripped[1:].split(None, 2)
            if not parts:
                out_lines.append("")
                continue
            directive = parts[0]
            if directive == "ifdef":
                cond_stack.append(len(parts) > 1 and parts[1] in macros)
            elif directive == "ifndef":
                cond_stack.append(not (len(parts) > 1 and parts[1] in macros))
            elif directive == "else":
                if not cond_stack:
                    raise CompileError("#else without #if", lineno)
                cond_stack[-1] = not cond_stack[-1]
            elif directive == "endif":
                if not cond_stack:
                    raise CompileError("#endif without #if", lineno)
                cond_stack.pop()
            elif not active():
                pass  # directive inside an inactive branch
            elif directive == "define":
                if len(parts) < 2:
                    raise CompileError("malformed #define", lineno)
                name = parts[1]
                if "(" in name:
                    raise CompileError(
                        "function-like macros are not supported in NetCL", lineno
                    )
                macros[name] = parts[2].strip() if len(parts) > 2 else "1"
            elif directive == "undef":
                if len(parts) > 1:
                    macros.pop(parts[1], None)
            elif directive in ("include", "pragma", "if"):
                pass  # tolerated and ignored: NetCL headers are implicit
            else:
                raise CompileError(f"unsupported directive #{directive}", lineno)
            out_lines.append("")
        elif not active():
            out_lines.append("")
        else:
            out_lines.append(line)
    if cond_stack:
        raise CompileError("unterminated #if/#ifdef/#ifndef block", len(lines))
    return "\n".join(out_lines), macros


class Lexer:
    """Produces the token stream, expanding object-like macros."""

    def __init__(self, source: str, extra_defines: Optional[dict[str, int]] = None) -> None:
        self.source, self.macros = preprocess(source, extra_defines)
        self.tokens = list(self._tokenize())

    def _tokenize(self) -> Iterator[Token]:
        src = self.source
        i, n = 0, len(src)
        line, col = 1, 1

        def advance(k: int) -> None:
            nonlocal i, line, col
            for _ in range(k):
                if i < n and src[i] == "\n":
                    line += 1
                    col = 1
                else:
                    col += 1
                i += 1

        while i < n:
            c = src[i]
            if c.isspace():
                advance(1)
                continue
            start_line, start_col = line, col
            if c.isalpha() or c == "_":
                j = i
                while j < n and (src[j].isalnum() or src[j] == "_"):
                    j += 1
                text = src[i:j]
                advance(j - i)
                if text in self.macros:
                    yield from self._expand_macro(text, start_line, start_col, set())
                elif text in KEYWORDS:
                    if text == "true":
                        yield Token(TokenKind.NUMBER, "1", start_line, start_col, 1)
                    elif text == "false":
                        yield Token(TokenKind.NUMBER, "0", start_line, start_col, 0)
                    else:
                        yield Token(TokenKind.KEYWORD, text, start_line, start_col)
                else:
                    yield Token(TokenKind.IDENT, text, start_line, start_col)
                continue
            if c.isdigit():
                j = i
                if src.startswith("0x", i) or src.startswith("0X", i):
                    j = i + 2
                    while j < n and (src[j] in "0123456789abcdefABCDEF"):
                        j += 1
                    value = int(src[i:j], 16)
                elif src.startswith("0b", i) or src.startswith("0B", i):
                    j = i + 2
                    while j < n and src[j] in "01":
                        j += 1
                    value = int(src[i:j], 2)
                else:
                    while j < n and src[j].isdigit():
                        j += 1
                    value = int(src[i:j])
                # Swallow integer suffixes (u, l, ul, ull ...)
                while j < n and src[j] in "uUlL":
                    j += 1
                text = src[i:j]
                advance(j - i)
                yield Token(TokenKind.NUMBER, text, start_line, start_col, value)
                continue
            if c == "'":
                j = i + 1
                if j < n and src[j] == "\\":
                    esc = src[j + 1]
                    table = {"n": 10, "t": 9, "0": 0, "r": 13, "\\": 92, "'": 39}
                    if esc not in table:
                        raise CompileError(f"unsupported escape '\\{esc}'", line, col)
                    value = table[esc]
                    j += 2
                else:
                    value = ord(src[j])
                    j += 1
                if j >= n or src[j] != "'":
                    raise CompileError("unterminated character literal", line, col)
                j += 1
                text = src[i:j]
                advance(j - i)
                yield Token(TokenKind.CHARLIT, text, start_line, start_col, value)
                continue
            if c == '"':
                j = i + 1
                while j < n and src[j] != '"':
                    j += 2 if src[j] == "\\" else 1
                if j >= n:
                    raise CompileError("unterminated string literal", line, col)
                text = src[i : j + 1]
                advance(j + 1 - i)
                yield Token(TokenKind.STRING, text, start_line, start_col)
                continue
            for p in PUNCTUATORS:
                if src.startswith(p, i):
                    advance(len(p))
                    yield Token(TokenKind.PUNCT, p, start_line, start_col)
                    break
            else:
                raise CompileError(f"unexpected character {c!r}", line, col)
        yield Token(TokenKind.EOF, "", line, col)

    def _expand_macro(self, name: str, line: int, col: int, active: set[str]) -> Iterator[Token]:
        """Recursively expand an object-like macro body into tokens."""
        if name in active:
            raise CompileError(f"recursive macro {name}", line, col)
        body = self.macros[name]
        sub = Lexer.__new__(Lexer)
        sub.source = body
        sub.macros = {}  # raw tokenization; nested expansion handled below
        for tok in sub._tokenize():
            if tok.kind == TokenKind.EOF:
                break
            if tok.kind == TokenKind.IDENT and tok.text in self.macros:
                yield from self._expand_macro(tok.text, line, col, active | {name})
            else:
                yield Token(tok.kind, tok.text, line, col, tok.value)
