"""Lowering from the NetCL AST to :mod:`repro.ir`.

Responsibilities beyond plain translation:

* **Net-function inlining.**  Calls to ``_net_`` functions are expanded at
  their call sites with by-reference parameters aliased to the caller's
  lvalues — the same effect as the paper's LLVM-level inline pass (§VI-B),
  performed during lowering.
* **Full loop unrolling.**  ``for`` loops with compile-time trip counts are
  unrolled by binding the induction variable to a constant per iteration;
  anything else is rejected (§V-D: only fully-unrollable loops).
* **Kernel argument ABI.**  By-value scalars are copied into locals at
  entry (device-local modifications, §V-A); by-reference scalars and all
  array arguments read/write NetCL message fields directly.
* **Action discipline.**  Forwarding actions may only appear in ``return``
  statements; every fall-through path gets the implicit ``pass()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.lang import ast
from repro.lang import builtins as bi
from repro.lang.errors import CompileError
from repro.lang.sema import FuncInfo, GlobalInfo, SemaResult
from repro.ir.blocks import BasicBlock
from repro.ir.builder import IRBuilder
from repro.ir.instructions import (
    ActionKind,
    Alloca,
    BinOpKind,
    Cast,
    Constant,
    ICmpPred,
    Value,
)
from repro.ir.module import Argument, Function, FunctionKind, GlobalVar, Module
from repro.ir.types import ArrayShape, IntType, U8, U16, U32, int_type

MAX_UNROLL = 4096  # hard cap on loop unrolling (runaway-loop backstop)


# -- lvalues -------------------------------------------------------------------


@dataclass
class LocalLV:
    slot: Alloca
    indices: list[Value]


@dataclass
class MsgLV:
    field: str
    elem: IntType
    index: Optional[Value]  # None for scalar fields


@dataclass
class GlobalLV:
    gv: GlobalVar
    indices: list[Value]


LValue = Union[LocalLV, MsgLV, GlobalLV]


# -- bindings ------------------------------------------------------------------


@dataclass
class LocalBinding:
    slot: Alloca


@dataclass
class MsgScalarBinding:
    field: str
    elem: IntType


@dataclass
class MsgArrayBinding:
    field: str
    elem: IntType
    count: int


@dataclass
class GlobalBinding:
    info: GlobalInfo
    gv: GlobalVar


@dataclass
class ConstBinding:
    """An unrolled induction variable, pinned to a constant this iteration."""

    value: Constant


@dataclass
class AliasBinding:
    """A net-function by-reference parameter aliasing a caller lvalue."""

    lv: LValue


Binding = Union[
    LocalBinding, MsgScalarBinding, MsgArrayBinding, GlobalBinding, ConstBinding, AliasBinding
]


def _ir_type(ty: ast.SrcType, line: int = 0) -> IntType:
    if isinstance(ty, ast.ScalarType):
        return int_type(ty.width, ty.signed)
    raise CompileError(f"expected a fundamental type, got {ty}", line)


class _FunctionLowering:
    """Lowers one kernel (or standalone net function) to IR."""

    def __init__(self, lowering: "_ModuleLowering", info: FuncInfo) -> None:
        self.ctx = lowering
        self.info = info
        self.sema = lowering.sema
        self.module = lowering.module
        decl = info.decl
        args = []
        for p in decl.params:
            ty = _ir_type(p.type, p.line)
            args.append(
                Argument(
                    p.name,
                    ty,
                    byref=p.byref,
                    spec=p.element_count,
                    is_array=p.is_array,
                    tail=p.tail,
                )
            )
        self.fn = Function(
            decl.name,
            FunctionKind.KERNEL if info.is_kernel else FunctionKind.NETFN,
            args,
            computation=info.computation,
            locations=info.locations,
            return_type=None
            if isinstance(decl.ret_type, ast.VoidSrcType)
            else _ir_type(decl.ret_type, decl.line),
            source_line=decl.line, col=decl.col,
        )
        self.b = IRBuilder(self.fn)
        self.scopes: list[dict[str, Binding]] = [{}]
        self.inline_depth = 0
        # While lowering an inlined net-function body this holds
        # (return slot or None, continuation block).
        self._inline_ret: Optional[tuple[Optional[Alloca], BasicBlock]] = None

    # -- scope helpers -----------------------------------------------------------
    def push_scope(self) -> None:
        self.scopes.append({})

    def pop_scope(self) -> None:
        self.scopes.pop()

    def bind(self, name: str, binding: Binding) -> None:
        self.scopes[-1][name] = binding

    def resolve(self, name: str, line: int) -> Binding:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        ginfo = self.sema.globals.get(name)
        if ginfo is not None:
            gv = self.ctx.global_var(name)
            return GlobalBinding(ginfo, gv)
        raise CompileError(f"use of undeclared identifier '{name}'", line)

    # -- entry ----------------------------------------------------------------------
    def run(self) -> Function:
        entry = self.fn.new_block("entry")
        self.b.position_at_end(entry)
        decl = self.info.decl
        for p in decl.params:
            ty = _ir_type(p.type, p.line)
            if p.is_array:
                self.bind(p.name, MsgArrayBinding(p.name, ty, p.element_count))
            elif p.byref:
                self.bind(p.name, MsgScalarBinding(p.name, ty))
            else:
                # By-value scalar: device-local copy (§V-A).
                slot = self.b.alloca(ty, name=f"{p.name}.addr")
                init = self.b.load_msg(p.name, ty, name=f"{p.name}.init")
                self.b.store(slot, init)
                self.bind(p.name, LocalBinding(slot))
        assert decl.body is not None
        self.lower_block(decl.body)
        if not self._current_dead():
            # Implicit pass() on every fall-through path (§V-A).
            self.b.ret_action(ActionKind.PASS)
        return self.fn

    # -- statements ------------------------------------------------------------------
    def lower_block(self, block: ast.Block) -> None:
        self.push_scope()
        for stmt in block.stmts:
            if self._current_dead():
                # Statements past a point where every path has returned are
                # dropped; record them so the linter can report NCL006.
                self.module.dropped_statements.append(
                    (self.fn.name, stmt.line, stmt.col)
                )
                break
            self.lower_stmt(stmt)
        self.pop_scope()

    def _current_dead(self) -> bool:
        return self.b.block is None or self.b.block.is_terminated

    def lower_stmt(self, stmt: ast.Stmt) -> None:
        self.b.set_source_line(stmt.line, stmt.col)
        if isinstance(stmt, ast.Block):
            self.lower_block(stmt)
        elif isinstance(stmt, ast.VarDecl):
            self.lower_local_decl(stmt)
        elif isinstance(stmt, ast.If):
            self.lower_if(stmt)
        elif isinstance(stmt, ast.For):
            self.lower_for(stmt)
        elif isinstance(stmt, ast.Return):
            self.lower_return(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self.lower_expr(stmt.expr, want_value=False)
        else:  # pragma: no cover - parser emits only the above
            raise CompileError(f"unsupported statement {type(stmt).__name__}", stmt.line)

    def lower_local_decl(self, decl: ast.VarDecl) -> None:
        if decl.specs.is_device:
            if decl.specs.static:
                raise CompileError(
                    "static local device memory must be declared at file scope "
                    "in this implementation",
                    decl.line,
                )
            raise CompileError(
                f"device memory specifiers on local '{decl.name}' are not allowed",
                decl.line,
            )
        if isinstance(decl.type, ast.AutoType):
            if decl.init is None:
                raise CompileError(f"'auto' variable '{decl.name}' needs an initializer", decl.line)
            init_v = self.rvalue(decl.init)
            ty = init_v.type if isinstance(init_v.type, IntType) else U32
            slot = self.b.alloca(ty, name=decl.name)
            self.b.store(slot, init_v)
            self.bind(decl.name, LocalBinding(slot))
            return
        ty = _ir_type(decl.type, decl.line)
        shape = ArrayShape(decl.dims)
        slot = self.b.alloca(ty, shape, name=decl.name)
        self.bind(decl.name, LocalBinding(slot))
        if decl.init is None:
            return
        if shape.rank == 0:
            if isinstance(decl.init, ast.InitList):
                raise CompileError(f"scalar '{decl.name}' initialized with a list", decl.line)
            self.b.store(slot, self.coerce(self.rvalue(decl.init), ty))
        else:
            if not isinstance(decl.init, ast.InitList):
                raise CompileError(f"array '{decl.name}' requires a list initializer", decl.line)
            flat = _flatten_init(decl.init, shape, decl.line)
            for i, item in enumerate(flat):
                v = self.coerce(self.rvalue(item), ty)
                idxs = _unflatten(i, shape)
                self.b.store(slot, v, [Constant(U32, j) for j in idxs])

    def lower_if(self, stmt: ast.If) -> None:
        assert stmt.cond is not None and stmt.then is not None
        cond = self.condition(stmt.cond)
        then_bb = self.b.new_block("if.then")
        else_bb = self.b.new_block("if.else") if stmt.els is not None else None
        merge_bb = self.b.new_block("if.end")
        self.b.br(cond, then_bb, else_bb or merge_bb)

        self.b.position_at_end(then_bb)
        self.push_scope()
        self.lower_stmt(stmt.then)
        self.pop_scope()
        if not self._current_dead():
            self.b.jmp(merge_bb)

        if else_bb is not None:
            self.b.position_at_end(else_bb)
            self.push_scope()
            assert stmt.els is not None
            self.lower_stmt(stmt.els)
            self.pop_scope()
            if not self._current_dead():
                self.b.jmp(merge_bb)

        if merge_bb.predecessors():
            self.b.position_at_end(merge_bb)
        else:
            # Both arms terminated: the merge block is unreachable.
            self.fn.remove_block(merge_bb)
            self.b.block = None

    def lower_for(self, stmt: ast.For) -> None:
        """Fully unroll a ``for`` loop with compile-time bounds (§V-D)."""
        var, start = self._loop_init(stmt)
        trip = 0
        value = start
        self.push_scope()
        while True:
            if not self._loop_cond(stmt, var, value):
                break
            trip += 1
            if trip > MAX_UNROLL:
                raise CompileError(
                    f"loop exceeds the unroll limit of {MAX_UNROLL} iterations", stmt.line
                )
            self.bind(var, ConstBinding(Constant(U32, value)))
            assert stmt.body is not None
            self.push_scope()
            self.lower_stmt(stmt.body)
            self.pop_scope()
            if self._current_dead():
                # Every iteration past an unconditional action is dead code.
                break
            value = self._loop_step(stmt, var, value)
        self.pop_scope()

    def _loop_init(self, stmt: ast.For) -> tuple[str, int]:
        init = stmt.init
        if isinstance(init, ast.VarDecl):
            if init.init is None:
                raise CompileError("loop induction variable needs a constant initializer", stmt.line)
            v = self._const_of(init.init)
            if v is None:
                raise CompileError(
                    "only fully-unrollable loops are supported: loop start is "
                    "not a compile-time constant (§V-D)",
                    stmt.line,
                )
            return init.name, v
        if isinstance(init, ast.ExprStmt) and isinstance(init.expr, ast.Assign):
            target = init.expr.target
            if isinstance(target, ast.Ident) and init.expr.op == "=":
                v = self._const_of(init.expr.value)
                if v is not None:
                    return target.name, v
        raise CompileError(
            "only fully-unrollable loops are supported: cannot determine the "
            "induction variable (§V-D)",
            stmt.line,
        )

    def _loop_cond(self, stmt: ast.For, var: str, value: int) -> bool:
        cond = stmt.cond
        if cond is None:
            raise CompileError("loop without a bound cannot be unrolled (§V-D)", stmt.line)
        if isinstance(cond, ast.Binary) and isinstance(cond.left, ast.Ident) and cond.left.name == var:
            bound = self._const_of(cond.right)
            if bound is not None:
                table = {
                    "<": value < bound,
                    "<=": value <= bound,
                    ">": value > bound,
                    ">=": value >= bound,
                    "!=": value != bound,
                }
                if cond.op not in table:
                    raise CompileError(
                        "unsupported loop comparison operator for unrolling (§V-D)",
                        stmt.line,
                    )
                return table[cond.op]
        raise CompileError(
            "only fully-unrollable loops are supported: loop bound is not a "
            "compile-time constant comparison on the induction variable (§V-D)",
            stmt.line,
        )

    def _loop_step(self, stmt: ast.For, var: str, value: int) -> int:
        step = stmt.step
        if isinstance(step, ast.Unary) and step.op in ("++", "--"):
            if isinstance(step.operand, ast.Ident) and step.operand.name == var:
                return value + 1 if step.op == "++" else value - 1
        if isinstance(step, ast.Assign) and isinstance(step.target, ast.Ident):
            if step.target.name == var and step.op in ("+=", "-="):
                delta = self._const_of(step.value)
                if delta is not None:
                    return value + delta if step.op == "+=" else value - delta
        raise CompileError(
            "only fully-unrollable loops are supported: loop step must be "
            "++/--/+=/-= by a constant (§V-D)",
            stmt.line,
        )

    def _const_of(self, expr: Optional[ast.Expr]) -> Optional[int]:
        """Compile-time evaluation, resolving unrolled loop variables."""
        if expr is None:
            return None
        if isinstance(expr, ast.Num):
            return expr.value
        if isinstance(expr, ast.Ident):
            # Unrolled outer-loop variables are constants too.
            try:
                binding = self.resolve(expr.name, expr.line)
            except CompileError:
                return None
            if isinstance(binding, ConstBinding):
                return binding.value.value
            return None
        if isinstance(expr, ast.Unary) and expr.operand is not None:
            v = self._const_of(expr.operand)
            if v is None:
                return None
            return {"-": -v, "~": ~v, "!": int(v == 0)}.get(expr.op)
        if isinstance(expr, ast.Binary) and expr.left is not None and expr.right is not None:
            a, b = self._const_of(expr.left), self._const_of(expr.right)
            if a is None or b is None:
                return None
            try:
                return {
                    "+": a + b, "-": a - b, "*": a * b,
                    "/": a // b if b else None, "%": a % b if b else None,
                    "<<": a << b, ">>": a >> b,
                    "&": a & b, "|": a | b, "^": a ^ b,
                }.get(expr.op)
            except (ValueError, ZeroDivisionError):
                return None
        return None

    # -- return / actions --------------------------------------------------------------
    def lower_return(self, stmt: ast.Return) -> None:
        if stmt.value is None:
            self._emit_plain_return()
            return
        expr = stmt.value
        # `return cond ? X : Y` where X/Y may be actions or void calls: lower
        # as a branch with a return in each arm (Fig. 4 line 20 idiom).
        if isinstance(expr, ast.Ternary):
            assert expr.cond is not None and expr.then is not None and expr.els is not None
            if self._is_action_or_void(expr.then) or self._is_action_or_void(expr.els):
                branch = ast.If(
                    line=stmt.line, col=stmt.col,
                    cond=expr.cond,
                    then=ast.Return(line=stmt.line, col=stmt.col, value=expr.then),
                    els=ast.Return(line=stmt.line, col=stmt.col, value=expr.els),
                )
                self.lower_if(branch)
                return
        # Forwarding actions terminate the kernel even when the return sits
        # inside an inlined net-function body.
        if isinstance(expr, ast.Call) and expr.is_ncl and expr.name in bi.ACTIONS:
            self._emit_action(expr)
            return
        if self._inline_ret is not None:
            ret_slot, cont_bb = self._inline_ret
            # A void net-function call in return position.
            if ret_slot is None:
                self.lower_expr(expr, want_value=False)
                self.b.jmp(cont_bb)
                return
            value = self.coerce(self.rvalue(expr), ret_slot.elem)
            self.b.store(ret_slot, value)
            self.b.jmp(cont_bb)
            return
        # A void net-function call in return position of a kernel: run it,
        # then the implicit action.
        if isinstance(expr, ast.Call) and not expr.is_ncl and expr.name != "lookup":
            callee = self.sema.functions.get(expr.name)
            if callee is not None and isinstance(callee.decl.ret_type, ast.VoidSrcType):
                self.lower_expr(expr, want_value=False)
                if not self._current_dead():
                    self._emit_plain_return()
                return
        raise CompileError(
            "kernels return forwarding actions, not values (§V-A)", stmt.line
        )

    def _emit_plain_return(self) -> None:
        if self._inline_ret is not None:
            _, cont_bb = self._inline_ret
            self.b.jmp(cont_bb)
        else:
            self.b.ret_action(ActionKind.PASS)

    def _is_action_or_void(self, expr: ast.Expr) -> bool:
        if isinstance(expr, ast.Call):
            if expr.is_ncl and expr.name in bi.ACTIONS:
                return True
            if not expr.is_ncl:
                callee = self.sema.functions.get(expr.name)
                if callee is not None and isinstance(callee.decl.ret_type, ast.VoidSrcType):
                    return True
        return False

    def _emit_action(self, call: ast.Call) -> None:
        kind = bi.ACTIONS[call.name]
        if kind.takes_target:
            if len(call.args) != 1:
                raise CompileError(f"ncl::{call.name} takes exactly one argument", call.line)
            target = self.coerce(self.rvalue(call.args[0]), U16)
            self.b.ret_action(kind, target)
        else:
            if call.args:
                raise CompileError(f"ncl::{call.name} takes no arguments", call.line)
            self.b.ret_action(kind)

    # -- expressions --------------------------------------------------------------------
    def rvalue(self, expr: ast.Expr) -> Value:
        v = self.lower_expr(expr, want_value=True)
        assert v is not None
        return v

    def condition(self, expr: ast.Expr) -> Value:
        v = self.rvalue(expr)
        if isinstance(v.type, IntType) and v.type.width == 1:
            return v
        return self.b.icmp(ICmpPred.NE, v, Constant(v.type, 0), name="tobool")

    def coerce(self, v: Value, to: IntType) -> Value:
        return self.b.coerce(v, to)

    def lower_expr(self, expr: ast.Expr, *, want_value: bool) -> Optional[Value]:
        self.b.set_source_line(expr.line, expr.col)
        if isinstance(expr, ast.Num):
            # C literal typing: decimal literals are (signed) int when they
            # fit, then progressively wider.
            if expr.value <= 0x7FFFFFFF:
                ty = int_type(32, True)
            elif expr.value <= 0xFFFFFFFF:
                ty = U32
            else:
                ty = int_type(64, expr.value <= 0x7FFFFFFFFFFFFFFF)
            return Constant(ty, expr.value)
        if isinstance(expr, ast.Ident):
            binding = self.resolve(expr.name, expr.line)
            if isinstance(binding, ConstBinding):
                return binding.value
            return self.load_lvalue(self._binding_lvalue(binding, expr))
        if isinstance(expr, ast.Member):
            return self.lower_member(expr)
        if isinstance(expr, ast.Index):
            return self.load_lvalue(self.lvalue(expr))
        if isinstance(expr, ast.Unary):
            return self.lower_unary(expr)
        if isinstance(expr, ast.Binary):
            return self.lower_binary(expr)
        if isinstance(expr, ast.Assign):
            return self.lower_assign(expr, want_value=want_value)
        if isinstance(expr, ast.Ternary):
            return self.lower_ternary(expr)
        if isinstance(expr, ast.Call):
            return self.lower_call(expr, want_value=want_value)
        raise CompileError(f"unsupported expression {type(expr).__name__}", expr.line)

    def lower_member(self, expr: ast.Member) -> Value:
        if expr.base == "device":
            if expr.field_name == "id":
                return self.b.intrinsic("device.id", [], U16, name="devid")
            if expr.field_name == "kind":
                return self.b.intrinsic("device.kind", [], U8, name="devkind")
            raise CompileError(f"unknown builtin device.{expr.field_name}", expr.line)
        if expr.base == "msg":
            if expr.field_name in ("src", "dst", "from", "to"):
                return self.b.load_msg(f"__{expr.field_name}", U16, name=f"msg.{expr.field_name}")
            raise CompileError(f"unknown builtin msg.{expr.field_name}", expr.line)
        raise CompileError(
            f"member access on '{expr.base}' is not supported (only device.*/msg.*)",
            expr.line,
        )

    # -- lvalues -------------------------------------------------------------------------
    def lvalue(self, expr: ast.Expr) -> LValue:
        if isinstance(expr, ast.Ident):
            binding = self.resolve(expr.name, expr.line)
            return self._binding_lvalue(binding, expr)
        if isinstance(expr, ast.Index):
            indices: list[ast.Expr] = []
            base = expr
            while isinstance(base, ast.Index):
                assert base.index is not None and base.base is not None
                indices.append(base.index)
                base = base.base
            indices.reverse()
            if not isinstance(base, ast.Ident):
                raise CompileError("indexed expression must be a named array", expr.line)
            binding = self.resolve(base.name, base.line)
            idx_vals = [self.coerce(self.rvalue(i), U32) for i in indices]
            if isinstance(binding, AliasBinding):
                lv = binding.lv
                if isinstance(lv, GlobalLV):
                    return GlobalLV(lv.gv, lv.indices + idx_vals)
                if isinstance(lv, MsgLV) and lv.index is None and len(idx_vals) == 1:
                    return MsgLV(lv.field, lv.elem, idx_vals[0])
                if isinstance(lv, LocalLV):
                    return LocalLV(lv.slot, lv.indices + idx_vals)
                raise CompileError("cannot index this reference", expr.line)
            if isinstance(binding, LocalBinding):
                if binding.slot.shape.rank != len(idx_vals):
                    raise CompileError(
                        f"'{base.name}' expects {binding.slot.shape.rank} "
                        f"indices, got {len(idx_vals)}",
                        expr.line,
                    )
                return LocalLV(binding.slot, idx_vals)
            if isinstance(binding, MsgArrayBinding):
                if len(idx_vals) != 1:
                    raise CompileError(
                        f"message field array '{base.name}' is one-dimensional", expr.line
                    )
                return MsgLV(binding.field, binding.elem, idx_vals[0])
            if isinstance(binding, GlobalBinding):
                if binding.info.space.is_lookup:
                    raise CompileError(
                        f"lookup memory '{base.name}' is searched, not indexed: "
                        "use ncl::lookup (§V-B)",
                        expr.line,
                    )
                if binding.gv.shape.rank != len(idx_vals):
                    raise CompileError(
                        f"'{base.name}' expects {binding.gv.shape.rank} indices, "
                        f"got {len(idx_vals)}",
                        expr.line,
                    )
                return GlobalLV(binding.gv, idx_vals)
            raise CompileError(f"'{base.name}' cannot be indexed", expr.line)
        raise CompileError("expression is not an lvalue", expr.line)

    def _binding_lvalue(self, binding: Binding, expr: ast.Ident) -> LValue:
        if isinstance(binding, LocalBinding):
            if binding.slot.shape.rank != 0:
                raise CompileError(f"array '{expr.name}' used without index", expr.line)
            return LocalLV(binding.slot, [])
        if isinstance(binding, MsgScalarBinding):
            return MsgLV(binding.field, binding.elem, None)
        if isinstance(binding, MsgArrayBinding):
            raise CompileError(f"array argument '{expr.name}' used without index", expr.line)
        if isinstance(binding, GlobalBinding):
            if binding.info.space.is_lookup:
                raise CompileError(
                    f"lookup memory '{expr.name}' may only be accessed through "
                    "ncl::lookup (§V-B)",
                    expr.line,
                )
            if binding.gv.shape.rank != 0:
                raise CompileError(f"global array '{expr.name}' used without index", expr.line)
            return GlobalLV(binding.gv, [])
        if isinstance(binding, ConstBinding):
            raise CompileError(
                f"cannot assign to unrolled loop variable '{expr.name}'", expr.line
            )
        if isinstance(binding, AliasBinding):
            return binding.lv
        raise CompileError(f"'{expr.name}' is not an lvalue", expr.line)

    def load_lvalue(self, lv: LValue) -> Value:
        if isinstance(lv, LocalLV):
            # Reading an unrolled constant is folded at the binding level; a
            # plain local read is a Load (mem2reg promotes scalars).
            return self.b.load(lv.slot, lv.indices)
        if isinstance(lv, MsgLV):
            return self.b.load_msg(lv.field, lv.elem, lv.index)
        # Global register memory: plain indexing reads are atomic reads
        # without ordering guarantees (§V-B); LoadGlobal models that.
        return self.b.load_global(lv.gv, lv.indices)

    def store_lvalue(self, lv: LValue, value: Value) -> None:
        if isinstance(lv, LocalLV):
            self.b.store(lv.slot, self.coerce(value, lv.slot.elem), lv.indices)
        elif isinstance(lv, MsgLV):
            self.b.store_msg(lv.field, self.coerce(value, lv.elem), lv.index)
        else:
            self.b.store_global(lv.gv, self.coerce(value, lv.gv.elem), lv.indices)

    def _lvalue_type(self, lv: LValue) -> IntType:
        if isinstance(lv, LocalLV):
            return lv.slot.elem
        if isinstance(lv, MsgLV):
            return lv.elem
        return lv.gv.elem

    # -- operators -----------------------------------------------------------------------
    def lower_unary(self, expr: ast.Unary) -> Value:
        assert expr.operand is not None
        if expr.op == "!":
            v = self.rvalue(expr.operand)
            return self.b.icmp(ICmpPred.EQ, v, Constant(v.type, 0), name="lnot")
        if expr.op == "~":
            v = self.rvalue(expr.operand)
            return self.b.binop(BinOpKind.XOR, v, Constant(v.type, v.type.mask), name="not")
        if expr.op == "-":
            v = self.rvalue(expr.operand)
            return self.b.binop(BinOpKind.SUB, Constant(v.type, 0), v, name="neg")
        if expr.op == "&":
            raise CompileError(
                "address-of is only allowed on global memory arguments of "
                "atomic builtins (§V-D: no pointers in device code)",
                expr.line,
            )
        if expr.op in ("++", "--"):
            lv = self.lvalue(expr.operand)
            old = self.load_lvalue(lv)
            ty = self._lvalue_type(lv)
            kind = BinOpKind.ADD if expr.op == "++" else BinOpKind.SUB
            new = self.b.binop(kind, old, Constant(ty, 1), name="incdec")
            self.store_lvalue(lv, new)
            return new if expr.prefix else old
        raise CompileError(f"unsupported unary operator {expr.op}", expr.line)

    def _common_type(self, a: IntType, b: IntType) -> IntType:
        # Usual arithmetic conversions, restricted to our width lattice:
        # wider wins; equal widths prefer unsigned.
        width = max(a.width, b.width, 8 if (a.width > 1 or b.width > 1) else 1)
        if a.width == b.width:
            signed = a.signed and b.signed
        else:
            signed = (a if a.width > b.width else b).signed
        return int_type(width, signed)

    def lower_binary(self, expr: ast.Binary) -> Value:
        assert expr.left is not None and expr.right is not None
        op = expr.op
        if op in ("&&", "||"):
            # P4 pipelines evaluate both sides; NetCL makes that explicit
            # (operands are side-effect-free in well-formed device code).
            lhs = self.condition(expr.left)
            rhs = self.condition(expr.right)
            kind = BinOpKind.AND if op == "&&" else BinOpKind.OR
            return self.b.binop(kind, lhs, rhs, name="logic")
        lhs = self.rvalue(expr.left)
        rhs = self.rvalue(expr.right)
        assert isinstance(lhs.type, IntType) and isinstance(rhs.type, IntType)
        common = self._common_type(lhs.type, rhs.type)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            lhs_c, rhs_c = self.coerce(lhs, common), self.coerce(rhs, common)
            pred = {
                "==": ICmpPred.EQ,
                "!=": ICmpPred.NE,
                "<": ICmpPred.SLT if common.signed else ICmpPred.ULT,
                "<=": ICmpPred.SLE if common.signed else ICmpPred.ULE,
                ">": ICmpPred.SGT if common.signed else ICmpPred.UGT,
                ">=": ICmpPred.SGE if common.signed else ICmpPred.UGE,
            }[op]
            return self.b.icmp(pred, lhs_c, rhs_c, name="cmp")
        if op in ("<<", ">>"):
            rhs_c = self.coerce(rhs, lhs.type)
            if op == "<<":
                kind = BinOpKind.SHL
            else:
                kind = BinOpKind.ASHR if lhs.type.signed else BinOpKind.LSHR
            return self.b.binop(kind, lhs, rhs_c, name="shift")
        lhs_c, rhs_c = self.coerce(lhs, common), self.coerce(rhs, common)
        kind = {
            "+": BinOpKind.ADD,
            "-": BinOpKind.SUB,
            "*": BinOpKind.MUL,
            "/": BinOpKind.SDIV if common.signed else BinOpKind.UDIV,
            "%": BinOpKind.SREM if common.signed else BinOpKind.UREM,
            "&": BinOpKind.AND,
            "|": BinOpKind.OR,
            "^": BinOpKind.XOR,
        }.get(op)
        if kind is None:
            raise CompileError(f"unsupported binary operator {op}", expr.line)
        return self.b.binop(kind, lhs_c, rhs_c, name="bin")

    def lower_assign(self, expr: ast.Assign, *, want_value: bool) -> Optional[Value]:
        assert expr.target is not None and expr.value is not None
        lv = self.lvalue(expr.target)
        ty = self._lvalue_type(lv)
        if expr.op == "=":
            value = self.coerce(self.rvalue(expr.value), ty)
        else:
            old = self.load_lvalue(lv)
            rhs = self.rvalue(expr.value)
            value = self.coerce(self._apply_compound(expr.op[:-1], old, rhs, expr.line), ty)
        self.store_lvalue(lv, value)
        return value if want_value else None

    def _apply_compound(self, op: str, old: Value, rhs: Value, line: int) -> Value:
        assert isinstance(old.type, IntType)
        if op in ("<<", ">>"):
            rhs_c = self.coerce(rhs, old.type)
            kind = (
                BinOpKind.SHL
                if op == "<<"
                else (BinOpKind.ASHR if old.type.signed else BinOpKind.LSHR)
            )
            return self.b.binop(kind, old, rhs_c)
        rhs_c = self.coerce(rhs, old.type)
        kind = {
            "+": BinOpKind.ADD,
            "-": BinOpKind.SUB,
            "*": BinOpKind.MUL,
            "/": BinOpKind.SDIV if old.type.signed else BinOpKind.UDIV,
            "%": BinOpKind.SREM if old.type.signed else BinOpKind.UREM,
            "&": BinOpKind.AND,
            "|": BinOpKind.OR,
            "^": BinOpKind.XOR,
        }.get(op)
        if kind is None:
            raise CompileError(f"unsupported compound assignment {op}=", line)
        return self.b.binop(kind, old, rhs_c)

    def lower_ternary(self, expr: ast.Ternary) -> Value:
        assert expr.cond is not None and expr.then is not None and expr.els is not None
        cond = self.condition(expr.cond)
        then_bb = self.b.new_block("sel.then")
        else_bb = self.b.new_block("sel.else")
        merge_bb = self.b.new_block("sel.end")
        self.b.br(cond, then_bb, else_bb)

        self.b.position_at_end(then_bb)
        then_v = self.rvalue(expr.then)
        then_end = self.b.block  # the arm may have grown new blocks
        self.b.position_at_end(else_bb)
        else_v = self.rvalue(expr.els)
        else_end = self.b.block
        assert isinstance(then_v.type, IntType) and isinstance(else_v.type, IntType)
        assert then_end is not None and else_end is not None
        common = self._common_type(then_v.type, else_v.type)

        tmp = self.b.alloca(common, name="sel.tmp")
        self.b.position_at_end(then_end)
        self.b.store(tmp, self.coerce(then_v, common))
        self.b.jmp(merge_bb)
        self.b.position_at_end(else_end)
        self.b.store(tmp, self.coerce(else_v, common))
        self.b.jmp(merge_bb)
        self.b.position_at_end(merge_bb)
        return self.b.load(tmp, name="sel")

    # -- calls ----------------------------------------------------------------------------
    def lower_call(self, expr: ast.Call, *, want_value: bool) -> Optional[Value]:
        if expr.name == "__cast__":
            target = expr.template_args[0]
            ty = _ir_type(target, expr.line)  # type: ignore[arg-type]
            v = self.coerce(self.rvalue(expr.args[0]), ty)
            if isinstance(v, Cast):
                v.explicit = True
            return v
        if expr.is_ncl or expr.name == "lookup":
            return self.lower_builtin(expr, want_value=want_value)
        return self.inline_netfn(expr, want_value=want_value)

    def lower_builtin(self, expr: ast.Call, *, want_value: bool) -> Optional[Value]:
        name = expr.name
        if name in bi.ACTIONS:
            raise CompileError(
                f"forwarding actions may only appear in return statements "
                f"(ncl::{name}, §V-A)",
                expr.line,
            )
        atomic = bi.parse_atomic(name)
        if atomic is not None:
            return self.lower_atomic(expr, atomic)
        if name == "lookup":
            return self.lower_lookup(expr)
        pure = bi.PURE_BUILTINS.get(name)
        if pure is not None:
            return self.lower_pure(expr, pure)
        raise CompileError(f"unknown builtin ncl::{name}", expr.line)

    def lower_atomic(self, expr: ast.Call, spec: bi.AtomicSpec) -> Value:
        if not expr.args:
            raise CompileError(f"ncl::{expr.name} requires a memory argument", expr.line)
        mem = expr.args[0]
        if isinstance(mem, ast.Unary) and mem.op == "&":
            assert mem.operand is not None
            mem = mem.operand
        lv = self.lvalue(mem)
        if not isinstance(lv, GlobalLV):
            raise CompileError(
                f"ncl::{expr.name} operates on global device memory only "
                "(local and message memory need no atomics: threads are "
                "private, §IV)",
                expr.line,
            )
        if lv.gv.space.is_lookup:
            raise CompileError(
                f"ncl::{expr.name} cannot target lookup memory (§V-B)", expr.line
            )
        rest = expr.args[1:]
        cond_v: Optional[Value] = None
        if spec.conditional:
            if not rest:
                raise CompileError(f"ncl::{expr.name} requires a condition", expr.line)
            cond_v = self.condition(rest[0])
            rest = rest[1:]
        expected_operands = spec.operand_count
        if len(rest) != expected_operands:
            raise CompileError(
                f"ncl::{expr.name} expects {expected_operands} value operand(s) "
                f"after the memory{' and condition' if spec.conditional else ''}, "
                f"got {len(rest)}",
                expr.line,
            )
        elem = lv.gv.elem
        operand_v: Optional[Value] = None
        compare_v: Optional[Value] = None
        from repro.ir.instructions import AtomicOp

        if spec.op == AtomicOp.CAS:
            compare_v = self.coerce(self.rvalue(rest[0]), elem)
            operand_v = self.coerce(self.rvalue(rest[1]), elem)
        elif spec.implicit_operand is not None:
            operand_v = Constant(elem, spec.implicit_operand)
        elif expected_operands == 1:
            operand_v = self.coerce(self.rvalue(rest[0]), elem)
        return self.b.atomic(
            spec.op,
            lv.gv,
            lv.indices,
            operand_v,
            cond=cond_v,
            compare=compare_v,
            return_new=spec.return_new,
            saturating=spec.saturating,
            name=expr.name,
        )

    def lower_lookup(self, expr: ast.Call) -> Value:
        if len(expr.args) not in (2, 3):
            raise CompileError("ncl::lookup takes (table, key[, value&])", expr.line)
        table = expr.args[0]
        if not isinstance(table, ast.Ident):
            raise CompileError("first argument of ncl::lookup must name lookup memory", expr.line)
        binding = self.resolve(table.name, table.line)
        if isinstance(binding, AliasBinding):
            raise CompileError("lookup memory cannot be passed by reference", expr.line)
        if not isinstance(binding, GlobalBinding) or not binding.info.space.is_lookup:
            raise CompileError(
                f"'{table.name}' is not _lookup_ memory (§V-B)", expr.line
            )
        gv = binding.gv
        key_t = binding.info.key_type or gv.elem
        key = self.coerce(self.rvalue(expr.args[1]), key_t)
        hit = self.b.lookup(gv, key, name=f"lu_{table.name}")
        if len(expr.args) == 3:
            if binding.info.lookup_kind is not None and binding.info.value_type is None:
                raise CompileError(
                    f"lookup set '{table.name}' has no value to read; "
                    "use the two-argument form",
                    expr.line,
                )
            out_lv = self.lvalue(expr.args[2])
            default = self.load_lvalue(out_lv)
            val = self.b.lookup_val(gv, key, default, name=f"luv_{table.name}")
            self.store_lvalue(out_lv, val)
        return hit

    def lower_pure(self, expr: ast.Call, pure: bi.PureBuiltin) -> Value:
        if len(expr.args) != pure.arg_count:
            raise CompileError(
                f"ncl::{expr.name} expects {pure.arg_count} argument(s)", expr.line
            )
        args = [self.rvalue(a) for a in expr.args]
        if pure.result_bits == "arg":
            out_ty = args[0].type if args else U32
            assert isinstance(out_ty, IntType)
        elif pure.result_bits == "template":
            if not expr.template_args or not isinstance(expr.template_args[0], ast.ScalarType):
                raise CompileError(
                    f"ncl::{expr.name} requires a type template argument "
                    f"(e.g. ncl::{expr.name}<u8>())",
                    expr.line,
                )
            out_ty = _ir_type(expr.template_args[0], expr.line)
        else:
            bits = pure.result_bits
            if pure.allows_template_bits and expr.template_args:
                targ = expr.template_args[0]
                if not isinstance(targ, int):
                    raise CompileError(
                        f"ncl::{expr.name}<N> takes a width template argument", expr.line
                    )
                bits = targ
            out_ty = int_type(int(bits))
        return self.b.intrinsic(pure.intrinsic, args, out_ty, name=expr.name.replace(".", "_"))

    # -- net-function inlining ---------------------------------------------------------------
    def inline_netfn(self, expr: ast.Call, *, want_value: bool) -> Optional[Value]:
        callee = self.sema.functions.get(expr.name)
        if callee is None or callee.is_kernel:
            raise CompileError(f"call to unknown net function '{expr.name}'", expr.line)
        if self.inline_depth > 32:
            raise CompileError(f"net-function inlining too deep at '{expr.name}'", expr.line)
        decl = callee.decl
        if len(expr.args) != len(decl.params):
            raise CompileError(
                f"'{expr.name}' expects {len(decl.params)} arguments, got {len(expr.args)}",
                expr.line,
            )
        # Bind parameters in a fresh scope stack so callee names cannot
        # capture caller locals.
        saved_scopes = self.scopes
        call_scope: dict[str, Binding] = {}
        for p, arg in zip(decl.params, expr.args):
            ty = _ir_type(p.type, p.line)
            if p.byref or p.is_array:
                # References alias the caller's storage (standard C++ rules).
                a = _strip_addr(arg)
                if isinstance(a, ast.Ident):
                    b = self.resolve(a.name, a.line)
                    if isinstance(b, (MsgArrayBinding, GlobalBinding, AliasBinding)) or (
                        isinstance(b, LocalBinding) and b.slot.shape.rank > 0
                    ):
                        call_scope[p.name] = b
                    elif isinstance(b, ConstBinding):
                        raise CompileError(
                            f"cannot bind loop constant '{a.name}' to reference "
                            f"parameter '{p.name}'",
                            arg.line,
                        )
                    else:
                        call_scope[p.name] = AliasBinding(self._binding_lvalue(b, a))
                else:
                    call_scope[p.name] = AliasBinding(self.lvalue(a))
            else:
                value = self.coerce(self.rvalue(arg), ty)
                slot = self.b.alloca(ty, name=f"{expr.name}.{p.name}")
                self.b.store(slot, value)
                call_scope[p.name] = LocalBinding(slot)
        self.scopes = [call_scope]

        ret_ty = (
            None if isinstance(decl.ret_type, ast.VoidSrcType) else _ir_type(decl.ret_type, decl.line)
        )
        ret_slot = self.b.alloca(ret_ty, name=f"{expr.name}.ret") if ret_ty else None
        cont_bb = self.b.new_block(f"{expr.name}.cont")

        saved_ret = self._inline_ret
        self._inline_ret = (ret_slot, cont_bb)
        self.inline_depth += 1
        assert decl.body is not None
        self.lower_block(decl.body)
        if not self._current_dead():
            self.b.jmp(cont_bb)
        self.inline_depth -= 1
        self._inline_ret = saved_ret
        self.scopes = saved_scopes

        if cont_bb.predecessors():
            self.b.position_at_end(cont_bb)
        else:
            self.fn.remove_block(cont_bb)
            self.b.block = None
            return None
        if ret_slot is not None and want_value:
            return self.b.load(ret_slot, name=f"{expr.name}.retval")
        return None


def _strip_addr(expr: ast.Expr) -> ast.Expr:
    if isinstance(expr, ast.Unary) and expr.op == "&" and expr.operand is not None:
        return expr.operand
    return expr


def _flatten_init(init: ast.InitList, shape: ArrayShape, line: int) -> list[ast.Expr]:
    """Flatten a (possibly nested) initializer list to row-major order."""
    flat: list[ast.Expr] = []

    def walk(node: ast.Expr) -> None:
        if isinstance(node, ast.InitList):
            for item in node.items:
                walk(item)
        else:
            flat.append(node)

    walk(init)
    if len(flat) > shape.num_elements:
        raise CompileError(
            f"initializer has {len(flat)} elements for array of "
            f"{shape.num_elements}",
            line,
        )
    return flat


def _unflatten(flat: int, shape: ArrayShape) -> list[int]:
    out: list[int] = []
    for dim in reversed(shape.dims):
        out.append(flat % dim)
        flat //= dim
    out.reverse()
    return out


class _ModuleLowering:
    def __init__(self, sema: SemaResult, name: str) -> None:
        self.sema = sema
        self.module = Module(name)
        self._gv_cache: dict[str, GlobalVar] = {}

    def global_var(self, name: str) -> GlobalVar:
        if name not in self._gv_cache:
            info = self.sema.globals[name]
            gv = GlobalVar(
                info.name,
                info.elem,
                info.shape,
                info.space,
                info.locations,
                info.lookup_kind,
                info.key_type,
                info.value_type,
                list(info.entries),
                source_line=info.decl.line, col=info.decl.col,
            )
            self._gv_cache[name] = gv
            self.module.add_global(gv)
        return self._gv_cache[name]

    def run(self) -> Module:
        # Declare all globals up front so the module mirrors the program even
        # when a global is only touched from the host.
        for name in self.sema.globals:
            self.global_var(name)
        # Kernels only: net functions are fully inlined during lowering, so
        # the IR module has no call instructions left.
        for info in self.sema.functions.values():
            if info.is_kernel:
                self.module.add_function(_FunctionLowering(self, info).run())
        return self.module


def lower_to_ir(sema: SemaResult, name: str = "netcl") -> Module:
    """Lower an analyzed NetCL program to an IR module (kernels only)."""
    return _ModuleLowering(sema, name).run()
