"""Recursive-descent parser for the NetCL C/C++ subset."""

from __future__ import annotations

from typing import Optional

from repro.lang import ast
from repro.lang.errors import CompileError
from repro.lang.lexer import Lexer, Token, TokenKind

# Fundamental type spellings -> (width, signed).  ``char`` is unsigned on
# the device (bytes in message fields), matching the generated bit<8>.
_TYPE_NAMES: dict[str, tuple[int, bool]] = {
    "bool": (1, False),
    "char": (8, False),
    "short": (16, True),
    "int": (32, True),
    "long": (64, True),
    "uint8_t": (8, False),
    "uint16_t": (16, False),
    "uint32_t": (32, False),
    "uint64_t": (64, False),
    "int8_t": (8, True),
    "int16_t": (16, True),
    "int32_t": (32, True),
    "int64_t": (64, True),
    "u8": (8, False),
    "u16": (16, False),
    "u32": (32, False),
    "u64": (64, False),
    "i8": (8, True),
    "i16": (16, True),
    "i32": (32, True),
    "i64": (64, True),
    "size_t": (32, False),
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}


class Parser:
    def __init__(self, lexer: Lexer) -> None:
        self.tokens = lexer.tokens
        self.pos = 0

    # -- token helpers ---------------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def next(self) -> Token:
        tok = self.peek()
        if tok.kind != TokenKind.EOF:
            self.pos += 1
        return tok

    def accept(self, text: str) -> Optional[Token]:
        tok = self.peek()
        if (tok.kind == TokenKind.PUNCT and tok.text == text) or (
            tok.kind == TokenKind.KEYWORD and tok.text == text
        ):
            return self.next()
        return None

    def expect(self, text: str) -> Token:
        tok = self.accept(text)
        if tok is None:
            cur = self.peek()
            raise CompileError(
                f"expected {text!r}, found {cur.text!r}", cur.line, cur.col
            )
        return tok

    def expect_ident(self) -> Token:
        tok = self.peek()
        if tok.kind != TokenKind.IDENT:
            raise CompileError(f"expected identifier, found {tok.text!r}", tok.line, tok.col)
        return self.next()

    def expect_number(self) -> int:
        tok = self.peek()
        if tok.kind not in (TokenKind.NUMBER, TokenKind.CHARLIT):
            raise CompileError(f"expected number, found {tok.text!r}", tok.line, tok.col)
        self.next()
        assert tok.value is not None
        return tok.value

    # -- program -----------------------------------------------------------------
    def parse_program(self) -> ast.Program:
        prog = ast.Program(line=1)
        while self.peek().kind != TokenKind.EOF:
            prog.decls.append(self.parse_top_level())
        return prog

    def parse_top_level(self):
        specs = self.parse_specifiers()
        ty = self.parse_type()
        name_tok = self.expect_ident()
        if self.peek().is_punct("("):
            return self.parse_function(specs, ty, name_tok)
        return self.finish_var_decl(specs, ty, name_tok, top_level=True)

    # -- specifiers -----------------------------------------------------------------
    def parse_specifiers(self) -> ast.Specifiers:
        specs = ast.Specifiers()
        while True:
            tok = self.peek()
            if tok.is_keyword("_kernel"):
                self.next()
                self.expect("(")
                specs.kernel = self.expect_number()
                self.expect(")")
            elif tok.is_keyword("_net_"):
                self.next()
                specs.net = True
            elif tok.is_keyword("_managed_"):
                self.next()
                specs.managed = True
            elif tok.is_keyword("_lookup_"):
                self.next()
                specs.lookup = True
            elif tok.is_keyword("_at"):
                self.next()
                self.expect("(")
                locs = [self.expect_number()]
                while self.accept(","):
                    locs.append(self.expect_number())
                self.expect(")")
                specs.at = tuple(locs)
            elif tok.is_keyword("static"):
                self.next()
                specs.static = True
            elif tok.is_keyword("const"):
                self.next()
                specs.const = True
            else:
                return specs

    # -- types --------------------------------------------------------------------------
    def _is_type_start(self, tok: Token) -> bool:
        if tok.kind == TokenKind.KEYWORD and tok.text in (
            "void",
            "bool",
            "char",
            "short",
            "int",
            "long",
            "unsigned",
            "signed",
            "auto",
            "const",
        ):
            return True
        if tok.kind == TokenKind.IDENT and tok.text in _TYPE_NAMES:
            return True
        if tok.kind == TokenKind.IDENT and tok.text == "ncl":
            nxt, nxt2 = self.peek(1), self.peek(2)
            return nxt.is_punct("::") and nxt2.kind == TokenKind.IDENT and nxt2.text in ("kv", "rv")
        return False

    def parse_type(self) -> ast.SrcType:
        self.accept("const")
        tok = self.peek()
        if tok.is_keyword("void"):
            self.next()
            return ast.VoidSrcType()
        if tok.is_keyword("auto"):
            self.next()
            return ast.AutoType()
        if tok.kind == TokenKind.IDENT and tok.text == "ncl":
            # ncl::kv<K,V> / ncl::rv<R,V>
            self.next()
            self.expect("::")
            kind_tok = self.expect_ident()
            if kind_tok.text not in ("kv", "rv"):
                raise CompileError(
                    f"unknown ncl type ncl::{kind_tok.text}", kind_tok.line, kind_tok.col
                )
            self.expect("<")
            key = self._require_scalar(self.parse_type(), kind_tok)
            self.expect(",")
            value = self._require_scalar(self.parse_type(), kind_tok)
            self.expect(">")
            return ast.LookupPairType(kind_tok.text, key, value)
        # (unsigned|signed)? (char|short|int|long)* | typedef name
        signedness: Optional[bool] = None
        if tok.is_keyword("unsigned"):
            self.next()
            signedness = False
            tok = self.peek()
        elif tok.is_keyword("signed"):
            self.next()
            signedness = True
            tok = self.peek()
        base: Optional[str] = None
        if tok.kind == TokenKind.KEYWORD and tok.text in ("char", "short", "int", "long", "bool"):
            base = tok.text
            self.next()
            if base == "long" and self.peek().is_keyword("long"):
                self.next()
            if base in ("short", "long") and self.peek().is_keyword("int"):
                self.next()
        elif tok.kind == TokenKind.IDENT and tok.text in _TYPE_NAMES:
            base = tok.text
            self.next()
        elif signedness is not None:
            base = "int"  # bare "unsigned"/"signed"
        else:
            raise CompileError(f"expected type, found {tok.text!r}", tok.line, tok.col)
        width, signed = _TYPE_NAMES[base]
        if signedness is not None:
            signed = signedness
        self.accept("const")
        return ast.ScalarType(width, signed, base)

    @staticmethod
    def _require_scalar(ty: ast.SrcType, tok: Token) -> ast.ScalarType:
        if not isinstance(ty, ast.ScalarType):
            raise CompileError("kv/rv type parameters must be fundamental types", tok.line, tok.col)
        return ty

    # -- variable declarations ---------------------------------------------------------------
    def finish_var_decl(
        self, specs: ast.Specifiers, ty: ast.SrcType, name_tok: Token, *, top_level: bool
    ) -> ast.VarDecl:
        dims: list[int] = []
        inferred_outer = False
        while self.accept("["):
            if self.accept("]"):
                if dims:
                    raise CompileError(
                        "only the outermost dimension may be inferred", name_tok.line, name_tok.col
                    )
                dims.append(-1)
                inferred_outer = True
            else:
                dims.append(self._const_expr())
                self.expect("]")
        init: Optional[ast.Expr] = None
        if self.accept("="):
            init = self.parse_initializer()
        self.expect(";")
        if inferred_outer:
            if not isinstance(init, ast.InitList):
                raise CompileError(
                    "array with inferred size requires an initializer list",
                    name_tok.line,
                    name_tok.col,
                )
            dims[0] = len(init.items)
        return ast.VarDecl(
            line=name_tok.line, col=name_tok.col,
            specs=specs,
            type=ty,
            name=name_tok.text,
            dims=tuple(dims),
            init=init,
        )

    def _const_expr(self) -> int:
        """Evaluate a constant expression in a dimension/spec position."""
        expr = self.parse_ternary()
        value = _eval_const(expr)
        if value is None:
            raise CompileError("expected a constant expression", expr.line)
        return value

    def parse_initializer(self) -> ast.Expr:
        if self.peek().is_punct("{"):
            brace = self.next()
            items: list[ast.Expr] = []
            if not self.peek().is_punct("}"):
                items.append(self.parse_initializer())
                while self.accept(","):
                    if self.peek().is_punct("}"):
                        break  # trailing comma
                    items.append(self.parse_initializer())
            self.expect("}")
            return ast.InitList(line=brace.line, col=brace.col, items=items)
        return self.parse_assignment()

    # -- functions -------------------------------------------------------------------------------
    def parse_function(self, specs: ast.Specifiers, ret: ast.SrcType, name_tok: Token) -> ast.FuncDecl:
        self.expect("(")
        params: list[ast.Param] = []
        if not self.peek().is_punct(")"):
            params.append(self.parse_param())
            while self.accept(","):
                params.append(self.parse_param())
        self.expect(")")
        body = self.parse_block()
        return ast.FuncDecl(
            line=name_tok.line, col=name_tok.col,
            specs=specs,
            ret_type=ret,
            name=name_tok.text,
            params=params,
            body=body,
        )

    def parse_param(self) -> ast.Param:
        tail = bool(self.accept("_tail_"))
        ty = self.parse_type()
        spec: Optional[int] = None
        if self.peek().is_keyword("_spec"):
            self.next()
            self.expect("(")
            spec = self._const_expr()
            self.expect(")")
        ptr = bool(self.accept("*"))
        byref = bool(self.accept("&")) if not ptr else False
        name_tok = self.expect_ident()
        dims: list[int] = []
        while self.accept("["):
            dims.append(self._const_expr())
            self.expect("]")
        return ast.Param(
            line=name_tok.line, col=name_tok.col,
            type=ty,
            name=name_tok.text,
            byref=byref,
            ptr=ptr,
            spec=spec,
            dims=tuple(dims),
            tail=tail,
        )

    # -- statements ----------------------------------------------------------------------------------
    def parse_block(self) -> ast.Block:
        brace = self.expect("{")
        block = ast.Block(line=brace.line, col=brace.col)
        while not self.peek().is_punct("}"):
            if self.peek().kind == TokenKind.EOF:
                raise CompileError("unterminated block", brace.line, brace.col)
            block.stmts.append(self.parse_statement())
        self.expect("}")
        return block

    def parse_statement(self) -> ast.Stmt:
        tok = self.peek()
        if tok.is_punct("{"):
            return self.parse_block()
        if tok.is_keyword("if"):
            return self.parse_if()
        if tok.is_keyword("for"):
            return self.parse_for()
        if tok.is_keyword("return"):
            self.next()
            value = None if self.peek().is_punct(";") else self.parse_expression()
            self.expect(";")
            return ast.Return(line=tok.line, col=tok.col, value=value)
        if tok.is_keyword("while") or tok.is_keyword("do"):
            raise CompileError(
                "while/do loops are not supported in device code; use a "
                "fully-unrollable for loop (§V-D)",
                tok.line,
                tok.col,
            )
        if tok.is_keyword("goto"):
            raise CompileError("goto is not supported in device code (§V-D)", tok.line, tok.col)
        if tok.is_keyword("switch"):
            raise CompileError("switch is not supported; use if/else chains", tok.line, tok.col)
        if tok.is_keyword("break") or tok.is_keyword("continue"):
            raise CompileError(
                f"{tok.text} is not supported: loops must be fully unrollable (§V-D)",
                tok.line,
                tok.col,
            )
        if self._is_type_start(tok) or tok.is_keyword("const") or tok.is_keyword("static"):
            return self.parse_local_decl()
        expr = self.parse_expression()
        self.expect(";")
        return ast.ExprStmt(line=tok.line, col=tok.col, expr=expr)

    def parse_local_decl(self) -> ast.Stmt:
        specs = self.parse_specifiers()
        ty = self.parse_type()
        name_tok = self.expect_ident()
        if self.peek().is_punct("("):
            raise CompileError(
                "nested function declarations are not allowed", name_tok.line, name_tok.col
            )
        decl = self.finish_var_decl(specs, ty, name_tok, top_level=False)
        return decl

    def parse_if(self) -> ast.If:
        tok = self.expect("if")
        self.expect("(")
        cond = self.parse_expression()
        self.expect(")")
        then = self.parse_statement()
        els = None
        if self.accept("else"):
            els = self.parse_statement()
        return ast.If(line=tok.line, col=tok.col, cond=cond, then=then, els=els)

    def parse_for(self) -> ast.For:
        tok = self.expect("for")
        self.expect("(")
        init: Optional[ast.Stmt] = None
        if not self.peek().is_punct(";"):
            if self._is_type_start(self.peek()):
                init = self.parse_local_decl()
            else:
                expr = self.parse_expression()
                self.expect(";")
                init = ast.ExprStmt(line=tok.line, col=tok.col, expr=expr)
        else:
            self.expect(";")
        cond = None if self.peek().is_punct(";") else self.parse_expression()
        self.expect(";")
        step = None if self.peek().is_punct(")") else self.parse_expression()
        self.expect(")")
        body = self.parse_statement()
        return ast.For(line=tok.line, col=tok.col, init=init, cond=cond, step=step, body=body)

    # -- expressions (precedence climbing) ----------------------------------------------------------------
    def parse_expression(self) -> ast.Expr:
        return self.parse_assignment()

    def parse_assignment(self) -> ast.Expr:
        lhs = self.parse_ternary()
        tok = self.peek()
        if tok.kind == TokenKind.PUNCT and tok.text in _ASSIGN_OPS:
            self.next()
            rhs = self.parse_assignment()
            return ast.Assign(line=tok.line, col=tok.col, op=tok.text, target=lhs, value=rhs)
        return lhs

    def parse_ternary(self) -> ast.Expr:
        cond = self.parse_binary(0)
        if self.peek().is_punct("?"):
            tok = self.next()
            then = self.parse_assignment()
            self.expect(":")
            els = self.parse_assignment()
            return ast.Ternary(line=tok.line, col=tok.col, cond=cond, then=then, els=els)
        return cond

    _BINARY_LEVELS = [
        ["||"],
        ["&&"],
        ["|"],
        ["^"],
        ["&"],
        ["==", "!="],
        ["<", "<=", ">", ">="],
        ["<<", ">>"],
        ["+", "-"],
        ["*", "/", "%"],
    ]

    def parse_binary(self, level: int) -> ast.Expr:
        if level >= len(self._BINARY_LEVELS):
            return self.parse_unary()
        lhs = self.parse_binary(level + 1)
        ops = self._BINARY_LEVELS[level]
        while True:
            tok = self.peek()
            if tok.kind == TokenKind.PUNCT and tok.text in ops:
                self.next()
                rhs = self.parse_binary(level + 1)
                lhs = ast.Binary(line=tok.line, col=tok.col, op=tok.text, left=lhs, right=rhs)
            else:
                return lhs

    def parse_unary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind == TokenKind.PUNCT and tok.text in ("!", "~", "-", "+", "&", "*"):
            self.next()
            if tok.text == "*":
                raise CompileError(
                    "pointer dereference is not supported in device code (§V-D)",
                    tok.line,
                    tok.col,
                )
            operand = self.parse_unary()
            if tok.text == "+":
                return operand
            return ast.Unary(line=tok.line, col=tok.col, op=tok.text, operand=operand)
        if tok.kind == TokenKind.PUNCT and tok.text in ("++", "--"):
            self.next()
            operand = self.parse_unary()
            return ast.Unary(line=tok.line, col=tok.col, op=tok.text, operand=operand, prefix=True)
        # C-style cast: '(' type ')' unary
        if tok.is_punct("(") and self._is_type_start(self.peek(1)):
            self.next()
            ty = self.parse_type()
            self.expect(")")
            operand = self.parse_unary()
            call = ast.Call(line=tok.line, col=tok.col, name="__cast__", args=[operand], is_ncl=False)
            call.template_args = [ty]
            return call
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            tok = self.peek()
            if tok.is_punct("["):
                self.next()
                index = self.parse_expression()
                self.expect("]")
                expr = ast.Index(line=tok.line, col=tok.col, base=expr, index=index)
            elif tok.kind == TokenKind.PUNCT and tok.text in ("++", "--"):
                self.next()
                expr = ast.Unary(line=tok.line, col=tok.col, op=tok.text, operand=expr, prefix=False)
            elif tok.is_punct("."):
                self.next()
                field_tok = self.expect_ident()
                if not isinstance(expr, ast.Ident):
                    raise CompileError(
                        "member access is only supported on builtins "
                        "(device.id, msg.src, ...)",
                        tok.line,
                        tok.col,
                    )
                expr = ast.Member(line=tok.line, col=tok.col, base=expr.name, field_name=field_tok.text)
            elif tok.is_punct("->"):
                raise CompileError("pointer member access is not supported", tok.line, tok.col)
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind in (TokenKind.NUMBER, TokenKind.CHARLIT):
            self.next()
            assert tok.value is not None
            return ast.Num(line=tok.line, col=tok.col, value=tok.value)
        if tok.is_punct("("):
            self.next()
            expr = self.parse_expression()
            self.expect(")")
            return expr
        if tok.kind == TokenKind.IDENT:
            self.next()
            name = tok.text
            is_ncl = False
            if name == "ncl" and self.peek().is_punct("::"):
                self.next()
                parts = [self.expect_ident().text]
                while self.peek().is_punct("::"):
                    self.next()
                    parts.append(self.expect_ident().text)
                name = ".".join(parts)
                is_ncl = True
            template_args: list[object] = []
            if is_ncl and self.peek().is_punct("<"):
                self.next()
                template_args.append(self._parse_template_arg())
                while self.accept(","):
                    template_args.append(self._parse_template_arg())
                self.expect(">")
            if self.peek().is_punct("("):
                self.next()
                args: list[ast.Expr] = []
                if not self.peek().is_punct(")"):
                    args.append(self.parse_assignment())
                    while self.accept(","):
                        args.append(self.parse_assignment())
                self.expect(")")
                call = ast.Call(line=tok.line, col=tok.col, name=name, args=args, is_ncl=is_ncl)
                call.template_args = template_args
                return call
            if is_ncl:
                raise CompileError(f"ncl::{name} must be called", tok.line, tok.col)
            return ast.Ident(line=tok.line, col=tok.col, name=name)
        raise CompileError(f"unexpected token {tok.text!r}", tok.line, tok.col)

    def _parse_template_arg(self) -> object:
        tok = self.peek()
        if tok.kind == TokenKind.NUMBER:
            self.next()
            return tok.value
        return self.parse_type()


def _eval_const(expr: ast.Expr) -> Optional[int]:
    """Best-effort constant evaluation of a parse-time expression."""
    if isinstance(expr, ast.Num):
        return expr.value
    if isinstance(expr, ast.Unary) and expr.operand is not None:
        v = _eval_const(expr.operand)
        if v is None:
            return None
        return {"-": -v, "~": ~v, "!": int(v == 0)}.get(expr.op)
    if isinstance(expr, ast.Binary) and expr.left is not None and expr.right is not None:
        a, b = _eval_const(expr.left), _eval_const(expr.right)
        if a is None or b is None:
            return None
        try:
            return {
                "+": a + b,
                "-": a - b,
                "*": a * b,
                "/": a // b if b else None,
                "%": a % b if b else None,
                "<<": a << b,
                ">>": a >> b,
                "&": a & b,
                "|": a | b,
                "^": a ^ b,
            }.get(expr.op)
        except (ValueError, ZeroDivisionError):
            return None
    return None


def parse_source(source: str, extra_defines: Optional[dict[str, int]] = None) -> ast.Program:
    """Parse NetCL source text into an AST."""
    return Parser(Lexer(source, extra_defines)).parse_program()
