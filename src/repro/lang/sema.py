"""Semantic analysis for NetCL programs.

Enforces the declaration-level rules of §V:

* memory-class validity (``_lookup_`` requires kv/rv or scalar set arrays,
  register memory is zero-initialized, ...);
* placement validity of kernels — Eq. (1);
* reference validity of net functions and memory w.r.t. location — Eq. (2);
* kernel specification matching across kernels of one computation;
* no recursion among net functions, no host-library calls in device code.

Expression-level typing is completed during lowering
(:mod:`repro.lang.lower`), which has the full symbol context.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.lang import ast
from repro.lang import builtins as bi
from repro.lang.errors import CompileError, Diagnostic
from repro.ir.module import LookupEntry, LookupKind, MemSpace
from repro.ir.types import ArrayShape, IntType, int_type


@dataclass
class GlobalInfo:
    """Resolved form of a global device-memory declaration."""

    decl: ast.VarDecl
    elem: IntType
    shape: ArrayShape
    space: MemSpace
    locations: frozenset[int]
    lookup_kind: Optional[LookupKind] = None
    key_type: Optional[IntType] = None
    value_type: Optional[IntType] = None
    entries: list[LookupEntry] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.decl.name


@dataclass
class FuncInfo:
    """Resolved form of a kernel or net-function declaration."""

    decl: ast.FuncDecl
    locations: frozenset[int]
    computation: Optional[int]
    uses_globals: set[str] = field(default_factory=set)
    uses_netfns: set[str] = field(default_factory=set)

    @property
    def name(self) -> str:
        return self.decl.name

    @property
    def is_kernel(self) -> bool:
        return self.computation is not None


@dataclass
class SemaResult:
    program: ast.Program
    globals: dict[str, GlobalInfo]
    functions: dict[str, FuncInfo]
    host_functions: set[str]


def _loc(specs: ast.Specifiers) -> frozenset[int]:
    return frozenset(specs.at) if specs.at else frozenset()


def _scalar_ir_type(ty: ast.ScalarType) -> IntType:
    return int_type(ty.width, ty.signed)


class _Analyzer:
    def __init__(self, program: ast.Program) -> None:
        self.program = program
        self.diags: list[Diagnostic] = []
        self.globals: dict[str, GlobalInfo] = {}
        self.functions: dict[str, FuncInfo] = {}
        self.host_functions: set[str] = set()

    def error(self, msg: str, line: int = 0) -> None:
        self.diags.append(Diagnostic(msg, line))

    # -- entry ----------------------------------------------------------------
    def run(self) -> SemaResult:
        for decl in self.program.globals():
            self.check_global(decl)
        for decl in self.program.functions():
            self.check_function_decl(decl)
        for info in self.functions.values():
            self.collect_uses(info)
        self.check_kernel_placement()
        self.check_specifications()
        self.check_reference_validity()
        self.check_recursion()
        if self.diags:
            raise CompileError(self.diags)
        return SemaResult(self.program, self.globals, self.functions, self.host_functions)

    # -- globals --------------------------------------------------------------
    def check_global(self, decl: ast.VarDecl) -> None:
        specs = decl.specs
        if not specs.is_device:
            # Host-side global: irrelevant to device compilation.
            return
        if decl.name in self.globals:
            self.error(f"duplicate global declaration '{decl.name}'", decl.line)
            return
        if specs.kernel is not None:
            self.error(f"_kernel may only annotate functions ('{decl.name}')", decl.line)
            return
        if specs.lookup:
            space = MemSpace.MANAGED_LOOKUP if specs.managed else MemSpace.LOOKUP
        elif specs.managed:
            space = MemSpace.MANAGED
        else:
            space = MemSpace.NET

        if isinstance(decl.type, ast.LookupPairType):
            if not specs.lookup:
                self.error(
                    f"kv/rv types are only allowed as _lookup_ arrays ('{decl.name}')",
                    decl.line,
                )
                return
            if len(decl.dims) != 1:
                self.error(
                    f"_lookup_ memory must be a one-dimensional array ('{decl.name}')",
                    decl.line,
                )
                return
            kind = LookupKind.KV if decl.type.kind == "kv" else LookupKind.RV
            key_t = _scalar_ir_type(decl.type.key)
            val_t = _scalar_ir_type(decl.type.value)
            entries = self._lookup_entries(decl, kind, key_t, val_t)
            self.globals[decl.name] = GlobalInfo(
                decl,
                elem=val_t,
                shape=ArrayShape(decl.dims),
                space=space,
                locations=_loc(specs),
                lookup_kind=kind,
                key_type=key_t,
                value_type=val_t,
                entries=entries,
            )
            return

        if not isinstance(decl.type, ast.ScalarType):
            self.error(f"global '{decl.name}' must have integer element type", decl.line)
            return
        elem = _scalar_ir_type(decl.type)
        if specs.lookup:
            if len(decl.dims) != 1:
                self.error(
                    f"_lookup_ memory must be a one-dimensional array ('{decl.name}')",
                    decl.line,
                )
                return
            entries = self._lookup_entries(decl, LookupKind.SET, elem, None)
            self.globals[decl.name] = GlobalInfo(
                decl,
                elem=elem,
                shape=ArrayShape(decl.dims),
                space=space,
                locations=_loc(specs),
                lookup_kind=LookupKind.SET,
                key_type=elem,
                value_type=None,
                entries=entries,
            )
            return

        if decl.init is not None:
            self.error(
                f"global register memory is zero-initialized; '{decl.name}' may "
                "not have an initializer (use _lookup_ for static entries)",
                decl.line,
            )
        self.globals[decl.name] = GlobalInfo(
            decl,
            elem=elem,
            shape=ArrayShape(decl.dims),
            space=space,
            locations=_loc(specs),
        )

    def _lookup_entries(
        self,
        decl: ast.VarDecl,
        kind: LookupKind,
        key_t: IntType,
        val_t: Optional[IntType],
    ) -> list[LookupEntry]:
        entries: list[LookupEntry] = []
        if decl.init is None:
            return entries
        if not isinstance(decl.init, ast.InitList):
            self.error(f"lookup array '{decl.name}' initializer must be a list", decl.line)
            return entries
        for item in decl.init.items:
            entry = self._lookup_entry(decl, kind, item)
            if entry is not None:
                entries.append(entry)
        if decl.dims and len(entries) > decl.dims[0]:
            self.error(
                f"lookup array '{decl.name}' has {len(entries)} entries but "
                f"capacity {decl.dims[0]}",
                decl.line,
            )
        return entries

    def _lookup_entry(self, decl, kind: LookupKind, item: ast.Expr) -> Optional[LookupEntry]:
        def const(e: ast.Expr) -> Optional[int]:
            from repro.lang.parser import _eval_const

            return _eval_const(e)

        if kind == LookupKind.SET:
            v = const(item)
            if v is None:
                self.error(f"non-constant entry in lookup set '{decl.name}'", item.line)
                return None
            return LookupEntry(v, v, None)
        if kind == LookupKind.KV:
            if not isinstance(item, ast.InitList) or len(item.items) != 2:
                self.error(f"kv entry in '{decl.name}' must be {{key, value}}", item.line)
                return None
            k, v = const(item.items[0]), const(item.items[1])
            if k is None or v is None:
                self.error(f"non-constant kv entry in '{decl.name}'", item.line)
                return None
            return LookupEntry(k, k, v)
        # RV: { {lo, hi}, value }
        if (
            not isinstance(item, ast.InitList)
            or len(item.items) != 2
            or not isinstance(item.items[0], ast.InitList)
            or len(item.items[0].items) != 2
        ):
            self.error(f"rv entry in '{decl.name}' must be {{{{lo, hi}}, value}}", item.line)
            return None
        lo = const(item.items[0].items[0])
        hi = const(item.items[0].items[1])
        v = const(item.items[1])
        if lo is None or hi is None or v is None:
            self.error(f"non-constant rv entry in '{decl.name}'", item.line)
            return None
        if lo > hi:
            self.error(f"rv entry in '{decl.name}' has lo > hi", item.line)
            return None
        return LookupEntry(lo, hi, v)

    # -- functions --------------------------------------------------------------
    def check_function_decl(self, decl: ast.FuncDecl) -> None:
        specs = decl.specs
        if specs.kernel is None and not specs.net:
            self.host_functions.add(decl.name)
            return
        if decl.name in self.functions:
            self.error(f"duplicate device function '{decl.name}'", decl.line)
            return
        if specs.lookup or specs.managed:
            self.error(
                f"_lookup_/_managed_ may only annotate memory ('{decl.name}')", decl.line
            )
        if specs.kernel is not None:
            if not isinstance(decl.ret_type, ast.VoidSrcType):
                self.error(f"kernel '{decl.name}' must return void", decl.line)
            for p in decl.params:
                if isinstance(p.type, ast.VoidSrcType):
                    self.error(
                        f"kernel '{decl.name}' argument '{p.name}' may not be void "
                        "(§V-A: fundamental types except void)",
                        p.line,
                    )
                if isinstance(p.type, (ast.LookupPairType, ast.AutoType)):
                    self.error(
                        f"kernel '{decl.name}' argument '{p.name}' must have a "
                        "fundamental type",
                        p.line,
                    )
                if p.spec is not None and not p.ptr:
                    self.error(
                        f"_spec only applies to pointer arguments "
                        f"('{p.name}' of kernel '{decl.name}')",
                        p.line,
                    )
            for i, p in enumerate(decl.params):
                if p.tail and i != len(decl.params) - 1:
                    self.error(
                        f"_tail_ may only annotate the last kernel argument "
                        f"('{p.name}' of kernel '{decl.name}')",
                        p.line,
                    )
                if p.tail and not (p.is_array or p.byref):
                    self.error(
                        f"_tail_ arguments must be by-reference or arrays: "
                        f"the device appends them to the message "
                        f"('{p.name}' of kernel '{decl.name}')",
                        p.line,
                    )
        else:  # net function: _spec has no meaning and is ignored (§V-A)
            for p in decl.params:
                if p.spec is not None:
                    p.spec = None
        self.functions[decl.name] = FuncInfo(
            decl,
            locations=_loc(specs),
            computation=specs.kernel,
        )

    # -- use collection ------------------------------------------------------------
    def collect_uses(self, info: FuncInfo) -> None:
        if info.decl.body is None:
            return
        param_names = {p.name for p in info.decl.params}
        for expr, line in _walk_exprs(info.decl.body):
            if isinstance(expr, ast.Ident):
                if expr.name in self.globals:
                    info.uses_globals.add(expr.name)
            elif isinstance(expr, ast.Call) and not expr.is_ncl:
                if expr.name in ("__cast__", "lookup"):
                    continue  # bare lookup() is accepted as the builtin
                if expr.name in param_names:
                    continue
                if expr.name in self.functions:
                    callee = self.functions[expr.name]
                    if callee.is_kernel:
                        self.error(
                            f"kernels are not invoked directly; '{info.name}' calls "
                            f"kernel '{expr.name}' (§V-A)",
                            line,
                        )
                    else:
                        info.uses_netfns.add(expr.name)
                elif expr.name in self.host_functions:
                    self.error(
                        f"device code may not call host function '{expr.name}'", line
                    )
                else:
                    self.error(f"call to undeclared function '{expr.name}'", line)
            elif isinstance(expr, ast.Call) and expr.is_ncl:
                if expr.name in bi.HOST_ONLY:
                    self.error(
                        f"ncl::{expr.name} is part of the host library and cannot "
                        "be used in device code",
                        line,
                    )
                elif not bi.is_builtin(expr.name) and expr.name not in bi.PURE_BUILTINS:
                    self.error(f"unknown builtin ncl::{expr.name}", line)

    # -- Eq. (1): kernel placement validity ----------------------------------------
    def check_kernel_placement(self) -> None:
        by_comp: dict[int, list[FuncInfo]] = {}
        for info in self.functions.values():
            if info.is_kernel:
                by_comp.setdefault(info.computation, []).append(info)  # type: ignore[arg-type]
        for comp, kernels in by_comp.items():
            if len(kernels) == 1:
                continue
            for k in kernels:
                if not k.locations:
                    self.error(
                        f"kernel '{k.name}' of computation {comp} is location-less "
                        f"but computation {comp} has {len(kernels)} kernels "
                        "(placement validity, Eq. 1)",
                        k.decl.line,
                    )
            placed = [k for k in kernels if k.locations]
            for i, a in enumerate(placed):
                for b in placed[i + 1 :]:
                    overlap = a.locations & b.locations
                    if overlap:
                        self.error(
                            f"kernels '{a.name}' and '{b.name}' of computation "
                            f"{comp} overlap at location(s) "
                            f"{sorted(overlap)} (placement validity, Eq. 1)",
                            b.decl.line,
                        )

    # -- kernel specification matching (§V-A) ------------------------------------------
    def check_specifications(self) -> None:
        by_comp: dict[int, list[FuncInfo]] = {}
        for info in self.functions.values():
            if info.is_kernel:
                by_comp.setdefault(info.computation, []).append(info)  # type: ignore[arg-type]
        for comp, kernels in by_comp.items():
            specs = {k.name: _kernel_spec(k.decl) for k in kernels}
            distinct = set(specs.values())
            if len(distinct) > 1:
                pretty = "; ".join(f"{n}: {s}" for n, s in specs.items())
                self.error(
                    f"kernels of computation {comp} have mismatched "
                    f"specifications ({pretty})",
                    kernels[0].decl.line,
                )

    # -- Eq. (2): reference validity w.r.t. location ---------------------------------------
    def check_reference_validity(self) -> None:
        for info in self.functions.values():
            for gname in sorted(info.uses_globals):
                self._check_ref(info, gname, self.globals[gname].locations, "memory")
            for fname in sorted(info.uses_netfns):
                self._check_ref(info, fname, self.functions[fname].locations, "net function")

    def _check_ref(self, user: FuncInfo, name: str, decl_loc: frozenset[int], kind: str) -> None:
        # LOC(d) == empty set means placed everywhere: always valid.
        if not decl_loc:
            return
        # A location-less user is compiled for every device; it may only
        # reference declarations that are also everywhere.
        if not user.locations or not user.locations <= decl_loc:
            user_desc = (
                f"{{{','.join(map(str, sorted(user.locations)))}}}"
                if user.locations
                else "all locations"
            )
            self.error(
                f"'{user.name}' (at {user_desc}) references {kind} '{name}' "
                f"placed only at {{{','.join(map(str, sorted(decl_loc)))}}} "
                "(reference validity, Eq. 2)",
                user.decl.line,
            )

    # -- recursion / call-graph checks (§V-D) ----------------------------------------------
    def check_recursion(self) -> None:
        visiting: set[str] = set()
        done: set[str] = set()

        def visit(name: str, chain: list[str]) -> None:
            if name in done:
                return
            if name in visiting:
                cycle = " -> ".join(chain + [name])
                self.error(
                    f"recursion is not supported in device code: {cycle} (§V-D)",
                    self.functions[name].decl.line,
                )
                return
            visiting.add(name)
            for callee in sorted(self.functions[name].uses_netfns):
                visit(callee, chain + [name])
            visiting.discard(name)
            done.add(name)

        for fname in list(self.functions):
            visit(fname, [])


def _kernel_spec(decl: ast.FuncDecl) -> tuple[tuple[int, str], ...]:
    """The kernel specification: (element count, type) per argument (§V-A)."""
    out: list[tuple] = []
    for p in decl.params:
        tyname = str(p.type)
        if p.tail:
            out.append((p.element_count, tyname, "tail"))
        else:
            out.append((p.element_count, tyname))
    return tuple(out)


def _walk_exprs(node) -> Iterator[tuple[ast.Expr, int]]:
    """Yield every expression in a statement tree with its source line."""
    if node is None:
        return
    if isinstance(node, ast.Block):
        for s in node.stmts:
            yield from _walk_exprs(s)
    elif isinstance(node, ast.If):
        yield from _walk_exprs(node.cond)
        yield from _walk_exprs(node.then)
        yield from _walk_exprs(node.els)
    elif isinstance(node, ast.For):
        yield from _walk_exprs(node.init)
        yield from _walk_exprs(node.cond)
        yield from _walk_exprs(node.step)
        yield from _walk_exprs(node.body)
    elif isinstance(node, ast.Return):
        yield from _walk_exprs(node.value)
    elif isinstance(node, ast.ExprStmt):
        yield from _walk_exprs(node.expr)
    elif isinstance(node, ast.VarDecl):
        yield from _walk_exprs(node.init)
    elif isinstance(node, ast.Expr):
        yield node, node.line
        for child in _expr_children(node):
            yield from _walk_exprs(child)


def _expr_children(expr: ast.Expr) -> list[Optional[ast.Expr]]:
    if isinstance(expr, ast.Unary):
        return [expr.operand]
    if isinstance(expr, ast.Binary):
        return [expr.left, expr.right]
    if isinstance(expr, ast.Assign):
        return [expr.target, expr.value]
    if isinstance(expr, ast.Ternary):
        return [expr.cond, expr.then, expr.els]
    if isinstance(expr, ast.Call):
        return list(expr.args)
    if isinstance(expr, ast.Index):
        return [expr.base, expr.index]
    if isinstance(expr, ast.InitList):
        return list(expr.items)
    return []


def analyze(program: ast.Program) -> SemaResult:
    """Run semantic analysis; raises :class:`CompileError` on violations."""
    return _Analyzer(program).run()
