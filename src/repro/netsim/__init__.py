"""Discrete-event network simulator — the evaluation testbed substitute.

The paper's end-to-end experiments (Fig. 14) run on six 100G servers and a
Tofino switch; this package provides the equivalent simulated fabric:
hosts and NetCL switches connected by links with latency, bandwidth, and
optional loss injection, a global event queue with nanosecond resolution,
and shortest-path routing between nodes (the base P4 program's forwarding
behavior, under the paper's assumption that the abstract topology *is* the
real topology, §VI-C).
"""

from repro.netsim.sim import Simulator, Event
from repro.netsim.net import (
    Network,
    Host,
    Switch,
    Link,
    HOST,
    DEVICE,
    NodeKey,
)

__all__ = [
    "Simulator",
    "Event",
    "Network",
    "Host",
    "Switch",
    "Link",
    "HOST",
    "DEVICE",
    "NodeKey",
]
