"""Hosts, switches, links, and routing.

Nodes are keyed by ``(kind, id)`` with ``kind`` in ``{"h", "d"}`` — host
ids and device ids are separate namespaces, matching the NetCL system
model (§IV).  Packets move hop by hop: every switch on the path invokes
its NetCL device runtime, which either computes (when the packet's ``to``
matches) or forwards it as a no-op — exactly the base-program behavior of
§VI-C.  Routing uses shortest paths over the topology graph (networkx).

Observability (``repro.telemetry``): every network owns a
:class:`MetricRegistry` with per-link tx counters and in-flight gauges,
per-node rx/tx counters, switch pipeline occupancy, and drops broken
down by cause; ``packets_dropped`` / ``packets_lost`` are views over
those counters.  Opt-in INT-style tracing (:meth:`Network.enable_tracing`)
records every hop a packet takes.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Optional

import networkx as nx

from repro.netsim.sim import Simulator
from repro.runtime.device import ForwardDecision, ForwardKind, NetCLDevice
from repro.runtime.message import KernelSpec, Message, NetCLPacket, NO_DEVICE, pack
from repro.telemetry import MetricRegistry, PacketTracer
from repro.telemetry.trace import node_name

NodeKey = tuple[str, int]


def HOST(i: int) -> NodeKey:
    return ("h", i)


def DEVICE(i: int) -> NodeKey:
    return ("d", i)


@dataclass
class Link:
    latency_ns: int = 1000
    bandwidth_gbps: float = 100.0
    loss_probability: float = 0.0

    def serialization_ns(self, size_bytes: int) -> int:
        # Gbps == bits/ns.  Round *up*: flooring lets small packets on fast
        # links serialize in 0 ns, making back-to-back sends instantaneous.
        # Any packet on the wire occupies it for at least 1 ns.
        return max(1, math.ceil(size_bytes * 8 / self.bandwidth_gbps))


@dataclass
class _LinkStats:
    """Pre-resolved per-link instruments (hot path: attribute access only)."""

    tx_packets: object
    tx_bytes: object
    lost: object
    in_flight: object


class Host:
    """An end host running NetCL host code."""

    def __init__(self, network: "Network", host_id: int) -> None:
        self.network = network
        self.host_id = host_id
        self.key = HOST(host_id)
        self.on_receive: Optional[Callable[[NetCLPacket, int], None]] = None
        self.received: list[tuple[int, NetCLPacket]] = []
        #: host-side per-packet processing overhead (NIC + kernel + app).
        self.rx_overhead_ns = 1500
        self.tx_overhead_ns = 1500
        self._rx_packets = network.metrics.counter(f"node.rx_packets.h{host_id}")
        self._tx_packets = network.metrics.counter(f"node.tx_packets.h{host_id}")

    # -- sending -------------------------------------------------------------------
    def send_message(
        self, msg: Message, spec: KernelSpec, values, *, delay_ns: int = 0
    ) -> NetCLPacket:
        """``send()``: pack a message and push it into the network."""
        raw = pack(msg, spec, values)
        packet = NetCLPacket.from_wire(raw)
        self.send_packet(packet, delay_ns=delay_ns)
        return packet

    def send_packet(self, packet: NetCLPacket, *, delay_ns: int = 0) -> None:
        sim = self.network.sim
        self._tx_packets.inc()
        sim.after(delay_ns + self.tx_overhead_ns, lambda: self.network.inject(self.key, packet))

    # -- receiving -------------------------------------------------------------------
    def deliver(self, packet: NetCLPacket) -> None:
        sim = self.network.sim

        def up() -> None:
            self._rx_packets.inc()
            self.network.tracer.hop(packet, self.key, "deliver", sim.now_ns)
            self.received.append((sim.now_ns, packet))
            if self.on_receive is not None:
                self.on_receive(packet, sim.now_ns)

        sim.after(self.rx_overhead_ns, up)


class Switch:
    """A switch node wrapping one NetCL device runtime."""

    def __init__(
        self,
        network: "Network",
        device: NetCLDevice,
        *,
        processing_ns: int = 400,
    ) -> None:
        self.network = network
        self.device = device
        self.key = DEVICE(device.device_id)
        #: per-packet pipeline latency (from the Fig. 13 model when the
        #: program was fitted; a default otherwise).
        self.processing_ns = processing_ns
        self._rx_packets = network.metrics.counter(f"node.rx_packets.d{device.device_id}")
        #: packets currently inside the pipeline (queue occupancy).
        self._occupancy = network.metrics.gauge(f"node.queue.d{device.device_id}")

    def deliver(self, packet: NetCLPacket) -> None:
        sim = self.network.sim
        self._rx_packets.inc()
        self._occupancy.inc()

        def done() -> None:
            self._occupancy.dec()
            if not self.network.is_up(self.key):
                # Crashed while the packet sat in the pipeline.
                self.network.tracer.hop(packet, self.key, "drop", sim.now_ns, "node down")
                return
            decision = self.device.process(packet)
            self.network.tracer.hop(
                packet, self.key, "decision",
                sim.now_ns, f"{decision.kind.value}->{decision.target}",
            )
            self.network.execute_decision(self.key, decision)
            for extra in self.device.drain_control():
                self.network.execute_decision(self.key, extra)

        # Tofino pipelines are full line-rate: processing adds latency but
        # never becomes a throughput bottleneck, so packets pipeline freely.
        sim.after(self.processing_ns, done)


class Network:
    def __init__(
        self,
        sim: Optional[Simulator] = None,
        *,
        seed: int = 1,
        metrics: Optional[MetricRegistry] = None,
        tracer: Optional[PacketTracer] = None,
    ) -> None:
        self.sim = sim or Simulator()
        self.graph = nx.Graph()
        self.hosts: dict[int, Host] = {}
        self.switches: dict[int, Switch] = {}
        self.links: dict[frozenset, Link] = {}
        self.multicast_groups: dict[int, list[NodeKey]] = {}
        self.seed = seed
        self.rng = random.Random(seed)
        self._routes: Optional[dict[NodeKey, dict[NodeKey, NodeKey]]] = None
        self.metrics = metrics or MetricRegistry()
        self.tracer = tracer or PacketTracer(enabled=False)
        self._link_stats: dict[frozenset, _LinkStats] = {}
        #: optional fault-injection layer (repro.chaos) consulted per hop.
        self.fault_injector: Optional[object] = None
        self._down: set[NodeKey] = set()
        self._drop_no_route = self.metrics.counter("net.drop.no_route")
        self._drop_unknown_node = self.metrics.counter("net.drop.unknown_node")
        self._drop_kernel = self.metrics.counter("net.drop.kernel")
        self._drop_node_down = self.metrics.counter("net.drop.node_down")
        self._lost_total = self.metrics.counter("net.lost")

    def child_rng(self, name: str) -> random.Random:
        """A named RNG derived from this network's seed.

        Subsystems (chaos, workload generators) derive their own streams
        so one ``--seed`` reproduces the whole run without the streams
        perturbing each other's draw sequences.
        """
        return random.Random(f"{self.seed}:{name}")

    def enable_tracing(self) -> PacketTracer:
        """Turn on INT-style per-packet tracing; returns the tracer."""
        self.tracer.enabled = True
        return self.tracer

    # -- counter views (kept for compatibility with pre-telemetry callers) ---------
    @property
    def packets_dropped(self) -> int:
        """Packets dropped by the network or a kernel (loss excluded)."""
        return int(self.metrics.total("net.drop."))

    @property
    def packets_lost(self) -> int:
        """Packets lost to link loss injection."""
        return int(self._lost_total.value)

    # -- topology ------------------------------------------------------------------
    def add_host(self, host_id: int) -> Host:
        host = Host(self, host_id)
        self.hosts[host_id] = host
        self.graph.add_node(host.key)
        self._routes = None
        return host

    def add_switch(self, device: NetCLDevice, *, processing_ns: int = 400) -> Switch:
        sw = Switch(self, device, processing_ns=processing_ns)
        self.switches[device.device_id] = sw
        self.graph.add_node(sw.key)
        self._routes = None
        return sw

    def link(self, a: NodeKey, b: NodeKey, link: Optional[Link] = None) -> Link:
        link = link or Link()
        self.graph.add_edge(a, b)
        key = frozenset((a, b))
        self.links[key] = link
        name = "-".join(sorted((node_name(a), node_name(b))))
        self._link_stats[key] = _LinkStats(
            tx_packets=self.metrics.counter(f"link.tx_packets.{name}"),
            tx_bytes=self.metrics.counter(f"link.tx_bytes.{name}"),
            lost=self.metrics.counter(f"link.lost.{name}"),
            in_flight=self.metrics.gauge(f"link.in_flight.{name}"),
        )
        self._routes = None
        return link

    def add_multicast_group(self, gid: int, members: list[NodeKey]) -> None:
        """Multicast groups contain *adjacent* nodes only (§V-A)."""
        self.multicast_groups[gid] = list(members)

    # -- failures (repro.chaos / repro.reliability) --------------------------------
    def is_up(self, key: NodeKey) -> bool:
        return key not in self._down

    def crash_switch(self, device_id: int) -> None:
        """Take a switch down: its edges leave the topology (transit
        reroutes around it) and packets addressed to it are dropped."""
        key = DEVICE(device_id)
        if key in self._down:
            return
        self._down.add(key)
        for neighbor in list(self.graph.neighbors(key)):
            self.graph.remove_edge(key, neighbor)
        self._routes = None
        self.metrics.counter("net.crashes").inc()

    def restart_switch(self, device_id: int) -> None:
        """Bring a crashed switch back with *empty* state (a reboot): the
        device loses all register and lookup contents."""
        key = DEVICE(device_id)
        if key not in self._down:
            return
        self._down.discard(key)
        for link_key in self.links:
            if key in link_key:
                a, b = tuple(link_key)
                other = b if a == key else a
                if other not in self._down:
                    self.graph.add_edge(a, b)
        self._routes = None
        sw = self.switches.get(device_id)
        if sw is not None:
            sw.device.reset_state()
        self.metrics.counter("net.restarts").inc()

    def remove_link(self, a: NodeKey, b: NodeKey) -> None:
        """Decommission one link entirely (service migration: a tenant
        device detaches from a physical switch).  Unlike
        :meth:`set_link_up` the link is forgotten — a later
        :meth:`restart_switch` will not resurrect it."""
        key = frozenset((a, b))
        if key not in self.links:
            raise KeyError(f"no link {a} -- {b}")
        del self.links[key]
        self._link_stats.pop(key, None)
        if self.graph.has_edge(a, b):
            self.graph.remove_edge(a, b)
        self._routes = None

    def remove_switch(self, device_id: int) -> None:
        """Decommission a switch node and every link touching it
        (service eviction: a tenant's device leaves the fabric).
        Historical counters stay in the metric registry."""
        key = DEVICE(device_id)
        self.switches.pop(device_id, None)
        for link_key in [k for k in self.links if key in k]:
            del self.links[link_key]
            self._link_stats.pop(link_key, None)
        if self.graph.has_node(key):
            self.graph.remove_node(key)
        self._down.discard(key)
        self._routes = None

    def set_link_up(self, a: NodeKey, b: NodeKey, up: bool) -> None:
        """Administratively flap one link; routing reconverges around it."""
        key = frozenset((a, b))
        if key not in self.links:
            raise KeyError(f"no link {a} -- {b}")
        if up:
            if a not in self._down and b not in self._down:
                self.graph.add_edge(a, b)
        elif self.graph.has_edge(a, b):
            self.graph.remove_edge(a, b)
        self._routes = None

    def _next_hop(self, at: NodeKey, toward: NodeKey) -> Optional[NodeKey]:
        if self._routes is None:
            self._routes = {}
            for src in self.graph.nodes:
                paths = nx.single_source_shortest_path(self.graph, src)
                self._routes[src] = {
                    dst: path[1] for dst, path in paths.items() if len(path) > 1
                }
        return self._routes.get(at, {}).get(toward)

    # -- packet movement ------------------------------------------------------------------
    def inject(self, at: NodeKey, packet: NetCLPacket) -> None:
        """A node pushes a packet into the network."""
        if self.tracer.enabled:
            self.tracer.begin(packet)
            self.tracer.hop(packet, at, "inject", self.sim.now_ns)
        target = self._target_of(packet)
        if target == at:
            self._arrive(at, packet)
            return
        self._hop(at, target, packet)

    def _target_of(self, packet: NetCLPacket) -> NodeKey:
        if packet.to != NO_DEVICE:
            return DEVICE(packet.to)
        return HOST(packet.dst)

    def _hop(self, at: NodeKey, toward: NodeKey, packet: NetCLPacket) -> None:
        nxt = self._next_hop(at, toward)
        if nxt is None:
            self._drop_no_route.inc()
            self.tracer.hop(
                packet, at, "drop", self.sim.now_ns, f"no route toward {node_name(toward)}"
            )
            return
        link = self.links[frozenset((at, nxt))]
        stats = self._link_stats[frozenset((at, nxt))]
        delay = link.latency_ns + link.serialization_ns(packet.size_bytes)
        if link.loss_probability > 0 and self.rng.random() < link.loss_probability:
            self._lost_total.inc()
            stats.lost.inc()
            self.tracer.hop(
                packet, at, "lost", self.sim.now_ns, f"on link to {node_name(nxt)}"
            )
            return
        deliveries = [(delay, packet)]
        if self.fault_injector is not None:
            deliveries = self.fault_injector.on_transmit(at, nxt, packet, delay)
            if not deliveries:
                self._lost_total.inc()
                stats.lost.inc()
                self.tracer.hop(
                    packet, at, "lost", self.sim.now_ns,
                    f"chaos on link to {node_name(nxt)}",
                )
                return
        for delay_ns, pkt in deliveries:
            stats.tx_packets.inc()
            stats.tx_bytes.inc(pkt.size_bytes)
            stats.in_flight.inc()
            self.tracer.hop(
                pkt, at, "tx", self.sim.now_ns, f"-> {node_name(nxt)} ({delay_ns} ns)"
            )

            def arrive(pkt=pkt) -> None:
                stats.in_flight.dec()
                self._arrive(nxt, pkt)

            self.sim.after(delay_ns, arrive)

    def _arrive(self, node: NodeKey, packet: NetCLPacket) -> None:
        if node in self._down:
            self._drop_node_down.inc()
            self.tracer.hop(packet, node, "drop", self.sim.now_ns, "node down")
            return
        kind, ident = node
        if kind == "h":
            host = self.hosts.get(ident)
            if host is None:
                self._drop_unknown_node.inc()
                self.tracer.hop(packet, node, "drop", self.sim.now_ns, "unknown host")
                return
            # Only deliver to the addressed host; transit through hosts is
            # not a thing (hosts are leaves).
            host.deliver(packet)
        else:
            sw = self.switches.get(ident)
            if sw is None:
                self._drop_unknown_node.inc()
                self.tracer.hop(packet, node, "drop", self.sim.now_ns, "unknown device")
                return
            sw.deliver(packet)

    # -- forwarding decisions --------------------------------------------------------------
    def execute_decision(self, at: NodeKey, decision: ForwardDecision) -> None:
        if decision.kind == ForwardKind.DROP or decision.packet is None:
            if decision.kind == ForwardKind.DROP:
                self._drop_kernel.inc()
            return
        packet = decision.packet
        if decision.kind == ForwardKind.TO_HOST:
            packet.dst = decision.target
            packet.to = NO_DEVICE
            self._route_from(at, HOST(decision.target), packet)
        elif decision.kind == ForwardKind.TO_DEVICE:
            packet.to = decision.target
            self._route_from(at, DEVICE(decision.target), packet)
        elif decision.kind == ForwardKind.MULTICAST:
            members = self.multicast_groups.get(decision.target, [])
            for member in members:
                copy = packet.copy()
                if member[0] == "h":
                    copy.dst = member[1]
                    copy.to = NO_DEVICE
                else:
                    copy.to = member[1]
                if self.tracer.enabled:
                    self.tracer.fork(packet, copy)
                    self.tracer.hop(
                        copy, at, "replicate", self.sim.now_ns,
                        f"group {decision.target} -> {node_name(member)}",
                    )
                self._route_from(at, member, copy)

    def _route_from(self, at: NodeKey, toward: NodeKey, packet: NetCLPacket) -> None:
        if toward == at:
            self._arrive(at, packet)
            return
        self._hop(at, toward, packet)
