"""Hosts, switches, links, and routing.

Nodes are keyed by ``(kind, id)`` with ``kind`` in ``{"h", "d"}`` — host
ids and device ids are separate namespaces, matching the NetCL system
model (§IV).  Packets move hop by hop: every switch on the path invokes
its NetCL device runtime, which either computes (when the packet's ``to``
matches) or forwards it as a no-op — exactly the base-program behavior of
§VI-C.  Routing uses shortest paths over the topology graph (networkx).

Observability (``repro.telemetry``): every network owns a
:class:`MetricRegistry` with per-link tx counters and in-flight gauges,
per-node rx/tx counters, switch pipeline occupancy, and drops broken
down by cause; ``packets_dropped`` / ``packets_lost`` are views over
those counters.  Opt-in INT-style tracing (:meth:`Network.enable_tracing`)
records every hop a packet takes.

Hot-path design (see DESIGN.md "Simulator performance"):

* Every tracer hop is guarded by ``tracer.enabled`` so the zero-tracing
  path formats no strings and makes no calls.
* Per-hop work schedules bound methods with arguments (no closures), and
  per-link instruments are pre-resolved into :class:`_LinkStats`.
* Multicast replicas come from a :class:`~repro.runtime.message.PacketPool`
  slab free-list; replicas that die inside the network layer are recycled.
* Routing is a per-source next-hop cache with incremental invalidation:
  removing an edge only discards sources whose shortest-path tree used
  it, so crash/restart/migration churn does not trigger all-pairs
  rebuilds (``route_rebuilds`` / ``route_invalidations`` count the work).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Optional

import networkx as nx

from repro.netsim.sim import Simulator
from repro.runtime.device import ForwardDecision, ForwardKind, NetCLDevice
from repro.runtime.message import KernelSpec, Message, NetCLPacket, NO_DEVICE, PacketPool, pack
from repro.telemetry import MetricRegistry, PacketTracer
from repro.telemetry.trace import node_name

NodeKey = tuple[str, int]


def HOST(i: int) -> NodeKey:
    return ("h", i)


def DEVICE(i: int) -> NodeKey:
    return ("d", i)


@dataclass
class Link:
    latency_ns: int = 1000
    bandwidth_gbps: float = 100.0
    loss_probability: float = 0.0

    def serialization_ns(self, size_bytes: int) -> int:
        # Gbps == bits/ns.  Round *up*: flooring lets small packets on fast
        # links serialize in 0 ns, making back-to-back sends instantaneous.
        # Any packet on the wire occupies it for at least 1 ns.
        return max(1, math.ceil(size_bytes * 8 / self.bandwidth_gbps))


@dataclass
class _LinkStats:
    """Pre-resolved per-link state (hot path: attribute access only)."""

    link: Link
    tx_packets: object
    tx_bytes: object
    lost: object
    in_flight: object
    #: memo of latency + serialization for the last packet size seen on
    #: this link (traffic is overwhelmingly same-sized within a run).
    cost_size: int = -1
    cost_ns: int = 0


class Host:
    """An end host running NetCL host code."""

    def __init__(self, network: "Network", host_id: int) -> None:
        self.network = network
        self.host_id = host_id
        self.key = HOST(host_id)
        self.on_receive: Optional[Callable[[NetCLPacket, int], None]] = None
        self.received: list[tuple[int, NetCLPacket]] = []
        #: host-side per-packet processing overhead (NIC + kernel + app).
        self.rx_overhead_ns = 1500
        self.tx_overhead_ns = 1500
        #: when True, overheads model a single-core packet path: each
        #: packet *occupies* the host for its overhead window, so a burst
        #: of N arrivals (or departures) serializes instead of overlapping.
        #: Off by default — workloads that care about host packet-rate
        #: limits (e.g. repro.rpc's fan-out comparison) opt in on both
        #: sides of their comparison.
        self.serialize_overheads = False
        self._tx_free_ns = 0
        self._rx_free_ns = 0
        self._rx_packets = network.metrics.counter(f"node.rx_packets.h{host_id}")
        self._tx_packets = network.metrics.counter(f"node.tx_packets.h{host_id}")

    # -- sending -------------------------------------------------------------------
    def send_message(
        self, msg: Message, spec: KernelSpec, values, *, delay_ns: int = 0
    ) -> NetCLPacket:
        """``send()``: pack a message and push it into the network."""
        raw = pack(msg, spec, values)
        packet = NetCLPacket.from_wire(raw)
        self.send_packet(packet, delay_ns=delay_ns)
        return packet

    def send_packet(self, packet: NetCLPacket, *, delay_ns: int = 0) -> None:
        self._tx_packets.inc()
        overhead = self.tx_overhead_ns
        if self.serialize_overheads:
            now = self.network.sim.now_ns + delay_ns
            start = max(now, self._tx_free_ns)
            self._tx_free_ns = start + overhead
            overhead += start - now
        self.network.sim.after(
            delay_ns + overhead, self.network.inject, self.key, packet
        )

    # -- receiving -------------------------------------------------------------------
    def deliver(self, packet: NetCLPacket) -> None:
        overhead = self.rx_overhead_ns
        if self.serialize_overheads:
            now = self.network.sim.now_ns
            start = max(now, self._rx_free_ns)
            self._rx_free_ns = start + overhead
            overhead += start - now
        self.network.sim.after(overhead, self._rx_up, packet)

    def _rx_up(self, packet: NetCLPacket) -> None:
        network = self.network
        now = network.sim.now_ns
        self._rx_packets.value += 1
        if network.tracer.enabled:
            network.tracer.hop(packet, self.key, "deliver", now)
        self.received.append((now, packet))
        if self.on_receive is not None:
            self.on_receive(packet, now)


class Switch:
    """A switch node wrapping one NetCL device runtime."""

    def __init__(
        self,
        network: "Network",
        device: NetCLDevice,
        *,
        processing_ns: int = 400,
    ) -> None:
        self.network = network
        self.device = device
        self.key = DEVICE(device.device_id)
        #: per-packet pipeline latency (from the Fig. 13 model when the
        #: program was fitted; a default otherwise).
        self.processing_ns = processing_ns
        self._rx_packets = network.metrics.counter(f"node.rx_packets.d{device.device_id}")
        #: packets currently inside the pipeline (queue occupancy).
        self._occupancy = network.metrics.gauge(f"node.queue.d{device.device_id}")

    def deliver(self, packet: NetCLPacket) -> None:
        self._rx_packets.value += 1
        self._occupancy.inc()
        # Tofino pipelines are full line-rate: processing adds latency but
        # never becomes a throughput bottleneck, so packets pipeline freely.
        self.network.sim.after(self.processing_ns, self._pipeline_done, packet)

    def _pipeline_done(self, packet: NetCLPacket) -> None:
        self._occupancy.value -= 1
        network = self.network
        if not network.is_up(self.key):
            # Crashed while the packet sat in the pipeline.
            if network.tracer.enabled:
                network.tracer.hop(
                    packet, self.key, "drop", network.sim.now_ns, "node down"
                )
            return
        decision = self.device.process(packet)
        if network.tracer.enabled:
            network.tracer.hop(
                packet, self.key, "decision",
                network.sim.now_ns, f"{decision.kind.value}->{decision.target}",
            )
        network.execute_decision(self.key, decision)
        for extra in self.device.drain_control():
            network.execute_decision(self.key, extra)


class Network:
    def __init__(
        self,
        sim: Optional[Simulator] = None,
        *,
        seed: int = 1,
        metrics: Optional[MetricRegistry] = None,
        tracer: Optional[PacketTracer] = None,
    ) -> None:
        self.sim = sim or Simulator()
        self.graph = nx.Graph()
        self.hosts: dict[int, Host] = {}
        self.switches: dict[int, Switch] = {}
        self.links: dict[frozenset, Link] = {}
        self.multicast_groups: dict[int, list[NodeKey]] = {}
        self.seed = seed
        self.rng = random.Random(seed)
        #: per-source next-hop tables, filled lazily on demand.
        self._routes: dict[NodeKey, dict[NodeKey, NodeKey]] = {}
        #: per-source shortest-path-tree edges, for incremental invalidation.
        self._route_trees: dict[NodeKey, set[frozenset]] = {}
        #: single-source route recomputations performed (perf telemetry).
        self.route_rebuilds = 0
        #: cached source tables discarded by topology changes.
        self.route_invalidations = 0
        self.metrics = metrics or MetricRegistry()
        self.tracer = tracer or PacketTracer(enabled=False)
        self._link_stats: dict[frozenset, _LinkStats] = {}
        #: same stats, keyed by directed (at, nxt) pair — a plain tuple
        #: lookup per hop instead of a frozenset allocation.
        self._stats_dir: dict[tuple[NodeKey, NodeKey], _LinkStats] = {}
        #: slab free-list for multicast replicas (see PacketPool).
        self.packet_pool = PacketPool()
        #: optional fault-injection layer (repro.chaos) consulted per hop.
        self.fault_injector: Optional[object] = None
        self._down: set[NodeKey] = set()
        #: links administratively downed via set_link_up(..., up=False);
        #: restart_switch must not resurrect these.
        self._admin_down: set[frozenset] = set()
        self._drop_no_route = self.metrics.counter("net.drop.no_route")
        self._drop_unknown_node = self.metrics.counter("net.drop.unknown_node")
        self._drop_kernel = self.metrics.counter("net.drop.kernel")
        self._drop_node_down = self.metrics.counter("net.drop.node_down")
        self._lost_total = self.metrics.counter("net.lost")

    def child_rng(self, name: str) -> random.Random:
        """A named RNG derived from this network's seed.

        Subsystems (chaos, workload generators) derive their own streams
        so one ``--seed`` reproduces the whole run without the streams
        perturbing each other's draw sequences.
        """
        return random.Random(f"{self.seed}:{name}")

    def enable_tracing(self) -> PacketTracer:
        """Turn on INT-style per-packet tracing; returns the tracer."""
        self.tracer.enabled = True
        return self.tracer

    # -- counter views (kept for compatibility with pre-telemetry callers) ---------
    @property
    def packets_dropped(self) -> int:
        """Packets dropped by the network or a kernel (loss excluded)."""
        return int(self.metrics.total("net.drop."))

    @property
    def packets_lost(self) -> int:
        """Packets lost to link loss injection."""
        return int(self._lost_total.value)

    # -- topology ------------------------------------------------------------------
    def add_host(self, host_id: int) -> Host:
        host = Host(self, host_id)
        self.hosts[host_id] = host
        self.graph.add_node(host.key)
        # An isolated node changes no existing shortest path: no
        # invalidation needed; the new source's table fills lazily.
        return host

    def add_switch(self, device: NetCLDevice, *, processing_ns: int = 400) -> Switch:
        sw = Switch(self, device, processing_ns=processing_ns)
        self.switches[device.device_id] = sw
        self.graph.add_node(sw.key)
        return sw

    def link(self, a: NodeKey, b: NodeKey, link: Optional[Link] = None) -> Link:
        link = link or Link()
        self.graph.add_edge(a, b)
        key = frozenset((a, b))
        self.links[key] = link
        name = "-".join(sorted((node_name(a), node_name(b))))
        stats = _LinkStats(
            link=link,
            tx_packets=self.metrics.counter(f"link.tx_packets.{name}"),
            tx_bytes=self.metrics.counter(f"link.tx_bytes.{name}"),
            lost=self.metrics.counter(f"link.lost.{name}"),
            in_flight=self.metrics.gauge(f"link.in_flight.{name}"),
        )
        self._link_stats[key] = stats
        self._stats_dir[(a, b)] = stats
        self._stats_dir[(b, a)] = stats
        self._routes_clear()
        return link

    def add_multicast_group(self, gid: int, members: list[NodeKey]) -> None:
        """Multicast groups contain *adjacent* nodes only (§V-A): every
        member must already be in the topology with at least one link."""
        for m in members:
            if m not in self.graph or self.graph.degree(m) == 0:
                raise ValueError(
                    f"multicast group {gid}: member {node_name(m)} is not an "
                    "adjacent node (add it to the topology and link it first)"
                )
        self.multicast_groups[gid] = list(members)

    # -- failures (repro.chaos / repro.reliability) --------------------------------
    def is_up(self, key: NodeKey) -> bool:
        return key not in self._down

    def crash_switch(self, device_id: int) -> None:
        """Take a switch down: its edges leave the topology (transit
        reroutes around it) and packets addressed to it are dropped."""
        key = DEVICE(device_id)
        if key in self._down:
            return
        self._down.add(key)
        removed = []
        for neighbor in list(self.graph.neighbors(key)):
            self.graph.remove_edge(key, neighbor)
            removed.append(frozenset((key, neighbor)))
        self._routes_invalidate_edges(removed)
        self.metrics.counter("net.crashes").inc()

    def restart_switch(self, device_id: int) -> None:
        """Bring a crashed switch back with *empty* state (a reboot): the
        device loses all register and lookup contents.  Administratively
        downed links (:meth:`set_link_up`) stay down."""
        key = DEVICE(device_id)
        if key not in self._down:
            return
        self._down.discard(key)
        for link_key in self.links:
            if key in link_key and link_key not in self._admin_down:
                a, b = tuple(link_key)
                other = b if a == key else a
                if other not in self._down:
                    self.graph.add_edge(a, b)
        self._routes_clear()
        sw = self.switches.get(device_id)
        if sw is not None:
            sw.device.reset_state()
        self.metrics.counter("net.restarts").inc()

    def remove_link(self, a: NodeKey, b: NodeKey) -> None:
        """Decommission one link entirely (service migration: a tenant
        device detaches from a physical switch).  Unlike
        :meth:`set_link_up` the link is forgotten — a later
        :meth:`restart_switch` will not resurrect it."""
        key = frozenset((a, b))
        if key not in self.links:
            raise KeyError(f"no link {a} -- {b}")
        del self.links[key]
        self._link_stats.pop(key, None)
        self._stats_dir.pop((a, b), None)
        self._stats_dir.pop((b, a), None)
        self._admin_down.discard(key)
        if self.graph.has_edge(a, b):
            self.graph.remove_edge(a, b)
        self._routes_invalidate_edges([key])

    def remove_switch(self, device_id: int) -> None:
        """Decommission a switch node and every link touching it
        (service eviction: a tenant's device leaves the fabric).
        Historical counters stay in the metric registry."""
        key = DEVICE(device_id)
        self.switches.pop(device_id, None)
        for link_key in [k for k in self.links if key in k]:
            del self.links[link_key]
            self._link_stats.pop(link_key, None)
            a, b = tuple(link_key)
            self._stats_dir.pop((a, b), None)
            self._stats_dir.pop((b, a), None)
            self._admin_down.discard(link_key)
        removed = []
        if self.graph.has_node(key):
            removed = [frozenset((key, n)) for n in self.graph.neighbors(key)]
            self.graph.remove_node(key)
        self._down.discard(key)
        self._routes_invalidate_edges(removed)
        self._routes.pop(key, None)
        self._route_trees.pop(key, None)

    def set_link_up(self, a: NodeKey, b: NodeKey, up: bool) -> None:
        """Administratively flap one link; routing reconverges around it."""
        key = frozenset((a, b))
        if key not in self.links:
            raise KeyError(f"no link {a} -- {b}")
        if up:
            self._admin_down.discard(key)
            if a not in self._down and b not in self._down:
                self.graph.add_edge(a, b)
                self._routes_clear()
        else:
            self._admin_down.add(key)
            if self.graph.has_edge(a, b):
                self.graph.remove_edge(a, b)
                self._routes_invalidate_edges([key])

    # -- routing -------------------------------------------------------------------
    def _routes_clear(self) -> None:
        """Full invalidation: an edge *addition* can shorten any path."""
        if self._routes:
            self.route_invalidations += len(self._routes)
            self._routes.clear()
            self._route_trees.clear()

    def _routes_invalidate_edges(self, edges) -> None:
        """Incremental invalidation for edge *removals*: only sources
        whose shortest-path tree used a removed edge can be affected —
        every other cached path avoids those edges and no remaining path
        got shorter, so the cached next hops stay optimal."""
        if not self._routes or not edges:
            return
        stale = [
            src
            for src, tree in self._route_trees.items()
            if any(e in tree for e in edges)
        ]
        for src in stale:
            del self._routes[src]
            del self._route_trees[src]
        self.route_invalidations += len(stale)

    def _rebuild_source(self, src: NodeKey) -> dict[NodeKey, NodeKey]:
        """(Re)compute one source's next-hop table and its tree edges."""
        table: dict[NodeKey, NodeKey] = {}
        tree: set[frozenset] = set()
        if src in self.graph:
            for dst, path in nx.single_source_shortest_path(self.graph, src).items():
                if len(path) > 1:
                    table[dst] = path[1]
                    for u, v in zip(path, path[1:]):
                        tree.add(frozenset((u, v)))
        self._routes[src] = table
        self._route_trees[src] = tree
        self.route_rebuilds += 1
        return table

    # -- packet movement ------------------------------------------------------------------
    def inject(self, at: NodeKey, packet: NetCLPacket) -> None:
        """A node pushes a packet into the network."""
        if self.tracer.enabled:
            self.tracer.begin(packet)
            self.tracer.hop(packet, at, "inject", self.sim.now_ns)
        target = self._target_of(packet)
        if target == at:
            self._arrive(at, packet)
            return
        self._hop(at, target, packet)

    def _target_of(self, packet: NetCLPacket) -> NodeKey:
        if packet.to != NO_DEVICE:
            return ("d", packet.to)
        return ("h", packet.dst)

    def _hop(self, at: NodeKey, toward: NodeKey, packet: NetCLPacket) -> None:
        table = self._routes.get(at)
        if table is None:
            table = self._rebuild_source(at)
        nxt = table.get(toward)
        tracing = self.tracer.enabled
        if nxt is None:
            self._drop_no_route.inc()
            if tracing:
                self.tracer.hop(
                    packet, at, "drop", self.sim.now_ns,
                    f"no route toward {node_name(toward)}",
                )
            self.packet_pool.release(packet)
            return
        stats = self._stats_dir[(at, nxt)]
        link = stats.link
        size = packet.size_bytes
        if size == stats.cost_size:
            delay = stats.cost_ns
        else:
            delay = link.latency_ns + link.serialization_ns(size)
            stats.cost_size = size
            stats.cost_ns = delay
        if link.loss_probability > 0 and self.rng.random() < link.loss_probability:
            self._lost_total.inc()
            stats.lost.inc()
            if tracing:
                self.tracer.hop(
                    packet, at, "lost", self.sim.now_ns, f"on link to {node_name(nxt)}"
                )
            self.packet_pool.release(packet)
            return
        if self.fault_injector is None:
            # Fast path: one delivery, no fault model consulted; counter
            # increments are inlined (see metrics.py's hot-path note).
            stats.tx_packets.value += 1
            stats.tx_bytes.value += size
            stats.in_flight.inc()
            if tracing:
                self.tracer.hop(
                    packet, at, "tx", self.sim.now_ns,
                    f"-> {node_name(nxt)} ({delay} ns)",
                )
            self.sim.after(delay, self._link_arrive, stats, nxt, packet)
            return
        deliveries = self.fault_injector.on_transmit(at, nxt, packet, delay)
        if not deliveries:
            self._lost_total.inc()
            stats.lost.inc()
            if tracing:
                self.tracer.hop(
                    packet, at, "lost", self.sim.now_ns,
                    f"chaos on link to {node_name(nxt)}",
                )
            self.packet_pool.release(packet)
            return
        for delay_ns, pkt in deliveries:
            stats.tx_packets.inc()
            stats.tx_bytes.inc(pkt.size_bytes)
            stats.in_flight.inc()
            if tracing:
                self.tracer.hop(
                    pkt, at, "tx", self.sim.now_ns,
                    f"-> {node_name(nxt)} ({delay_ns} ns)",
                )
            self.sim.after(delay_ns, self._link_arrive, stats, nxt, pkt)

    def _link_arrive(self, stats: _LinkStats, node: NodeKey, packet: NetCLPacket) -> None:
        stats.in_flight.value -= 1
        self._arrive(node, packet)

    def _arrive(self, node: NodeKey, packet: NetCLPacket) -> None:
        if node in self._down:
            self._drop_node_down.inc()
            if self.tracer.enabled:
                self.tracer.hop(packet, node, "drop", self.sim.now_ns, "node down")
            self.packet_pool.release(packet)
            return
        kind, ident = node
        if kind == "h":
            host = self.hosts.get(ident)
            if host is None:
                self._drop_unknown_node.inc()
                if self.tracer.enabled:
                    self.tracer.hop(
                        packet, node, "drop", self.sim.now_ns, "unknown host"
                    )
                self.packet_pool.release(packet)
                return
            # Only deliver to the addressed host; transit through hosts is
            # not a thing (hosts are leaves).  The packet escapes to the
            # application, which may retain it: it leaves the pool.
            self.packet_pool.disown(packet)
            host.deliver(packet)
        else:
            members = packet.mcast_members
            if members is not None:
                # A shared multicast transit replica: re-expand it here
                # instead of delivering it to the switch pipeline.
                packet.mcast_members = None
                self._fanout(node, packet, members, "transit fan-out")
                self.packet_pool.release(packet)
                return
            sw = self.switches.get(ident)
            if sw is None:
                self._drop_unknown_node.inc()
                if self.tracer.enabled:
                    self.tracer.hop(
                        packet, node, "drop", self.sim.now_ns, "unknown device"
                    )
                self.packet_pool.release(packet)
                return
            self.packet_pool.disown(packet)
            sw.deliver(packet)

    # -- forwarding decisions --------------------------------------------------------------
    def execute_decision(self, at: NodeKey, decision: ForwardDecision) -> None:
        kind = decision.kind
        packet = decision.packet
        if kind == ForwardKind.DROP:
            self._drop_kernel.inc()
            return
        if packet is None:
            # A non-DROP decision without a packet is a runtime bug in the
            # device; count it instead of losing the packet invisibly.
            self.metrics.counter("net.drop.null_decision").inc()
            return
        if kind == ForwardKind.TO_HOST:
            packet.dst = decision.target
            packet.to = NO_DEVICE
            self._route_from(at, ("h", decision.target), packet)
        elif kind == ForwardKind.TO_DEVICE:
            packet.to = decision.target
            self._route_from(at, ("d", decision.target), packet)
        elif kind == ForwardKind.MULTICAST:
            members = self.multicast_groups.get(decision.target)
            if not members:
                # Empty or unknown group: the replication fans out to
                # nothing, which used to look exactly like success.
                self.metrics.counter("net.drop.empty_group").inc()
                if self.tracer.enabled:
                    self.tracer.hop(
                        packet, at, "drop", self.sim.now_ns,
                        f"multicast group {decision.target} empty or unknown",
                    )
                return
            self._fanout(at, packet, members, f"group {decision.target}")

    def _fanout(
        self, at: NodeKey, packet: NetCLPacket, members, label: str
    ) -> None:
        """Egress-aware multicast replication (hierarchical fan-out).

        Members directly reachable from ``at`` get their own replica, as
        a real switch emits one copy per egress port.  Members that share
        a next-hop *switch* travel as a single transit replica annotated
        with the members it still covers; that switch re-expands it on
        arrival (see :meth:`_arrive`) — the spine sends one copy per ToR
        instead of one per worker, which is where the hierarchical tree's
        "hops saved" come from.
        """
        table = self._routes.get(at)
        if table is None:
            table = self._rebuild_source(at)
        direct = []
        shared: dict[NodeKey, list[NodeKey]] = {}
        for member in members:
            nxt = table.get(member)
            if nxt is None or nxt == member or nxt[0] == "h" or member == at:
                direct.append(member)
            else:
                shared.setdefault(nxt, []).append(member)
        pool = self.packet_pool
        tracing = self.tracer.enabled
        for member in direct:
            copy = pool.copy_of(packet)
            if member[0] == "h":
                copy.dst = member[1]
                copy.to = NO_DEVICE
            else:
                copy.to = member[1]
            if tracing:
                self.tracer.fork(packet, copy)
                self.tracer.hop(
                    copy, at, "replicate", self.sim.now_ns,
                    f"{label} -> {node_name(member)}",
                )
            self._route_from(at, member, copy)
        saved = 0
        for nxt, covered in shared.items():
            copy = pool.copy_of(packet)
            # The transit replica is never kernel-dispatched: _arrive
            # intercepts it by its member annotation.  Address it to no
            # device so a miss degrades to an unknown-host drop.
            copy.to = NO_DEVICE
            copy.dst = 0
            copy.mcast_members = tuple(covered)
            saved += len(covered) - 1
            if tracing:
                self.tracer.fork(packet, copy)
                self.tracer.hop(
                    copy, at, "replicate", self.sim.now_ns,
                    f"{label} => {node_name(nxt)} covering {len(covered)}",
                )
            self._hop(at, nxt, copy)
        if saved:
            self.metrics.counter("net.multicast.hops_saved").inc(saved)

    def _route_from(self, at: NodeKey, toward: NodeKey, packet: NetCLPacket) -> None:
        if toward == at:
            self._arrive(at, packet)
            return
        self._hop(at, toward, packet)
