"""Event queue with integer-nanosecond time.

Hot-path design (this file is under every packet of every end-to-end
benchmark):

* Heap entries are plain ``(time_ns, seq, event)`` tuples, so ``heapq``
  orders them with C-level integer comparisons — no Python ``__lt__``
  call per sift step.  ``seq`` is unique, so the tuple comparison never
  reaches the event object.
* :class:`Event` is a ``__slots__`` record carrying ``(fn, args)``
  instead of a captured closure: callers schedule bound methods plus
  arguments (``sim.after(d, self._arrive, node, pkt)``), which avoids
  allocating a closure cell per event.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable, Optional


class Event:
    """One scheduled callback: ``fn(*args)`` at ``time_ns``."""

    __slots__ = ("time_ns", "seq", "fn", "args", "cancelled", "_on_cancel")

    def __init__(
        self,
        time_ns: int,
        seq: int,
        fn: Callable[..., None],
        args: tuple = (),
    ) -> None:
        self.time_ns = time_ns
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        #: set by the owning Simulator while the event sits in its heap, so
        #: cancellation can be accounted for without a queue scan.
        self._on_cancel: Optional[Callable[[], None]] = None

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        if self._on_cancel is not None:
            self._on_cancel()

    def __lt__(self, other: "Event") -> bool:
        return (self.time_ns, self.seq) < (other.time_ns, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time_ns}, seq={self.seq}{state})"


class Simulator:
    """A minimal discrete-event simulator.

    Integer nanoseconds avoid floating-point drift over long runs (the AGG
    throughput experiment simulates hundreds of milliseconds of 100G
    traffic).  Fractional delays round *up* (like
    :meth:`~repro.netsim.net.Link.serialization_ns`): truncation would let
    sub-nanosecond float delays schedule "now", making supposedly-delayed
    work instantaneous.

    Cancelled events are removed lazily: they keep their heap slot until
    popped, but a live count makes :attr:`pending` O(1), and the heap is
    compacted whenever cancelled entries outnumber live ones (timeout-heavy
    workloads like the AGG retransmission window would otherwise grow the
    heap without bound).
    """

    #: don't bother compacting heaps smaller than this.
    COMPACT_MIN_SIZE = 64

    def __init__(self) -> None:
        self.now_ns = 0
        self._queue: list[tuple[int, int, Event]] = []
        self._seq = itertools.count()
        self._cancelled_in_queue = 0
        self.events_processed = 0
        self.compactions = 0

    def at(self, time_ns: int, callback: Callable[..., None], *args) -> Event:
        if time_ns < self.now_ns:
            raise ValueError(f"cannot schedule in the past ({time_ns} < {self.now_ns})")
        if type(time_ns) is not int:
            time_ns = int(time_ns)
        seq = next(self._seq)
        ev = Event(time_ns, seq, callback, args)
        ev._on_cancel = self._note_cancel
        heapq.heappush(self._queue, (time_ns, seq, ev))
        return ev

    def after(self, delay_ns: int | float, callback: Callable[..., None], *args) -> Event:
        # Body duplicated from at() on purpose: this is the single most
        # frequently called scheduling entry point (several calls per
        # packet per hop) and the extra frame is measurable.
        if type(delay_ns) is not int:
            # Round up, never down: int() truncation let sub-ns float
            # delays become instantaneous (0 ns) events.
            delay_ns = math.ceil(delay_ns)
        time_ns = self.now_ns + delay_ns if delay_ns > 0 else self.now_ns
        seq = next(self._seq)
        ev = Event(time_ns, seq, callback, args)
        ev._on_cancel = self._note_cancel
        heapq.heappush(self._queue, (time_ns, seq, ev))
        return ev

    def _note_cancel(self) -> None:
        self._cancelled_in_queue += 1
        if (
            len(self._queue) >= self.COMPACT_MIN_SIZE
            and self._cancelled_in_queue * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify.

        In place (slice assignment): ``run()`` holds a local reference to
        the queue list, and cancels fired from inside event callbacks can
        compact mid-run — rebinding ``self._queue`` would strand the loop
        on a stale list.
        """
        self._queue[:] = [e for e in self._queue if not e[2].cancelled]
        heapq.heapify(self._queue)
        self._cancelled_in_queue = 0
        self.compactions += 1

    def _pop(self) -> Event:
        ev = heapq.heappop(self._queue)[2]
        # Out of the heap: a later cancel() must not touch our accounting.
        ev._on_cancel = None
        return ev

    def run(self, until_ns: Optional[int] = None, max_events: Optional[int] = None) -> None:
        """Process events until the queue drains, the horizon passes, or
        the event budget is exhausted."""
        queue = self._queue
        pop = heapq.heappop
        n = 0
        while queue:
            if until_ns is not None and queue[0][0] > until_ns:
                self.now_ns = until_ns
                return
            ev = pop(queue)[2]
            ev._on_cancel = None
            if ev.cancelled:
                self._cancelled_in_queue -= 1
                continue
            self.now_ns = ev.time_ns
            ev.fn(*ev.args)
            self.events_processed += 1
            n += 1
            if max_events is not None and n >= max_events:
                return
        if until_ns is not None:
            self.now_ns = max(self.now_ns, until_ns)

    @property
    def pending(self) -> int:
        return len(self._queue) - self._cancelled_in_queue
