"""Event queue with integer-nanosecond time."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(order=True)
class Event:
    time_ns: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class Simulator:
    """A minimal discrete-event simulator.

    Integer nanoseconds avoid floating-point drift over long runs (the AGG
    throughput experiment simulates hundreds of milliseconds of 100G
    traffic).
    """

    def __init__(self) -> None:
        self.now_ns = 0
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self.events_processed = 0

    def at(self, time_ns: int, callback: Callable[[], None]) -> Event:
        if time_ns < self.now_ns:
            raise ValueError(f"cannot schedule in the past ({time_ns} < {self.now_ns})")
        ev = Event(int(time_ns), next(self._seq), callback)
        heapq.heappush(self._queue, ev)
        return ev

    def after(self, delay_ns: int | float, callback: Callable[[], None]) -> Event:
        return self.at(self.now_ns + max(0, int(delay_ns)), callback)

    def run(self, until_ns: Optional[int] = None, max_events: Optional[int] = None) -> None:
        """Process events until the queue drains, the horizon passes, or
        the event budget is exhausted."""
        n = 0
        while self._queue:
            if until_ns is not None and self._queue[0].time_ns > until_ns:
                self.now_ns = until_ns
                return
            ev = heapq.heappop(self._queue)
            if ev.cancelled:
                continue
            self.now_ns = ev.time_ns
            ev.callback()
            self.events_processed += 1
            n += 1
            if max_events is not None and n >= max_events:
                return
        if until_ns is not None:
            self.now_ns = max(self.now_ns, until_ns)

    @property
    def pending(self) -> int:
        return sum(1 for e in self._queue if not e.cancelled)
