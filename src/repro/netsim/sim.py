"""Event queue with integer-nanosecond time."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(order=True)
class Event:
    time_ns: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: set by the owning Simulator while the event sits in its heap, so
    #: cancellation can be accounted for without a queue scan.
    _on_cancel: Optional[Callable[[], None]] = field(
        default=None, compare=False, repr=False
    )

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        if self._on_cancel is not None:
            self._on_cancel()


class Simulator:
    """A minimal discrete-event simulator.

    Integer nanoseconds avoid floating-point drift over long runs (the AGG
    throughput experiment simulates hundreds of milliseconds of 100G
    traffic).

    Cancelled events are removed lazily: they keep their heap slot until
    popped, but a live count makes :attr:`pending` O(1), and the heap is
    compacted whenever cancelled entries outnumber live ones (timeout-heavy
    workloads like the AGG retransmission window would otherwise grow the
    heap without bound).
    """

    #: don't bother compacting heaps smaller than this.
    COMPACT_MIN_SIZE = 64

    def __init__(self) -> None:
        self.now_ns = 0
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._cancelled_in_queue = 0
        self.events_processed = 0
        self.compactions = 0

    def at(self, time_ns: int, callback: Callable[[], None]) -> Event:
        if time_ns < self.now_ns:
            raise ValueError(f"cannot schedule in the past ({time_ns} < {self.now_ns})")
        ev = Event(int(time_ns), next(self._seq), callback)
        ev._on_cancel = self._note_cancel
        heapq.heappush(self._queue, ev)
        return ev

    def after(self, delay_ns: int | float, callback: Callable[[], None]) -> Event:
        return self.at(self.now_ns + max(0, int(delay_ns)), callback)

    def _note_cancel(self) -> None:
        self._cancelled_in_queue += 1
        if (
            len(self._queue) >= self.COMPACT_MIN_SIZE
            and self._cancelled_in_queue * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify."""
        self._queue = [e for e in self._queue if not e.cancelled]
        heapq.heapify(self._queue)
        self._cancelled_in_queue = 0
        self.compactions += 1

    def _pop(self) -> Event:
        ev = heapq.heappop(self._queue)
        # Out of the heap: a later cancel() must not touch our accounting.
        ev._on_cancel = None
        return ev

    def run(self, until_ns: Optional[int] = None, max_events: Optional[int] = None) -> None:
        """Process events until the queue drains, the horizon passes, or
        the event budget is exhausted."""
        n = 0
        while self._queue:
            if until_ns is not None and self._queue[0].time_ns > until_ns:
                self.now_ns = until_ns
                return
            ev = self._pop()
            if ev.cancelled:
                self._cancelled_in_queue -= 1
                continue
            self.now_ns = ev.time_ns
            ev.callback()
            self.events_processed += 1
            n += 1
            if max_events is not None and n >= max_events:
                return
        if until_ns is not None:
            self.now_ns = max(self.now_ns, until_ns)

    @property
    def pending(self) -> int:
        return len(self._queue) - self._cancelled_in_queue
