"""P4-16 subset frontend, behavioral interpreter, and analysis tools.

This package is the stand-in for bmv2 and for the resource analysis of
*handwritten* P4 (the paper's baselines, Table III/V/VI, Fig. 12/13/14):

* :mod:`repro.p4.parser`    — lexer + recursive-descent parser for the
  TNA-flavoured P4-16 subset our handwritten baselines use (headers,
  parsers as FSMs, controls with actions/tables, ``Register`` /
  ``RegisterAction`` / ``Hash`` externs, deparsers);
* :mod:`repro.p4.interp`    — packet-in/packet-out behavioral execution;
* :mod:`repro.p4.resources` — lowering a parsed program to a
  :class:`repro.tofino.tables.PipelineSpec` for the fitter;
* :mod:`repro.p4.loc`       — line counting and the construct classifier
  behind Fig. 12;
* :mod:`repro.p4.switch`    — adapter exposing a P4 program as a netsim
  switch speaking the NetCL wire format.
"""

from repro.p4.parser import parse_p4, P4ParseError
from repro.p4.interp import P4Interpreter, P4RuntimeError
from repro.p4.resources import p4_to_pipeline_spec
from repro.p4.loc import count_loc, classify_lines, LineCategory
from repro.p4.switch import P4NetCLSwitchDevice

__all__ = [
    "parse_p4",
    "P4ParseError",
    "P4Interpreter",
    "P4RuntimeError",
    "p4_to_pipeline_spec",
    "count_loc",
    "classify_lines",
    "LineCategory",
    "P4NetCLSwitchDevice",
]
