"""AST for the P4-16 subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union


# -- types -----------------------------------------------------------------------


@dataclass(frozen=True)
class BitType:
    width: int
    signed: bool = False

    @property
    def mask(self) -> int:
        return (1 << self.width) - 1

    def __str__(self) -> str:
        return f"{'int' if self.signed else 'bit'}<{self.width}>"


@dataclass(frozen=True)
class BoolType:
    def __str__(self) -> str:
        return "bool"


@dataclass(frozen=True)
class NamedType:
    name: str

    def __str__(self) -> str:
        return self.name


P4Type = Union[BitType, BoolType, NamedType]


# -- expressions --------------------------------------------------------------------


@dataclass
class Num:
    value: int
    width: Optional[int] = None  # from 8w42 style literals


@dataclass
class BoolLit:
    value: bool


@dataclass
class Path:
    """Dotted member path: hdr.netcl.act, md.idx, local variable names."""

    parts: tuple[str, ...]

    def __str__(self) -> str:
        return ".".join(self.parts)


@dataclass
class Slice:
    base: "Expr"
    hi: int
    lo: int


@dataclass
class CastExpr:
    to: P4Type
    value: "Expr"


@dataclass
class Unary:
    op: str
    value: "Expr"


@dataclass
class Binary:
    op: str
    left: "Expr"
    right: "Expr"


@dataclass
class Ternary:
    cond: "Expr"
    then: "Expr"
    els: "Expr"


@dataclass
class MethodCall:
    """obj.method(args) — extract/emit/execute/get/apply/isValid/setValid..."""

    target: Path
    method: str
    args: list["Expr"] = field(default_factory=list)


@dataclass
class ApplyResult:
    """table.apply().hit / .miss"""

    table: str
    member: str  # "hit" | "miss"


@dataclass
class TupleExpr:
    items: list["Expr"]


Expr = Union[
    Num, BoolLit, Path, Slice, CastExpr, Unary, Binary, Ternary, MethodCall,
    ApplyResult, TupleExpr,
]


# -- statements -----------------------------------------------------------------------


@dataclass
class Assign:
    target: Union[Path, Slice]
    value: Expr


@dataclass
class VarDecl:
    type: P4Type
    name: str
    init: Optional[Expr] = None


@dataclass
class If:
    cond: Expr
    then: list["Stmt"]
    els: Optional[list["Stmt"]] = None


@dataclass
class CallStmt:
    call: MethodCall


@dataclass
class ApplyTable:
    table: str


@dataclass
class Exit:
    pass


Stmt = Union[Assign, VarDecl, If, CallStmt, ApplyTable, Exit]


# -- declarations ------------------------------------------------------------------------


@dataclass
class HeaderDecl:
    name: str
    fields: list[tuple[P4Type, str]]

    @property
    def bit_width(self) -> int:
        return sum(f.width for f, _ in self.fields if isinstance(f, BitType))


@dataclass
class StructDecl:
    name: str
    fields: list[tuple[P4Type, str]]


@dataclass
class SelectCase:
    keys: list[object]  # Num values, (lo, hi) ranges, "default"
    state: str


@dataclass
class ParserState:
    name: str
    statements: list[Stmt]
    transition: Union[str, "SelectTransition"]


@dataclass
class SelectTransition:
    exprs: list[Expr]
    cases: list[SelectCase]


@dataclass
class ParserDecl:
    name: str
    params: list[tuple[str, P4Type, str]]  # (direction, type, name)
    states: dict[str, ParserState]


@dataclass
class ActionDecl:
    name: str
    params: list[tuple[P4Type, str]]
    body: list[Stmt]


@dataclass
class TableEntry:
    keys: list[object]  # Num value, (lo, hi) range, (value, mask) ternary
    action: str
    args: list[int]
    priority: int = 0


@dataclass
class TableDecl:
    name: str
    keys: list[tuple[Expr, str]]  # (expr, match kind)
    actions: list[str]
    default_action: Optional[tuple[str, list[int]]] = None
    entries: list[TableEntry] = field(default_factory=list)
    size: int = 1024
    const_entries: bool = False


@dataclass
class RegisterDecl:
    name: str
    value_type: BitType
    index_type: P4Type
    size: int


@dataclass
class RegisterActionDecl:
    name: str
    register: str
    body: list[Stmt]
    value_param: str = "value"
    rv_param: Optional[str] = None


@dataclass
class HashDecl:
    name: str
    out_type: BitType
    algorithm: str


@dataclass
class RandomDecl:
    name: str
    out_type: BitType


@dataclass
class ControlDecl:
    name: str
    params: list[tuple[str, P4Type, str]]
    actions: dict[str, ActionDecl]
    tables: dict[str, TableDecl]
    registers: dict[str, RegisterDecl]
    register_actions: dict[str, RegisterActionDecl]
    hashes: dict[str, HashDecl]
    randoms: dict[str, RandomDecl]
    locals_: list[VarDecl]
    apply: list[Stmt]
    decl_order: list[tuple[str, str]] = field(default_factory=list)  # (kind, name)


@dataclass
class Program:
    typedefs: dict[str, P4Type]
    constants: dict[str, int]
    headers: dict[str, HeaderDecl]
    structs: dict[str, StructDecl]
    parsers: dict[str, ParserDecl]
    controls: dict[str, ControlDecl]
    source: str = ""

    def control_named(self, *candidates: str) -> ControlDecl:
        for c in candidates:
            if c in self.controls:
                return self.controls[c]
        raise KeyError(f"none of {candidates} found; have {list(self.controls)}")
