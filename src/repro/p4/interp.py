"""Behavioral execution of parsed P4 programs (the bmv2 stand-in).

Packet-in/packet-out semantics: bytes are parsed by the parser FSM into
header instances, the ingress control runs (tables, actions, Register
externs), and the deparser re-emits valid headers.  Register state
persists across packets; table entries can be installed at runtime (the
control-plane surface handwritten baselines like NetCache need).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from repro import hashing
from repro.p4 import ast


class P4RuntimeError(Exception):
    pass


class _ExitControl(Exception):
    """Raised by `exit` statements; unwinds to the control boundary."""


@dataclass
class HeaderInstance:
    decl: ast.HeaderDecl
    valid: bool = False
    fields: dict[str, int] = field(default_factory=dict)

    def reset(self) -> None:
        self.valid = False
        self.fields = {f: 0 for _, f in self.decl.fields}

    def width_of(self, name: str) -> int:
        for ty, f in self.decl.fields:
            if f == name and isinstance(ty, ast.BitType):
                return ty.width
        raise P4RuntimeError(f"no field {name} in header {self.decl.name}")


@dataclass
class _Table:
    decl: ast.TableDecl
    entries: list[ast.TableEntry] = field(default_factory=list)

    def match(self, keys: list[int]) -> Optional[ast.TableEntry]:
        for entry in self.entries:
            if self._entry_matches(entry, keys):
                return entry
        return None

    @staticmethod
    def _entry_matches(entry: ast.TableEntry, keys: list[int]) -> bool:
        if len(entry.keys) != len(keys):
            return False
        for spec, key in zip(entry.keys, keys):
            if spec == "default":
                continue
            if isinstance(spec, tuple) and len(spec) == 3 and spec[0] == "mask":
                _, value, mask = spec
                if (key & mask) != (value & mask):
                    return False
            elif isinstance(spec, tuple):
                lo, hi = spec
                if not lo <= key <= hi:
                    return False
            elif key != spec:
                return False
        return True


_HASH_ALGOS = {
    "CRC16": hashing.crc16,
    "CRC32": hashing.crc32,
    "CRC64": hashing.crc64,
    "XOR16": hashing.xor16,
    "IDENTITY": hashing.identity,
}

_NUMPY_DTYPE = {8: np.uint8, 16: np.uint16, 32: np.uint32, 64: np.uint64}


def _dtype_for(width: int):
    for w, dt in _NUMPY_DTYPE.items():
        if width <= w:
            return dt
    return np.uint64


class P4Interpreter:
    """Executes one P4 program instance (persistent state across packets)."""

    def __init__(self, program: ast.Program, *, seed: int = 0) -> None:
        self.program = program
        self.rng = random.Random(seed)
        self.registers: dict[str, np.ndarray] = {}
        self.register_decls: dict[str, ast.RegisterDecl] = {}
        self.tables: dict[str, _Table] = {}
        for ctrl in program.controls.values():
            for r in ctrl.registers.values():
                if r.name in self.registers:
                    raise P4RuntimeError(f"duplicate register {r.name}")
                self.registers[r.name] = np.zeros(r.size, dtype=_dtype_for(r.value_type.width))
                self.register_decls[r.name] = r
            for t in ctrl.tables.values():
                self.tables[t.name] = _Table(t, list(t.entries))

    # -- control plane ---------------------------------------------------------
    def insert_entry(self, table: str, keys: list[object], action: str, args: list[int]) -> None:
        tbl = self.tables[table]
        if tbl.decl.const_entries:
            raise P4RuntimeError(f"table {table} has const entries")
        if len(tbl.entries) >= tbl.decl.size:
            raise P4RuntimeError(f"table {table} full")
        tbl.entries.append(ast.TableEntry(list(keys), action, list(args)))

    def remove_entry(self, table: str, keys: list[object]) -> bool:
        tbl = self.tables[table]
        for e in list(tbl.entries):
            if e.keys == list(keys):
                tbl.entries.remove(e)
                return True
        return False

    def register_write(self, name: str, index: int, value: int) -> None:
        decl = self.register_decls[name]
        self.registers[name][index] = value & decl.value_type.mask

    def register_read(self, name: str, index: int) -> int:
        return int(self.registers[name][index])

    # -- packet path ---------------------------------------------------------------
    def run_packet(
        self,
        data: bytes,
        *,
        parser: str,
        ingress: str,
        deparser: Optional[str] = None,
        metadata: Optional[dict[str, int]] = None,
    ) -> tuple[dict[str, HeaderInstance], dict[str, int], bytes]:
        """Parse, run ingress, deparse.  Returns (headers, metadata, bytes)."""
        hdr = self._fresh_headers()
        md = dict(metadata or {})
        self._init_metadata(md)
        rest = self._run_parser(self.program.parsers[parser], data, hdr, md)
        ctrl = self.program.controls[ingress]
        self._run_control(ctrl, hdr, md)
        out = b""
        if deparser is not None:
            out = self._deparse(self.program.controls[deparser], hdr) + rest
        return hdr, md, out

    def _fresh_headers(self) -> dict[str, HeaderInstance]:
        # The header struct is conventionally the struct whose fields are
        # header types.
        out: dict[str, HeaderInstance] = {}
        for struct in self.program.structs.values():
            for ty, fname in struct.fields:
                if isinstance(ty, ast.NamedType) and ty.name in self.program.headers:
                    inst = HeaderInstance(self.program.headers[ty.name])
                    inst.reset()
                    out[fname] = inst
        return out

    def _init_metadata(self, md: dict[str, int]) -> None:
        for struct in self.program.structs.values():
            for ty, fname in struct.fields:
                if isinstance(ty, (ast.BitType, ast.BoolType)):
                    md.setdefault(fname, 0)

    # -- parser ------------------------------------------------------------------------
    def _run_parser(self, decl: ast.ParserDecl, data: bytes, hdr, md) -> bytes:
        cursor = _Cursor(data)
        state = "start"
        steps = 0
        env = _Env(self, hdr, md, {}, cursor)
        while state not in ("accept", "reject"):
            steps += 1
            if steps > 1000:
                raise P4RuntimeError("parser did not terminate")
            st = decl.states.get(state)
            if st is None:
                raise P4RuntimeError(f"undefined parser state {state}")
            for stmt in st.statements:
                self._exec_stmt(stmt, env)
            if isinstance(st.transition, str):
                state = st.transition
            else:
                values = [env.eval(e)[0] for e in st.transition.exprs]
                state = "reject"
                for case in st.transition.cases:
                    if self._select_matches(case.keys, values):
                        state = case.state
                        break
        if state == "reject":
            raise P4RuntimeError("parser rejected packet")
        return cursor.rest()

    @staticmethod
    def _select_matches(keys: list[object], values: list[int]) -> bool:
        if len(keys) != len(values):
            return keys == ["default"]
        for spec, v in zip(keys, values):
            if spec == "default":
                continue
            if isinstance(spec, tuple) and len(spec) == 3 and spec[0] == "mask":
                if (v & spec[2]) != (spec[1] & spec[2]):
                    return False
            elif isinstance(spec, tuple):
                if not spec[0] <= v <= spec[1]:
                    return False
            elif v != spec:
                return False
        return True

    # -- control -------------------------------------------------------------------------
    def _run_control(self, ctrl: ast.ControlDecl, hdr, md) -> None:
        locals_: dict[str, tuple[int, int]] = {}
        env = _Env(self, hdr, md, locals_, None, ctrl)
        for v in ctrl.locals_:
            width = v.type.width if isinstance(v.type, ast.BitType) else 1
            init = env.eval(v.init)[0] if v.init is not None else 0
            locals_[v.name] = (init & ((1 << width) - 1), width)
        try:
            for stmt in ctrl.apply:
                self._exec_stmt(stmt, env)
        except _ExitControl:
            pass

    def _deparse(self, ctrl: ast.ControlDecl, hdr) -> bytes:
        out = bytearray()
        for stmt in ctrl.apply:
            if isinstance(stmt, ast.CallStmt) and stmt.call.method == "emit":
                arg = stmt.call.args[0]
                assert isinstance(arg, ast.Path)
                inst = hdr.get(arg.parts[-1])
                if inst is not None and inst.valid:
                    out.extend(_pack_header(inst))
        return bytes(out)

    # -- statements ------------------------------------------------------------------------
    def _exec_stmt(self, stmt: ast.Stmt, env: "_Env") -> None:
        if isinstance(stmt, ast.Assign):
            value, _ = env.eval(stmt.value)
            env.assign(stmt.target, value)
        elif isinstance(stmt, ast.VarDecl):
            width = stmt.type.width if isinstance(stmt.type, ast.BitType) else 1
            init = env.eval(stmt.init)[0] if stmt.init is not None else 0
            env.locals_[stmt.name] = (init & ((1 << width) - 1), width)
        elif isinstance(stmt, ast.If):
            cond, _ = env.eval(stmt.cond)
            branch = stmt.then if cond else (stmt.els or [])
            for s in branch:
                self._exec_stmt(s, env)
        elif isinstance(stmt, ast.ApplyTable):
            self.apply_table(stmt.table, env)
        elif isinstance(stmt, ast.CallStmt):
            env.eval(stmt.call)
        elif isinstance(stmt, ast.Exit):
            raise _ExitControl()
        else:  # pragma: no cover
            raise P4RuntimeError(f"unhandled statement {stmt}")

    def apply_table(self, name: str, env: "_Env") -> bool:
        tbl = self.tables.get(name)
        if tbl is None:
            raise P4RuntimeError(f"unknown table {name}")
        keys = [env.eval(e)[0] for e in tbl.decl.keys for e in [e[0]]]
        entry = tbl.match(keys)
        if entry is not None:
            self._run_action(entry.action, entry.args, env)
            return True
        if tbl.decl.default_action is not None:
            aname, args = tbl.decl.default_action
            self._run_action(aname, args, env)
        return False

    def _run_action(self, name: str, args: list[int], env: "_Env") -> None:
        if name == "NoAction":
            return
        ctrl = env.control
        assert ctrl is not None
        action = ctrl.actions.get(name)
        if action is None:
            raise P4RuntimeError(f"unknown action {name}")
        saved = dict(env.locals_)
        for (ty, pname), arg in zip(action.params, args):
            width = ty.width if isinstance(ty, ast.BitType) else 32
            env.locals_[pname] = (arg & ((1 << width) - 1), width)
        for stmt in action.body:
            self._exec_stmt(stmt, env)
        # action parameters go out of scope; locals written remain
        for (_, pname) in action.params:
            if pname in saved:
                env.locals_[pname] = saved[pname]
            else:
                env.locals_.pop(pname, None)

    def execute_register_action(self, ra: ast.RegisterActionDecl, index: int, env: "_Env") -> int:
        decl = self.register_decls[ra.register]
        mem = self.registers[ra.register]
        if not 0 <= index < decl.size:
            raise P4RuntimeError(
                f"register {ra.register}: index {index} out of range [0,{decl.size})"
            )
        width = decl.value_type.width
        sub_locals = dict(env.locals_)
        sub_locals[ra.value_param] = (int(mem[index]), width)
        if ra.rv_param:
            sub_locals[ra.rv_param] = (0, width)
        sub = _Env(self, env.hdr, env.md, sub_locals, env.cursor, env.control)
        for stmt in ra.body:
            self._exec_stmt(stmt, sub)
        mem[index] = sub_locals[ra.value_param][0] & decl.value_type.mask
        if ra.rv_param:
            return sub_locals[ra.rv_param][0]
        return int(mem[index])


class _Cursor:
    def __init__(self, data: bytes) -> None:
        self.data = data
        self.bit = 0

    def extract(self, inst: HeaderInstance) -> None:
        for ty, fname in inst.decl.fields:
            assert isinstance(ty, ast.BitType)
            inst.fields[fname] = self._take(ty.width)
        inst.valid = True

    def _take(self, bits: int) -> int:
        total_bits = len(self.data) * 8
        if self.bit + bits > total_bits:
            raise P4RuntimeError("packet too short during extract")
        value = 0
        for _ in range(bits):
            byte = self.data[self.bit // 8]
            value = (value << 1) | ((byte >> (7 - self.bit % 8)) & 1)
            self.bit += 1
        return value

    def rest(self) -> bytes:
        # only byte-aligned tails supported
        return self.data[(self.bit + 7) // 8 :]


def _pack_header(inst: HeaderInstance) -> bytes:
    bits = 0
    value = 0
    for ty, fname in inst.decl.fields:
        assert isinstance(ty, ast.BitType)
        value = (value << ty.width) | (inst.fields[fname] & ty.mask)
        bits += ty.width
    if bits % 8:
        value <<= 8 - bits % 8
        bits += 8 - bits % 8
    return value.to_bytes(bits // 8, "big")


class _Env:
    """Evaluation environment: headers, metadata, locals, packet cursor."""

    def __init__(self, interp, hdr, md, locals_, cursor, control=None) -> None:
        self.interp = interp
        self.hdr = hdr
        self.md = md
        self.locals_ = locals_
        self.cursor = cursor
        self.control = control

    # -- expression evaluation ------------------------------------------------
    def eval(self, e: ast.Expr) -> tuple[int, int]:
        """Returns (value, width-in-bits)."""
        if isinstance(e, ast.Num):
            return e.value, e.width or 0
        if isinstance(e, ast.BoolLit):
            return int(e.value), 1
        if isinstance(e, ast.Path):
            return self._read_path(e)
        if isinstance(e, ast.Slice):
            v, _ = self.eval(e.base)
            width = e.hi - e.lo + 1
            return (v >> e.lo) & ((1 << width) - 1), width
        if isinstance(e, ast.CastExpr):
            v, _ = self.eval(e.value)
            if isinstance(e.to, ast.BitType):
                return v & e.to.mask, e.to.width
            return int(bool(v)), 1
        if isinstance(e, ast.Unary):
            v, w = self.eval(e.value)
            mask = (1 << w) - 1 if w else (1 << 64) - 1
            if e.op == "!":
                return int(v == 0), 1
            if e.op == "~":
                return (~v) & mask, w
            return (-v) & mask, w
        if isinstance(e, ast.Binary):
            return self._binary(e)
        if isinstance(e, ast.Ternary):
            c, _ = self.eval(e.cond)
            return self.eval(e.then if c else e.els)
        if isinstance(e, ast.MethodCall):
            return self._method(e)
        if isinstance(e, ast.ApplyResult):
            hit = self.interp.apply_table(e.table, self)
            if e.member == "hit":
                return int(hit), 1
            if e.member == "miss":
                return int(not hit), 1
            raise P4RuntimeError(f"unsupported apply() member {e.member}")
        if isinstance(e, ast.TupleExpr):
            # tuples appear only as hash inputs; fold to concatenated value
            value = 0
            width = 0
            for item in e.items:
                v, w = self.eval(item)
                w = w or 32
                value = (value << w) | (v & ((1 << w) - 1))
                width += w
            return value, width
        raise P4RuntimeError(f"cannot evaluate {e}")

    def _binary(self, e: ast.Binary) -> tuple[int, int]:
        a, wa = self.eval(e.left)
        b, wb = self.eval(e.right)
        w = wa or wb or 64
        mask = (1 << w) - 1
        op = e.op
        if op in ("==", "!=", "<", "<=", ">", ">="):
            res = {
                "==": a == b, "!=": a != b, "<": a < b,
                "<=": a <= b, ">": a > b, ">=": a >= b,
            }[op]
            return int(res), 1
        if op == "&&":
            return int(bool(a) and bool(b)), 1
        if op == "||":
            return int(bool(a) or bool(b)), 1
        table = {
            "+": a + b,
            "-": a - b,
            "*": a * b,
            "&": a & b,
            "|": a | b,
            "^": a ^ b,
            "<<": a << (b % max(w, 1)),
            ">>": a >> b,
            "|+|": min(a + b, mask),
            "|-|": max(a - b, 0),
            "/": a // b if b else 0,
            "%": a % b if b else 0,
        }
        if op not in table:
            raise P4RuntimeError(f"unsupported operator {op}")
        return table[op] & mask, w

    def _method(self, call: ast.MethodCall) -> tuple[int, int]:
        target = call.target
        method = call.method
        interp = self.interp
        # packet operations
        if method == "extract":
            arg = call.args[0]
            assert isinstance(arg, ast.Path) and self.cursor is not None
            self.cursor.extract(self._header(arg))
            return 0, 0
        if method == "advance":
            assert self.cursor is not None
            bits, _ = self.eval(call.args[0])
            self.cursor.bit += bits
            return 0, 0
        if method == "isValid":
            return int(self._header(target).valid), 1
        if method == "setValid":
            self._header(target).valid = True
            return 0, 0
        if method == "setInvalid":
            self._header(target).valid = False
            return 0, 0
        # extern instances (resolved within the current control)
        name = target.parts[-1]
        ctrl = self.control
        if method == "__direct__":
            # direct action invocation from the apply block
            if ctrl is not None and name in ctrl.actions:
                args = [self.eval(a)[0] for a in call.args]
                interp._run_action(name, args, self)
                return 0, 0
            raise P4RuntimeError(f"unknown direct call {name}()")
        if ctrl is not None and name in ctrl.register_actions and method == "execute":
            idx, _ = self.eval(call.args[0])
            ra = ctrl.register_actions[name]
            width = interp.register_decls[ra.register].value_type.width
            return interp.execute_register_action(ra, idx, self), width
        if ctrl is not None and name in ctrl.hashes and method == "get":
            h = ctrl.hashes[name]
            v, w = self.eval(call.args[0])
            fn = _HASH_ALGOS.get(h.algorithm.upper())
            if fn is None:
                raise P4RuntimeError(f"unknown hash algorithm {h.algorithm}")
            return hashing.truncate(fn(v, max(w, 8)), h.out_type.width), h.out_type.width
        if ctrl is not None and name in ctrl.randoms and method == "get":
            r = ctrl.randoms[name]
            return interp.rng.randrange(0, r.out_type.mask + 1), r.out_type.width
        if method == "apply":
            hit = interp.apply_table(str(target), self)
            return int(hit), 1
        raise P4RuntimeError(f"unsupported method {target}.{method}()")

    # -- lvalues ---------------------------------------------------------------
    def _header(self, path: ast.Path) -> HeaderInstance:
        # hdr.<name> or just <name>
        name = path.parts[-1]
        inst = self.hdr.get(name)
        if inst is None:
            raise P4RuntimeError(f"unknown header {path}")
        return inst

    def _read_path(self, path: ast.Path) -> tuple[int, int]:
        parts = path.parts
        if len(parts) == 1:
            name = parts[0]
            if name in self.locals_:
                return self.locals_[name]
            if name in self.md:
                return self.md[name], self._md_width(name)
            if name in self.interp.program.constants:
                return self.interp.program.constants[name], 0
            raise P4RuntimeError(f"unknown name {name}")
        if len(parts) >= 3 or (len(parts) == 2 and parts[0] not in ("md", "meta", "ig_md")):
            # hdr.x.f
            inst = self.hdr.get(parts[-2])
            if inst is not None and parts[-1] in inst.fields:
                return inst.fields[parts[-1]], inst.width_of(parts[-1])
        # metadata: md.f
        fname = parts[-1]
        if fname in self.md:
            return self.md[fname], self._md_width(fname)
        raise P4RuntimeError(f"cannot read {path}")

    def _md_width(self, name: str) -> int:
        for struct in self.interp.program.structs.values():
            for ty, f in struct.fields:
                if f == name and isinstance(ty, ast.BitType):
                    return ty.width
        return 32

    def assign(self, target: Union[ast.Path, ast.Slice], value: int) -> None:
        if isinstance(target, ast.Slice):
            base = target.base
            assert isinstance(base, ast.Path)
            old, w = self._read_path(base)
            width = target.hi - target.lo + 1
            mask = ((1 << width) - 1) << target.lo
            merged = (old & ~mask) | ((value << target.lo) & mask)
            self.assign(base, merged)
            return
        parts = target.parts
        if len(parts) == 1 and parts[0] in self.locals_:
            _, w = self.locals_[parts[0]]
            self.locals_[parts[0]] = (value & ((1 << w) - 1), w)
            return
        if len(parts) >= 2:
            inst = self.hdr.get(parts[-2])
            if inst is not None and parts[-1] in inst.fields:
                w = inst.width_of(parts[-1])
                inst.fields[parts[-1]] = value & ((1 << w) - 1)
                return
        fname = parts[-1]
        if fname in self.md or len(parts) >= 1:
            w = self._md_width(fname)
            self.md[fname] = value & ((1 << w) - 1)
            return
        raise P4RuntimeError(f"cannot assign to {target}")
