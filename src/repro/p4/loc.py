"""Line counting and the construct classifier behind Table III / Fig. 12.

``count_loc`` counts non-blank, non-comment lines — the usual LoC metric.
``classify_lines`` assigns every counted line to a P4 construct category
so the breakdown of Fig. 12 ("over 65% of P4 code is packet-processing
constructs") can be reproduced on our handwritten baselines.
"""

from __future__ import annotations

import re
from collections import Counter
from enum import Enum


class LineCategory(str, Enum):
    HEADERS = "headers"  # header/struct/typedef/const definitions
    PARSER = "parser"  # parser states & transitions
    TABLES = "tables"  # match-action table definitions
    ACTIONS = "actions"  # action bodies
    REGISTER = "register"  # Register/RegisterAction/Hash externs
    CONTROL = "control"  # imperative apply logic
    DEPARSER = "deparser"  # deparser emit code
    OTHER = "other"  # pipeline plumbing, includes, braces

    @property
    def is_packet_processing(self) -> bool:
        """Fig. 12's "packet-processing constructs" bucket."""
        return self in (
            LineCategory.HEADERS,
            LineCategory.PARSER,
            LineCategory.TABLES,
            LineCategory.DEPARSER,
        )

    @property
    def is_compute(self) -> bool:
        """Constructs carrying computation (the paper's ~52%)."""
        return self in (
            LineCategory.ACTIONS,
            LineCategory.REGISTER,
            LineCategory.CONTROL,
        )


def strip_comments(source: str) -> str:
    source = re.sub(r"/\*.*?\*/", lambda m: "\n" * m.group(0).count("\n"), source, flags=re.S)
    return re.sub(r"//[^\n]*", "", source)


def count_loc(source: str) -> int:
    """Non-blank, non-comment lines."""
    return sum(1 for line in strip_comments(source).splitlines() if line.strip())


_TOP_STARTERS = [
    (re.compile(r"^\s*(header|struct)\b"), LineCategory.HEADERS),
    (re.compile(r"^\s*(typedef|const)\b"), LineCategory.HEADERS),
    (re.compile(r"^\s*parser\b"), LineCategory.PARSER),
    (re.compile(r"^\s*table\b"), LineCategory.TABLES),
    (re.compile(r"^\s*action\b"), LineCategory.ACTIONS),
    (re.compile(r"^\s*(Register|RegisterAction|Hash|Random)\b"), LineCategory.REGISTER),
    (re.compile(r"^\s*apply\b"), LineCategory.CONTROL),
]

_CONTROL_RE = re.compile(r"^\s*control\b")
_DEPARSER_NAME_RE = re.compile(r"Deparser", re.IGNORECASE)


def classify_lines(source: str) -> Counter:
    """Counter of :class:`LineCategory` over the counted lines."""
    counts: Counter = Counter()
    # A small state machine with a context stack; braces drive scope.
    stack: list[LineCategory] = []
    in_deparser = False
    for raw in strip_comments(source).splitlines():
        line = raw.strip()
        if not line:
            continue
        category = None
        if _CONTROL_RE.match(line):
            in_deparser = bool(_DEPARSER_NAME_RE.search(line))
            category = LineCategory.DEPARSER if in_deparser else LineCategory.OTHER
            opens = line.count("{") - line.count("}")
            counts[category] += 1
            if opens > 0:
                stack.extend(
                    [LineCategory.DEPARSER if in_deparser else LineCategory.OTHER] * opens
                )
            continue
        for pattern, cat in _TOP_STARTERS:
            if pattern.match(line):
                category = cat
                break
        if category is None:
            if stack:
                category = stack[-1]
                if category is LineCategory.OTHER and not in_deparser:
                    # imperative code directly inside a control body
                    category = LineCategory.CONTROL
                if in_deparser:
                    category = LineCategory.DEPARSER
            else:
                category = LineCategory.OTHER
        counts[category] += 1
        opens = line.count("{") - line.count("}")
        if opens > 0:
            push = category
            stack.extend([push] * opens)
        elif opens < 0:
            for _ in range(-opens):
                if stack:
                    stack.pop()
            if not stack:
                in_deparser = False
    return counts


def breakdown_fractions(counts: Counter) -> dict[str, float]:
    """Fractions per category plus the Fig. 12 aggregate buckets."""
    total = sum(counts.values()) or 1
    out = {cat.value: counts.get(cat, 0) / total for cat in LineCategory}
    out["packet_processing"] = sum(
        counts.get(c, 0) for c in LineCategory if c.is_packet_processing
    ) / total
    out["compute"] = sum(counts.get(c, 0) for c in LineCategory if c.is_compute) / total
    return out
