"""Lexer and recursive-descent parser for the P4-16 subset."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional, Union

from repro.p4 import ast


class P4ParseError(Exception):
    def __init__(self, msg: str, line: int = 0) -> None:
        super().__init__(f"line {line}: {msg}" if line else msg)
        self.line = line


# -- lexer -------------------------------------------------------------------------

_PUNCT = [
    "|+|", "|-|", "<<=", ">>=", "&&&", "..", "::", "<<", ">>", "<=", ">=",
    "==", "!=", "&&", "||", "{", "}", "(", ")", "[", "]", ";", ",", "<",
    ">", "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "=", "?", ":",
    ".", "@", "_",
]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<lcomment>//[^\n]*)
  | (?P<bcomment>/\*.*?\*/)
  | (?P<pp>\#[^\n]*)
  | (?P<widthnum>\d+[ws]\d+)
  | (?P<hex>0[xX][0-9a-fA-F_]+)
  | (?P<bin>0[bB][01_]+)
  | (?P<num>\d[\d_]*)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<punct>%s)
    """
    % "|".join(re.escape(p) for p in _PUNCT),
    re.VERBOSE | re.DOTALL,
)


@dataclass
class Tok:
    kind: str  # "num" | "ident" | "punct" | "eof"
    text: str
    value: Optional[int]
    line: int


def lex_p4(src: str) -> list[Tok]:
    toks: list[Tok] = []
    pos, line = 0, 1
    while pos < len(src):
        m = _TOKEN_RE.match(src, pos)
        if m is None:
            raise P4ParseError(f"unexpected character {src[pos]!r}", line)
        text = m.group(0)
        kind = m.lastgroup or ""
        if kind in ("ws", "lcomment", "bcomment", "pp"):
            line += text.count("\n")
            pos = m.end()
            continue
        if kind == "widthnum":
            # 8w255 / 4s7 sized literal
            w, v = re.split("[ws]", text)
            toks.append(Tok("num", text, int(v), line))
        elif kind == "hex":
            toks.append(Tok("num", text, int(text.replace("_", ""), 16), line))
        elif kind == "bin":
            toks.append(Tok("num", text, int(text.replace("_", ""), 2), line))
        elif kind == "num":
            toks.append(Tok("num", text, int(text.replace("_", "")), line))
        elif kind == "ident":
            if text == "true":
                toks.append(Tok("num", text, 1, line))
            elif text == "false":
                toks.append(Tok("num", text, 0, line))
            else:
                toks.append(Tok("ident", text, None, line))
        else:
            toks.append(Tok("punct", text, None, line))
        line += text.count("\n")
        pos = m.end()
    toks.append(Tok("eof", "", None, line))
    return toks


# -- parser ------------------------------------------------------------------------------


class _Parser:
    def __init__(self, src: str) -> None:
        self.toks = lex_p4(src)
        self.pos = 0
        self.prog = ast.Program({}, {}, {}, {}, {}, {}, source=src)

    # token helpers ---------------------------------------------------------
    def peek(self, k: int = 0) -> Tok:
        return self.toks[min(self.pos + k, len(self.toks) - 1)]

    def next(self) -> Tok:
        t = self.peek()
        if t.kind != "eof":
            self.pos += 1
        return t

    def accept(self, text: str) -> bool:
        t = self.peek()
        if t.text == text and t.kind in ("punct", "ident"):
            self.next()
            return True
        return False

    def expect(self, text: str) -> Tok:
        t = self.peek()
        if text == ">" and t.text == ">>":
            # split `>>` closing nested type arguments (Register<bit<32>, ...>)
            self.toks[self.pos] = Tok("punct", ">", None, t.line)
            self.toks.insert(self.pos + 1, Tok("punct", ">", None, t.line))
            t = self.peek()
        if t.text != text:
            raise P4ParseError(f"expected {text!r}, found {t.text!r}", t.line)
        return self.next()

    def ident(self) -> str:
        t = self.peek()
        if t.kind != "ident":
            raise P4ParseError(f"expected identifier, found {t.text!r}", t.line)
        return self.next().text

    def number(self) -> int:
        t = self.peek()
        if t.kind == "ident" and t.text in self.prog.constants:
            self.next()
            return self.prog.constants[t.text]
        if t.kind != "num":
            raise P4ParseError(f"expected number, found {t.text!r}", t.line)
        self.next()
        assert t.value is not None
        return t.value

    # types ------------------------------------------------------------------
    def _is_type_start(self) -> bool:
        t = self.peek()
        return t.text in ("bit", "int", "bool") or (
            t.kind == "ident" and t.text in self.prog.typedefs
        )

    def parse_type(self) -> ast.P4Type:
        t = self.peek()
        if t.text == "bool":
            self.next()
            return ast.BoolType()
        if t.text in ("bit", "int"):
            self.next()
            self.expect("<")
            w = self.number()
            self.expect(">")
            return ast.BitType(w, signed=(t.text == "int"))
        name = self.ident()
        if name in self.prog.typedefs:
            return self.prog.typedefs[name]
        return ast.NamedType(name)

    # program ----------------------------------------------------------------------
    def parse(self) -> ast.Program:
        while self.peek().kind != "eof":
            t = self.peek()
            if t.text == "typedef":
                self.next()
                ty = self.parse_type()
                name = self.ident()
                self.expect(";")
                self.prog.typedefs[name] = ty
            elif t.text == "const":
                self.next()
                self.parse_type()
                name = self.ident()
                self.expect("=")
                value = self.parse_const_expr()
                self.expect(";")
                self.prog.constants[name] = value
            elif t.text == "header":
                self.parse_header()
            elif t.text == "struct":
                self.parse_struct()
            elif t.text == "parser":
                self.parse_parser()
            elif t.text == "control":
                self.parse_control()
            elif t.text in ("Pipeline", "Switch", "V1Switch", "package", "error", "extern", "enum", "match_kind"):
                self._skip_toplevel()
            else:
                # instantiation like `MyIngressParser() ip;` — skip to ';'
                self._skip_toplevel()
        return self.prog

    def _skip_toplevel(self) -> None:
        depth = 0
        while True:
            t = self.next()
            if t.kind == "eof":
                return
            if t.text in ("(", "{", "["):
                depth += 1
            elif t.text in (")", "}", "]"):
                depth -= 1
                if depth == 0 and self.peek().text == ";":
                    self.next()
                    return
                if depth == 0 and t.text == "}":
                    return
            elif t.text == ";" and depth == 0:
                return

    def parse_const_expr(self) -> int:
        e = self.parse_expr()
        v = _const_eval(e, self.prog.constants)
        if v is None:
            raise P4ParseError("expected a constant expression", self.peek().line)
        return v

    # headers / structs -------------------------------------------------------------
    def _parse_fields(self) -> list[tuple[ast.P4Type, str]]:
        self.expect("{")
        fields = []
        while not self.accept("}"):
            ty = self.parse_type()
            name = self.ident()
            self.expect(";")
            fields.append((ty, name))
        return fields

    def parse_header(self) -> None:
        self.expect("header")
        name = self.ident()
        self.prog.headers[name] = ast.HeaderDecl(name, self._parse_fields())

    def parse_struct(self) -> None:
        self.expect("struct")
        name = self.ident()
        self.prog.structs[name] = ast.StructDecl(name, self._parse_fields())

    # parser decls ----------------------------------------------------------------------
    def parse_params(self) -> list[tuple[str, ast.P4Type, str]]:
        self.expect("(")
        params = []
        while not self.accept(")"):
            direction = "in"
            if self.peek().text in ("in", "out", "inout", "packet_in", "packet_out"):
                direction = self.next().text
            if direction in ("packet_in", "packet_out"):
                ty: ast.P4Type = ast.NamedType(direction)
            else:
                ty = self.parse_type()
            name = self.ident()
            params.append((direction, ty, name))
            self.accept(",")
        return params

    def parse_parser(self) -> None:
        self.expect("parser")
        name = self.ident()
        params = self.parse_params()
        self.expect("{")
        states: dict[str, ast.ParserState] = {}
        while not self.accept("}"):
            self.expect("state")
            sname = self.ident()
            self.expect("{")
            stmts: list[ast.Stmt] = []
            transition: Union[str, ast.SelectTransition] = "reject"
            while not self.accept("}"):
                if self.peek().text == "transition":
                    self.next()
                    transition = self.parse_transition()
                else:
                    stmts.append(self.parse_statement())
            states[sname] = ast.ParserState(sname, stmts, transition)
        self.prog.parsers[name] = ast.ParserDecl(name, params, states)

    def parse_transition(self) -> Union[str, ast.SelectTransition]:
        if self.peek().text == "select":
            self.next()
            self.expect("(")
            exprs = [self.parse_expr()]
            while self.accept(","):
                exprs.append(self.parse_expr())
            self.expect(")")
            self.expect("{")
            cases: list[ast.SelectCase] = []
            while not self.accept("}"):
                keys = [self.parse_keyset()]
                while self.accept(","):
                    keys.append(self.parse_keyset())
                self.expect(":")
                state = self.ident()
                self.expect(";")
                cases.append(ast.SelectCase(keys, state))
            return ast.SelectTransition(exprs, cases)
        state = self.ident()
        self.expect(";")
        return state

    def parse_keyset(self) -> object:
        t = self.peek()
        if t.text in ("default", "_"):
            self.next()
            return "default"
        lo = self.parse_const_expr()
        if self.accept(".."):
            hi = self.parse_const_expr()
            return (lo, hi)
        if self.accept("&&&"):
            mask = self.parse_const_expr()
            return ("mask", lo, mask)
        return lo

    # controls ---------------------------------------------------------------------------
    def parse_control(self) -> None:
        self.expect("control")
        name = self.ident()
        params = self.parse_params()
        ctrl = ast.ControlDecl(name, params, {}, {}, {}, {}, {}, {}, [], [])
        self.expect("{")
        while not self.accept("}"):
            t = self.peek()
            if t.text == "action":
                a = self.parse_action()
                ctrl.actions[a.name] = a
                ctrl.decl_order.append(("action", a.name))
            elif t.text == "table":
                tbl = self.parse_table()
                ctrl.tables[tbl.name] = tbl
                ctrl.decl_order.append(("table", tbl.name))
            elif t.text == "Register":
                r = self.parse_register()
                ctrl.registers[r.name] = r
                ctrl.decl_order.append(("register", r.name))
            elif t.text == "RegisterAction":
                ra = self.parse_register_action()
                ctrl.register_actions[ra.name] = ra
                ctrl.decl_order.append(("register_action", ra.name))
            elif t.text == "Hash":
                h = self.parse_hash()
                ctrl.hashes[h.name] = h
                ctrl.decl_order.append(("hash", h.name))
            elif t.text == "Random":
                r2 = self.parse_random()
                ctrl.randoms[r2.name] = r2
                ctrl.decl_order.append(("random", r2.name))
            elif t.text == "apply":
                self.next()
                ctrl.apply = self.parse_block()
            elif self._is_type_start():
                ty = self.parse_type()
                vname = self.ident()
                init = None
                if self.accept("="):
                    init = self.parse_expr()
                self.expect(";")
                ctrl.locals_.append(ast.VarDecl(ty, vname, init))
            else:
                raise P4ParseError(f"unexpected {t.text!r} in control", t.line)
        self.prog.controls[name] = ctrl

    def parse_action(self) -> ast.ActionDecl:
        self.expect("action")
        name = self.ident()
        self.expect("(")
        params: list[tuple[ast.P4Type, str]] = []
        while not self.accept(")"):
            if self.peek().text in ("in", "out", "inout"):
                self.next()
            ty = self.parse_type()
            pname = self.ident()
            params.append((ty, pname))
            self.accept(",")
        body = self.parse_block()
        return ast.ActionDecl(name, params, body)

    def parse_table(self) -> ast.TableDecl:
        self.expect("table")
        name = self.ident()
        self.expect("{")
        tbl = ast.TableDecl(name, [], [])
        while not self.accept("}"):
            prop = self.ident()
            if prop == "key":
                self.expect("=")
                self.expect("{")
                while not self.accept("}"):
                    e = self.parse_expr()
                    self.expect(":")
                    kind = self.ident()
                    self.expect(";")
                    tbl.keys.append((e, kind))
            elif prop == "actions":
                self.expect("=")
                self.expect("{")
                while not self.accept("}"):
                    self.accept("@")  # annotations like @defaultonly
                    if self.peek().kind == "ident" and self.peek().text == "defaultonly":
                        self.next()
                    tbl.actions.append(self.ident())
                    self.accept(";")
                    self.accept(",")
                self.accept(";")
            elif prop == "default_action":
                self.expect("=")
                aname = self.ident()
                args: list[int] = []
                if self.accept("("):
                    while not self.accept(")"):
                        args.append(self.parse_const_expr())
                        self.accept(",")
                self.expect(";")
                tbl.default_action = (aname, args)
            elif prop in ("entries",):
                self._parse_entries(tbl)
            elif prop == "const":
                nxt = self.ident()
                if nxt == "entries":
                    tbl.const_entries = True
                    self._parse_entries(tbl, already_named=True)
                elif nxt == "default_action":
                    self.expect("=")
                    aname = self.ident()
                    args = []
                    if self.accept("("):
                        while not self.accept(")"):
                            args.append(self.parse_const_expr())
                            self.accept(",")
                    self.expect(";")
                    tbl.default_action = (aname, args)
                else:
                    raise P4ParseError(f"unexpected const {nxt}", self.peek().line)
            elif prop == "size":
                self.expect("=")
                tbl.size = self.number()
                self.expect(";")
            else:
                raise P4ParseError(f"unknown table property {prop!r}", self.peek().line)
        return tbl

    def _parse_entries(self, tbl: ast.TableDecl, already_named: bool = False) -> None:
        self.expect("=")
        self.expect("{")
        while not self.accept("}"):
            if self.accept("("):
                keys: list[object] = []
                while not self.accept(")"):
                    keys.append(self.parse_keyset())
                    self.accept(",")
            else:
                keys = [self.parse_keyset()]
            self.expect(":")
            aname = self.ident()
            args: list[int] = []
            if self.accept("("):
                while not self.accept(")"):
                    args.append(self.parse_const_expr())
                    self.accept(",")
            self.accept(";")
            tbl.entries.append(ast.TableEntry(keys, aname, args))
        self.accept(";")

    def parse_register(self) -> ast.RegisterDecl:
        self.expect("Register")
        self.expect("<")
        vt = self.parse_type()
        self.expect(",")
        it = self.parse_type()
        self.expect(">")
        self.expect("(")
        size = self.parse_const_expr()
        if self.accept(","):
            self.parse_const_expr()  # initial value (must be 0 in our model)
        self.expect(")")
        name = self.ident()
        self.expect(";")
        assert isinstance(vt, ast.BitType)
        return ast.RegisterDecl(name, vt, it, size)

    def parse_register_action(self) -> ast.RegisterActionDecl:
        self.expect("RegisterAction")
        self.expect("<")
        self.parse_type()
        self.expect(",")
        self.parse_type()
        self.expect(",")
        self.parse_type()
        self.expect(">")
        self.expect("(")
        reg = self.ident()
        self.expect(")")
        name = self.ident()
        self.expect("=")
        self.expect("{")
        self.expect("void")
        self.expect("apply")
        self.expect("(")
        # (inout bit<W> value [, out bit<W> rv])
        self.expect("inout")
        self.parse_type()
        value_param = self.ident()
        rv_param = None
        if self.accept(","):
            self.expect("out")
            self.parse_type()
            rv_param = self.ident()
        self.expect(")")
        body = self.parse_block()
        self.expect("}")
        self.expect(";")
        return ast.RegisterActionDecl(name, reg, body, value_param, rv_param)

    def parse_hash(self) -> ast.HashDecl:
        self.expect("Hash")
        self.expect("<")
        ot = self.parse_type()
        self.expect(">")
        self.expect("(")
        self.ident()  # HashAlgorithm_t
        self.expect(".")
        alg = self.ident()
        self.expect(")")
        name = self.ident()
        self.expect(";")
        assert isinstance(ot, ast.BitType)
        return ast.HashDecl(name, ot, alg)

    def parse_random(self) -> ast.RandomDecl:
        self.expect("Random")
        self.expect("<")
        ot = self.parse_type()
        self.expect(">")
        self.expect("(")
        self.expect(")")
        name = self.ident()
        self.expect(";")
        assert isinstance(ot, ast.BitType)
        return ast.RandomDecl(name, ot)

    # statements ----------------------------------------------------------------------------
    def parse_block(self) -> list[ast.Stmt]:
        self.expect("{")
        stmts: list[ast.Stmt] = []
        while not self.accept("}"):
            stmts.append(self.parse_statement())
        return stmts

    def parse_statement(self) -> ast.Stmt:
        t = self.peek()
        if t.text == "if":
            self.next()
            self.expect("(")
            cond = self.parse_expr()
            self.expect(")")
            then = self.parse_block() if self.peek().text == "{" else [self.parse_statement()]
            els = None
            if self.accept("else"):
                els = self.parse_block() if self.peek().text == "{" else [self.parse_statement()]
            return ast.If(cond, then, els)
        if t.text == "exit":
            self.next()
            self.expect(";")
            return ast.Exit()
        is_decl = False
        if t.text in ("bit", "int") and self.peek(1).text == "<":
            is_decl = True  # `bit<W> name ...` at statement level is a decl
        elif self._is_type_start() and self.peek(1).kind == "ident" and self.peek(2).text in ("=", ";"):
            is_decl = True
        if is_decl:
            ty = self.parse_type()
            name = self.ident()
            init = None
            if self.accept("="):
                init = self.parse_expr()
            self.expect(";")
            return ast.VarDecl(ty, name, init)
        # path-based: assignment, method call, or table.apply()
        expr = self.parse_expr()
        if self.accept("="):
            value = self.parse_expr()
            self.expect(";")
            if not isinstance(expr, (ast.Path, ast.Slice)):
                raise P4ParseError("invalid assignment target", t.line)
            return ast.Assign(expr, value)
        self.expect(";")
        if isinstance(expr, ast.MethodCall):
            if expr.method == "apply" and not expr.args:
                return ast.ApplyTable(str(expr.target))
            return ast.CallStmt(expr)
        if isinstance(expr, ast.ApplyResult):
            return ast.ApplyTable(expr.table)
        raise P4ParseError(f"expression statement has no effect", t.line)

    # expressions --------------------------------------------------------------------------------
    _LEVELS = [["||"], ["&&"], ["|"], ["^"], ["&"], ["==", "!="],
               ["<", "<=", ">", ">="], ["<<", ">>"], ["+", "-", "|+|", "|-|"],
               ["*", "/", "%"]]

    def parse_expr(self) -> ast.Expr:
        return self.parse_ternary()

    def parse_ternary(self) -> ast.Expr:
        cond = self.parse_binary(0)
        if self.accept("?"):
            then = self.parse_expr()
            self.expect(":")
            els = self.parse_expr()
            return ast.Ternary(cond, then, els)
        return cond

    def parse_binary(self, level: int) -> ast.Expr:
        if level >= len(self._LEVELS):
            return self.parse_unary()
        lhs = self.parse_binary(level + 1)
        while self.peek().text in self._LEVELS[level] and self.peek().kind == "punct":
            op = self.next().text
            rhs = self.parse_binary(level + 1)
            lhs = ast.Binary(op, lhs, rhs)
        return lhs

    def parse_unary(self) -> ast.Expr:
        t = self.peek()
        if t.text in ("!", "~", "-") and t.kind == "punct":
            self.next()
            return ast.Unary(t.text, self.parse_unary())
        if t.text == "(" :
            # cast or parenthesized
            save = self.pos
            self.next()
            if self._is_type_start():
                try:
                    ty = self.parse_type()
                    if self.accept(")"):
                        return ast.CastExpr(ty, self.parse_unary())
                except P4ParseError:
                    pass
            self.pos = save
            self.next()
            e = self.parse_expr()
            self.expect(")")
            return self.parse_postfix_ops(e)
        if t.text == "{":
            self.next()
            items: list[ast.Expr] = []
            while not self.accept("}"):
                items.append(self.parse_expr())
                self.accept(",")
            return ast.TupleExpr(items)
        if t.kind == "num":
            self.next()
            assert t.value is not None
            width = None
            m = re.match(r"(\d+)[ws]", t.text)
            if m:
                width = int(m.group(1))
            return ast.Num(t.value, width)
        if t.kind == "ident":
            if t.text in self.prog.constants and self.peek(1).text not in (".", "("):
                self.next()
                return ast.Num(self.prog.constants[t.text])
            return self.parse_postfix_ops(self.parse_path_or_call())
        raise P4ParseError(f"unexpected token {t.text!r}", t.line)

    def parse_path_or_call(self) -> ast.Expr:
        parts = [self.ident()]
        # direct action/function call: name(args)
        if self.peek().text == "(":
            self.next()
            args: list[ast.Expr] = []
            while not self.accept(")"):
                args.append(self.parse_expr())
                self.accept(",")
            return ast.MethodCall(ast.Path(tuple(parts)), "__direct__", args)
        while True:
            if self.accept("."):
                nxt = self.ident()
                if self.peek().text == "(":
                    # method call on path
                    self.next()
                    args: list[ast.Expr] = []
                    while not self.accept(")"):
                        args.append(self.parse_expr())
                        self.accept(",")
                    call = ast.MethodCall(ast.Path(tuple(parts)), nxt, args)
                    # table.apply().hit / .miss
                    if nxt == "apply" and self.peek().text == ".":
                        self.next()
                        member = self.ident()
                        return ast.ApplyResult(".".join(parts), member)
                    return call
                parts.append(nxt)
            else:
                break
        return ast.Path(tuple(parts))

    def parse_postfix_ops(self, e: ast.Expr) -> ast.Expr:
        while self.peek().text == "[" and self.peek().kind == "punct":
            self.next()
            hi = self.parse_const_expr()
            self.expect(":")
            lo = self.parse_const_expr()
            self.expect("]")
            e = ast.Slice(e, hi, lo)
        return e


def _const_eval(e: ast.Expr, consts: dict[str, int]) -> Optional[int]:
    if isinstance(e, ast.Num):
        return e.value
    if isinstance(e, ast.Path) and len(e.parts) == 1 and e.parts[0] in consts:
        return consts[e.parts[0]]
    if isinstance(e, ast.Unary):
        v = _const_eval(e.value, consts)
        if v is None:
            return None
        return {"-": -v, "~": ~v, "!": int(not v)}[e.op]
    if isinstance(e, ast.Binary):
        a, b = _const_eval(e.left, consts), _const_eval(e.right, consts)
        if a is None or b is None:
            return None
        try:
            return {
                "+": a + b, "-": a - b, "*": a * b, "<<": a << b, ">>": a >> b,
                "&": a & b, "|": a | b, "^": a ^ b, "/": a // b if b else None,
                "%": a % b if b else None,
            }.get(e.op)
        except Exception:
            return None
    return None


def parse_p4(source: str) -> ast.Program:
    """Parse P4-16 source text (the subset our baselines use)."""
    return _Parser(source).parse()
