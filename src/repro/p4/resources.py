"""Resource extraction: parsed P4 -> :class:`PipelineSpec`.

Gives handwritten baselines the same resource treatment generated code
gets (Table V/VI): every MAT becomes a logical table with its match kind,
every ``RegisterAction`` a Register/SALU unit colocated with its peers
over the same Register, gateways come from ``if`` conditions, and action
bodies contribute VLIW slots.  Dependencies are recovered with a light
dataflow: a table whose key (or guarding condition) reads a field that an
earlier construct wrote takes a MATCH/CONTROL dependency on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.p4 import ast
from repro.tofino.tables import (
    DependencyKind,
    LogicalTable,
    MatchKind,
    PipelineSpec,
)

_MATCH_KINDS = {
    "exact": MatchKind.EXACT,
    "ternary": MatchKind.TERNARY,
    "lpm": MatchKind.LPM,
    "range": MatchKind.RANGE,
}


def _expr_reads(e: Optional[ast.Expr]) -> set[str]:
    """Field paths an expression reads (dotted strings)."""
    out: set[str] = set()
    if e is None:
        return out
    if isinstance(e, ast.Path):
        out.add(str(e))
    elif isinstance(e, ast.Slice):
        out |= _expr_reads(e.base)
    elif isinstance(e, ast.CastExpr):
        out |= _expr_reads(e.value)
    elif isinstance(e, ast.Unary):
        out |= _expr_reads(e.value)
    elif isinstance(e, ast.Binary):
        out |= _expr_reads(e.left) | _expr_reads(e.right)
    elif isinstance(e, ast.Ternary):
        out |= _expr_reads(e.cond) | _expr_reads(e.then) | _expr_reads(e.els)
    elif isinstance(e, (ast.MethodCall,)):
        for a in e.args:
            out |= _expr_reads(a)
    elif isinstance(e, ast.TupleExpr):
        for a in e.items:
            out |= _expr_reads(a)
    return out


def _stmt_ops(stmts: list[ast.Stmt]) -> int:
    """VLIW slots an action body needs (1 per primitive statement)."""
    n = 0
    for s in stmts:
        if isinstance(s, (ast.Assign, ast.VarDecl, ast.CallStmt)):
            n += 1
        elif isinstance(s, ast.If):
            n += 1 + _stmt_ops(s.then) + _stmt_ops(s.els or [])
    return max(n, 1)


def _stmt_writes(stmts: list[ast.Stmt]) -> set[str]:
    out: set[str] = set()
    for s in stmts:
        if isinstance(s, ast.Assign):
            t = s.target
            if isinstance(t, ast.Slice):
                t = t.base  # type: ignore[assignment]
            if isinstance(t, ast.Path):
                out.add(str(t))
        elif isinstance(s, ast.If):
            out |= _stmt_writes(s.then) | _stmt_writes(s.els or [])
    return out


@dataclass
class _Walk:
    spec: PipelineSpec
    ctrl: ast.ControlDecl
    prog: ast.Program
    #: field path -> producing logical table name
    writer: dict[str, str] = field(default_factory=dict)
    counter: int = 0
    reg_anchor: dict[str, str] = field(default_factory=dict)

    def fresh(self, stem: str) -> str:
        self.counter += 1
        return f"{self.ctrl.name}_{stem}_{self.counter}"

    # -- helpers -----------------------------------------------------------------
    def _deps_for_reads(self, table: LogicalTable, reads: set[str], kind: DependencyKind) -> None:
        for path in reads:
            producer = self.writer.get(path)
            if producer is not None and producer != table.name:
                table.add_dep(producer, kind)

    def _record_action_effects(self, tname: str, action: ast.ActionDecl, env_writes: set[str]) -> None:
        for path in _stmt_writes(action.body) | env_writes:
            self.writer[path] = tname
        # register actions invoked inside actions
        self._scan_register_calls(action.body, tname, [])

    def _scan_register_calls(self, stmts: list[ast.Stmt], source: str, ctx: list[str]) -> None:
        for s in stmts:
            exprs: list[ast.Expr] = []
            if isinstance(s, ast.Assign):
                exprs.append(s.value)
            elif isinstance(s, ast.VarDecl) and s.init is not None:
                exprs.append(s.init)
            elif isinstance(s, ast.CallStmt):
                exprs.append(s.call)
            elif isinstance(s, ast.If):
                self._scan_register_calls(s.then, source, ctx)
                self._scan_register_calls(s.els or [], source, ctx)
                continue
            for e in exprs:
                self._scan_expr_register_calls(e, s, ctx)

    def _scan_expr_register_calls(self, e: ast.Expr, stmt: ast.Stmt, ctx: list[str]) -> None:
        if isinstance(e, ast.MethodCall):
            name = e.target.parts[-1]
            if name in self.ctrl.register_actions and e.method == "execute":
                self._register_table(name, e, stmt, ctx)
            if name in self.ctrl.hashes and e.method == "get":
                pass  # accounted on the consuming table
            for a in e.args:
                self._scan_expr_register_calls(a, stmt, ctx)
        elif isinstance(e, ast.Binary):
            self._scan_expr_register_calls(e.left, stmt, ctx)
            self._scan_expr_register_calls(e.right, stmt, ctx)
        elif isinstance(e, ast.Ternary):
            for sub in (e.cond, e.then, e.els):
                self._scan_expr_register_calls(sub, stmt, ctx)
        elif isinstance(e, (ast.CastExpr, ast.Unary)):
            self._scan_expr_register_calls(
                e.value, stmt, ctx
            )
        elif isinstance(e, ast.Slice):
            self._scan_expr_register_calls(e.base, stmt, ctx)

    def _register_table(self, ra_name: str, call: ast.MethodCall, stmt: ast.Stmt, ctx: list[str]) -> None:
        ra = self.ctrl.register_actions[ra_name]
        reg = self.ctrl.registers[ra.register]
        anchor = self.reg_anchor.get(ra.register)
        tbl = LogicalTable(
            self.fresh(f"reg_{ra.register}"),
            register_bits=0 if anchor else reg.value_type.width * reg.size,
            salus=0 if anchor else 1,
            vliw_slots=_stmt_ops(ra.body),
            colocate=anchor,
            origin=self.ctrl.name,
        )
        self.spec.add(tbl)
        if anchor is None:
            self.reg_anchor[ra.register] = tbl.name
        if call.args:
            self._deps_for_reads(tbl, _expr_reads(call.args[0]), DependencyKind.MATCH)
        # value operands read inside the microprogram
        reads = set()
        for s in ra.body:
            if isinstance(s, ast.Assign):
                reads |= _expr_reads(s.value)
            if isinstance(s, ast.If):
                reads |= _expr_reads(s.cond)
        self._deps_for_reads(tbl, reads, DependencyKind.ACTION)
        if ctx:
            tbl.add_dep(ctx[-1], DependencyKind.CONTROL)
        # the result lands wherever the surrounding statement writes
        if isinstance(stmt, ast.Assign) and isinstance(stmt.target, ast.Path):
            self.writer[str(stmt.target)] = tbl.name
        elif isinstance(stmt, ast.VarDecl):
            self.writer[stmt.name] = tbl.name

    # -- apply-block walk -----------------------------------------------------------
    def walk(self, stmts: list[ast.Stmt], ctx: list[str]) -> None:
        for s in stmts:
            if isinstance(s, ast.ApplyTable):
                self._mat(s.table, ctx)
            elif isinstance(s, ast.If):
                gw = self._gateway(s.cond, ctx)
                # tables applied within the condition itself
                self._tables_in_expr(s.cond, ctx)
                self.walk(s.then, ctx + [gw])
                self.walk(s.els or [], ctx + [gw])
            elif isinstance(s, (ast.Assign, ast.VarDecl)):
                self._action_stmt(s, ctx)
            elif isinstance(s, ast.CallStmt):
                self._scan_expr_register_calls(s.call, s, ctx)
            elif isinstance(s, ast.Exit):
                pass

    def _tables_in_expr(self, e: ast.Expr, ctx: list[str]) -> None:
        if isinstance(e, ast.ApplyResult):
            self._mat(e.table, ctx)
        elif isinstance(e, ast.Binary):
            self._tables_in_expr(e.left, ctx)
            self._tables_in_expr(e.right, ctx)
        elif isinstance(e, (ast.Unary, ast.CastExpr)):
            self._tables_in_expr(e.value, ctx)

    def _mat(self, name: str, ctx: list[str]) -> None:
        decl = self.ctrl.tables.get(name)
        if decl is None:
            return
        kind = MatchKind.EXACT
        key_bits = 0
        for expr, mk in decl.keys:
            kind = max(kind, _MATCH_KINDS.get(mk, MatchKind.EXACT), key=_tcam_rank)
            key_bits += 32
        value_bits = 0
        vliw = 1
        for aname in decl.actions:
            a = self.ctrl.actions.get(aname)
            if a is not None:
                value_bits = max(value_bits, sum(
                    t.width for t, _ in a.params if isinstance(t, ast.BitType)
                ))
                vliw = max(vliw, _stmt_ops(a.body))
        tbl = LogicalTable(
            f"{self.ctrl.name}_{name}",
            kind,
            key_bits=key_bits,
            entries=max(decl.size, len(decl.entries)),
            value_bits=value_bits,
            vliw_slots=vliw,
            hash_engines=0,
            origin=self.ctrl.name,
        )
        if any(t.name == tbl.name for t in self.spec.tables):
            return
        self.spec.add(tbl)
        for expr, _ in decl.keys:
            self._deps_for_reads(tbl, _expr_reads(expr), DependencyKind.MATCH)
        if ctx:
            tbl.add_dep(ctx[-1], DependencyKind.CONTROL)
        for aname in decl.actions:
            a = self.ctrl.actions.get(aname)
            if a is not None:
                self._record_action_effects(tbl.name, a, set())

    def _gateway(self, cond: ast.Expr, ctx: list[str]) -> str:
        gw = LogicalTable(self.fresh("gw"), is_gateway=True, key_bits=1, origin=self.ctrl.name)
        self.spec.add(gw)
        self._deps_for_reads(gw, _expr_reads(cond), DependencyKind.MATCH)
        if ctx:
            gw.add_dep(ctx[-1], DependencyKind.CONTROL)
        return gw.name

    def _action_stmt(self, s: Union[ast.Assign, ast.VarDecl], ctx: list[str]) -> str:
        value = s.value if isinstance(s, ast.Assign) else s.init
        reads = _expr_reads(value)
        produced_reads = {p for p in reads if p in self.writer}
        # A plain copy/cast of header or metadata fields never written by a
        # table is a PHV alias: consumers read the original field directly,
        # no MAU pass needed.
        if not produced_reads and _is_simple_copy(value):
            target = s.target if isinstance(s, ast.Assign) else None
            name = str(target) if isinstance(target, ast.Path) else getattr(s, "name", None)
            if name is not None:
                self.writer.pop(name, None)
            return ""
        tbl = LogicalTable(self.fresh("act"), vliw_slots=1, origin=self.ctrl.name)
        self.spec.add(tbl)
        self._deps_for_reads(tbl, reads, DependencyKind.ACTION)
        if ctx:
            tbl.add_dep(ctx[-1], DependencyKind.CONTROL)
        if isinstance(s, ast.Assign) and isinstance(s.target, ast.Path):
            self.writer[str(s.target)] = tbl.name
        elif isinstance(s, ast.VarDecl):
            self.writer[s.name] = tbl.name
        if value is not None:
            self._scan_expr_register_calls(value, s, ctx)
        return tbl.name


def _is_simple_copy(e) -> bool:
    """Path, cast-of-path, or constant — a pure PHV copy."""
    if e is None:
        return False
    if isinstance(e, (ast.Path, ast.Num)):
        return True
    if isinstance(e, ast.CastExpr):
        return _is_simple_copy(e.value)
    if isinstance(e, ast.Slice):
        return _is_simple_copy(e.base)
    return False


def _tcam_rank(kind: MatchKind) -> int:
    return {
        MatchKind.NONE: 0,
        MatchKind.EXACT: 1,
        MatchKind.LPM: 2,
        MatchKind.RANGE: 3,
        MatchKind.TERNARY: 4,
    }[kind]


def p4_to_pipeline_spec(
    program: ast.Program,
    *,
    name: str = "p4",
    ingress: Optional[str] = None,
    include_headers: bool = True,
) -> PipelineSpec:
    """Lower a parsed P4 program to a pipeline spec for the fitter."""
    spec = PipelineSpec(name)
    ctrl = (
        program.controls[ingress]
        if ingress is not None
        else program.control_named("Ingress", "MyIngress", "SwitchIngress")
    )
    walk = _Walk(spec, ctrl, program)
    walk.walk(ctrl.apply, [])
    if include_headers:
        parsed_bits = 0
        for hdr in program.headers.values():
            spec.header_fields.append(hdr.bit_width)
            parsed_bits += hdr.bit_width
        spec.parsed_bytes = max(spec.parsed_bytes, parsed_bits // 8)
        for struct in program.structs.values():
            for ty, _ in struct.fields:
                if isinstance(ty, ast.BitType):
                    spec.metadata_fields.append(ty.width)
    return spec


def p4_local_bits(program: ast.Program, ingress: Optional[str] = None) -> int:
    """Total bits of control-local variables (Table VI 'Local Vars')."""
    ctrl = (
        program.controls[ingress]
        if ingress is not None
        else program.control_named("Ingress", "MyIngress", "SwitchIngress")
    )
    total = 0
    for v in ctrl.locals_:
        if isinstance(v.type, ast.BitType):
            total += v.type.width
        else:
            total += 1
    return total
