"""Adapter: a handwritten P4 program as a netsim switch device.

Speaks the same NetCL wire format as the generated path (§VI-C): the
driver synthesizes Ethernet/IPv4/UDP bytes around the NetCL shim header,
feeds the packet through the P4 parser → ingress → deparser, and converts
the program's forwarding metadata back into a :class:`ForwardDecision`.

Conventions the handwritten baselines follow (we wrote both sides):

* headers named ``ethernet``/``ipv4``/``udp``/``netcl`` plus app args;
* UDP destination port ``NETCL_PORT`` (9000) marks NetCL traffic;
* ingress writes ``md.fwd_kind`` (0 host, 1 device, 2 multicast, 3 drop)
  and ``md.fwd_target``.
"""

from __future__ import annotations

from typing import Optional

from repro.p4 import ast
from repro.p4.interp import P4Interpreter
from repro.runtime.device import ForwardDecision, ForwardKind
from repro.runtime.message import NetCLPacket, NO_DEVICE
from repro.telemetry import MetricRegistry

NETCL_PORT = 9000

FWD_HOST, FWD_DEVICE, FWD_MCAST, FWD_DROP = 0, 1, 2, 3

_ETH = bytes(12) + (0x0800).to_bytes(2, "big")


def _ipv4(payload_len: int) -> bytes:
    total = 20 + payload_len
    return bytes(
        [0x45, 0]
        + list(total.to_bytes(2, "big"))
        + [0, 0, 0, 0, 64, 17, 0, 0]  # ttl=64, proto=UDP
        + [10, 0, 0, 1]
        + [10, 0, 0, 2]
    )


def _udp(payload_len: int) -> bytes:
    return (
        (40000).to_bytes(2, "big")
        + NETCL_PORT.to_bytes(2, "big")
        + (8 + payload_len).to_bytes(2, "big")
        + b"\x00\x00"
    )


class P4NetCLSwitchDevice:
    """Drop-in replacement for :class:`repro.runtime.device.NetCLDevice`
    backed by a behavioral P4 program."""

    def __init__(
        self,
        program: ast.Program,
        device_id: int,
        *,
        parser: str = "IngressParser",
        ingress: str = "Ingress",
        deparser: str = "IngressDeparser",
        seed: int = 0,
        metrics: Optional[MetricRegistry] = None,
    ) -> None:
        self.program = program
        self.device_id = device_id
        self._seed = seed
        self.interp = P4Interpreter(program, seed=seed)
        self.names = (parser, ingress, deparser)
        self.metrics = metrics or MetricRegistry()
        self._seen = self.metrics.counter("kernel.dispatches")
        self._computed = self.metrics.counter("kernel.computed")

    # -- counter views (parity with NetCLDevice) -----------------------------------
    @property
    def packets_seen(self) -> int:
        return int(self._seen.value)

    @property
    def packets_computed(self) -> int:
        return int(self._computed.value)

    # -- lifecycle (parity with NetCLDevice) ---------------------------------------
    def reset_state(self) -> None:
        """Model a device reboot: registers and table entries are lost."""
        self.interp = P4Interpreter(self.program, seed=self._seed)
        self.metrics.counter("device.resets").inc()

    def drain_control(self) -> list[ForwardDecision]:
        """Control packets queued while processing (none for plain P4)."""
        return []

    # -- control plane (used by app controllers) ---------------------------------
    def insert_entry(self, table: str, keys: list[object], action: str, args: list[int]) -> None:
        self.interp.insert_entry(table, keys, action, args)

    def register_write(self, name: str, index: int, value: int) -> None:
        self.interp.register_write(name, index, value)

    def register_read(self, name: str, index: int) -> int:
        return self.interp.register_read(name, index)

    # -- packet path -----------------------------------------------------------------
    def process(self, packet: NetCLPacket) -> ForwardDecision:
        self._seen.inc()
        netcl_bytes = packet.to_wire()
        raw = _ETH + _ipv4(8 + len(netcl_bytes)) + _udp(len(netcl_bytes)) + netcl_bytes
        parser, ingress, deparser = self.names
        hdr, md, out_bytes = self.interp.run_packet(
            raw, parser=parser, ingress=ingress, deparser=deparser
        )
        kind = md.get("fwd_kind", FWD_DROP)
        target = md.get("fwd_target", 0)
        if kind == FWD_DROP:
            return ForwardDecision(ForwardKind.DROP, packet=None)
        # Reconstruct the NetCL packet from the deparsed bytes (skip the
        # ETH/IP/UDP encapsulation the deparser re-emits).
        out = NetCLPacket.from_wire(out_bytes[42:])
        out.trace_id = packet.trace_id
        if md.get("computed", 0):
            self._computed.inc()
        if kind == FWD_HOST:
            out.to = NO_DEVICE
            return ForwardDecision(ForwardKind.TO_HOST, target, out)
        if kind == FWD_DEVICE:
            out.to = target
            return ForwardDecision(ForwardKind.TO_DEVICE, target, out)
        if kind == FWD_MCAST:
            out.to = NO_DEVICE
            return ForwardDecision(ForwardKind.MULTICAST, target, out)
        raise ValueError(f"P4 program produced unknown fwd_kind {kind}")
