"""NetCL middle-end passes (§VI-B of the paper).

The pipeline mirrors the paper's backend structure:

1. **P4-compilable CFG** (all targets): mem2reg (SSA construction),
   constant folding, peephole/instsimplify, DCE, CFG simplification, and
   the CFG-is-a-DAG check.  Reaching the end of this stage guarantees the
   program compiles for the v1model target.
2. **Tofino specifics**: memory partitioning, lookup duplication, the
   mutual-exclusion + branch-distance check, the cross-path access-order
   check, hoisting and aggressive speculation, and intrinsic pattern
   conversion.
3. **Code generation prep**: CFG structurization and φ-elimination.

Net-function inlining and full loop unrolling happen during AST lowering
(:mod:`repro.lang.lower`), so IR entering the pipeline is call-free and
loop-free by construction; the DAG check still guards it.
"""

from repro.passes.manager import PassManager, PassOptions, PassError, run_default_pipeline
from repro.passes.mem2reg import mem2reg
from repro.passes.simplify import simplify_function, fold_constants, simplify_cfg
from repro.passes.dce import dead_code_elimination
from repro.passes.dagcheck import check_dag
from repro.passes.memopt import partition_memory, duplicate_lookups
from repro.passes.memcheck import check_memory_constraints, MemoryCheckError
from repro.passes.hoist import hoist_common_values, speculate
from repro.passes.intrinsics import convert_intrinsic_patterns
from repro.passes.structurize import structurize, StructuredNode, SeqNode, IfNode, LeafNode
from repro.passes.phielim import eliminate_phis
from repro.passes.sroa import scalarize_local_arrays

__all__ = [
    "PassManager",
    "PassOptions",
    "PassError",
    "run_default_pipeline",
    "mem2reg",
    "simplify_function",
    "fold_constants",
    "simplify_cfg",
    "dead_code_elimination",
    "check_dag",
    "partition_memory",
    "duplicate_lookups",
    "check_memory_constraints",
    "MemoryCheckError",
    "hoist_common_values",
    "speculate",
    "convert_intrinsic_patterns",
    "structurize",
    "StructuredNode",
    "SeqNode",
    "IfNode",
    "LeafNode",
    "eliminate_phis",
    "scalarize_local_arrays",
]
