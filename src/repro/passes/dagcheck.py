"""CFG-is-a-DAG check (§VI-B).

P4 pipelines are feed-forward: after inlining, unrolling, and
simplification the CFG must contain no back edges, "otherwise a relevant
error is issued".  Loop unrolling at lowering time makes loops impossible
by construction; this pass is the compiler's safety net (and guards IR
built directly through the builder API).
"""

from __future__ import annotations

from repro.ir.blocks import BasicBlock
from repro.ir.module import Function
from repro.lang.errors import CompileError


def check_dag(fn: Function) -> None:
    """Raise :class:`CompileError` if the CFG contains a cycle."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color: dict[int, int] = {}

    def visit(bb: BasicBlock, path: list[str]) -> None:
        color[id(bb)] = GRAY
        for succ in bb.successors():
            c = color.get(id(succ), WHITE)
            if c == GRAY:
                cycle = " -> ".join(path + [bb.name, succ.name])
                raise CompileError(
                    f"control flow of '{fn.name}' is not a DAG (cycle: {cycle}); "
                    "P4 pipelines are feed-forward (§VI-B)"
                )
            if c == WHITE:
                visit(succ, path + [bb.name])
        color[id(bb)] = BLACK

    visit(fn.entry, [])
