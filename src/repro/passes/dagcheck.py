"""CFG-is-a-DAG check (§VI-B).

P4 pipelines are feed-forward: after inlining, unrolling, and
simplification the CFG must contain no back edges, "otherwise a relevant
error is issued".  Loop unrolling at lowering time makes loops impossible
by construction; this pass is the compiler's safety net (and guards IR
built directly through the builder API).

The DFS is iterative: fully-unrolled NetCL loops routinely produce CFGs
thousands of blocks deep, well past Python's recursion limit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.ir.module import Function
from repro.lang.errors import CompileError, Diagnostic

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.diagnostics import DiagnosticEngine
_MAX_CYCLE_BLOCKS = 12  # keep the reported cycle path readable


def check_dag(fn: Function, *, engine: Optional["DiagnosticEngine"] = None) -> None:
    """Raise :class:`CompileError` if the CFG contains a cycle.

    With an ``engine``, the finding is reported as an ``NCL101``
    diagnostic (anchored at the back edge's terminator) instead of
    raising, so ``ncc lint`` can keep collecting.
    """
    WHITE, GRAY, BLACK = 0, 1, 2
    color: dict[int, int] = {id(fn.entry): GRAY}
    # Explicit DFS frames: [block, next successor index].
    stack: list[list] = [[fn.entry, 0]]
    while stack:
        frame = stack[-1]
        bb, idx = frame
        succs = bb.successors()
        if idx >= len(succs):
            color[id(bb)] = BLACK
            stack.pop()
            continue
        frame[1] += 1
        succ = succs[idx]
        c = color.get(id(succ), WHITE)
        if c == GRAY:
            path = [f[0].name for f in stack]
            if len(path) > _MAX_CYCLE_BLOCKS:
                path = path[:2] + ["..."] + path[-(_MAX_CYCLE_BLOCKS - 3) :]
            cycle = " -> ".join(path + [succ.name])
            term = bb.terminator
            loc = term.loc if term is not None else None
            message = (
                f"control flow of '{fn.name}' is not a DAG (cycle: {cycle}); "
                "P4 pipelines are feed-forward (§VI-B)"
            )
            if engine is not None:
                engine.emit("NCL101", message, loc)
                return
            raise CompileError(
                [
                    Diagnostic(
                        message,
                        line=loc.line if loc else 0,
                        col=loc.col if loc else 0,
                        code="NCL101",
                    )
                ]
            )
        if c == WHITE:
            color[id(succ)] = GRAY
            stack.append([succ, 0])
