"""Dead code elimination.

Removes side-effect-free instructions whose results are never used, plus
dead local stores when the slot is never read.  Memory-writing
instructions (global stores, atomics, message stores) are never removed.
"""

from __future__ import annotations

from repro.ir.instructions import Alloca, Load, Store
from repro.ir.module import Function


def dead_code_elimination(fn: Function) -> int:
    removed = 0
    changed = True
    while changed:
        changed = False
        # Value uses, excluding the slot operand of Load/Store (those are
        # storage references, not value uses).
        used: set[int] = set()
        loaded_slots: set[int] = set()
        stored_slots: set[int] = set()
        for inst in fn.instructions():
            if isinstance(inst, Load):
                loaded_slots.add(id(inst.slot))
                for op in inst.indices:
                    used.add(id(op))
                continue
            if isinstance(inst, Store):
                stored_slots.add(id(inst.slot))
                used.add(id(inst.value))
                for op in inst.indices:
                    used.add(id(op))
                continue
            for op in inst.operands:
                used.add(id(op))
        for bb in fn.blocks:
            for inst in list(bb.instructions):
                if inst.is_terminator:
                    continue
                if isinstance(inst, Store):
                    if id(inst.slot) not in loaded_slots:
                        bb.remove(inst)
                        removed += 1
                        changed = True
                    continue
                if isinstance(inst, Alloca):
                    if (
                        id(inst) not in loaded_slots
                        and id(inst) not in stored_slots
                        and id(inst) not in used
                    ):
                        bb.remove(inst)
                        removed += 1
                        changed = True
                    continue
                if inst.has_side_effects:
                    continue
                if id(inst) not in used:
                    bb.remove(inst)
                    removed += 1
                    changed = True
    return removed
