"""Instruction hoisting and aggressive speculation (§VI-B).

*Hoisting*: instructions computing the same value in sibling blocks are
moved to a common dominator (when their operands are available there) and
deduplicated.

*Speculation*: pure value-producing instructions are hoisted to the
earliest block where their operands are available — executing them on
paths that may not need them.  On Tofino this can shorten the critical
path enough to fit a program that otherwise would not (the paper credits
speculation for fitting one of its major programs), at the cost of PHV
pressure — hence it is a compiler flag.

Neither pass touches memory-accessing instructions: speculating a global
access would violate the mutual-exclusion property checked by
:mod:`repro.passes.memcheck`.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.blocks import BasicBlock
from repro.ir.dominators import DominatorTree, reverse_postorder
from repro.ir.instructions import (
    BinOp,
    Cast,
    Constant,
    ICmp,
    Instruction,
    Intrinsic,
    LoadMsg,
    Select,
    Value,
)
from repro.ir.module import Function


_NO_SPECULATE = frozenset(("udiv", "sdiv", "urem", "srem"))  # may trap on /0


def _pure_value(inst: Instruction) -> bool:
    """Instructions that produce a value and do not touch memory."""
    if isinstance(inst, BinOp):
        return inst.kind.value not in _NO_SPECULATE
    if isinstance(inst, (ICmp, Select, Cast)):
        return True
    if isinstance(inst, Intrinsic):
        return not inst.has_side_effects
    if isinstance(inst, LoadMsg):
        # Message fields are thread-private; reading early is safe as long
        # as no StoreMsg to the same field could intervene — conservatively
        # only speculate constant-index loads of fields that are never
        # stored (checked by the caller).
        return False
    return False


def _op_key(v: Value):
    """Operand identity for value numbering: constants compare by value."""
    if isinstance(v, Constant):
        return ("const", v.type, v.value)
    return ("v", id(v))


def _value_key(inst: Instruction) -> Optional[tuple]:
    """Hashable identity of a pure computation, for deduplication."""
    if isinstance(inst, BinOp):
        ops = (_op_key(inst.a), _op_key(inst.b))
        if inst.kind.commutative:
            ops = tuple(sorted(ops))
        return ("bin", inst.kind, inst.type, ops)
    if isinstance(inst, ICmp):
        return ("icmp", inst.pred, _op_key(inst.a), _op_key(inst.b))
    if isinstance(inst, Cast):
        return ("cast", inst.kind, inst.type, _op_key(inst.value))
    if isinstance(inst, Select):
        return ("select", _op_key(inst.cond), _op_key(inst.t), _op_key(inst.f))
    if isinstance(inst, Intrinsic) and not inst.has_side_effects:
        return ("intr", inst.callee, inst.type, tuple(_op_key(a) for a in inst.args))
    return None


def _def_block(v: Value) -> Optional[BasicBlock]:
    if isinstance(v, Instruction):
        return v.parent
    return None  # constants, arguments, undef: available everywhere


def _operands_available(inst: Instruction, dest: BasicBlock, dt: DominatorTree) -> bool:
    for op in inst.operands:
        db = _def_block(op)
        if db is None:
            continue
        if db is dest:
            continue  # insertion goes before the terminator, after all defs
        if not dt.dominates(db, dest):
            return False
    return True


def _move_before_terminator(inst: Instruction, dest: BasicBlock) -> None:
    assert inst.parent is not None
    inst.parent.remove(inst)
    idx = len(dest.instructions)
    if dest.terminator is not None:
        idx -= 1
    dest.insert(idx, inst)


def hoist_common_values(fn: Function) -> int:
    """GVN-style dedup: identical pure computations collapse to one.

    Returns the number of instructions eliminated or moved.
    """
    changes = 0
    changed = True
    while changed:
        changed = False
        dt = DominatorTree(fn)
        seen: dict[tuple, Instruction] = {}
        for bb in dt.rpo:
            for inst in list(bb.instructions):
                key = _value_key(inst)
                if key is None:
                    continue
                prior = seen.get(key)
                if prior is None or prior.parent is None:
                    seen[key] = inst
                    continue
                pb, ib = prior.parent, inst.parent
                assert pb is not None and ib is not None
                if dt.dominates(pb, ib):
                    fn.replace_all_uses(inst, prior)
                    ib.remove(inst)
                    changes += 1
                    changed = True
                    continue
                ncd = dt.nearest_common_dominator([pb, ib])
                if _operands_available(prior, ncd, dt):
                    _move_before_terminator(prior, ncd)
                    fn.replace_all_uses(inst, prior)
                    ib.remove(inst)
                    changes += 1
                    changed = True
    return changes


def speculate(fn: Function) -> int:
    """Hoist pure computations to the earliest block whose dominators
    define all their operands.  Returns the number of moved instructions.
    """
    moved = 0
    dt = DominatorTree(fn)
    for bb in reverse_postorder(fn):
        for inst in list(bb.instructions):
            if not _pure_value(inst):
                continue
            # Climb the dominator tree while operands stay available.  An
            # operand defined *in* the candidate block (including φs at its
            # head) is fine: insertion happens before the terminator.
            dest = bb
            while True:
                parent = dt.immediate_dominator(dest)
                if parent is None or parent is dest:
                    break
                ok = True
                for op in inst.operands:
                    db = _def_block(op)
                    if db is None:
                        continue
                    if db is parent or not dt.dominates(db, parent):
                        # Defined in `parent` itself (ordering unknown w.r.t.
                        # the insertion point) or below it: stop climbing.
                        if db is parent:
                            pass  # insertion is before the terminator: fine
                        else:
                            ok = False
                    # also stop if def *is* parent handled above
                if not ok:
                    break
                # All operands are defined in blocks strictly dominating
                # `parent` or inside it (before the terminator).
                dest = parent
            if dest is not bb:
                _move_before_terminator(inst, dest)
                moved += 1
    return moved
