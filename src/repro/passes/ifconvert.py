"""If-conversion: collapse pure diamonds/triangles into selects.

Patterns like the count-min-sketch minimum (``if (c1 < c0) c0 = c1;``)
lower to a branch, a tiny arm, and a φ.  On an RMT pipeline that costs a
gateway plus two dependent stages; a conditional move (``select``) costs
one VLIW slot.  This pass rewrites

.. code-block:: none

    bb:   br %c, then, merge            bb:   %v = select %c, %a, %b
    then: jmp merge             ==>           jmp merge'
    merge: %v = phi [%a, then], [%b, bb]

whenever the speculated arms are side-effect free (and cheap).  It runs
in the peephole family of §VI-B and is part of what keeps generated code
within a few stages of handwritten P4.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.blocks import BasicBlock
from repro.ir.instructions import (
    Br,
    GlobalAccess,
    Instruction,
    Jmp,
    Phi,
    Select,
    Terminator,
)
from repro.ir.module import Function

#: Do not speculate arms larger than this many instructions.
MAX_SPECULATED_INSTRUCTIONS = 8


def _pure_arm(bb: BasicBlock, head: BasicBlock, merge: BasicBlock) -> Optional[list[Instruction]]:
    """If ``bb`` is a speculatable arm (single pred ``head``, single succ
    ``merge``, only pure instructions), return its body."""
    if bb is merge:
        return []
    preds = bb.predecessors()
    if len(preds) != 1 or preds[0] is not head:
        return None
    term = bb.terminator
    if not isinstance(term, Jmp) or term.target is not merge:
        return None
    body = [i for i in bb.instructions if i is not term]
    if len(body) > MAX_SPECULATED_INSTRUCTIONS:
        return None
    for inst in body:
        if inst.has_side_effects or isinstance(inst, (Phi, Terminator)):
            return None
        if isinstance(inst, GlobalAccess):
            # Speculating a global access onto the joint path would place
            # two accesses to a stage-local object on one path — exactly
            # what the paper's kernel 1 (§V-D) relies on *not* happening.
            return None
    return body


def if_convert(fn: Function) -> int:
    """Returns the number of branches converted."""
    converted = 0
    changed = True
    while changed:
        changed = False
        for head in list(fn.blocks):
            term = head.terminator
            if not isinstance(term, Br):
                continue
            then_, else_ = term.then_, term.else_
            # Identify the merge: arms either are the merge or jump to it.
            merge = None
            for cand in (then_, else_):
                t = cand.terminator
                if isinstance(t, Jmp):
                    merge = t.target
            if merge is None:
                # triangle with one arm being the merge itself
                if then_ in else_.successors():
                    merge = then_
                elif else_ in then_.successors():
                    merge = else_
                else:
                    continue
            if then_ is merge and else_ is merge:
                continue
            then_body = _pure_arm(then_, head, merge)
            else_body = _pure_arm(else_, head, merge)
            if then_body is None or else_body is None:
                continue
            # The merge must join exactly these two paths from `head`.
            merge_preds = merge.predecessors()
            expected = {id(then_ if then_ is not merge else head),
                        id(else_ if else_ is not merge else head)}
            if {id(p) for p in merge_preds} != expected or len(merge_preds) != 2:
                continue

            # Speculate both arms into the head block, before the branch.
            insert_at = head.instructions.index(term)
            for body in (then_body, else_body):
                for inst in body:
                    inst.parent.remove(inst)
                    head.insert(insert_at, inst)
                    insert_at += 1

            then_key = then_ if then_ is not merge else head
            else_key = else_ if else_ is not merge else head
            for phi in list(merge.phis()):
                tv = phi.incoming_for(then_key)
                ev = phi.incoming_for(else_key)
                if tv is None or ev is None:  # pragma: no cover - guarded above
                    raise AssertionError("phi incoming mismatch during if-conversion")
                sel = Select(term.cond, tv, ev, name=f"{phi.name}.sel")
                head.insert(insert_at, sel)
                insert_at += 1
                fn.replace_all_uses(phi, sel)
                merge.remove(phi)

            head.remove(term)
            head.append(Jmp(merge))
            for arm in (then_, else_):
                if arm is not merge:
                    fn.remove_block(arm)
            converted += 1
            changed = True
            break  # block list changed; restart scan
    return converted
