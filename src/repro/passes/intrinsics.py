"""Intrinsic pattern conversion (§VI-B).

Direct translation of some IR patterns produces P4 that the Tofino
compiler rejects or fits poorly.  This pass rewrites them:

* **Relational compares with dynamic operands** (``icmp ult/ugt/... a, b``
  where neither operand is a constant) become a widened subtraction
  followed by an MSB check — the form Tofino MAU gateways can evaluate.
  The identity (unsigned, width *w*): ``a < b  ⟺  msb(zext_{w+1}(a) -
  zext_{w+1}(b)) == 1``; signed compares sign-extend instead.
* **Leading-zero counts** (``ncl.clz``) are tagged for LPM-table
  implementation — a single stage instead of an ALU chain.
* **Bitcasts on hash engines**: when the ``hash_bitcasts`` flag is on,
  same-width casts are tagged so the backend places them on hash engines
  instead of ALUs (frees VLIW slots, costs a hash engine).

Equality compares and compares against constants are left alone: those map
directly to MAU gateway operations.
"""

from __future__ import annotations

from repro.ir.blocks import BasicBlock
from repro.ir.instructions import (
    BinOp,
    BinOpKind,
    Cast,
    CastKind,
    Constant,
    ICmp,
    ICmpPred,
    Instruction,
    Intrinsic,
)
from repro.ir.module import Function
from repro.ir.types import BOOL, IntType, int_type

_DYNAMIC_PREDS = {
    ICmpPred.ULT,
    ICmpPred.ULE,
    ICmpPred.UGT,
    ICmpPred.UGE,
    ICmpPred.SLT,
    ICmpPred.SLE,
    ICmpPred.SGT,
    ICmpPred.SGE,
}


def convert_intrinsic_patterns(fn: Function, *, hash_bitcasts: bool = False) -> int:
    """Apply the rewrites.  Returns the number of converted instructions."""
    converted = 0
    for bb in fn.blocks:
        for inst in list(bb.instructions):
            if isinstance(inst, ICmp):
                if _convert_icmp(fn, bb, inst):
                    converted += 1
            elif isinstance(inst, Intrinsic) and inst.callee in ("ncl.clz", "ncl.ctz"):
                inst.lpm_table = True  # type: ignore[attr-defined]
            elif hash_bitcasts and isinstance(inst, Cast) and inst.kind == CastKind.BITCAST:
                inst.on_hash_engine = True  # type: ignore[attr-defined]
                converted += 1
    return converted


def _convert_icmp(fn: Function, bb: BasicBlock, inst: ICmp) -> bool:
    if inst.pred not in _DYNAMIC_PREDS:
        return False
    if isinstance(inst.a, Constant) or isinstance(inst.b, Constant):
        return False  # constant compares work in gateways directly
    ty = inst.a.type
    assert isinstance(ty, IntType)
    if ty.width >= 64:
        return False  # no headroom for the widened subtraction
    signed = inst.pred in (ICmpPred.SLT, ICmpPred.SLE, ICmpPred.SGT, ICmpPred.SGE)
    # Normalize to a strict less-than: a <= b  ==  !(b < a), etc.
    a, b = inst.a, inst.b
    negate = False
    if inst.pred in (ICmpPred.UGT, ICmpPred.SGT):
        a, b = b, a
    elif inst.pred in (ICmpPred.ULE, ICmpPred.SLE):
        a, b = b, a
        negate = True
    elif inst.pred in (ICmpPred.UGE, ICmpPred.SGE):
        negate = True

    wide = int_type(ty.width + 1)
    pos = bb.instructions.index(inst)
    ext_kind = CastKind.SEXT if signed else CastKind.ZEXT
    za = Cast(ext_kind, a, wide, name="cvt.a")
    zb = Cast(ext_kind, b, wide, name="cvt.b")
    diff = BinOp(BinOpKind.SUB, za, zb, name="cvt.diff")
    msb = BinOp(BinOpKind.LSHR, diff, Constant(wide, ty.width), name="cvt.msb")
    bit = Cast(CastKind.TRUNC, msb, BOOL, name="cvt.lt")
    seq: list[Instruction] = [za, zb, diff, msb, bit]
    result: Instruction = bit
    if negate:
        result = BinOp(BinOpKind.XOR, bit, Constant(BOOL, 1), name="cvt.not")
        seq.append(result)
    for i, new_inst in enumerate(seq):
        new_inst.loc = inst.loc
        bb.insert(pos + i, new_inst)
    fn.replace_all_uses(inst, result)
    bb.remove(inst)
    return True
