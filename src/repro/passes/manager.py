"""Pass manager and the default NetCL pipeline (§VI-B).

The default pipeline is target-parameterized the way the paper describes:
the common stage produces a "P4-compilable CFG" (guaranteeing v1model
compilability), the Tofino stage adds memory optimizations, checks, and
scheduling transforms.  Several transforms are controlled by flags the
programmer can toggle to retry fitting (speculation, lookup duplication,
hash-engine bitcasts, intrinsic conversion, the distance threshold).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.ir.module import Function, Module
from repro.ir.verifier import verify_function
from repro.passes.dagcheck import check_dag
from repro.passes.dce import dead_code_elimination
from repro.passes.hoist import hoist_common_values, speculate
from repro.passes.ifconvert import if_convert
from repro.passes.intrinsics import convert_intrinsic_patterns
from repro.passes.memcheck import DEFAULT_DISTANCE_THRESHOLD, check_memory_constraints
from repro.passes.memopt import duplicate_lookups, partition_memory
from repro.passes.mem2reg import mem2reg
from repro.passes.simplify import simplify_function
from repro.passes.sroa import scalarize_local_arrays
from repro.telemetry.profile import NULL_PROFILER, Profiler


class PassError(Exception):
    """A pass aborted compilation."""


def _function_size(fn: Function) -> int:
    return sum(len(b.instructions) for b in fn.blocks)


def _module_size(module: Module) -> int:
    return sum(_function_size(f) for f in module.functions.values())


@dataclass
class PassOptions:
    """Compiler flags (§VI-B: "we provide several compiler flags to control
    certain transformations")."""

    target: str = "tna"  # "tna" | "v1model"
    if_conversion: bool = True
    speculation: bool = True
    lookup_duplication: bool = True
    memory_partitioning: bool = True
    intrinsic_conversion: bool = True
    hash_bitcasts: bool = False
    distance_threshold: int = DEFAULT_DISTANCE_THRESHOLD
    verify_between_passes: bool = False
    #: translation validation: differentially execute every kernel against
    #: its pre-pipeline behavior after each pass (``ncc --verify-passes``).
    verify_passes: bool = False

    @property
    def is_tofino(self) -> bool:
        return self.target == "tna"


@dataclass
class PassRecord:
    name: str
    function: str
    changes: int
    seconds: float
    #: IR instruction counts around the pass (size delta telemetry).
    instrs_before: int = 0
    instrs_after: int = 0

    @property
    def instrs_delta(self) -> int:
        return self.instrs_after - self.instrs_before


#: passes that only *check* IR (never rewrite it); translation validation
#: would re-execute the same behavior it just confirmed, so skip them.
PURE_CHECK_PASSES = frozenset({"dagcheck", "memcheck"})


class PassManager:
    """Runs function/module passes in order, recording per-pass statistics.

    When given an enabled :class:`Profiler`, every pass run is also
    published as a ``category="pass"`` span (wall time + IR size delta),
    which is what ``ncc --profile`` renders.

    With ``options.verify_passes`` set, a :class:`PassValidator`
    captures each kernel's behavior before the pipeline and differential
    execution re-checks it after every transforming pass; a divergence
    raises :class:`~repro.analysis.tvalid.TranslationValidationError`
    naming the pass and a counterexample input vector.
    """

    def __init__(
        self,
        options: Optional[PassOptions] = None,
        *,
        profiler: Optional[Profiler] = None,
    ) -> None:
        self.options = options or PassOptions()
        self.records: list[PassRecord] = []
        self.profiler = profiler or NULL_PROFILER
        self.validator = None  # set per run_pipeline when verify_passes

    def _record(self, rec: PassRecord, duration_ns: int) -> None:
        self.records.append(rec)
        self.profiler.record(
            rec.name,
            category="pass",
            duration_ns=duration_ns,
            meta={
                "function": rec.function,
                "changes": rec.changes,
                "instrs_before": rec.instrs_before,
                "instrs_after": rec.instrs_after,
            },
        )

    def run_function_pass(
        self, name: str, fn: Function, pass_fn: Callable[[Function], Optional[int]]
    ) -> int:
        before = _function_size(fn)
        t0 = time.perf_counter_ns()
        changes = pass_fn(fn) or 0
        dt = time.perf_counter_ns() - t0
        self._record(
            PassRecord(name, fn.name, changes, dt / 1e9, before, _function_size(fn)), dt
        )
        if self.options.verify_between_passes:
            verify_function(fn)
        if self.validator is not None and name not in PURE_CHECK_PASSES:
            self.validator.check(name, fn)
        return changes

    def run_module_pass(
        self, name: str, module: Module, pass_fn: Callable[[Module], Optional[int]]
    ) -> int:
        before = _module_size(module)
        t0 = time.perf_counter_ns()
        changes = pass_fn(module) or 0
        dt = time.perf_counter_ns() - t0
        self._record(
            PassRecord(name, "<module>", changes, dt / 1e9, before, _module_size(module)),
            dt,
        )
        if self.validator is not None:
            # A module pass may rewrite any kernel: re-check all of them.
            self.validator.check_all(name, module.kernels())
        return changes

    # -- the default pipeline ------------------------------------------------
    def run_pipeline(self, module: Module, device_id: Optional[int] = None) -> None:
        """Run the full middle-end over every kernel placed at ``device_id``
        (all kernels when ``device_id`` is None)."""
        opts = self.options
        kernels = [
            f
            for f in module.kernels()
            if device_id is None or f.placed_at(device_id)
        ]

        if opts.verify_passes:
            from repro.analysis.tvalid import PassValidator

            self.validator = PassValidator(module, device_id=device_id)
            for fn in kernels:
                self.validator.prepare(fn)

        # Stage 1: P4-compilable CFG (common to all targets).
        for fn in kernels:
            self.run_function_pass("sroa", fn, scalarize_local_arrays)
            self.run_function_pass("mem2reg", fn, mem2reg)
            self.run_function_pass("simplify", fn, simplify_function)
            if opts.if_conversion:
                self.run_function_pass("if-convert", fn, if_convert)
                self.run_function_pass("simplify-postsel", fn, simplify_function)
            self.run_function_pass("dce", fn, dead_code_elimination)
            self.run_function_pass("simplify2", fn, simplify_function)
            self.run_function_pass("dagcheck", fn, lambda f: (check_dag(f), 0)[1])

        if not opts.is_tofino:
            return

        # Stage 2: Tofino specifics.
        if opts.memory_partitioning:
            self.run_module_pass("partition-memory", module, partition_memory)
        if opts.lookup_duplication:
            self.run_module_pass("duplicate-lookups", module, duplicate_lookups)
        for fn in kernels:
            self.run_function_pass("hoist", fn, hoist_common_values)
            if opts.speculation:
                self.run_function_pass("speculate", fn, speculate)
            if opts.intrinsic_conversion:
                self.run_function_pass(
                    "intrinsics",
                    fn,
                    lambda f: convert_intrinsic_patterns(
                        f, hash_bitcasts=opts.hash_bitcasts
                    ),
                )
            self.run_function_pass("dce2", fn, dead_code_elimination)
            self.run_function_pass(
                "memcheck",
                fn,
                lambda f: (
                    check_memory_constraints(
                        f, distance_threshold=opts.distance_threshold
                    ),
                    0,
                )[1],
            )

    def total_seconds(self) -> float:
        return sum(r.seconds for r in self.records)


def run_default_pipeline(
    module: Module,
    options: Optional[PassOptions] = None,
    device_id: Optional[int] = None,
) -> PassManager:
    """Convenience wrapper: build a manager, run the pipeline, return it."""
    pm = PassManager(options)
    pm.run_pipeline(module, device_id)
    return pm
