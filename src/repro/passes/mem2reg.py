"""SSA construction: promote scalar local slots to registers.

Standard algorithm: place φ-nodes at the iterated dominance frontier of
each promotable alloca's store blocks, then rename along the dominator
tree.  Array allocas (P4 header stacks) and slots with indexed accesses
are left in place.
"""

from __future__ import annotations


from repro.ir.blocks import BasicBlock
from repro.ir.dominators import DominatorTree, reachable_blocks
from repro.ir.instructions import Alloca, Instruction, Load, Phi, Store, Undef, Value
from repro.ir.module import Function


def _promotable(fn: Function) -> list[Alloca]:
    """Scalar allocas whose every use is an unindexed Load or Store."""
    allocas: list[Alloca] = []
    uses_ok: dict[int, bool] = {}
    for inst in fn.instructions():
        if isinstance(inst, Alloca):
            allocas.append(inst)
            uses_ok.setdefault(id(inst), inst.is_scalar)
    for inst in fn.instructions():
        if isinstance(inst, Load):
            if inst.indices:
                uses_ok[id(inst.slot)] = False
        elif isinstance(inst, Store):
            if inst.indices:
                uses_ok[id(inst.slot)] = False
        else:
            for op in inst.operands:
                if isinstance(op, Alloca):
                    uses_ok[id(op)] = False
    return [a for a in allocas if uses_ok.get(id(a), False)]


def mem2reg(fn: Function) -> int:
    """Promote scalar locals to SSA values.  Returns #promoted slots."""
    candidates = _promotable(fn)
    if not candidates:
        return 0
    reachable = reachable_blocks(fn)
    dt = DominatorTree(fn)
    frontiers = dt.dominance_frontiers()
    blocks_by_id = {id(bb): bb for bb in fn.blocks}

    for alloca in candidates:
        _promote_one(fn, alloca, dt, frontiers, blocks_by_id, reachable)
    return len(candidates)


def _promote_one(
    fn: Function,
    alloca: Alloca,
    dt: DominatorTree,
    frontiers: dict[int, set[int]],
    blocks_by_id: dict[int, BasicBlock],
    reachable: set[int],
) -> None:
    # 1. Find defining blocks.
    def_blocks: list[BasicBlock] = []
    for bb in fn.blocks:
        for inst in bb.instructions:
            if isinstance(inst, Store) and inst.slot is alloca:
                def_blocks.append(bb)
                break

    # 2. Insert φ at the iterated dominance frontier.
    phi_blocks: set[int] = set()
    work = [id(b) for b in def_blocks if id(b) in reachable]
    seen = set(work)
    while work:
        b = work.pop()
        for f in frontiers.get(b, ()):
            if f not in phi_blocks and f in reachable:
                phi_blocks.add(f)
                if f not in seen:
                    seen.add(f)
                    work.append(f)
    phis: dict[int, Phi] = {}
    for bid in phi_blocks:
        bb = blocks_by_id[bid]
        node = Phi(alloca.elem, name=f"{alloca.name}.phi")
        bb.insert(0, node)
        node.parent = bb
        phis[bid] = node

    # 3. Rename along the dominator tree.
    children: dict[int, list[BasicBlock]] = {}
    for bb in dt.rpo:
        parent = dt.immediate_dominator(bb)
        if parent is not None:
            children.setdefault(id(parent), []).append(bb)

    def rename(bb: BasicBlock, incoming: Value) -> None:
        current = incoming
        if id(bb) in phis:
            current = phis[id(bb)]
        to_remove: list[Instruction] = []
        for inst in list(bb.instructions):
            if isinstance(inst, Load) and inst.slot is alloca:
                _replace_uses_in_function(fn, inst, current)
                to_remove.append(inst)
            elif isinstance(inst, Store) and inst.slot is alloca:
                current = inst.value
                to_remove.append(inst)
        for inst in to_remove:
            bb.remove(inst)
        for succ in bb.successors():
            node = phis.get(id(succ))
            if node is not None:
                node.add_incoming(current, bb)
        for child in children.get(id(bb), ()):  # dominator-tree children
            rename(child, current)

    rename(fn.entry, Undef(alloca.elem, f"{alloca.name}.undef"))

    # 4. Remove the alloca itself.
    for bb in fn.blocks:
        for inst in list(bb.instructions):
            if inst is alloca:
                bb.remove(inst)

    # 5. Drop trivially dead φ nodes (no uses); iterate to fixpoint.
    _prune_dead_phis(fn)


def _replace_uses_in_function(fn: Function, old: Value, new: Value) -> None:
    for inst in fn.instructions():
        if old in inst.operands:
            inst.replace_operand(old, new)


def _prune_dead_phis(fn: Function) -> None:
    changed = True
    while changed:
        changed = False
        used: set[int] = set()
        for inst in fn.instructions():
            for op in inst.operands:
                if isinstance(op, Phi) and op is not inst:
                    used.add(id(op))
        for bb in fn.blocks:
            for inst in list(bb.phis()):
                if id(inst) not in used:
                    bb.remove(inst)
                    changed = True
