"""Tofino stateful-memory constraint checks (§V-D, §VI-B).

Tofino stateful memory is stage-local: once a stage is over its memory is
no longer accessible.  Two consequences for kernels:

1. **Single access per object.**  A global memory object may be accessed
   at most once per execution — multiple accesses are allowed only if they
   are *mutually exclusive* (no CFG path contains both) **and** not too far
   apart.  Distance is approximated by the minimum number of conditional
   branches needed to reach each access from the entry block; if the
   difference exceeds a threshold we assume the accesses cannot share a
   stage and reject the program.

2. **Consistent ordering.**  Accesses to *different* objects must occur in
   the same relative order on every path.  When a path has the reverse
   order, the program is rejected unless the offending accesses are
   independent and can be reordered within their block (the paper does not
   assume declaration order is the intended order, unlike Lucid).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.ir.blocks import BasicBlock
from repro.ir.dominators import reverse_postorder
from repro.ir.instructions import (
    AtomicRMW,
    Br,
    GlobalAccess,
    Instruction,
    LoadGlobal,
    Lookup,
    LookupVal,
    StoreGlobal,
    Value,
)
from repro.ir.module import Function
from repro.lang.errors import Diagnostic

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.diagnostics import DiagnosticEngine
DEFAULT_DISTANCE_THRESHOLD = 4


class MemoryCheckError(Exception):
    """The kernel violates a Tofino stateful-memory constraint.

    Carries the full list of :class:`Diagnostic` records found for the
    function (every violation, not just the first), each anchored at the
    source location of an offending access.
    """

    def __init__(self, diagnostics: list[Diagnostic] | str) -> None:
        if isinstance(diagnostics, str):
            diagnostics = [Diagnostic(diagnostics)]
        self.diagnostics = diagnostics
        super().__init__("\n".join(d.message for d in diagnostics))


@dataclass
class _Access:
    inst: GlobalAccess
    block: BasicBlock
    index: int  # position within the block

    @property
    def object_name(self) -> str:
        return self.inst.gv.name


def _collect_accesses(fn: Function) -> list[_Access]:
    out: list[_Access] = []
    for bb in fn.blocks:
        for i, inst in enumerate(bb.instructions):
            if isinstance(inst, (LoadGlobal, StoreGlobal, AtomicRMW, Lookup, LookupVal)):
                out.append(_Access(inst, bb, i))
    return out


def _reachability(fn: Function) -> dict[int, set[int]]:
    """block id -> ids of blocks reachable from it (excluding itself)."""
    order = reverse_postorder(fn)
    reach: dict[int, set[int]] = {id(bb): set() for bb in order}
    for bb in reversed(order):  # postorder: successors first
        r = reach[id(bb)]
        for succ in bb.successors():
            r.add(id(succ))
            r |= reach.get(id(succ), set())
    return reach


def _branch_depths(fn: Function) -> dict[int, int]:
    """Minimum number of conditional branches from entry to each block."""
    depths: dict[int, int] = {id(fn.entry): 0}
    worklist = [fn.entry]
    while worklist:
        bb = worklist.pop(0)
        d = depths[id(bb)]
        term = bb.terminator
        step = 1 if isinstance(term, Br) else 0
        for succ in bb.successors():
            nd = d + step
            if id(succ) not in depths or nd < depths[id(succ)]:
                depths[id(succ)] = nd
                worklist.append(succ)
    return depths


def _same_site(a: _Access, b: _Access) -> bool:
    """A Lookup/LookupVal pair over the same table and key is one MAT apply."""
    ia, ib = a.inst, b.inst
    pair = {type(ia), type(ib)}
    if pair == {Lookup, LookupVal} and ia.gv is ib.gv:
        ka = ia.key if isinstance(ia, (Lookup, LookupVal)) else None
        kb = ib.key if isinstance(ib, (Lookup, LookupVal)) else None
        return ka is kb
    return False


def _depends_on(user: Instruction, producer: Instruction, fn: Function) -> bool:
    """True if ``user`` transitively uses ``producer``'s result."""
    seen: set[int] = set()
    stack: list[Value] = list(user.operands)
    while stack:
        v = stack.pop()
        if id(v) in seen:
            continue
        seen.add(id(v))
        if v is producer:
            return True
        if isinstance(v, Instruction):
            stack.extend(v.operands)
    return False


def _diag(code: str, message: str, acc: Optional[_Access]) -> Diagnostic:
    loc = acc.inst.loc if acc is not None else None
    return Diagnostic(
        message,
        line=loc.line if loc else 0,
        col=loc.col if loc else 0,
        code=code,
    )


def check_memory_constraints(
    fn: Function,
    *,
    distance_threshold: int = DEFAULT_DISTANCE_THRESHOLD,
    engine: Optional["DiagnosticEngine"] = None,
) -> None:
    """Check the two stage-local-memory rules.

    Collects *every* violation in the function; without an ``engine`` the
    full list is raised as one :class:`MemoryCheckError`, with one the
    violations are reported as ``NCL102``-``NCL104`` diagnostics (each
    anchored at the offending access's source location) and nothing is
    raised.
    """
    accesses = _collect_accesses(fn)
    reach = _reachability(fn)
    depths = _branch_depths(fn)
    diagnostics: list[Diagnostic] = []

    # -- rule 1: at most one (non-exclusive) access per object ------------------
    by_object: dict[str, list[_Access]] = {}
    for acc in accesses:
        by_object.setdefault(acc.object_name, []).append(acc)

    for name, accs in by_object.items():
        for i, a in enumerate(accs):
            for b in accs[i + 1 :]:
                if _same_site(a, b):
                    continue
                exclusive = not _on_common_path(a, b, reach)
                if not exclusive:
                    diagnostics.append(
                        _diag(
                            "NCL102",
                            f"kernel '{fn.name}': global memory object '{name}' is "
                            f"accessed more than once on a single path "
                            f"(blocks {a.block.name} and {b.block.name}); Tofino "
                            "stateful memory is stage-local (§V-D)",
                            b,
                        )
                    )
                    continue
                da = depths.get(id(a.block), 0)
                db = depths.get(id(b.block), 0)
                if abs(da - db) > distance_threshold:
                    diagnostics.append(
                        _diag(
                            "NCL103",
                            f"kernel '{fn.name}': mutually-exclusive accesses to "
                            f"'{name}' are {abs(da - db)} conditional branches apart "
                            f"(> {distance_threshold}); they likely cannot share a "
                            "stage (§VI-B distance check)",
                            b,
                        )
                    )

    # -- rule 2: consistent relative order across paths ---------------------------
    diagnostics.extend(_check_ordering(fn, accesses, reach))

    if not diagnostics:
        return
    if engine is not None:
        engine.extend(diagnostics)
        return
    raise MemoryCheckError(diagnostics)


def _on_common_path(a: _Access, b: _Access, reach: dict[int, set[int]]) -> bool:
    if a.block is b.block:
        return True
    return id(b.block) in reach.get(id(a.block), set()) or id(a.block) in reach.get(
        id(b.block), set()
    )


def _check_ordering(
    fn: Function, accesses: list[_Access], reach: dict[int, set[int]]
) -> list[Diagnostic]:
    # For every ordered object pair, record whether some path sees A before B.
    def precedes(a: _Access, b: _Access) -> bool:
        if a.block is b.block:
            return a.index < b.index
        return id(b.block) in reach.get(id(a.block), set())

    diagnostics: list[Diagnostic] = []
    by_object: dict[str, list[_Access]] = {}
    for acc in accesses:
        by_object.setdefault(acc.object_name, []).append(acc)
    names = sorted(by_object)
    for i, na in enumerate(names):
        for nb in names[i + 1 :]:
            ab = [(x, y) for x in by_object[na] for y in by_object[nb] if precedes(x, y)]
            ba = [(y, x) for x in by_object[na] for y in by_object[nb] if precedes(y, x)]
            if not ab or not ba:
                continue  # consistent (or unordered) across all paths
            # Both orders exist.  The program is only acceptable if the
            # reversed accesses are independent, so the compiler may reorder
            # one block to restore a single global order.
            for first, second in ab + ba:
                if first.block is second.block and _depends_on(
                    second.inst, first.inst, fn
                ):
                    diagnostics.append(
                        _diag(
                            "NCL104",
                            f"kernel '{fn.name}': objects '{na}' and '{nb}' are "
                            f"accessed in different orders on different paths and "
                            f"the accesses in block {first.block.name} are "
                            "dependent, so they cannot be reordered (§VI-B)",
                            second,
                        )
                    )
                    break
    return diagnostics
