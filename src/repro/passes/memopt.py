"""Tofino memory optimizations: partitioning and lookup duplication (§VI-B).

*Memory partitioning* is a coarse-grained, access-based split: a global
array is split along its outer dimension when **every** access in the
module uses a constant on that dimension.  Each partition then becomes its
own stage-local Register, removing the single-stage co-location constraint
between accesses to different rows (e.g. the three count-min-sketch rows
in Fig. 4).

*Lookup duplication*: P4 offers no data-plane MAT updates, so non-managed
``_lookup_`` memory is constant; creating one copy per access site removes
the dependence of all accesses on a single stage.  Duplication can be
turned off (it may consume excessive resources).

Both passes create derived :class:`GlobalVar` objects named
``<base>.partN`` / ``<base>.dupN`` carrying ``origin``/``fixed_outer``
metadata so the behavioral interpreter keeps routing them to the base
storage (identical semantics by construction: partitions index disjoint
rows; duplicated tables are read-only).
"""

from __future__ import annotations

from typing import Optional

from repro.ir.instructions import (
    AtomicRMW,
    Constant,
    GlobalAccess,
    LoadGlobal,
    Lookup,
    LookupVal,
    StoreGlobal,
)
from repro.ir.module import GlobalVar, Module


def _derive(gv: GlobalVar, suffix: str, *, fixed_outer: Optional[int] = None) -> GlobalVar:
    shape = gv.shape.drop_outer() if fixed_outer is not None else gv.shape
    derived = GlobalVar(
        f"{gv.name}.{suffix}",
        gv.elem,
        shape,
        gv.space,
        gv.locations,
        gv.lookup_kind,
        gv.key_type,
        gv.value_type,
        list(gv.entries),
        source_line=gv.source_line,
    )
    derived.origin = gv.name  # type: ignore[attr-defined]
    derived.fixed_outer = fixed_outer  # type: ignore[attr-defined]
    return derived


def partition_memory(module: Module) -> int:
    """Split multi-dimensional register globals on constant outer indices.

    Returns the number of globals partitioned.  The split is module-wide:
    it only fires when *all* accesses across all kernels use a constant
    outer index.
    """
    # Gather accesses per global.
    accesses: dict[str, list[GlobalAccess]] = {}
    for fn in module.functions.values():
        for inst in fn.instructions():
            if isinstance(inst, (LoadGlobal, StoreGlobal, AtomicRMW)):
                accesses.setdefault(inst.gv.name, []).append(inst)

    split = 0
    for name, insts in accesses.items():
        gv = module.globals.get(name)
        if gv is None or gv.space.is_lookup or gv.shape.rank < 2:
            continue
        if getattr(gv, "origin", None) is not None:
            continue  # already derived
        outer_consts: list[int] = []
        ok = True
        for inst in insts:
            if not inst.indices or not isinstance(inst.indices[0], Constant):
                ok = False
                break
            outer_consts.append(inst.indices[0].value)
        if not ok:
            continue
        partitions: dict[int, GlobalVar] = {}
        for inst, outer in zip(insts, outer_consts):
            if outer not in partitions:
                part = _derive(gv, f"part{outer}", fixed_outer=outer)
                partitions[outer] = part
                module.globals[part.name] = part
            inst.gv = partitions[outer]
            inst.indices = inst.indices[1:]
        split += 1
    return split


def duplicate_lookups(module: Module) -> int:
    """Create one copy of each non-managed lookup table per access site.

    A :class:`Lookup` and the :class:`LookupVal` sharing its table and key
    form one site (they compile to a single MAT apply).  Managed lookup
    memory is not duplicated: that would require bulk atomic control-plane
    updates the paper could not confirm Tofino supports (§VI-B).
    """
    dups = 0
    for fn in module.functions.values():
        sites: dict[tuple[str, int], list[GlobalAccess]] = {}
        order: list[tuple[str, int]] = []
        for inst in fn.instructions():
            if isinstance(inst, (Lookup, LookupVal)):
                key = (inst.gv.name, id(inst.key))
                if key not in sites:
                    sites[key] = []
                    order.append(key)
                sites[key].append(inst)
        by_table: dict[str, list[list[GlobalAccess]]] = {}
        for key in order:
            by_table.setdefault(key[0], []).append(sites[key])
        for tname, site_groups in by_table.items():
            gv = module.globals.get(tname)
            if gv is None or not gv.space.is_lookup or gv.space.is_managed:
                continue
            if len(site_groups) < 2:
                continue
            for i, group in enumerate(site_groups):
                dup = _derive(gv, f"dup{i}")
                module.globals[dup.name] = dup
                for inst in group:
                    inst.gv = dup
                dups += 1
    return dups
