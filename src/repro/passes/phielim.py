"""φ-node elimination (§VI-B).

Each φ gets a fresh local slot; a store of the incoming value is placed
before the terminator of each incoming block, and the φ becomes a load.
Kernels are loop-free DAGs, so φ operands are never sibling φs of the same
block and the classic lost-copy/swap problems cannot arise.
"""

from __future__ import annotations

from repro.ir.instructions import Alloca, Load, Store
from repro.ir.module import Function


def eliminate_phis(fn: Function) -> int:
    """Replace every φ with (stores in predecessors + a load).  Returns the
    number of φs eliminated."""
    count = 0
    entry = fn.entry
    for bb in list(fn.blocks):
        for phi in list(bb.phis()):
            assert isinstance(phi.type, type(phi.type))
            slot = Alloca(phi.type, name=f"{phi.name}.slot")  # type: ignore[arg-type]
            # Allocas live at the head of the entry block.
            idx = 0
            while idx < len(entry.instructions) and isinstance(entry.instructions[idx], Alloca):
                idx += 1
            entry.insert(idx, slot)
            for value, pred in phi.incoming:
                store = Store(slot, value)
                pos = len(pred.instructions)
                if pred.terminator is not None:
                    pos -= 1
                pred.insert(pos, store)
            load = Load(slot, name=f"{phi.name}.val")
            pos = bb.instructions.index(phi)
            bb.remove(phi)
            bb.insert(pos, load)
            fn.replace_all_uses(phi, load)
            count += 1
    return count
