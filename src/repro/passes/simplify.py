"""Constant folding, peephole simplification, and CFG cleanup.

These mirror the paper's "set of peephole optimization, and instruction
simplification" passes (§VI-B): beyond shrinking code, they matter because
Tofino ALUs are restricted to simple arithmetic — folding away multiplies
and strength-reducing them to shifts is what makes programs compilable at
all (§V-D allows arbitrary ``*``/``/`` only when convertible to shifts).
"""

from __future__ import annotations

from typing import Optional

from repro.ir.blocks import BasicBlock
from repro.ir.dominators import reachable_blocks
from repro.ir.instructions import (
    BinOp,
    BinOpKind,
    Br,
    Cast,
    CastKind,
    Constant,
    ICmp,
    ICmpPred,
    Instruction,
    Jmp,
    Phi,
    Select,
    Value,
)
from repro.ir.module import Function
from repro.ir.types import IntType


def _as_const(v: Value) -> Optional[int]:
    return v.value if isinstance(v, Constant) else None


def fold_constants(fn: Function) -> int:
    """Evaluate instructions with all-constant operands.  Returns #folds."""
    folds = 0
    changed = True
    while changed:
        changed = False
        for bb in fn.blocks:
            for inst in list(bb.instructions):
                replacement = _fold_one(inst)
                if replacement is not None:
                    _rauw(fn, inst, replacement)
                    bb.remove(inst)
                    folds += 1
                    changed = True
    return folds


def _fold_one(inst: Instruction) -> Optional[Value]:
    if isinstance(inst, BinOp):
        a, b = _as_const(inst.a), _as_const(inst.b)
        ty = inst.type
        assert isinstance(ty, IntType)
        if a is not None and b is not None:
            v = _eval_binop(inst.kind, a & ty.mask, b & ty.mask, ty)
            if v is not None:
                return Constant(ty, v)
        return _simplify_binop(inst)
    if isinstance(inst, ICmp):
        a, b = _as_const(inst.a), _as_const(inst.b)
        if a is not None and b is not None:
            ty = inst.a.type
            assert isinstance(ty, IntType)
            return Constant(inst.type, _eval_icmp(inst.pred, a, b, ty))  # type: ignore[arg-type]
        if inst.a is inst.b:
            if inst.pred in (ICmpPred.EQ, ICmpPred.ULE, ICmpPred.UGE, ICmpPred.SLE, ICmpPred.SGE):
                return Constant(inst.type, 1)  # type: ignore[arg-type]
            if inst.pred in (ICmpPred.NE, ICmpPred.ULT, ICmpPred.UGT, ICmpPred.SLT, ICmpPred.SGT):
                return Constant(inst.type, 0)  # type: ignore[arg-type]
        return None
    if isinstance(inst, Select):
        c = _as_const(inst.cond)
        if c is not None:
            return inst.t if c else inst.f
        if inst.t is inst.f:
            return inst.t
        return None
    if isinstance(inst, Cast):
        v = _as_const(inst.value)
        ty = inst.type
        assert isinstance(ty, IntType)
        if v is not None:
            src = inst.value.type
            assert isinstance(src, IntType)
            u = v & src.mask
            if inst.kind == CastKind.SEXT and (u >> (src.width - 1)):
                u |= ty.mask & ~src.mask
            return Constant(ty, u & ty.mask)
        if isinstance(inst.value.type, IntType) and inst.value.type == ty:
            return inst.value
        return None
    if isinstance(inst, Phi):
        vals = {id(v) for v, _ in inst.incoming}
        if len(vals) == 1:
            only = inst.incoming[0][0]
            if only is not inst:
                return only
        non_self = [v for v, _ in inst.incoming if v is not inst]
        if non_self and all(v is non_self[0] for v in non_self):
            return non_self[0]
        return None
    return None


def _eval_binop(kind: BinOpKind, a: int, b: int, ty: IntType) -> Optional[int]:
    try:
        if kind == BinOpKind.ADD:
            return (a + b) & ty.mask
        if kind == BinOpKind.SUB:
            return (a - b) & ty.mask
        if kind == BinOpKind.MUL:
            return (a * b) & ty.mask
        if kind == BinOpKind.AND:
            return a & b
        if kind == BinOpKind.OR:
            return a | b
        if kind == BinOpKind.XOR:
            return a ^ b
        if kind == BinOpKind.SHL:
            return (a << b) & ty.mask if b < ty.width else 0
        if kind == BinOpKind.LSHR:
            return a >> b if b < ty.width else 0
        if kind == BinOpKind.ASHR:
            return (ty.wrap(a) >> min(b, ty.width - 1)) & ty.mask
        if kind == BinOpKind.UDIV and b != 0:
            return (a // b) & ty.mask
        if kind == BinOpKind.UREM and b != 0:
            return (a % b) & ty.mask
        if kind == BinOpKind.SADDU:
            return min(a + b, ty.mask)
        if kind == BinOpKind.SSUBU:
            return max(a - b, 0)
        if kind == BinOpKind.SDIV and ty.wrap(b) != 0:
            sa, sb = ty.wrap(a), ty.wrap(b)
            q = abs(sa) // abs(sb)
            return ty.to_unsigned(-q if (sa < 0) != (sb < 0) else q)
        if kind == BinOpKind.SREM and ty.wrap(b) != 0:
            sa, sb = ty.wrap(a), ty.wrap(b)
            r = abs(sa) % abs(sb)
            return ty.to_unsigned(-r if sa < 0 else r)
    except (OverflowError, ValueError):  # pragma: no cover - defensive
        return None
    return None


def _eval_icmp(pred: ICmpPred, a: int, b: int, ty: IntType) -> int:
    ua, ub = a & ty.mask, b & ty.mask
    sa = ua - (1 << ty.width) if ua >> (ty.width - 1) else ua
    sb = ub - (1 << ty.width) if ub >> (ty.width - 1) else ub
    return int(
        {
            ICmpPred.EQ: ua == ub,
            ICmpPred.NE: ua != ub,
            ICmpPred.ULT: ua < ub,
            ICmpPred.ULE: ua <= ub,
            ICmpPred.UGT: ua > ub,
            ICmpPred.UGE: ua >= ub,
            ICmpPred.SLT: sa < sb,
            ICmpPred.SLE: sa <= sb,
            ICmpPred.SGT: sa > sb,
            ICmpPred.SGE: sa >= sb,
        }[pred]
    )


def _simplify_binop(inst: BinOp) -> Optional[Value]:
    """Algebraic identities and strength reduction (mul/div -> shifts)."""
    a, b = inst.a, inst.b
    ca, cb = _as_const(a), _as_const(b)
    ty = inst.type
    assert isinstance(ty, IntType)
    k = inst.kind
    # Canonicalize constants to the right for commutative ops.
    if ca is not None and cb is None and k.commutative:
        inst.a, inst.b = b, a
        a, b = inst.a, inst.b
        ca, cb = cb, ca
    if cb == 0:
        if k in (BinOpKind.ADD, BinOpKind.SUB, BinOpKind.OR, BinOpKind.XOR,
                 BinOpKind.SHL, BinOpKind.LSHR, BinOpKind.ASHR,
                 BinOpKind.SADDU, BinOpKind.SSUBU):
            return a
        if k in (BinOpKind.MUL, BinOpKind.AND):
            return Constant(ty, 0)
    if cb == 1:
        if k == BinOpKind.MUL:
            return a
        if k in (BinOpKind.UDIV, BinOpKind.SDIV):
            return a
    if cb == ty.mask and k == BinOpKind.AND:
        return a
    if a is b:
        if k == BinOpKind.XOR or k == BinOpKind.SUB:
            return Constant(ty, 0)
        if k in (BinOpKind.AND, BinOpKind.OR):
            return a
    # Strength reduction: *2^n -> shl, /2^n -> lshr, %2^n -> and.
    if cb is not None and cb > 1 and (cb & (cb - 1)) == 0:
        sh = cb.bit_length() - 1
        if k == BinOpKind.MUL:
            inst.kind = BinOpKind.SHL
            inst.b = Constant(ty, sh)
            return None
        if k == BinOpKind.UDIV:
            inst.kind = BinOpKind.LSHR
            inst.b = Constant(ty, sh)
            return None
        if k == BinOpKind.UREM:
            inst.kind = BinOpKind.AND
            inst.b = Constant(ty, cb - 1)
            return None
    return None


def _rauw(fn: Function, old: Value, new: Value) -> None:
    for inst in fn.instructions():
        if old in inst.operands:
            inst.replace_operand(old, new)


def simplify_cfg(fn: Function) -> int:
    """Fold constant branches, merge straight-line blocks, drop dead blocks."""
    changes = 0
    changed = True
    while changed:
        changed = False
        # Fold constant conditional branches.
        for bb in fn.blocks:
            term = bb.terminator
            if isinstance(term, Br):
                c = _as_const(term.cond)
                if c is not None:
                    taken = term.then_ if c else term.else_
                    not_taken = term.else_ if c else term.then_
                    _remove_phi_edge(not_taken, bb)
                    bb.remove(term)
                    bb.append(Jmp(taken))
                    changes += 1
                    changed = True
                elif term.then_ is term.else_:
                    bb.remove(term)
                    bb.append(Jmp(term.then_))
                    changes += 1
                    changed = True
        # Remove unreachable blocks.
        reachable = reachable_blocks(fn)
        for bb in list(fn.blocks):
            if id(bb) not in reachable:
                for succ in bb.successors():
                    _remove_phi_edge(succ, bb)
                fn.remove_block(bb)
                changes += 1
                changed = True
        # Merge a block into its unique predecessor when that predecessor
        # jumps straight to it.
        for bb in list(fn.blocks):
            if bb is fn.entry:
                continue
            preds = bb.predecessors()
            if len(preds) != 1:
                continue
            pred = preds[0]
            term = pred.terminator
            if not isinstance(term, Jmp) or term.target is not bb:
                continue
            if any(True for _ in bb.phis()):
                # Single-predecessor φs are trivial; inline them first.
                for node in list(bb.phis()):
                    val = node.incoming_for(pred)
                    if val is None:
                        break
                    _rauw(fn, node, val)
                    bb.remove(node)
                if any(True for _ in bb.phis()):
                    continue
            pred.remove(term)
            for inst in list(bb.instructions):
                bb.remove(inst)
                inst.parent = pred
                pred.instructions.append(inst)
            for succ in pred.successors():
                for node in succ.phis():
                    node.replace_incoming_block(bb, pred)
            fn.remove_block(bb)
            changes += 1
            changed = True
    return changes


def _remove_phi_edge(bb: BasicBlock, pred: BasicBlock) -> None:
    for node in bb.phis():
        node.incoming = [(v, b) for v, b in node.incoming if b is not pred]


def simplify_function(fn: Function) -> int:
    """Run fold + CFG cleanup to a fixpoint.  Returns total #changes."""
    total = 0
    while True:
        n = fold_constants(fn) + simplify_cfg(fn)
        total += n
        if n == 0:
            return total
