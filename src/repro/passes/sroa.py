"""Scalar replacement of aggregates (SROA) for local arrays.

Fully-unrolled NetCL loops leave local arrays accessed exclusively through
compile-time-constant indices (the count-min-sketch's ``c[CMS_HASHES]`` in
Fig. 4).  Such arrays are split into one scalar slot per element so
mem2reg can promote them to SSA — without this, every element access
would become a header-stack operation with an index table (Fig. 9
rightmost), wasting stages on constant indices.

Arrays with any dynamic access keep their header-stack representation.
"""

from __future__ import annotations

from repro.ir.instructions import Alloca, Constant, Instruction, Load, Store
from repro.ir.module import Function
from repro.ir.types import ArrayShape


def _flat_const_index(inst, shape: ArrayShape):
    """Flat element index if all indices are constants, else None."""
    if len(inst.indices) != shape.rank:
        return None
    flat = 0
    for idx, dim in zip(inst.indices, shape.dims):
        if not isinstance(idx, Constant):
            return None
        if not 0 <= idx.value < dim:
            return None  # out-of-range constant: leave for runtime checking
        flat = flat * dim + idx.value
    return flat


def scalarize_local_arrays(fn: Function) -> int:
    """Split constant-indexed local arrays into scalars.  Returns the
    number of arrays replaced."""
    arrays: dict[int, Alloca] = {}
    accesses: dict[int, list[Instruction]] = {}
    eligible: dict[int, bool] = {}

    for inst in fn.instructions():
        if isinstance(inst, Alloca) and not inst.is_scalar:
            arrays[id(inst)] = inst
            accesses.setdefault(id(inst), [])
            eligible.setdefault(id(inst), True)
    for inst in fn.instructions():
        if isinstance(inst, (Load, Store)) and id(inst.slot) in arrays:
            slot = inst.slot
            accesses[id(slot)].append(inst)
            if _flat_const_index(inst, slot.shape) is None:
                eligible[id(slot)] = False
        else:
            for op in inst.operands:
                if isinstance(op, Alloca) and id(op) in arrays:
                    eligible[id(op)] = False  # unexpected aggregate use

    replaced = 0
    for key, alloca in arrays.items():
        if not eligible.get(key) or alloca.shape.num_elements > 256:
            continue
        entry = fn.entry
        scalars: dict[int, Alloca] = {}

        def scalar_for(flat: int) -> Alloca:
            slot = scalars.get(flat)
            if slot is None:
                slot = Alloca(alloca.elem, name=f"{alloca.name}.{flat}")
                idx = 0
                while idx < len(entry.instructions) and isinstance(
                    entry.instructions[idx], Alloca
                ):
                    idx += 1
                entry.insert(idx, slot)
                scalars[flat] = slot
            return slot

        for inst in accesses[key]:
            flat = _flat_const_index(inst, alloca.shape)
            assert flat is not None
            slot = scalar_for(flat)
            bb = inst.parent
            assert bb is not None
            pos = bb.instructions.index(inst)
            if isinstance(inst, Load):
                new = Load(slot, name=inst.name)
            else:
                new = Store(slot, inst.value)
            new.loc = inst.loc
            bb.remove(inst)
            bb.insert(pos, new)
            if isinstance(inst, Load):
                fn.replace_all_uses(inst, new)
        # remove the now-unused array alloca
        if alloca.parent is not None:
            alloca.parent.remove(alloca)
        replaced += 1
    return replaced
