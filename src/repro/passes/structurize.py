"""CFG structurization (§VI-B).

P4 has no arbitrary jumps, so code generation consumes a *structured tree*
(sequences, ifs, leaves) instead of a CFG.  For the structured DAGs the
frontend and passes produce, the tree is recovered with a region algorithm
driven by post-dominators: a conditional's region ends at its immediate
post-dominator, which becomes a sink emitted "in the scope of the nearest
common dominator of its predecessors" (paper's codegen rule).

When the CFG is *not* structured (hand-built IR, or exotic pass output),
we fall back to the paper's predicate-variable structurization: each block
gets a 1-bit predicate local, blocks are emitted linearly in reverse
postorder guarded by their predicate, and terminators become predicate
assignments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.ir.blocks import BasicBlock
from repro.ir.dominators import reverse_postorder
from repro.ir.instructions import Br, Instruction, Jmp, Ret, Value
from repro.ir.module import Function


# -- structured tree -------------------------------------------------------------


@dataclass
class LeafNode:
    """Straight-line instructions (terminating Ret included, Br/Jmp not).

    ``block`` records provenance so the emitted tree can be verified
    against the CFG edge-for-edge.
    """

    instructions: list[Instruction]
    block: Optional[BasicBlock] = None


@dataclass
class IfNode:
    """A conditional region.  ``cond`` is an IR value or a predicate name."""

    cond: Union[Value, str]
    then: "StructuredNode"
    els: Optional["StructuredNode"]
    negate: bool = False


@dataclass
class SeqNode:
    items: list["StructuredNode"] = field(default_factory=list)


@dataclass
class PredUpdate:
    """Fallback-mode predicate assignment:
    ``pred[target] |= pred[source] && (cond == expect)``."""

    target: str
    source: str  # "" for the entry block (always true)
    cond: Optional[Value]
    expect: bool


@dataclass
class PredDecls:
    names: list[str]


StructuredNode = Union[LeafNode, IfNode, SeqNode, PredUpdate, PredDecls]


class StructurizeError(Exception):
    pass


# -- post-dominators ----------------------------------------------------------------


_EXIT = "exit"  # virtual exit node id


def _ipostdoms(fn: Function) -> dict[int, Optional[BasicBlock]]:
    """Immediate post-dominators, computed set-wise (CFGs here are small
    DAGs, so the O(n^2) set formulation is simple and exact).

    Returns block id -> immediate post-dominator block, or None when the
    ipdom is the virtual exit (the block leads straight out of the kernel).
    """
    blocks = reverse_postorder(fn)
    by_id = {id(b): b for b in blocks}
    # postdom(b) = {b} ∪ ⋂ postdom(succ); exits post-dominated by _EXIT.
    postdom: dict[int, frozenset] = {}
    for b in reversed(blocks):  # successors first (postorder of a DAG)
        succs = b.successors()
        if not succs:
            pd: frozenset = frozenset([_EXIT])
        else:
            pd = postdom[id(succs[0])]
            for s in succs[1:]:
                pd = pd & postdom[id(s)]
        postdom[id(b)] = pd | {id(b)}

    ipdom: dict[int, Optional[BasicBlock]] = {}
    for b in blocks:
        candidates = postdom[id(b)] - {id(b)}
        found: Optional[BasicBlock] = None
        for c in candidates:
            if c == _EXIT:
                continue
            if postdom[c] == candidates:
                found = by_id[c]
                break
        ipdom[id(b)] = found  # None => virtual exit
    return ipdom


# -- region algorithm ------------------------------------------------------------------


def structurize(fn: Function) -> StructuredNode:
    """Build the structured tree for ``fn`` (tries regions, falls back to
    predicate variables)."""
    try:
        return _structurize_regions(fn)
    except StructurizeError:
        return _structurize_predicates(fn)


def _structurize_regions(fn: Function) -> StructuredNode:
    """Dominator-scope emission.

    Each block's straight-line code is a leaf; a conditional becomes an
    IfNode whose arms are the dominator subtrees of its successors, and
    the *sink* (the merge block — the branch block's sole multi-predecessor
    dominator-tree child) is emitted right after the IfNode, in the scope
    of the nearest common dominator of its predecessors (§VI-B).  A
    soundness check verifies that every path out of the branch either
    returns or reaches the sink; CFGs violating it (or with several
    sibling sinks) fall back to predicate structurization.
    """
    from repro.ir.dominators import DominatorTree, reachable_blocks

    dt = DominatorTree(fn)
    reachable = reachable_blocks(fn)
    visited: set[int] = set()

    preds_count: dict[int, int] = {}
    dom_children: dict[int, list[BasicBlock]] = {}
    for bb in dt.rpo:
        preds_count[id(bb)] = sum(1 for p in bb.predecessors() if id(p) in reachable)
        idom = dt.immediate_dominator(bb)
        if idom is not None and bb is not fn.entry:
            dom_children.setdefault(id(idom), []).append(bb)

    def emit_scope(b: BasicBlock) -> SeqNode:
        if id(b) in visited:
            raise StructurizeError(f"block {b.name} reached twice")
        visited.add(id(b))
        if any(True for _ in b.phis()):
            raise StructurizeError("phi nodes present; run phi elimination first")
        seq = SeqNode()
        body = [i for i in b.instructions if not isinstance(i, (Br, Jmp))]
        seq.items.append(LeafNode(body, block=b))
        term = b.terminator
        if term is None:
            raise StructurizeError(f"unterminated block {b.name}")
        merges = [c for c in dom_children.get(id(b), []) if preds_count[id(c)] > 1]
        if isinstance(term, Ret):
            if merges:
                raise StructurizeError(f"return block {b.name} has merge children")
            return seq
        if isinstance(term, Jmp):
            if merges:
                raise StructurizeError(f"jump block {b.name} has merge children")
            t = term.target
            if preds_count[id(t)] == 1:
                seq.items.extend(emit_scope(t).items)
            # else: control falls through to an enclosing scope's sink.
            return seq
        assert isinstance(term, Br)
        if len(merges) > 1:
            raise StructurizeError(
                f"branch block {b.name} has {len(merges)} sibling sinks"
            )
        merge = merges[0] if merges else None

        def arm(a: BasicBlock) -> Optional[SeqNode]:
            if a is merge:
                return None  # empty arm: falls straight to the sink
            if preds_count[id(a)] != 1 or dt.immediate_dominator(a) is not b:
                raise StructurizeError(
                    f"arm {a.name} of {b.name} is not a single-entry region"
                )
            return emit_scope(a)

        then_node = arm(term.then_)
        else_node = arm(term.else_)
        if then_node is None and else_node is None:
            raise StructurizeError(f"degenerate branch in {b.name}")
        if then_node is None:
            # Normalize: the then-arm falls through; negate into the else.
            assert else_node is not None
            seq.items.append(IfNode(term.cond, else_node, None, negate=True))
        else:
            seq.items.append(
                IfNode(term.cond, then_node, else_node if (else_node and else_node.items) else None)
            )
        if merge is not None:
            seq.items.extend(emit_scope(merge).items)
        return seq

    tree = emit_scope(fn.entry)
    if visited != reachable:
        raise StructurizeError("region algorithm did not cover the CFG")
    _verify_tree_against_cfg(fn, tree)
    return tree


def _first_block(node: StructuredNode) -> Optional[BasicBlock]:
    if isinstance(node, LeafNode):
        return node.block
    if isinstance(node, SeqNode):
        for item in node.items:
            b = _first_block(item)
            if b is not None:
                return b
    if isinstance(node, IfNode):
        return _first_block(node.then)
    return None


def _verify_tree_against_cfg(fn: Function, tree: StructuredNode) -> None:
    """Exact semantic check: executing the tree must visit blocks along
    precisely the CFG's edges.  For every leaf we compute which block the
    tree would execute next (under each branch outcome) and compare with
    the block's terminator.  Any mismatch aborts region structurization,
    falling back to the always-correct predicate form."""

    def fail(msg: str) -> None:
        raise StructurizeError(f"tree verification failed in {fn.name}: {msg}")

    def next_from(items: list[StructuredNode], i: int, cont: Optional[BasicBlock]):
        for item in items[i:]:
            b = _first_block(item)
            if b is not None:
                return b
        return cont

    def walk(node: StructuredNode, cont: Optional[BasicBlock]) -> None:
        if isinstance(node, LeafNode):
            b = node.block
            if b is None:
                return
            term = b.terminator
            if isinstance(term, Ret):
                return
            if isinstance(term, Jmp):
                if cont is not term.target:
                    fail(
                        f"{b.name} jumps to {term.target.name} but the tree "
                        f"continues at {cont.name if cont else 'exit'}"
                    )
            # Br is validated by the enclosing SeqNode walk (the IfNode
            # immediately follows the leaf).
            return
        if isinstance(node, SeqNode):
            for i, item in enumerate(node.items):
                after = next_from(node.items, i + 1, cont)
                if isinstance(item, IfNode):
                    # The branch owner is the nearest preceding leaf.
                    owner = None
                    for prev in reversed(node.items[:i]):
                        owner = _last_block(prev)
                        if owner is not None:
                            break
                    term = owner.terminator if owner is not None else None
                    if not isinstance(term, Br):
                        fail("IfNode without a preceding branch block")
                    then_entry = _first_block(item.then) or after
                    else_entry = (
                        (_first_block(item.els) if item.els else None) or after
                    )
                    if item.negate:
                        then_entry, else_entry = else_entry, then_entry
                    if then_entry is not term.then_ or else_entry is not term.else_:
                        fail(
                            f"branch {owner.name}: tree targets "
                            f"({then_entry and then_entry.name}, "
                            f"{else_entry and else_entry.name}) != CFG "
                            f"({term.then_.name}, {term.else_.name})"
                        )
                    walk(item.then, after)
                    if item.els is not None:
                        walk(item.els, after)
                else:
                    walk(item, after)
            return
        if isinstance(node, IfNode):  # pragma: no cover - wrapped by Seq
            walk(node.then, cont)
            if node.els is not None:
                walk(node.els, cont)


def _last_block(node: StructuredNode) -> Optional[BasicBlock]:
    if isinstance(node, LeafNode):
        return node.block
    if isinstance(node, SeqNode):
        for item in reversed(node.items):
            b = _last_block(item)
            if b is not None:
                return b
    if isinstance(node, IfNode):
        return None  # a branch owner never sits inside an IfNode arm's tail
    return None


def _structurize_predicates(fn: Function) -> StructuredNode:
    """Paper fallback: linearize in RPO with 1-bit predicate locals."""
    blocks = reverse_postorder(fn)
    pred_name = {id(b): f"__pred_{b.name}" for b in blocks}
    seq = SeqNode()
    seq.items.append(PredDecls([pred_name[id(b)] for b in blocks if b is not fn.entry]))
    for b in blocks:
        if any(True for _ in b.phis()):
            raise StructurizeError("phi nodes present; run phi elimination first")
        body = [i for i in b.instructions if not isinstance(i, (Br, Jmp))]
        src = "" if b is fn.entry else pred_name[id(b)]
        updates: list[PredUpdate] = []
        term = b.terminator
        if isinstance(term, Jmp):
            updates.append(PredUpdate(pred_name[id(term.target)], src, None, True))
        elif isinstance(term, Br):
            updates.append(PredUpdate(pred_name[id(term.then_)], src, term.cond, True))
            updates.append(PredUpdate(pred_name[id(term.else_)], src, term.cond, False))
        inner = SeqNode()
        if body:
            inner.items.append(LeafNode(body))
        inner.items.extend(updates)
        if b is fn.entry:
            seq.items.append(inner)
        else:
            seq.items.append(IfNode(src, inner, None))
    return seq


def count_nodes(node: StructuredNode) -> int:
    """Total number of tree nodes (used by tests and resource accounting)."""
    if isinstance(node, SeqNode):
        return 1 + sum(count_nodes(i) for i in node.items)
    if isinstance(node, IfNode):
        n = 1 + count_nodes(node.then)
        if node.els is not None:
            n += count_nodes(node.els)
        return n
    return 1
