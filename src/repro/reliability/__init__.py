"""``repro.reliability`` — reliable in-network message delivery.

The paper's testbed is lossless; real deployments are not.  This package
layers NetRPC-style reliability over :mod:`repro.runtime` so NetCL
applications survive loss, duplication, reordering, corruption, and
switch failure (exercise them with :mod:`repro.chaos`):

* wire: a backward-compatible sequence/CRC trailer on NetCL packets
  (:mod:`repro.runtime.message`);
* :mod:`repro.reliability.dedup` — sliding-window at-most-once state and
  reply caches;
* :mod:`repro.reliability.device` — :class:`ReliableNetCLDevice`, the
  device runtime with dedup, decision replay, integrity checks, and ACKs;
* :mod:`repro.reliability.channel` — :class:`ReliableChannel`, the
  host-side sender with ACK tracking and exponential-backoff retransmit;
* :mod:`repro.reliability.failover` — journaled control-plane
  replication and standby-switch promotion.

Everything reports through :mod:`repro.telemetry` (``reliability.*``
counters), so degradation is observable rather than silent.
"""

from repro.reliability.channel import BackoffPolicy, ReliableChannel
from repro.reliability.dedup import DedupWindow, ReplayCache
from repro.reliability.device import ReliableNetCLDevice
from repro.reliability.failover import FailoverManager, ReplicatedConnection

__all__ = [
    "BackoffPolicy",
    "ReliableChannel",
    "DedupWindow",
    "ReplayCache",
    "ReliableNetCLDevice",
    "FailoverManager",
    "ReplicatedConnection",
]
