"""Host-side reliable messaging over the simulated runtime.

:class:`ReliableChannel` wraps one simulated :class:`~repro.netsim.net.Host`
and gives its application sequence-numbered sends with ACK tracking,
retransmission on an exponential-backoff timer, receive-side duplicate
suppression, and a reply cache for request/response protocols:

* :meth:`request` — send a kernel message with a fresh sequence number.
  With ``retransmit=True`` the channel re-sends until a reply carrying
  the same sequence number arrives (or retries are exhausted); with
  ``retransmit=False`` the message is tracked for ACK/latency telemetry
  only and the application drives its own recovery (AGG's slot protocol).
* :meth:`send_reply` — answer an incoming reliable request, echoing its
  sequence number so the requester's channel completes the exchange, and
  caching the reply so a duplicated/retransmitted request is answered by
  replaying it instead of re-running the (possibly non-idempotent)
  application handler.
* :meth:`retarget` — point all future transmissions (and immediately
  re-send everything outstanding) at a different device: the sender half
  of control-plane failover.

The channel interposes on ``host.on_receive``: construct it *after* the
application has installed its handler; reliability control traffic is
consumed, everything else is passed through exactly once.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.netsim.net import Host, Network
from repro.runtime.message import (
    KernelSpec,
    Message,
    NetCLPacket,
    NO_DEVICE,
    REL_ACK,
    REL_DATA,
    REL_FLAG_ACK_REQ,
    REL_FLAG_MORE,
    REL_FLAG_REPLY,
    pack,
)
from repro.reliability.dedup import DedupWindow, ReplayCache
from repro.runtime.constants import (
    DEFAULT_DEDUP_WINDOW,
    DEFAULT_REPLY_CACHE_CAPACITY,
)


@dataclass(frozen=True)
class BackoffPolicy:
    """Retransmission timing: exponential backoff with a cap."""

    base_timeout_ns: int = 300_000
    factor: float = 2.0
    max_timeout_ns: int = 5_000_000
    max_retries: int = 10

    def timeout_ns(self, attempt: int) -> int:
        return min(int(self.base_timeout_ns * self.factor**attempt), self.max_timeout_ns)


@dataclass
class _Pending:
    seq: int
    template: NetCLPacket
    sent_ns: int
    retransmit: bool
    attempts: int = 0
    acked: bool = False
    #: when the current timeout actually expires; the timer event may
    #: wake earlier (see ReliableChannel._arm) and re-sleeps until this.
    deadline_ns: int = 0
    timer: Optional[object] = field(default=None, repr=False)
    on_complete: Optional[Callable[[int], None]] = field(default=None, repr=False)
    on_fail: Optional[Callable[[int], None]] = field(default=None, repr=False)


class ReliableChannel:
    """Reliable sequence-numbered messaging for one simulated host."""

    def __init__(
        self,
        network: Network,
        host: Host,
        spec: KernelSpec,
        *,
        target_device: int,
        comp: int = 1,
        policy: Optional[BackoffPolicy] = None,
        ack: bool = True,
        complete_on_ack: bool = False,
        dedup_window: int = DEFAULT_DEDUP_WINDOW,
        reply_capacity: int = DEFAULT_REPLY_CACHE_CAPACITY,
    ) -> None:
        self.network = network
        self.host = host
        self.spec = spec
        self.target_device = target_device
        self.comp = comp
        self.policy = policy or BackoffPolicy()
        self.ack = ack
        self.complete_on_ack = complete_on_ack
        self.pending: dict[int, _Pending] = {}
        self._seq = itertools.count(1)
        self._app_receive = host.on_receive
        host.on_receive = self._handle
        self._recv_window = DedupWindow(dedup_window)
        #: (sender, seq) -> ordered reply fragments for that request.
        self._replies: ReplayCache[list[NetCLPacket]] = ReplayCache(reply_capacity)
        #: (sender, seq) -> whether the logical reply there is terminal
        #: (its last fragment carried no MORE flag).
        self._reply_closed: dict[tuple[int, int], bool] = {}
        m = network.metrics
        tag = f"h{host.host_id}"
        self._sent = m.counter(f"reliability.ch.sent.{tag}")
        self._retransmits = m.counter(f"reliability.ch.retransmits.{tag}")
        self._completed = m.counter(f"reliability.ch.completed.{tag}")
        self._expired = m.counter(f"reliability.ch.expired.{tag}")
        self._acks = m.counter(f"reliability.ch.acks.{tag}")
        self._dup_rx = m.counter(f"reliability.ch.dup_rx_dropped.{tag}")
        self._reply_replays = m.counter(f"reliability.ch.reply_replays.{tag}")
        self._corrupt_rx = m.counter(f"reliability.ch.corrupt_rx_dropped.{tag}")
        self._rtt = m.histogram(f"reliability.ch.rtt_ns.{tag}")

    # -- sending -------------------------------------------------------------------
    def request(
        self,
        values,
        *,
        dst: int,
        retransmit: bool = True,
        on_complete: Optional[Callable[[int], None]] = None,
        on_fail: Optional[Callable[[int], None]] = None,
        spec: Optional[KernelSpec] = None,
        comp: Optional[int] = None,
    ) -> int:
        """Send a sequence-numbered kernel message; returns the seq.

        ``spec``/``comp`` override the channel defaults per request, for
        applications that multiplex several computations (with distinct
        message layouts) over one host's channel — e.g. the collective
        workers' expmax + reduce streams.
        """
        seq = next(self._seq)
        msg = Message(
            src=self.host.host_id,
            dst=dst,
            comp=self.comp if comp is None else comp,
            to=self.target_device,
        )
        template = NetCLPacket.from_wire(
            pack(msg, self.spec if spec is None else spec, values)
        )
        flags = REL_FLAG_ACK_REQ if self.ack else 0
        template.stamp_reliability(REL_DATA, seq, flags)
        self.pending[seq] = _Pending(
            seq,
            template,
            self.network.sim.now_ns,
            retransmit,
            on_complete=on_complete,
            on_fail=on_fail,
        )
        self._transmit(seq)
        return seq

    def _transmit(self, seq: int) -> None:
        p = self.pending.get(seq)
        if p is None:
            return
        p.template.to = self.target_device
        self.host.send_packet(p.template.copy())
        self._sent.inc()
        self._arm(p)

    def _arm(self, p: _Pending) -> None:
        # Deadline-based re-arm: moving the deadline re-uses a live timer
        # event (it wakes at its old time, sees the deadline moved, and
        # re-sleeps) instead of cancelling and allocating a fresh closure
        # and heap entry per transmission.
        p.deadline_ns = self.network.sim.now_ns + self.policy.timeout_ns(p.attempts)
        if p.timer is None or p.timer.cancelled:  # type: ignore[attr-defined]
            p.timer = self.network.sim.at(p.deadline_ns, self._timer_fire, p)

    def _timer_fire(self, p: _Pending) -> None:
        if self.pending.get(p.seq) is not p:
            p.timer = None
            return
        now = self.network.sim.now_ns
        if now < p.deadline_ns:
            # Spurious wake: the deadline moved while we slept.
            p.timer = self.network.sim.at(p.deadline_ns, self._timer_fire, p)
            return
        p.timer = None
        p.attempts += 1
        if not p.retransmit or p.attempts > self.policy.max_retries:
            # ACK-only tracking expiry, or retries exhausted.
            self.pending.pop(p.seq, None)
            if p.retransmit:
                self._expired.inc()
                if p.on_fail is not None:
                    p.on_fail(p.seq)
            return
        self._retransmits.inc()
        self._transmit(p.seq)

    def send_reply(
        self,
        request: NetCLPacket,
        values,
        *,
        comp: Optional[int] = None,
        spec: Optional[KernelSpec] = None,
        more: bool = False,
    ) -> None:
        """Answer a reliable request, echoing its sequence number.

        A reply larger than one packet is sent as several calls with
        ``more=True`` on all but the last.  Every fragment echoes the
        request's sequence number; the requester dedups the exchange on
        the *terminal* fragment only, so the application payload must
        make fragments self-identifying (an offset/index field) and
        reassembly idempotent.  All fragments are cached together: a
        duplicated request replays the whole logical reply.
        """
        msg = Message(
            src=self.host.host_id,
            dst=request.src,
            comp=self.comp if comp is None else comp,
            to=NO_DEVICE,
        )
        reply = NetCLPacket.from_wire(
            pack(msg, self.spec if spec is None else spec, values)
        )
        flags = REL_FLAG_REPLY | (REL_FLAG_MORE if more else 0)
        reply.stamp_reliability(REL_DATA, request.rel_seq, flags)
        key = (request.src, request.rel_seq)
        fragments = self._replies.get(*key)
        if fragments is None or self._reply_closed.get(key, True):
            # First fragment of a fresh logical reply (or the previous
            # logical reply for this seq was complete): start over.
            fragments = []
            self._replies.put(request.src, request.rel_seq, fragments)
        fragments.append(reply)
        self._reply_closed[key] = not more
        if len(self._reply_closed) > 4 * self._replies.capacity:
            self._reply_closed = {
                k: v for k, v in self._reply_closed.items()
                if self._replies.get(*k) is not None
            }
        self.host.send_packet(reply.copy())

    # -- completion / failover -----------------------------------------------------
    def complete(self, seq: int) -> None:
        """Application-level completion: stop retransmitting ``seq``."""
        self._complete(seq)

    def _complete(self, seq: int) -> None:
        p = self.pending.pop(seq, None)
        if p is None:
            return
        if p.timer is not None:
            p.timer.cancel()  # type: ignore[attr-defined]
        self._completed.inc()
        self._rtt.observe(self.network.sim.now_ns - p.sent_ns)
        if p.on_complete is not None:
            p.on_complete(seq)

    def retarget(self, device_id: int) -> None:
        """Point at a different device (failover).

        Retransmit-mode requests are immediately re-sent at the new
        target.  ACK-tracking-only requests (``retransmit=False``) are
        discarded instead: their ACKs died with the old target, and the
        application protocol owns recovery — blindly replaying stale
        sends onto a fresh device can violate app invariants (e.g. AGG's
        version-alternating bitmap, where an old-round contribution
        clears the other version's bit).
        """
        self.target_device = device_id
        for seq, p in list(self.pending.items()):
            if p.retransmit:
                self._transmit(seq)
            else:
                self.pending.pop(seq, None)
                if p.timer is not None:
                    p.timer.cancel()  # type: ignore[attr-defined]

    @property
    def outstanding(self) -> int:
        return len(self.pending)

    # -- receiving -----------------------------------------------------------------
    def _handle(self, packet: NetCLPacket, now_ns: int) -> None:
        kind = packet.rel_kind
        if kind is None:
            self._deliver(packet, now_ns)
            return
        if not packet.reliability_intact:
            self._corrupt_rx.inc()
            return
        if kind == REL_ACK:
            p = self.pending.get(packet.rel_seq)
            if p is not None:
                p.acked = True
                self._acks.inc()
                if self.complete_on_ack or not p.retransmit:
                    self._complete(packet.rel_seq)
            return
        seq = packet.rel_seq
        # A reply (flagged by the responder, or our own message coming
        # back via reflect/multicast) completes the matching request.
        # Retransmission control and app delivery are decoupled: delivery
        # is deduped by (sender, seq) regardless of how — or whether —
        # the exchange completed (e.g. an ACK may complete an AGG send
        # before its multicast result arrives; the result must still be
        # delivered exactly once).
        is_reply = bool(packet.rel_flags & REL_FLAG_REPLY) or packet.src == self.host.host_id
        if is_reply and packet.rel_flags & REL_FLAG_MORE:
            # Mid-reply fragment: the exchange is deduped on the terminal
            # fragment, so deliver unless the whole reply was already
            # accepted (a replayed logical reply we finished earlier).
            # Reassembly is idempotent by construction (see send_reply).
            if self._recv_window.seen(packet.src, seq):
                self._dup_rx.inc()
                return
            self._deliver(packet, now_ns)
            return
        if is_reply and seq in self.pending:
            self._complete(seq)
        if not self._recv_window.check_and_add(packet.src, seq):
            self._dup_rx.inc()
            if not is_reply:
                # A duplicated/retransmitted request we already answered:
                # replay the cached reply (every fragment) instead of
                # re-running the app.
                cached = self._replies.get(packet.src, seq)
                if cached is not None:
                    self._reply_replays.inc()
                    for fragment in cached:
                        self.host.send_packet(fragment.copy())
            return
        self._deliver(packet, now_ns)

    def _deliver(self, packet: NetCLPacket, now_ns: int) -> None:
        if self._app_receive is not None:
            self._app_receive(packet, now_ns)
