"""At-most-once delivery state: sliding seen-windows and reply caches.

The device-side half of the reliable-messaging layer.  A
:class:`DedupWindow` remembers, per sender, which sequence numbers have
already been accepted so duplicated packets (network duplication, or a
sender retransmitting into a path whose first copy did get through) are
never applied twice — essential for non-idempotent kernels like AGG's
streaming aggregation.  A :class:`ReplayCache` keeps the forwarding
decision produced for recent sequence numbers so a duplicate can be
answered by *replaying* the original outcome instead of silently dropping
it (the classic at-most-once RPC reply cache, cf. NetRPC).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Optional, TypeVar

from repro.runtime.constants import (
    DEFAULT_DEDUP_WINDOW,
    DEFAULT_REPLAY_CACHE_CAPACITY,
)

T = TypeVar("T")


class DedupWindow:
    """Per-sender sliding window of already-seen sequence numbers.

    The window is an integer bitmap of the ``window`` most recent sequence
    numbers below the highest seen.  Anything older than the window is
    conservatively treated as a duplicate: re-applying an ancient message
    is never safe, while dropping it only costs a retransmission.

    With ``ordered=True`` the window additionally enforces per-sender
    FIFO: *any* sequence number below the sender's highest accepted one
    is rejected, even if never seen.  Protocols like SwitchML's slot
    aggregation assume per-flow in-order delivery — a late out-of-order
    packet from a worker that has since advanced a round corrupts the
    version-alternating bitmap — so their device turns this on and lets
    the sender's (fresh-sequence) retransmission recover the message.
    """

    def __init__(
        self, window: int = DEFAULT_DEDUP_WINDOW, *, ordered: bool = False
    ) -> None:
        if window < 1:
            raise ValueError("window must be positive")
        self.window = window
        self.ordered = ordered
        #: stale (older-than-high, never seen) packets rejected by ordered
        #: mode — distinct from true duplicates for telemetry.
        self.stale_rejected = 0
        #: sender id -> (highest seq seen, bitmap over [high - window, high])
        self._state: dict[int, tuple[int, int]] = {}

    def check_and_add(self, sender: int, seq: int) -> bool:
        """Record ``seq`` from ``sender``; returns True iff it is new."""
        entry = self._state.get(sender)
        if entry is None:
            self._state[sender] = (seq, 1)
            return True
        high, bits = entry
        if seq > high:
            shift = seq - high
            if shift >= self.window:
                bits = 1
            else:
                bits = ((bits << shift) | 1) & ((1 << self.window) - 1)
            self._state[sender] = (seq, bits)
            return True
        offset = high - seq
        if offset >= self.window:
            return False  # beyond the window: assume already seen
        if (bits >> offset) & 1:
            return False
        if self.ordered:
            self.stale_rejected += 1
            return False
        self._state[sender] = (high, bits | (1 << offset))
        return True

    def seen(self, sender: int, seq: int) -> bool:
        """Whether ``seq`` would be rejected, without recording it."""
        entry = self._state.get(sender)
        if entry is None:
            return False
        high, bits = entry
        if seq > high:
            return False
        offset = high - seq
        if self.ordered:
            return True  # FIFO mode: everything at or below high is rejected
        return offset >= self.window or bool((bits >> offset) & 1)

    def reset(self) -> None:
        self._state.clear()

    @property
    def tracked_senders(self) -> int:
        return len(self._state)


class ReplayCache(Generic[T]):
    """Bounded map from (sender, seq) to the outcome produced for it."""

    def __init__(self, capacity: int = DEFAULT_REPLAY_CACHE_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[tuple[int, int], T]" = OrderedDict()

    def put(self, sender: int, seq: int, outcome: T) -> None:
        key = (sender, seq)
        self._entries[key] = outcome
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def get(self, sender: int, seq: int) -> Optional[T]:
        return self._entries.get((sender, seq))

    def reset(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
