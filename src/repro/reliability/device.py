"""The reliable NetCL device runtime.

:class:`ReliableNetCLDevice` extends :class:`~repro.runtime.device.NetCLDevice`
with the device-side half of the reliability protocol:

* **integrity** — reliable packets whose data section no longer matches
  their trailer CRC (in-network corruption) are dropped; the sender's
  retransmission recovers them;
* **at-most-once** — a :class:`~repro.reliability.dedup.DedupWindow`
  keyed by (source host, sequence number) guarantees a kernel is never
  applied twice to the same message, even for non-idempotent kernels;
* **replay** — duplicates whose original produced a forwarding decision
  get that decision replayed (fresh packet copy), so a retransmission
  still elicits the lost response without recomputing;
* **ACK** — packets carrying the ACK-request flag are acknowledged to
  the source host through the control side-channel
  (:meth:`drain_control`), which both the netsim switch and the UDP
  switch execute after the main forwarding decision.

Reliability applies only to packets *addressed to this device*; transit
no-ops forward untouched, so only the terminal computing device dedups
and acknowledges.
"""

from __future__ import annotations

from repro.runtime.device import ForwardDecision, ForwardKind, NetCLDevice
from repro.runtime.message import (
    ACT_CODES,
    NetCLPacket,
    NO_DEVICE,
    REL_ACK,
    REL_DATA,
    REL_FLAG_ACK_REQ,
)
from repro.reliability.dedup import DedupWindow, ReplayCache
from repro.runtime.constants import (
    DEFAULT_DEDUP_WINDOW,
    DEFAULT_REPLAY_CACHE_CAPACITY,
)


class ReliableNetCLDevice(NetCLDevice):
    """A NetCL device with dedup, replay, integrity checks, and ACKs."""

    def __init__(
        self,
        *args,
        dedup_window: int = DEFAULT_DEDUP_WINDOW,
        replay_capacity: int = DEFAULT_REPLAY_CACHE_CAPACITY,
        ack: bool = True,
        ordered: bool = False,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.ack = ack
        self.dedup = DedupWindow(dedup_window, ordered=ordered)
        self.replay: ReplayCache[ForwardDecision] = ReplayCache(replay_capacity)
        self._control: list[ForwardDecision] = []
        self._accepted = self.metrics.counter("reliability.accepted")
        self._dup_drops = self.metrics.counter("reliability.dup_drops")
        self._replays = self.metrics.counter("reliability.replays")
        self._corrupt_drops = self.metrics.counter("reliability.corrupt_drops")
        self._stale_drops = self.metrics.counter("reliability.stale_drops")
        self._acks_sent = self.metrics.counter("reliability.acks_sent")

    # -- lifecycle ----------------------------------------------------------------
    def reset_state(self) -> None:
        super().reset_state()
        self.dedup.reset()
        self.replay.reset()
        self._control.clear()

    def drain_control(self) -> list[ForwardDecision]:
        out, self._control = self._control, []
        return out

    # -- packet path --------------------------------------------------------------
    def process(self, packet: NetCLPacket) -> ForwardDecision:
        if packet.rel_kind is None or packet.to != self.device_id:
            return super().process(packet)
        if packet.rel_kind != REL_DATA:
            # Stray control packet at a device: consume it.
            return ForwardDecision(ForwardKind.DROP, packet=None)
        if not packet.reliability_intact:
            self._corrupt_drops.inc()
            return ForwardDecision(ForwardKind.DROP, packet=None)
        if packet.rel_flags & REL_FLAG_ACK_REQ and self.ack:
            self._control.append(self._make_ack(packet))
            self._acks_sent.inc()
        stale_before = self.dedup.stale_rejected
        if not self.dedup.check_and_add(packet.src, packet.rel_seq):
            if self.dedup.stale_rejected > stale_before:
                # Ordered mode rejected an out-of-order (never-accepted)
                # packet: dropping it restores the per-flow FIFO the app
                # protocol assumes; no decision exists to replay.
                self._stale_drops.inc()
                return ForwardDecision(ForwardKind.DROP, packet=None)
            self._dup_drops.inc()
            cached = self.replay.get(packet.src, packet.rel_seq)
            # Only unicast responses are replayed.  Re-multicasting a
            # cached decision would re-broadcast an arbitrarily old
            # result to every member (a network-duplicated trigger can
            # arrive cycles later, when slot-reuse protocols can no
            # longer tell the epoch apart); senders that genuinely lost
            # a broadcast recover through the kernel's own retransmission
            # path with a fresh sequence number.
            if cached is not None and cached.kind == ForwardKind.TO_HOST:
                self._replays.inc()
                replay_pkt = cached.packet.copy() if cached.packet is not None else None
                return ForwardDecision(cached.kind, cached.target, replay_pkt)
            return ForwardDecision(ForwardKind.DROP, packet=None)
        self._accepted.inc()
        decision = super().process(packet)
        if decision.packet is not None and decision.packet.rel_kind is not None:
            # The kernel rewrote the data section; keep the trailer honest.
            decision.packet.restamp_crc()
        self.replay.put(packet.src, packet.rel_seq, decision)
        return decision

    def _make_ack(self, packet: NetCLPacket) -> ForwardDecision:
        ack = NetCLPacket(
            src=packet.src,
            dst=packet.src,
            from_=self.device_id,
            to=NO_DEVICE,
            comp=packet.comp,
            act=ACT_CODES["pass"],
            data=b"",
        )
        ack.stamp_reliability(REL_ACK, packet.rel_seq)
        return ForwardDecision(ForwardKind.TO_HOST, packet.src, ack)
