"""Control-plane failover: standby switches and state re-installation.

Real INC deployments treat switch failure as a service-level event
(ClickINC): a spare switch takes over the computation, the control plane
re-installs the managed state the program needs, and senders are
rerouted.  Two pieces model that here:

* :class:`ReplicatedConnection` — a drop-in wrapper around
  :class:`~repro.runtime.control.DeviceConnection` that journals every
  control-plane mutation (register writes, table inserts/modifies/
  removes).  The journal is compacted by key, so replaying it onto a
  standby reproduces the *final* managed state in one pass.
* :class:`FailoverManager` — heartbeats the primary through the
  simulator; when the primary stops responding it replays the journal
  onto the standby, retargets every registered
  :class:`~repro.reliability.channel.ReliableChannel`, and invokes an
  application hook for protocol-specific resynchronization (AGG's slot
  restart).  Failovers and time-to-recover are reported through the
  network's telemetry registry.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.netsim.net import DEVICE, Network
from repro.runtime.control import DeviceConnection


class ReplicatedConnection:
    """A DeviceConnection wrapper that journals control-plane mutations."""

    def __init__(self, conn: DeviceConnection) -> None:
        self._conn = conn
        #: op key -> journal entry, insertion-ordered, last write wins.
        self._journal: dict[tuple, tuple] = {}

    # -- register memory -------------------------------------------------------
    def managed_write(self, name: str, value: int, index: int = 0) -> None:
        self._conn.managed_write(name, value, index=index)
        self._journal[("reg", name, index)] = ("write", name, value, index)

    def managed_read(self, name: str, index: int = 0) -> int:
        return self._conn.managed_read(name, index=index)

    def managed_read_all(self, name: str):
        return self._conn.managed_read_all(name)

    # -- lookup memory ---------------------------------------------------------
    def managed_insert(
        self, name: str, key: int, value: Optional[int] = None,
        key_hi: Optional[int] = None,
    ) -> None:
        self._conn.managed_insert(name, key, value=value, key_hi=key_hi)
        self._journal[("tbl", name, key)] = ("insert", name, key, value, key_hi)

    def managed_modify(self, name: str, key: int, value: int) -> bool:
        ok = self._conn.managed_modify(name, key, value)
        if ok:
            prev = self._journal.get(("tbl", name, key))
            key_hi = prev[4] if prev is not None and prev[0] == "insert" else None
            self._journal[("tbl", name, key)] = ("insert", name, key, value, key_hi)
        return ok

    def managed_remove(self, name: str, key: int) -> bool:
        ok = self._conn.managed_remove(name, key)
        self._journal.pop(("tbl", name, key), None)
        return ok

    def entries(self, name: str):
        return self._conn.entries(name)

    # -- replication -----------------------------------------------------------
    @property
    def journal_size(self) -> int:
        return len(self._journal)

    def replay(self, conn: DeviceConnection) -> int:
        """Re-apply the compacted journal onto another device; returns the
        number of operations replayed."""
        n = 0
        for entry in self._journal.values():
            if entry[0] == "write":
                _, name, value, index = entry
                conn.managed_write(name, value, index=index)
            else:
                _, name, key, value, key_hi = entry
                conn.managed_insert(name, key, value=value, key_hi=key_hi)
            n += 1
        return n

    def retarget(self, conn: DeviceConnection) -> None:
        """Future control-plane operations go to ``conn`` (the standby)."""
        self._conn = conn


class FailoverManager:
    """Detect a dead primary switch and promote a standby."""

    def __init__(
        self,
        network: Network,
        primary_id: int,
        standby_id: int,
        *,
        heartbeat_ns: int = 100_000,
        replicated: Optional[ReplicatedConnection] = None,
        channels: Sequence = (),
        on_failover: Optional[Callable[["FailoverManager"], None]] = None,
    ) -> None:
        self.network = network
        self.primary_id = primary_id
        self.standby_id = standby_id
        self.active_id = primary_id
        self.heartbeat_ns = heartbeat_ns
        self.replicated = replicated
        self.channels = list(channels)
        self.on_failover = on_failover
        self.failed_over = False
        self._last_up_ns = network.sim.now_ns
        m = network.metrics
        self._failovers = m.counter("reliability.failover.count")
        self._heartbeats = m.counter("reliability.failover.heartbeats")
        self._recover = m.histogram("reliability.failover.time_to_recover_ns")
        self._replayed = m.counter("reliability.failover.ops_replayed")

    def start(self) -> "FailoverManager":
        self._schedule()
        return self

    def _schedule(self) -> None:
        self.network.sim.after(self.heartbeat_ns, self._tick)

    def _tick(self) -> None:
        if self.failed_over:
            return
        self._heartbeats.inc()
        if self.network.is_up(DEVICE(self.primary_id)):
            self._last_up_ns = self.network.sim.now_ns
            self._schedule()
            return
        self._failover()

    def _failover(self) -> None:
        self.failed_over = True
        self.active_id = self.standby_id
        now = self.network.sim.now_ns
        self._failovers.inc()
        self._recover.observe(now - self._last_up_ns)
        if self.replicated is not None:
            standby = self.network.switches[self.standby_id].device
            conn = DeviceConnection(standby)
            self._replayed.inc(self.replicated.replay(conn))
            self.replicated.retarget(conn)
        for ch in self.channels:
            ch.retarget(self.standby_id)
        if self.on_failover is not None:
            self.on_failover(self)
