"""repro.rpc — in-network accelerated RPC.

A NetRPC-style RPC framework on top of the repro stack: dataclass-schema
methods (:mod:`repro.rpc.idl`) invoked over
:class:`~repro.reliability.ReliableChannel`, with three switch-side
accelerators compiled from ``apps/netcl/rpc.ncl``: idempotent-reply
memoization at the ToR (version-tagged invalidation), scatter-gather
reply aggregation at the spine (one request multicast to every replica,
the switch merges the partials), and per-method token-bucket admission
at the edge.  See ``docs/RPC.md``.

* :mod:`repro.rpc.idl` — wire types, encode/decode, schemas, and the
  deterministic memoization key;
* :mod:`repro.rpc.policies` — host twins of the merge policies (sum /
  min / max, plus vote and top-k encodings that ride them);
* :mod:`repro.rpc.client` / :mod:`repro.rpc.server` — the application
  endpoints (retries with fresh sequences, per-request-id at-most-once
  reply cache, pure gather partials);
* :mod:`repro.rpc.memo` — the ToR memoization control plane;
* :mod:`repro.rpc.cluster` — role compilation and the standalone
  two-rack fabric;
* :mod:`repro.rpc.baseline` — the host-side fan-out the telemetry and
  benchmarks compare against;
* :mod:`repro.rpc.tenant` — the same roles submitted to
  :mod:`repro.service` as a migratable tenant;
* :mod:`repro.rpc.scenarios` — the chaos acceptance run
  (``python -m repro.rpc``).
"""

from repro.rpc.baseline import (
    FanoutResult,
    GatherComparison,
    compare_gather,
    run_host_fanout,
)
from repro.rpc.client import GatherCall, RpcClient, UnaryCall
from repro.rpc.cluster import (
    EDGE_DEVICE,
    SG_DEVICE,
    SG_MCAST_GROUP,
    RpcCluster,
    TokenRefiller,
    build_rpc_cluster,
    compile_rpc_role,
    server_host,
    standby_device,
    tor_device,
)
from repro.rpc.idl import (
    MEMO_LINES,
    NUM_METHODS,
    RPC_WORDS,
    SG_WORDS,
    RpcMethod,
    RpcSchema,
    decode,
    encode,
    request_key,
    u8,
    u16,
    u32,
    u64,
    vec,
    word_count,
)
from repro.rpc.memo import MemoController
from repro.rpc.policies import (
    finish_topk,
    finish_vote,
    merge_words,
    one_hot,
    pack_topk,
)
from repro.rpc.server import RpcServer

# The scenario and tenant layers pull in repro.chaos / repro.service;
# resolve them lazily (PEP 562) so importing the endpoint classes does
# not drag the whole service stack in.
_LAZY = {
    "RpcRunResult": "scenarios",
    "default_rpc_plan": "scenarios",
    "run_rpc_chaos": "scenarios",
    "ABSTRACT_EDGE": "tenant",
    "ABSTRACT_SG": "tenant",
    "RpcTenant": "tenant",
    "abstract_tor": "tenant",
    "submit_rpc_tenant": "tenant",
}


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        module = importlib.import_module(f"repro.rpc.{_LAZY[name]}")
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ABSTRACT_EDGE",
    "ABSTRACT_SG",
    "EDGE_DEVICE",
    "FanoutResult",
    "GatherCall",
    "GatherComparison",
    "MEMO_LINES",
    "MemoController",
    "NUM_METHODS",
    "RPC_WORDS",
    "RpcClient",
    "RpcCluster",
    "RpcMethod",
    "RpcRunResult",
    "RpcSchema",
    "RpcServer",
    "RpcTenant",
    "SG_DEVICE",
    "SG_MCAST_GROUP",
    "SG_WORDS",
    "TokenRefiller",
    "UnaryCall",
    "abstract_tor",
    "build_rpc_cluster",
    "compare_gather",
    "compile_rpc_role",
    "decode",
    "default_rpc_plan",
    "encode",
    "finish_topk",
    "finish_vote",
    "merge_words",
    "one_hot",
    "pack_topk",
    "request_key",
    "run_host_fanout",
    "run_rpc_chaos",
    "server_host",
    "standby_device",
    "submit_rpc_tenant",
    "tor_device",
    "u8",
    "u16",
    "u32",
    "u64",
    "vec",
    "word_count",
]
