"""Entry point for ``python -m repro.rpc``."""

import sys

from repro.rpc.cli import main

sys.exit(main())
