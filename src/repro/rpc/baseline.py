"""Host-only scatter-gather: the no-INC comparison point.

The same fabric graph as :func:`repro.rpc.cluster.build_rpc_cluster` —
edge, spine, ToRs, identical links — but every switch is a plain transit
device.  The client fans one logical call out as ``N`` unicast requests
(one per replica, each over the same reliable transport: fresh-sequence
requests, reply-completes, retransmission on loss) and merges the ``N``
partial replies **locally** with the bit-identical host twin of the
switch merge.  What the in-network path saves is therefore measured
honestly:

* **bytes** — the host path carries one request and one reply per
  replica end-to-end (≈ ``6N`` link crossings per call on this
  topology), the in-network path one request up, fan-out from the
  spine, partials back to the spine, and *one* merged reply down
  (≈ ``4N + 4``) — fewer bytes for ``N > 2``;
* **time** — the host client serializes ``N`` reply receives through
  its NIC overhead where the spine delivers one merged packet.

:func:`compare_gather` runs both sides over the same per-call requests
and the same link-fault plan, cross-checks that the merged results are
*identical*, and returns the byte/time ratios — the honesty check and
the headline numbers for ``BENCH_rpc.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.chaos.inject import ChaosController
from repro.chaos.plan import ChaosPlan, LinkFaults
from repro.ir.module import Module
from repro.netsim import DEVICE, HOST, Link, Network
from repro.reliability import ReliableChannel
from repro.rpc.idl import OP_PARTIAL, OP_REQ, SG_WORDS
from repro.rpc.policies import merge_words
from repro.runtime import NetCLDevice
from repro.runtime.message import FieldSpec, KernelSpec, NO_DEVICE, NetCLPacket, unpack
from repro.rpc import cluster as topo

#: wire layout of one fan-out packet — the same fields (and widths) as
#: the kernel's computation 2, so transit switches and telemetry see
#: packets of identical size and the byte comparison is apples-to-apples.
FANOUT_SPEC = KernelSpec(
    computation=2,
    fields=(
        FieldSpec("ver", 8),
        FieldSpec("bmp_idx", 16),
        FieldSpec("agg_idx", 16),
        FieldSpec("mask", 16),
        FieldSpec("tag", 16),
        FieldSpec("op", 8),
        FieldSpec("method", 8),
        FieldSpec("policy", 8),
        FieldSpec("v", 32, count=SG_WORDS),
    ),
)


@dataclass
class FanoutResult:
    """What one host-only fan-out run produced."""

    results: dict[int, list[int]]
    finished_at_ns: int
    link_bytes: int
    requests_sent: int
    retransmissions: int


class _FanoutClient:
    """Issues calls with a bounded pipeline and merges replies locally."""

    def __init__(self, run: "_FanoutRun", host_id: int, window: int) -> None:
        self.run = run
        self.host_id = host_id
        self.window = window
        self.host = run.net.hosts[host_id]
        self.host.on_receive = self._on_receive
        self.channel = ReliableChannel(
            run.net, self.host, FANOUT_SPEC, target_device=NO_DEVICE,
            comp=2, ack=False,
        )
        self._parts: dict[int, dict[int, list[int]]] = {}
        self.results: dict[int, list[int]] = {}
        self._next = 0
        self.finished_at_ns = 0

    def start(self) -> None:
        for _ in range(min(self.window, len(self.run.queries))):
            self._issue_next()

    def _issue_next(self) -> None:
        call = self._next
        if call >= len(self.run.queries):
            return
        self._next += 1
        raw, policy_code = self.run.queries[call]
        words = list(raw) + [0] * (SG_WORDS - len(raw))
        self._parts[call] = {}
        for i, server in enumerate(self.run.server_hosts):
            self.channel.request(
                [0, 0, 0, 1 << i, call & 0xFFFF, OP_REQ, 0, policy_code, words],
                dst=server,
                retransmit=True,
            )

    def _on_receive(self, packet: NetCLPacket, now_ns: int) -> None:
        _, values = unpack(packet.to_wire(), FANOUT_SPEC)
        mask, tag, op = values[3], values[4], values[5]
        if op != OP_PARTIAL:
            return
        call = tag
        parts = self._parts.get(call)
        if parts is None:
            return  # duplicate reply for a merged call
        parts[mask.bit_length() - 1] = list(values[8])
        if len(parts) == len(self.run.server_hosts):
            del self._parts[call]
            policy = self.run.policy_names[self.run.queries[call][1]]
            self.results[call] = merge_words(
                policy, [parts[i] for i in sorted(parts)]
            )
            self.finished_at_ns = now_ns
            self._issue_next()

    @property
    def done(self) -> bool:
        return len(self.results) == len(self.run.queries)


class _FanoutServer:
    """One replica: recompute the partial, reply over the same channel."""

    def __init__(self, run: "_FanoutRun", host_id: int, replica: int) -> None:
        self.run = run
        self.replica = replica
        self.host = run.net.hosts[host_id]
        self.host.on_receive = self._on_receive
        self.channel = ReliableChannel(
            run.net, self.host, FANOUT_SPEC, target_device=NO_DEVICE,
            comp=2, ack=False,
        )

    def _on_receive(self, packet: NetCLPacket, now_ns: int) -> None:
        _, values = unpack(packet.to_wire(), FANOUT_SPEC)
        tag, op, policy_code = values[4], values[5], values[7]
        if op != OP_REQ:
            return
        partial = self.run.partial_fn(list(values[8]), self.replica)
        partial = [w & 0xFFFFFFFF for w in partial]
        partial += [0] * (SG_WORDS - len(partial))
        self.channel.send_reply(
            packet,
            [0, 0, 0, 1 << self.replica, tag, OP_PARTIAL, 0, policy_code, partial],
        )


class _FanoutRun:
    def __init__(
        self,
        num_racks: int,
        servers_per_rack: int,
        queries: list[tuple[list[int], int]],
        partial_fn: Callable[[list[int], int], list[int]],
        policy_names: dict[int, str],
        *,
        window: int,
        link_latency_ns: int,
        bandwidth_gbps: float,
        seed: int,
    ) -> None:
        self.queries = queries
        self.partial_fn = partial_fn
        self.policy_names = policy_names
        net = Network(seed=seed)
        self.net = net

        def transit(device_id: int, name: str) -> None:
            net.add_switch(
                NetCLDevice(device_id, Module(f"transit_{name}"), []),
                processing_ns=400,
            )

        def link(a, b) -> None:
            net.link(
                a, b,
                Link(latency_ns=link_latency_ns, bandwidth_gbps=bandwidth_gbps),
            )

        # The exact graph the in-network cluster wires (no standbys).
        transit(topo.EDGE_DEVICE, "edge")
        transit(topo.SG_DEVICE, "sg")
        link(DEVICE(topo.EDGE_DEVICE), DEVICE(topo.SG_DEVICE))
        for rack in range(num_racks):
            transit(topo.tor_device(rack), f"tor{rack}")
            link(DEVICE(topo.tor_device(rack)), DEVICE(topo.EDGE_DEVICE))
            link(DEVICE(topo.tor_device(rack)), DEVICE(topo.SG_DEVICE))
        net.add_host(1)
        link(HOST(1), DEVICE(topo.EDGE_DEVICE))
        self.server_hosts = []
        fanout = num_racks * servers_per_rack
        for i in range(fanout):
            h = topo.server_host(i, 1)
            net.add_host(h)
            self.server_hosts.append(h)
            link(HOST(h), DEVICE(topo.tor_device(i // servers_per_rack)))

        # Same single-core packet path the in-network cluster charges.
        for host in net.hosts.values():
            host.serialize_overheads = True

        self.servers = [
            _FanoutServer(self, h, i) for i, h in enumerate(self.server_hosts)
        ]
        self.client = _FanoutClient(self, 1, window)

    def run(self, until_ms: float, plan: Optional[ChaosPlan]) -> FanoutResult:
        if plan is not None:
            ChaosController(self.net, plan).arm()
        self.client.start()
        sim = self.net.sim
        sim.run(until_ns=sim.now_ns + int(until_ms * 1e6))
        if not self.client.done:
            raise RuntimeError(
                f"host fan-out stalled: {len(self.client.results)}/"
                f"{len(self.queries)} calls merged"
            )
        m = self.net.metrics
        return FanoutResult(
            results=self.client.results,
            finished_at_ns=self.client.finished_at_ns,
            link_bytes=int(m.total("link.tx_bytes.")),
            requests_sent=int(m.total("reliability.ch.sent.h1")),
            retransmissions=int(m.total("reliability.ch.retransmits.")),
        )


def run_host_fanout(
    num_racks: int,
    servers_per_rack: int,
    queries: list[tuple[list[int], int]],
    partial_fn: Callable[[list[int], int], list[int]],
    policy_names: dict[int, str],
    *,
    window: int = 8,
    link_latency_ns: int = 1000,
    bandwidth_gbps: float = 100.0,
    seed: int = 7,
    until_ms: float = 500.0,
    plan: Optional[ChaosPlan] = None,
) -> FanoutResult:
    """Run every query as client-side fan-out + local merge."""
    run = _FanoutRun(
        num_racks,
        servers_per_rack,
        queries,
        partial_fn,
        policy_names,
        window=window,
        link_latency_ns=link_latency_ns,
        bandwidth_gbps=bandwidth_gbps,
        seed=seed,
    )
    return run.run(until_ms, plan)


# -- the comparison driver --------------------------------------------------------
@dataclass
class GatherComparison:
    """In-network vs host-only scatter-gather under identical conditions."""

    fanout: int
    calls: int
    policy: str
    innetwork_bytes: int
    innetwork_ns: int
    host_bytes: int
    host_ns: int
    match: bool
    innetwork_results: dict[int, list[int]] = field(repr=False, default_factory=dict)

    @property
    def speedup_time(self) -> float:
        return self.host_ns / max(1, self.innetwork_ns)

    @property
    def speedup_bytes(self) -> float:
        return self.host_bytes / max(1, self.innetwork_bytes)


def _bench_partial(words: list[int], replica: int) -> list[int]:
    """The deterministic per-replica partial both sides compute."""
    q = words[0]
    return [
        (q * 2654435761 + replica * 40503 + i * 1013) & 0xFFFFFFFF
        for i in range(SG_WORDS)
    ]


def compare_gather(
    seed: int,
    *,
    num_racks: int = 2,
    servers_per_rack: int = 2,
    num_calls: int = 32,
    policy: str = "sum",
    faults: Optional[LinkFaults] = None,
    window: int = 8,
    horizon_ms: float = 500.0,
) -> GatherComparison:
    """Measure one gather workload both ways; results must be identical."""
    from dataclasses import dataclass as _dc

    from repro.rpc.cluster import build_rpc_cluster
    from repro.rpc.idl import RpcMethod, RpcSchema, u32, vec
    from repro.rpc.policies import POLICY_CODES

    @_dc
    class _Query:
        q: u32 = 0

    @_dc
    class _Reply:
        v: vec(SG_WORDS) = None

    schema = RpcSchema(
        [RpcMethod("bench", 0, _Query, _Reply, kind="gather", policy=policy)]
    )

    def handler(request, replica):
        return _bench_partial([request.q], replica)

    cluster = build_rpc_cluster(
        schema,
        {"bench": handler},
        num_racks=num_racks,
        servers_per_rack=servers_per_rack,
        num_clients=1,
        window=window,
        gather_rounds=num_calls,
        seed=seed,
    )
    plan = (
        ChaosPlan(seed=seed, default_link=faults) if faults is not None else None
    )
    if plan is not None:
        ChaosController(cluster.network, plan).arm()
    client = cluster.clients[0]
    inner: dict[int, list[int]] = {}
    for call in range(num_calls):
        client.gather(
            "bench",
            _Query(q=seed * 1000 + call),
            on_reply=lambda c: inner.__setitem__(c.round, c.merged),
        )
    cluster.run(until_ms=horizon_ms)
    if len(inner) != num_calls:
        raise RuntimeError(
            f"in-network gather stalled: {len(inner)}/{num_calls} merged "
            f"({cluster.stall_report()})"
        )
    in_ns = max(c.finished_ns for c in client.completed_gather)
    in_bytes = cluster.link_bytes()

    queries = [
        ([seed * 1000 + call], POLICY_CODES[policy]) for call in range(num_calls)
    ]
    host = run_host_fanout(
        num_racks,
        servers_per_rack,
        queries,
        _bench_partial,
        {POLICY_CODES[policy]: policy},
        window=window,
        seed=seed,
        until_ms=horizon_ms,
        plan=plan,
    )
    match = all(host.results.get(c) == inner.get(c) for c in range(num_calls))
    return GatherComparison(
        fanout=num_racks * servers_per_rack,
        calls=num_calls,
        policy=policy,
        innetwork_bytes=in_bytes,
        innetwork_ns=in_ns,
        host_bytes=host.link_bytes,
        host_ns=host.finished_at_ns,
        match=match,
        innetwork_results=inner,
    )
