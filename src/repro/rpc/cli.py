"""``python -m repro.rpc`` — run the RPC acceptance scenario.

Usage::

    python -m repro.rpc                       # 2 racks x 8 servers, 2 clients
    python -m repro.rpc --racks 2 --servers-per-rack 4 --clients 1
    python -m repro.rpc --gathers 24 --json
    python -m repro.rpc --no-crash            # link faults only
    python -m repro.rpc --check-determinism   # run twice, compare digests

One ``--seed`` drives everything — request ids, fault RNG, and the
fabric — so the printed digest is identical across invocations with the
same seed.  Exit status is 0 only if every acceptance check passed (all
calls completed, every gather bit-identical to the host merge twin,
every non-idempotent call applied exactly once, memoization hits
observed, failover happened when a crash was planned, and the gather
fabric traffic beat the host fan-out baseline under the same link
faults).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.rpc.scenarios import RpcRunResult, default_rpc_plan, run_rpc_chaos


def build_arg_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.rpc",
        description="In-network accelerated RPC under injected faults",
    )
    p.add_argument(
        "--seed", type=int, default=7,
        help="master seed for requests, faults, and the fabric",
    )
    p.add_argument("--racks", type=int, default=2, help="number of racks")
    p.add_argument(
        "--servers-per-rack", type=int, default=8,
        help="replica servers attached to each rack's ToR",
    )
    p.add_argument(
        "--clients", type=int, default=2, help="client hosts at the edge"
    )
    p.add_argument(
        "--gets", type=int, default=8,
        help="memoizable unary calls per client",
    )
    p.add_argument(
        "--bumps", type=int, default=6,
        help="non-idempotent unary calls per client",
    )
    p.add_argument(
        "--gathers", type=int, default=12,
        help="scatter-gather calls per client",
    )
    p.add_argument(
        "--window", type=int, default=8, help="gather slot-stream window size"
    )
    p.add_argument(
        "--loss", type=float, default=0.05, help="per-hop loss probability"
    )
    p.add_argument(
        "--no-crash", action="store_true",
        help="skip the mid-run ToR crash (link faults only)",
    )
    p.add_argument(
        "--no-baseline", action="store_true",
        help="skip the host fan-out baseline run and traffic comparison",
    )
    p.add_argument(
        "--json", action="store_true", help="emit the full result as JSON"
    )
    p.add_argument(
        "--check-determinism", action="store_true",
        help="run the scenario twice and require identical digests",
    )
    return p


def _run(args: argparse.Namespace) -> RpcRunResult:
    plan = default_rpc_plan(
        args.seed,
        loss=args.loss,
        crash_at_ns=None if args.no_crash else 60_000,
    )
    return run_rpc_chaos(
        args.seed,
        num_racks=args.racks,
        servers_per_rack=args.servers_per_rack,
        num_clients=args.clients,
        gets_per_client=args.gets,
        bumps_per_client=args.bumps,
        gathers_per_client=args.gathers,
        window=args.window,
        plan=plan,
        baseline=not args.no_baseline,
    )


def _render(r: RpcRunResult) -> str:
    lines = [
        f"rpc run: seed={r.seed} {r.num_racks}x{r.servers_per_rack} servers, "
        f"{r.clients} clients {'OK' if r.ok else 'FAILED'}",
        f"  {r.unary_calls} unary + {r.gather_calls} gather calls completed "
        f"in {r.sim_ns / 1e6:.3f} ms simulated"
        f"{' (failed over to standby ToR)' if r.failed_over else ''}",
        f"  {r.memo_hits} calls answered by the ToR memo, "
        f"{r.replays} retries absorbed by the server reply cache",
    ]
    if r.fanout_link_bytes:
        lines.append(
            f"  fabric traffic {r.innetwork_link_bytes} B vs host fan-out "
            f"{r.fanout_link_bytes} B "
            f"({r.fanout_link_bytes / max(1, r.innetwork_link_bytes):.2f}x saved)"
        )
    else:
        lines.append(f"  fabric traffic {r.innetwork_link_bytes} B")
    lines.append(f"  digest {r.digest}")
    for name, value in sorted(r.counters.items()):
        lines.append(f"  {name:<24} {value}")
    for err in r.errors:
        lines.append(f"  ERROR: {err}")
    return "\n".join(lines)


def main(argv: Optional[list[str]] = None) -> int:
    args = build_arg_parser().parse_args(argv)
    result = _run(args)
    if args.check_determinism:
        again = _run(args)
        if again.digest != result.digest:
            print(
                f"NOT deterministic: {result.digest} != {again.digest}",
                file=sys.stderr,
            )
            return 2
        print(f"deterministic: two runs produced digest {result.digest}")
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(_render(result))
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
