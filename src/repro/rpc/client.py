"""The RPC client: unary calls with retries/deadlines, gather streams.

One :class:`RpcClient` owns one host and one
:class:`~repro.reliability.ReliableChannel` targeting the edge switch,
and multiplexes two wire computations over it:

* **Unary** (computation 1): each call gets a fresh request id; the
  client drives its own retransmissions, each attempt a *fresh* channel
  sequence number (``retransmit=False``).  Fresh sequences matter: the
  edge and ToR run device-side dedup (standalone and — always — as a
  service tenant), and a same-sequence retransmission would be swallowed
  there instead of reaching the server.  At-most-once execution is the
  *server's* job (its per-request-id reply cache); the request id also
  makes the client's reply matching immune to duplicated replies.
* **Gather** (computation 2): a :class:`RpcGatherStream` — the
  collective subsystem's windowed slot protocol — where each *round* is
  one scatter-gather call.  Concurrent clients multiplex one spine, so
  each stream owns a disjoint ``slot_base`` range of the switch's slot
  registers.

Replies steered by the switches look identical to the client: a memo
hit reflected by the ToR carries ``hit=1`` but completes the call the
same way a server reply does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.collective.protocol import SlotStream
from repro.reliability import BackoffPolicy, ReliableChannel
from repro.rpc.idl import (
    OP_REQ,
    OP_RSP,
    RPC_WORDS,
    SG_WORDS,
    RpcMethod,
    RpcSchema,
    decode,
    encode,
    request_key,
)
from repro.rpc.policies import POLICY_CODES
from repro.runtime.constants import DEFAULT_SLOT_TIMEOUT_NS, NUM_SLOTS
from repro.runtime.message import NetCLPacket, unpack


@dataclass
class UnaryCall:
    """One in-flight (or finished) unary invocation."""

    req_id: int
    method: RpcMethod
    server: int
    words: list[int]
    key: int
    sent_ns: int
    request: object = None
    on_reply: Optional[Callable[["UnaryCall"], None]] = None
    on_fail: Optional[Callable[["UnaryCall"], None]] = None
    attempts: int = 0
    seq: int = 0
    done: bool = False
    failed: bool = False
    hit: bool = False
    response: object = None
    finished_ns: Optional[int] = None
    _timer: object = field(default=None, repr=False)
    _deadline: object = field(default=None, repr=False)


@dataclass
class GatherCall:
    """One in-flight (or finished) scatter-gather invocation."""

    round: int
    method: RpcMethod
    words: list[int]
    policy_code: int
    sent_ns: int
    request: object = None
    on_reply: Optional[Callable[["GatherCall"], None]] = None
    done: bool = False
    merged: Optional[list[int]] = None
    finished_ns: Optional[int] = None


class RpcGatherStream(SlotStream):
    """The client's gather rounds riding the windowed slot protocol.

    Rounds are *parked* (``_chunk_payload`` returns None) until the
    application submits the corresponding call; the wire format echoes
    the round tag so stale re-deliveries are rejected exactly.
    """

    def __init__(self, client: "RpcClient", num_rounds: int, **kw) -> None:
        super().__init__(
            client.network,
            client.host_id,
            0,  # worker_index: the client contributes no mask bit itself
            client.spec_sg,
            num_rounds,
            comp=2,
            install_handler=False,
            **kw,
        )
        self.client = client

    def _chunk_payload(self, chunk: int) -> Optional[list]:
        call = self.client._gathers.get(chunk)
        if call is None:
            return None  # parked until gather() submits this round
        return [
            chunk & 0xFFFF,  # tag
            OP_REQ,
            call.method.method_id,
            call.policy_code,
            call.words,
        ]

    def _result_round(self, values: list) -> Optional[int]:
        return values[4]

    def _accept_result(self, chunk: int, values: list) -> None:
        self.client._gather_done(chunk, values)


class RpcClient:
    """One application host issuing RPCs through the in-network fabric."""

    def __init__(
        self,
        network,
        host_id: int,
        schema: RpcSchema,
        *,
        edge_device: int,
        spec_unary,
        spec_sg,
        method_servers: dict[int, int],
        slot_base: int = 0,
        window: int = 8,
        num_slots: int = NUM_SLOTS,
        gather_rounds: int = 64,
        timeout_ns: int = DEFAULT_SLOT_TIMEOUT_NS,
        retry: Optional[BackoffPolicy] = None,
    ) -> None:
        self.network = network
        self.host_id = host_id
        self.host = network.hosts[host_id]
        self.schema = schema
        self.spec_unary = spec_unary
        self.spec_sg = spec_sg
        #: unary method_id -> the server host answering it.
        self.method_servers = dict(method_servers)
        self.retry = retry or BackoffPolicy()
        self._calls: dict[int, UnaryCall] = {}
        self._gathers: dict[int, GatherCall] = {}
        self._next_req = 1
        self._next_round = 0
        self._started = False
        self.completed_unary: list[UnaryCall] = []
        self.completed_gather: list[GatherCall] = []

        # Install the dispatcher, then let the channel interpose on it.
        self.host.on_receive = self._dispatch
        self.channel = ReliableChannel(
            network,
            self.host,
            spec_unary,
            target_device=edge_device,
            ack=False,
        )
        self.gather_stream = RpcGatherStream(
            self,
            gather_rounds,
            device_id=edge_device,
            window=window,
            num_slots=num_slots,
            slot_base=slot_base,
            timeout_ns=timeout_ns,
        )
        self.gather_stream.channel = self.channel

        m = network.metrics
        tag = f"h{host_id}"
        self._m_calls = m.counter(f"rpc.client.calls.{tag}")
        self._m_gathers = m.counter(f"rpc.client.gathers.{tag}")
        self._m_memo_hits = m.counter(f"rpc.client.memo_hits.{tag}")
        self._m_server_replies = m.counter(f"rpc.client.server_replies.{tag}")
        self._m_retries = m.counter(f"rpc.client.retries.{tag}")
        self._m_failed = m.counter(f"rpc.client.failed.{tag}")
        self._m_deadline = m.counter(f"rpc.client.deadline_expired.{tag}")
        self._m_late = m.counter(f"rpc.client.late_replies.{tag}")
        self._m_latency = m.histogram(f"rpc.client.latency_ns.{tag}")
        self._m_gather_latency = m.histogram(f"rpc.client.gather_latency_ns.{tag}")

    # -- unary --------------------------------------------------------------------
    def call(
        self,
        method_name: str,
        request,
        *,
        on_reply: Optional[Callable[[UnaryCall], None]] = None,
        on_fail: Optional[Callable[[UnaryCall], None]] = None,
        deadline_ns: Optional[int] = None,
    ) -> UnaryCall:
        """Invoke a unary method; completion arrives via ``on_reply``."""
        method = self.schema.by_name[method_name]
        if method.kind != "unary":
            raise ValueError(f"{method_name} is a {method.kind} method")
        server = self.method_servers[method.method_id]
        words = encode(request)
        req_id = self._next_req
        self._next_req += 1
        if method.idempotent:
            # Stable across clients and retries: the memoization identity.
            key = request_key(method.method_id, words)
        else:
            # Unique per invocation so the ToR memo can never serve it.
            key = ((self.host_id & 0xFFFFFF) << 40) | (req_id & 0xFFFFFFFFFF)
        call = UnaryCall(
            req_id=req_id,
            method=method,
            server=server,
            words=words + [0] * (RPC_WORDS - len(words)),
            key=key,
            sent_ns=self.network.sim.now_ns,
            request=request,
            on_reply=on_reply,
            on_fail=on_fail,
        )
        self._calls[req_id] = call
        self._m_calls.inc()
        self._send_attempt(call)
        if deadline_ns is not None:
            call._deadline = self.network.sim.after(
                deadline_ns, self._deadline_expired, call
            )
        return call

    def _send_attempt(self, call: UnaryCall) -> None:
        values = [
            OP_REQ,
            call.method.method_id,
            call.req_id,
            call.key,
            0,  # ver
            0,  # hit
            call.words,
        ]
        call.seq = self.channel.request(
            values, dst=call.server, retransmit=False, comp=1
        )
        call.attempts += 1
        call._timer = self.network.sim.after(
            self.retry.timeout_ns(call.attempts - 1), self._retry, call
        )

    def _retry(self, call: UnaryCall) -> None:
        if self._calls.get(call.req_id) is not call:
            return
        if call.attempts > self.retry.max_retries:
            self._finish_failed(call, self._m_failed)
            return
        self._m_retries.inc()
        self._send_attempt(call)

    def _deadline_expired(self, call: UnaryCall) -> None:
        if self._calls.get(call.req_id) is not call:
            return
        self._finish_failed(call, self._m_deadline)

    def _finish_failed(self, call: UnaryCall, counter) -> None:
        self._calls.pop(call.req_id, None)
        for ev in (call._timer, call._deadline):
            if ev is not None:
                ev.cancel()
        # Stop the channel from tracking the abandoned attempt.
        self.channel.pending.pop(call.seq, None)
        call.failed = True
        counter.inc()
        if call.on_fail is not None:
            call.on_fail(call)

    # -- gather -------------------------------------------------------------------
    def start(self) -> None:
        """Open the gather stream (idempotent; unary needs no warm-up)."""
        if not self._started:
            self._started = True
            self.gather_stream.start()

    def gather(
        self,
        method_name: str,
        request,
        *,
        on_reply: Optional[Callable[[GatherCall], None]] = None,
    ) -> GatherCall:
        """Scatter a request to every replica; the switch merges replies."""
        method = self.schema.by_name[method_name]
        if method.kind != "gather":
            raise ValueError(f"{method_name} is a {method.kind} method")
        self.start()
        round_ = self._next_round
        self._next_round += 1
        if round_ >= self.gather_stream.num_rounds:
            raise RuntimeError(
                f"gather capacity {self.gather_stream.num_rounds} exhausted"
            )
        words = encode(request)
        call = GatherCall(
            round=round_,
            method=method,
            words=words + [0] * (SG_WORDS - len(words)),
            policy_code=POLICY_CODES[method.policy],
            sent_ns=self.network.sim.now_ns,
            request=request,
            on_reply=on_reply,
        )
        self._gathers[round_] = call
        self._m_gathers.inc()
        stream = self.gather_stream
        slot = round_ % stream.window
        if stream._slot_chunk.get(slot) == round_:
            stream._send_chunk(slot, round_)  # was parked waiting for us
        return call

    def _gather_done(self, round_: int, values: list) -> None:
        call = self._gathers.pop(round_, None)
        if call is None:
            return
        call.done = True
        call.merged = [w & 0xFFFFFFFF for w in values[8]]
        call.finished_ns = self.network.sim.now_ns
        self._m_gather_latency.observe(call.finished_ns - call.sent_ns)
        self.completed_gather.append(call)
        if call.on_reply is not None:
            call.on_reply(call)

    # -- receive ------------------------------------------------------------------
    def _dispatch(self, packet: NetCLPacket, now_ns: int) -> None:
        if packet.comp == 2:
            self.gather_stream.handle(packet, now_ns)
            return
        _, values = unpack(packet.to_wire(), self.spec_unary)
        op, _method_id, req_id, _key, _ver, hit = values[:6]
        if op != OP_RSP:
            return
        call = self._calls.pop(req_id, None)
        if call is None:
            self._m_late.inc()  # duplicate or post-deadline reply
            return
        for ev in (call._timer, call._deadline):
            if ev is not None:
                ev.cancel()
        call.done = True
        call.hit = bool(hit)
        call.finished_ns = now_ns
        call.response = decode(call.method.response, values[6])
        (self._m_memo_hits if hit else self._m_server_replies).inc()
        self._m_latency.observe(call.finished_ns - call.sent_ns)
        self.completed_unary.append(call)
        if call.on_reply is not None:
            call.on_reply(call)

    # -- introspection ------------------------------------------------------------
    @property
    def outstanding(self) -> int:
        return len(self._calls) + len(self._gathers)

    @property
    def all_done(self) -> bool:
        return not self._calls and not self._gathers

    def stall_report(self) -> Optional[str]:
        if self.all_done:
            return None
        gathers = sorted(self._gathers)
        return (
            f"{len(self._calls)} unary + {len(gathers)} gather outstanding "
            f"(unary req_ids {sorted(self._calls)[:8]}, "
            f"gather rounds {gathers[:8]})"
        )
