"""RPC fabric construction: compile switch roles, wire the data path.

The standalone deployment is a three-tier path::

    clients -- EDGE -- SG spine ---- ToR[rack] -- servers[rack]
                  \\__________________/   |
                                      standby ToR (failover)

* the **EDGE** (device 90) runs per-method token-bucket admission for
  both computations and steers admitted traffic through managed MATs
  (``URoute``: method -> ToR, ``SRoute``: method -> spine), so a ToR
  failover is one ``managed_modify`` at the edge — clients never
  retarget;
* each rack's **ToR** (101+rack, standby 131+rack) runs the unary memo
  cache, driven by a journaling :class:`~repro.rpc.memo.MemoController`
  so promotion replays the cache;
* the **SG spine** (91) merges scatter-gather partials; no switch runs
  ``ordered`` mode — the slot merge is guarded by (version, agg index)
  compares and the client checks ver+tag, so FIFO enforcement would
  only stale-drop reordered partials (see ``add_switch`` below).

Every switch is a :class:`~repro.reliability.ReliableNetCLDevice`: the
memo ToR rewrites packets (reflected hits need their CRC restamped) and
the same configuration is what :mod:`repro.service` gives a tenant, so
standalone and tenant deployments exercise identical device behavior.
Host-side token refills reuse the service's QoS bucket math
(:class:`TokenRefiller`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.apps import compile_app
from repro.netsim import DEVICE, HOST, Link, Network
from repro.reliability import ReliableNetCLDevice, ReplicatedConnection
from repro.rpc.client import RpcClient
from repro.rpc.idl import NUM_METHODS, RpcSchema
from repro.rpc.memo import MemoController
from repro.rpc.server import RpcServer
from repro.runtime import KernelSpec
from repro.runtime.constants import DEFAULT_SLOT_TIMEOUT_NS, NUM_SLOTS
from repro.runtime.control import DeviceConnection

EDGE_DEVICE = 90
SG_DEVICE = 91
SG_MCAST_GROUP = 88
#: standby ToRs share the collective convention: their own id range.
STANDBY_BASE = 131

#: token budget written for methods with no QoS limit (practically
#: unlimited at simulation timescales; the data plane only decrements).
UNLIMITED_TOKENS = 1 << 30


def tor_device(rack: int) -> int:
    """The device id of rack ``rack``'s primary ToR."""
    return 101 + rack


def standby_device(rack: int) -> int:
    """The device id of rack ``rack``'s standby ToR."""
    return STANDBY_BASE + rack


def compile_rpc_role(
    device_id: int,
    role: str,
    *,
    fanout: int,
    edge_dev: int = EDGE_DEVICE,
    sg_dev: int = SG_DEVICE,
    mcast_group: int = SG_MCAST_GROUP,
    target: str = "tna",
):
    """Compile ``rpc.ncl`` for one switch role ("edge", "sg", or "tor")."""
    defines: dict = {
        "NUM_METHODS": NUM_METHODS,
        "FANOUT": fanout,
        "EDGE_DEV": edge_dev,
        "SG_DEV": sg_dev,
        "SG_MCAST": mcast_group,
    }
    if role == "tor":
        defines["TOR_DEVS"] = str(device_id)
    return compile_app("rpc", device_id, target=target, defines=defines)


class TokenRefiller:
    """Host-side refill loop for the edge admission buckets.

    The data plane only spends (``atomic_ssub``); rate enforcement is
    the control plane's: every ``interval_ns`` the refiller accrues
    ``max_pps`` worth of fractional credit per limited method and writes
    ``min(burst, current + whole_credit)`` down — the same
    deterministic ns-clocked bucket semantics as
    :class:`repro.service.qos.TokenBucket`, expressed as managed writes.
    """

    def __init__(
        self, network, conn, schema: RpcSchema, *, interval_ns: int = 50_000
    ) -> None:
        self.network = network
        self.conn = conn
        self.interval_ns = interval_ns
        self._stopped = False
        #: (register, method_id) -> (rate_pps, burst, fractional credit)
        self._limited: dict[tuple[str, int], list] = {}
        self._m_refills = network.metrics.counter("rpc.edge.refills")
        for m in schema.methods:
            reg = "UTokens" if m.kind == "unary" else "STokens"
            if m.qos is not None and m.qos.max_pps is not None:
                self._limited[(reg, m.method_id)] = [
                    float(m.qos.max_pps), int(m.qos.burst), 0.0
                ]
                conn.managed_write(reg, int(m.qos.burst), index=m.method_id)
            else:
                conn.managed_write(reg, UNLIMITED_TOKENS, index=m.method_id)

    def start(self) -> "TokenRefiller":
        if self._limited:
            self.network.sim.after(self.interval_ns, self._tick)
        return self

    def stop(self) -> None:
        self._stopped = True

    def _tick(self) -> None:
        if self._stopped:
            return
        for (reg, mid), state in self._limited.items():
            rate, burst, credit = state
            credit += rate * self.interval_ns / 1e9
            whole = int(credit)
            if whole > 0:
                cur = self.conn.managed_read(reg, index=mid)
                topped = min(burst, cur + whole)
                if topped != cur:
                    self.conn.managed_write(reg, topped, index=mid)
                    self._m_refills.inc()
                credit -= whole
            state[2] = credit
        self.network.sim.after(self.interval_ns, self._tick)


@dataclass
class RpcCluster:
    """A compiled, wired RPC fabric ready to serve calls."""

    network: Network
    schema: RpcSchema
    edge: ReliableNetCLDevice
    sg: ReliableNetCLDevice
    tors: list[ReliableNetCLDevice]
    standbys: list[ReliableNetCLDevice]
    clients: list[RpcClient]
    servers: list[RpcServer]
    memo: dict[int, MemoController]
    edge_conn: DeviceConnection
    refiller: TokenRefiller
    compiled: dict[int, object]
    spec_unary: KernelSpec
    spec_sg: KernelSpec
    num_racks: int
    servers_per_rack: int
    method_rack: dict[int, int]
    method_server: dict[int, int]
    _started: bool = field(default=False, repr=False)

    @property
    def fanout(self) -> int:
        return self.num_racks * self.servers_per_rack

    def run(self, until_ms: float = 50.0) -> None:
        """Drive the simulation (relative horizon, like the collectives)."""
        if not self._started:
            for c in self.clients:
                c.start()
            self._started = True
        sim = self.network.sim
        sim.run(until_ns=sim.now_ns + int(until_ms * 1e6))

    @property
    def all_done(self) -> bool:
        return all(c.all_done for c in self.clients)

    def stall_report(self) -> list[str]:
        out = []
        for c in self.clients:
            r = c.stall_report()
            if r is not None:
                out.append(f"client h{c.host_id}: {r}")
        return out

    def link_bytes(self) -> int:
        return int(self.network.metrics.total("link.tx_bytes."))

    def reroute_method(self, method_id: int, device_id: int) -> None:
        """Repoint one unary method's ToR at the edge (failover path)."""
        self.edge_conn.managed_modify("URoute", method_id, device_id)


def server_host(index: int, num_clients: int) -> int:
    """Host id of global replica ``index`` (clients occupy 1..num_clients)."""
    return num_clients + 1 + index


def build_rpc_cluster(
    schema: RpcSchema,
    handlers: dict,
    *,
    num_racks: int = 2,
    servers_per_rack: int = 2,
    num_clients: int = 1,
    window: int = 8,
    gather_rounds: int = 64,
    timeout_ns: int = DEFAULT_SLOT_TIMEOUT_NS,
    refill_interval_ns: int = 50_000,
    loss: float = 0.0,
    link_latency_ns: int = 1000,
    bandwidth_gbps: float = 100.0,
    seed: int = 7,
    standby: bool = False,
    target: str = "tna",
) -> RpcCluster:
    """Compile the switch roles and wire the whole RPC fabric.

    ``handlers`` maps method name -> callable: ``fn(request)`` for unary
    methods, ``fn(request, replica_index)`` for gather methods (pure —
    see :class:`~repro.rpc.server.RpcServer`).  Unary methods are spread
    over racks by ``method_id % num_racks`` and over a rack's servers by
    ``method_id // num_racks``.
    """
    fanout = num_racks * servers_per_rack
    if not 1 <= fanout <= 16:
        raise ValueError("fanout must be in [1, 16] (replica bits are u16)")
    for name in (m.name for m in schema.methods):
        if name not in handlers:
            raise ValueError(f"no handler for method {name!r}")

    net = Network(seed=seed)
    compiled: dict[int, object] = {}

    def add_switch(device_id: int, role: str) -> ReliableNetCLDevice:
        prog = compile_rpc_role(device_id, role, fanout=fanout, target=target)
        compiled[device_id] = prog
        dev = ReliableNetCLDevice(
            device_id,
            prog.module,
            prog.kernels(),
            metrics=net.metrics,
            # No ordered mode anywhere, spine included: every partial is
            # guarded by the slot's (version, agg index) compare and the
            # client checks ver+tag on results, so a late packet is
            # harmless unless it spans TWO slot generations — impossible
            # here, since a slot is only reused after its previous round
            # completed (≥ one full RTT) while in-flight delay is bounded
            # by reorder_delay + jitter.  FIFO enforcement would instead
            # *drop* every reordered partial, and each such drop costs a
            # full re-scatter to all FANOUT replicas.
            ordered=False,
        )
        processing = int(prog.report.latency.total_ns) if prog.report else 500
        net.add_switch(dev, processing_ns=processing)
        return dev

    def fabric_link(a, b) -> None:
        net.link(
            a,
            b,
            Link(
                latency_ns=link_latency_ns,
                bandwidth_gbps=bandwidth_gbps,
                loss_probability=loss,
            ),
        )

    edge = add_switch(EDGE_DEVICE, "edge")
    sg = add_switch(SG_DEVICE, "sg")
    fabric_link(DEVICE(EDGE_DEVICE), DEVICE(SG_DEVICE))
    tors: list[ReliableNetCLDevice] = []
    standbys: list[ReliableNetCLDevice] = []
    for rack in range(num_racks):
        tor = add_switch(tor_device(rack), "tor")
        tors.append(tor)
        fabric_link(DEVICE(tor.device_id), DEVICE(EDGE_DEVICE))
        fabric_link(DEVICE(tor.device_id), DEVICE(SG_DEVICE))
        if standby:
            spare = add_switch(standby_device(rack), "tor")
            standbys.append(spare)
            fabric_link(DEVICE(spare.device_id), DEVICE(EDGE_DEVICE))
            fabric_link(DEVICE(spare.device_id), DEVICE(SG_DEVICE))

    edge_kernels = {k.computation: k for k in compiled[EDGE_DEVICE].kernels()}
    spec_unary = KernelSpec.from_kernel(edge_kernels[1])
    spec_sg = KernelSpec.from_kernel(edge_kernels[2])

    # -- hosts --------------------------------------------------------------------
    for c in range(num_clients):
        net.add_host(c + 1)
        fabric_link(HOST(c + 1), DEVICE(EDGE_DEVICE))
    server_hosts = []
    for i in range(fanout):
        h = server_host(i, num_clients)
        rack = i // servers_per_rack
        net.add_host(h)
        server_hosts.append(h)
        fabric_link(HOST(h), DEVICE(tor_device(rack)))
        if standby:
            fabric_link(HOST(h), DEVICE(standby_device(rack)))
    net.add_multicast_group(SG_MCAST_GROUP, [HOST(h) for h in server_hosts])
    # RPC hosts model a single-core packet path: per-packet overhead
    # serializes.  The host-only baseline sets the same flag, so the
    # fan-out comparison charges both sides identically.
    for host in net.hosts.values():
        host.serialize_overheads = True

    # -- control plane ------------------------------------------------------------
    edge_conn = DeviceConnection(edge)
    method_rack: dict[int, int] = {}
    method_server: dict[int, int] = {}
    for m in schema.methods:
        if m.kind == "unary":
            rack = m.method_id % num_racks
            within = (m.method_id // num_racks) % servers_per_rack
            method_rack[m.method_id] = rack
            method_server[m.method_id] = server_host(
                rack * servers_per_rack + within, num_clients
            )
            edge_conn.managed_insert("URoute", m.method_id, tor_device(rack))
        else:
            edge_conn.managed_insert("SRoute", m.method_id, SG_DEVICE)
    memo = {
        rack: MemoController(
            ReplicatedConnection(DeviceConnection(tors[rack])),
            metrics=net.metrics,
            tag=f"r{rack}",
        )
        for rack in range(num_racks)
    }
    refiller = TokenRefiller(
        net, edge_conn, schema, interval_ns=refill_interval_ns
    ).start()

    # -- applications -------------------------------------------------------------
    servers = [
        RpcServer(
            net,
            server_hosts[i],
            schema,
            handlers,
            replica_index=i,
            sg_device=SG_DEVICE,
            spec_unary=spec_unary,
            spec_sg=spec_sg,
            memo=memo[i // servers_per_rack],
        )
        for i in range(fanout)
    ]
    slots_per_client = NUM_SLOTS // max(1, num_clients)
    clients = [
        RpcClient(
            net,
            c + 1,
            schema,
            edge_device=EDGE_DEVICE,
            spec_unary=spec_unary,
            spec_sg=spec_sg,
            method_servers=method_server,
            slot_base=c * slots_per_client,
            window=min(window, slots_per_client),
            gather_rounds=gather_rounds,
            timeout_ns=timeout_ns,
        )
        for c in range(num_clients)
    ]

    return RpcCluster(
        network=net,
        schema=schema,
        edge=edge,
        sg=sg,
        tors=tors,
        standbys=standbys,
        clients=clients,
        servers=servers,
        memo=memo,
        edge_conn=edge_conn,
        refiller=refiller,
        compiled=compiled,
        spec_unary=spec_unary,
        spec_sg=spec_sg,
        num_racks=num_racks,
        servers_per_rack=servers_per_rack,
        method_rack=method_rack,
        method_server=method_server,
    )
